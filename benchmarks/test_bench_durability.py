"""Durability benchmark harness: WAL overhead, recovery replay, repair.

Validates the durability layer's three performance claims and writes
``BENCH_durability.json`` so future PRs have a trajectory to compare
against:

* journaled ingest stays within a bounded overhead of journal-off ingest
  on the vectorized hot path (the WAL appends one framed record per
  batch, it must not serialize per sample),
* crash recovery replays the journal at bulk rates (vectorized MANY /
  BLOCK records, not per-sample appends),
* anti-entropy detects and repairs a diverged replica in time linear in
  the number of *differing* windows, not in store size.

Scale is selected with the ``BENCH_SCALE`` env var (small/medium/large;
``large`` carries the acceptance numbers: <=15% WAL overhead and >=1M
samples/s replay).
"""

from __future__ import annotations

import json
import os
import platform
import shutil
import tempfile
import time
from typing import Callable, Dict

import numpy as np

from repro.telemetry import SampleBatch, TimeSeriesStore
from repro.telemetry.distributed import ReplicaSet
from repro.telemetry.durability import JournalConfig

SCALE = os.environ.get("BENCH_SCALE", "small")

SCALES: Dict[str, Dict] = {
    # Small scales are CI smoke: correctness plus loose sanity bounds
    # (tiny runs are dominated by fixed costs and scheduler noise).
    "small": dict(
        series=100, batches=400,
        replay_series=50, replay_chunks=60, replay_chunk=2_000,
        ae_series=40, ae_samples=2_000, ae_window_s=600.0,
        max_wal_overhead=0.60, min_replay_rate=200_000.0,
    ),
    "medium": dict(
        series=300, batches=1_500,
        replay_series=100, replay_chunks=150, replay_chunk=4_000,
        ae_series=100, ae_samples=5_000, ae_window_s=600.0,
        max_wal_overhead=0.30, min_replay_rate=600_000.0,
    ),
    "large": dict(
        series=1_000, batches=3_000,
        replay_series=200, replay_chunks=250, replay_chunk=8_000,
        ae_series=200, ae_samples=10_000, ae_window_s=600.0,
        max_wal_overhead=0.15, min_replay_rate=1_000_000.0,
    ),
}

P = SCALES[SCALE]

RESULTS: Dict[str, Dict] = {
    "scale": SCALE,
    "params": {k: v for k, v in P.items()
               if not k.startswith(("min_", "max_"))},
}


def _best_of(fn: Callable[[], object], repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _ingest_run(journal_dir) -> float:
    """One full batch-ingest run; returns elapsed seconds."""
    names = tuple(f"bench.wal.s{i:04d}" for i in range(P["series"]))
    rng = np.random.default_rng(7)
    batches = [
        SampleBatch(float(t), names, rng.normal(100.0, 10.0, len(names)))
        for t in range(P["batches"])
    ]
    journal = (
        JournalConfig(dir=journal_dir, sync="interval")
        if journal_dir else None
    )
    store = TimeSeriesStore(journal=journal)
    t0 = time.perf_counter()
    for batch in batches:
        store.ingest("bench", batch)
    store.flush()
    if journal_dir:
        store.flush_journal()
    elapsed = time.perf_counter() - t0
    store.close()
    return elapsed


def test_wal_ingest_overhead(tmp_path):
    """Journaled batch ingest stays within the overhead budget."""
    base = min(_ingest_run(None) for _ in range(3))
    walled = float("inf")
    for i in range(3):
        wal_dir = str(tmp_path / f"wal{i}")
        walled = min(walled, _ingest_run(wal_dir))
        shutil.rmtree(wal_dir, ignore_errors=True)
    overhead = walled / base - 1.0
    samples = P["series"] * P["batches"]
    RESULTS["wal_overhead"] = {
        "samples": samples,
        "baseline_s": round(base, 5),
        "journaled_s": round(walled, 5),
        "overhead_fraction": round(overhead, 4),
        "journaled_samples_per_sec": round(samples / walled),
    }
    assert overhead <= P["max_wal_overhead"], RESULTS["wal_overhead"]


def test_recovery_replay_rate(tmp_path):
    """Crash recovery replays the journal at bulk (vectorized) rates."""
    wal_dir = str(tmp_path / "replay-wal")
    store = TimeSeriesStore(journal=JournalConfig(dir=wal_dir, sync="never"))
    rng = np.random.default_rng(11)
    chunk = P["replay_chunk"]
    clock = 0.0
    for _ in range(P["replay_chunks"]):
        for s in range(P["replay_series"]):
            times = clock + np.arange(chunk, dtype=np.float64)
            store.append_many(
                f"bench.replay.s{s:03d}", times,
                rng.normal(50.0, 5.0, chunk),
            )
        clock += chunk
    store.flush_journal()
    total = store.samples_ingested
    # Abandon the store without closing: the journal is the only copy, as
    # after a crash.  Recovery replays every record into a fresh store.
    del store

    t0 = time.perf_counter()
    recovered = TimeSeriesStore(journal=JournalConfig(dir=wal_dir))
    elapsed = time.perf_counter() - t0
    stats = recovered.recovery
    rate = stats.replayed_samples / elapsed
    RESULTS["recovery"] = {
        "journaled_samples": int(total),
        "replayed_samples": int(stats.replayed_samples),
        "replayed_records": int(stats.replayed_records),
        "segments": int(stats.segments),
        "replay_s": round(elapsed, 5),
        "replay_samples_per_sec": round(rate),
    }
    assert stats.replayed_samples == total, RESULTS["recovery"]
    assert rate >= P["min_replay_rate"], RESULTS["recovery"]
    recovered.close()


def test_anti_entropy_latency():
    """Detect + repair of a diverged replica, timed per differing window."""
    rs = ReplicaSet(0, replication=1)
    names = [f"bench.ae.s{i:03d}" for i in range(P["ae_series"])]
    rng = np.random.default_rng(13)
    n = P["ae_samples"]
    times = np.arange(n, dtype=np.float64)
    for name in names:
        rs.append_many(name, times, rng.normal(10.0, 2.0, n))
    rs.flush()

    # Clean sweep first: divergence scan over an in-sync set (detect cost).
    clean_s = _best_of(
        lambda: rs.anti_entropy(window_s=P["ae_window_s"], now=float(n))
    )

    # Diverge the replica: it misses a late slice of writes, then comes
    # back *without* a full resync — anti-entropy must find the hole.
    rs.mark_down(1)
    hole = np.arange(n, n + n // 4, dtype=np.float64)
    for name in names:
        rs.append_many(name, hole, rng.normal(10.0, 2.0, hole.size))
    rs.flush()
    rs.revive(1, resync=False)

    t0 = time.perf_counter()
    summary = rs.anti_entropy(window_s=P["ae_window_s"], now=float(n + n // 4))
    repair_s = time.perf_counter() - t0
    repaired = int(summary["repaired_windows"])
    RESULTS["anti_entropy"] = {
        "series": len(names),
        "samples_per_member": int(n + n // 4),
        "clean_sweep_s": round(clean_s, 5),
        "diverged_windows": int(summary["diverged_windows"]),
        "repaired_windows": repaired,
        "repaired_samples": int(summary["repaired_samples"]),
        "repair_sweep_s": round(repair_s, 5),
        "repair_s_per_window": round(repair_s / max(repaired, 1), 6),
    }
    assert repaired > 0, RESULTS["anti_entropy"]
    # The repaired replica must verify clean on the next sweep.
    after = rs.anti_entropy(window_s=P["ae_window_s"], now=float(n + n // 4))
    assert after["diverged_windows"] == 0, after


def test_write_bench_artifact(write_artifact):
    """Runs last in this module: persist the durability perf artifact."""
    RESULTS["env"] = {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }
    write_artifact("BENCH_durability.json", json.dumps(RESULTS, indent=2) + "\n")
    missing = {"wal_overhead", "recovery", "anti_entropy"} - set(RESULTS)
    assert not missing, f"benchmarks did not run: {missing}"
