"""Experiment D3 — the LLNL power-spike forecasting case (Section V-C, [72]).

Fit the Fourier forecaster on three weeks of LLNL-scale site power and
notify week-4 ramps beyond the contractual 750 kW / 15 min threshold.
Expected shape: the FFT model beats persistence on both forecast error
and ramp notifications (persistence, being flat, can never notify).
"""

from __future__ import annotations

import numpy as np

from repro.analytics.predictive import FourierForecaster, detect_ramps, mae
from repro.facility import SitePowerTraceGenerator

DAY = 86_400.0
THRESHOLD_W = 750e3
WINDOW_S = 900.0
MATCH_TOLERANCE_S = 3600.0


def experiment(seed: int = 5):
    generator = SitePowerTraceGenerator(np.random.default_rng(seed))
    times, watts, events = generator.generate(days=28.0, step_s=300.0)
    train = times < 21 * DAY
    test = ~train

    forecaster = FourierForecaster(n_harmonics=320).fit(times[train], watts[train])
    predicted = forecaster.predict(times[test])
    persistence = np.full(int(test.sum()), watts[train][-1])

    actual_events = detect_ramps(times[test], watts[test], THRESHOLD_W, WINDOW_S)
    forecast_events = detect_ramps(times[test], predicted, THRESHOLD_W, WINDOW_S)

    hits = sum(
        1 for f in forecast_events
        if any(abs(f.time - a.time) <= MATCH_TOLERANCE_S for a in actual_events)
    )
    covered = sum(
        1 for a in actual_events
        if any(abs(a.time - f.time) <= MATCH_TOLERANCE_S for f in forecast_events)
    )
    return {
        "fourier_mae_mw": mae(watts[test], predicted) / 1e6,
        "persistence_mae_mw": mae(watts[test], persistence) / 1e6,
        "actual_events": len(actual_events),
        "forecast_events": len(forecast_events),
        "precision": hits / max(len(forecast_events), 1),
        "recall": covered / max(len(actual_events), 1),
    }


def test_bench_llnl_forecast(benchmark, write_artifact):
    result = benchmark.pedantic(experiment, rounds=1, iterations=1)
    write_artifact(
        "d3_llnl.txt",
        "Experiment D3 — FFT power-spike forecasting (LLNL [72])\n"
        + "\n".join(f"{k}: {v:.3f}" if isinstance(v, float) else f"{k}: {v}"
                    for k, v in result.items()),
    )
    # Forecast skill: FFT clearly beats persistence.
    assert result["fourier_mae_mw"] < result["persistence_mae_mw"] * 0.7
    # Notification quality: the published method's raison d'etre.
    assert result["actual_events"] >= 10
    assert result["precision"] >= 0.7
    assert result["recall"] >= 0.5
