"""Experiment T1 — regenerate Table I from the survey corpus.

Assertions: the regenerated table contains every published use case in its
published cell with its published citations; per-row and per-column counts
match the paper; every entry is backed by a live implementation module.
"""

from __future__ import annotations

import importlib

from repro.core import (
    PILLAR_ORDER,
    TYPE_ORDER,
    AnalyticsType,
    Pillar,
    render_occupancy,
    render_table1,
    survey_grid,
    table1_use_cases,
)

#: Published Table I row/column bullet counts.
EXPECTED_PER_TYPE = {
    AnalyticsType.PRESCRIPTIVE: 11,
    AnalyticsType.PREDICTIVE: 11,
    AnalyticsType.DIAGNOSTIC: 12,
    AnalyticsType.DESCRIPTIVE: 11,
}
EXPECTED_PER_PILLAR = {
    Pillar.BUILDING_INFRASTRUCTURE: 12,
    Pillar.SYSTEM_HARDWARE: 12,
    Pillar.SYSTEM_SOFTWARE: 10,
    Pillar.APPLICATIONS: 11,
}


def regenerate():
    grid = survey_grid()
    return grid, render_table1(grid)


def test_bench_table1(benchmark, write_artifact):
    grid, table = benchmark(regenerate)
    write_artifact("table1.md", table + "\n\n" + render_occupancy(grid))

    # Every published bullet present, in its cell, with its citations.
    assert len(grid) == 45
    assert grid.empty_cells() == []
    for uc in table1_use_cases():
        placed = grid.get(uc.name)
        assert placed.cell == uc.cell
        for number in uc.references:
            assert f"[{number}]" in table

    for analytics_type, expected in EXPECTED_PER_TYPE.items():
        assert len(grid.by_type(analytics_type)) == expected
    for pillar, expected in EXPECTED_PER_PILLAR.items():
        assert len(grid.by_pillar(pillar)) == expected


def test_bench_table1_implementations_live(benchmark):
    """Every Table I entry maps to an importable implementation."""

    def check():
        missing = []
        for uc in table1_use_cases():
            for path in uc.implemented_by:
                parts = path.split(".")
                module = None
                for cut in range(len(parts), 0, -1):
                    try:
                        module = importlib.import_module(".".join(parts[:cut]))
                        remainder = parts[cut:]
                        break
                    except ImportError:
                        continue
                if module is None:
                    missing.append(path)
                    continue
                obj = module
                try:
                    for attr in remainder:
                        obj = getattr(obj, attr)
                except AttributeError:
                    missing.append(path)
        return missing

    missing = benchmark(check)
    assert missing == []
