"""Experiment A1 — telemetry pipeline throughput and store scaling.

Not a paper table, but the substrate performance every ODA deployment
stands on: samples/second through the scrape -> bus -> store path, bulk
ingest rate, and range-query latency at archive sizes.
"""

from __future__ import annotations

import numpy as np

from repro.simulation import Simulator
from repro.telemetry import (
    MessageBus,
    SampleBatch,
    Sampler,
    TelemetrySystem,
    TimeSeriesStore,
)

N_METRICS = 200


def make_batch(time: float) -> SampleBatch:
    names = tuple(f"cluster.n{i}.power" for i in range(N_METRICS))
    return SampleBatch(time, names, np.random.default_rng(0).random(N_METRICS))


def test_bench_pipeline_scrape_to_store(benchmark):
    """End-to-end publish of a 200-metric batch into the store."""
    telemetry = TelemetrySystem()
    clock = {"t": 0.0}

    def publish_one():
        clock["t"] += 1.0
        telemetry.bus.publish("cluster", make_batch(clock["t"]))

    benchmark(publish_one)
    assert telemetry.store.samples_ingested >= N_METRICS


def test_bench_store_bulk_append(benchmark):
    """Vectorized bulk ingest of one million samples."""
    times = np.arange(1_000_000, dtype=np.float64)
    values = np.random.default_rng(0).random(1_000_000)

    def ingest():
        store = TimeSeriesStore()
        store.append_many("m", times, values)
        return store

    store = benchmark(ingest)
    assert len(store.series("m")) == 1_000_000


def test_bench_store_range_query(benchmark):
    """Range query against a million-sample series returns views."""
    store = TimeSeriesStore()
    store.append_many("m", np.arange(1_000_000, dtype=np.float64),
                      np.zeros(1_000_000))

    def query():
        return store.query("m", 400_000.0, 600_000.0)

    times, _ = benchmark(query)
    assert times.size == 200_001
    assert times.base is not None  # view, not copy


def test_bench_store_resample(benchmark):
    store = TimeSeriesStore()
    store.append_many("m", np.arange(100_000, dtype=np.float64),
                      np.random.default_rng(0).random(100_000))

    def resample():
        return store.resample("m", 0.0, 100_000.0, 100.0)

    _, values = benchmark(resample)
    assert values.size == 1000


def test_bench_simulated_collection_day(benchmark):
    """One simulated day of periodic collection from 64 samplers."""

    def run_day():
        sim = Simulator()
        telemetry = TelemetrySystem()
        agent = telemetry.new_agent("agent", period=60.0)
        for i in range(64):
            agent.add_sampler(Sampler(
                f"node{i}",
                lambda now, i=i: {f"cluster.n{i}.power": 100.0 + i,
                                  f"cluster.n{i}.temp": 40.0},
            ))
        agent.start(sim)
        sim.run(86_400.0)
        return telemetry

    telemetry = benchmark.pedantic(run_day, rounds=1, iterations=1)
    assert telemetry.store.samples_ingested == 64 * 2 * 1441
