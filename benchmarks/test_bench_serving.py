"""Serving front-door benchmark: cache speedup, admission tail latency.

The PR-8 acceptance criteria, measured and written to
``BENCH_serving.json``:

* a **cache hit** must be at least 5x faster than an uncached execution
  of the same heavy federated query (the hit is a stamp check + dict get;
  the miss re-runs resample kernels across every shard);
* under a burst that exceeds worker capacity, **p99 latency of completed
  queries must be strictly lower with admission control than without** —
  bounded queues plus load shedding turn an unbounded backlog into cheap
  typed rejections, which is the entire point of a front door;
* answers served through the frontend (cached or not) are **bit-identical
  to the direct federation engine** at 1, 2 and 8 shards (the hypothesis
  suite in ``tests/test_serving_cache.py`` proves this property-style;
  the bench records it over the real workload).

Latency here is end-to-end (submit -> resolve), so it *includes queue
wait* — that is what a tenant experiences and what admission control is
supposed to protect.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict

import numpy as np

from repro.telemetry import SampleBatch
from repro.telemetry.distributed import ShardedStore
from repro.telemetry.serving import (
    AlignQuery,
    QueryFrontend,
    TenantConfig,
    WorkloadSpec,
    heavy_tailed_workload,
)

SCALE = os.environ.get("BENCH_SCALE", "small")

SCALES: Dict[str, Dict] = {
    "small": dict(series=16, samples=2_000, shards=2,
                  hit_repeats=30, miss_repeats=10,
                  burst_queries=240, burst_tenants=6,
                  parity_queries=60),
    "medium": dict(series=24, samples=6_000, shards=4,
                   hit_repeats=50, miss_repeats=15,
                   burst_queries=500, burst_tenants=8,
                   parity_queries=120),
    "large": dict(series=32, samples=20_000, shards=8,
                  hit_repeats=80, miss_repeats=20,
                  burst_queries=1_000, burst_tenants=8,
                  parity_queries=200),
}

P = SCALES[SCALE]

MIN_CACHE_SPEEDUP = 5.0

RESULTS: Dict[str, Dict] = {
    "scale": SCALE,
    "params": dict(P),
    "ceilings": {"cache_speedup_min": MIN_CACHE_SPEEDUP},
}


def make_names(n):
    return tuple(f"b.rack{i // 8}.node{i % 8}.power" for i in range(n))


def fill(store, names, samples, seed=0):
    rng = np.random.default_rng(seed)
    width = len(names)
    for t in range(samples):
        store.ingest("b", SampleBatch(
            float(t) * 2.0, names, rng.random(width),
        ))
    store.flush()
    return store


def heavy_query(names, samples):
    horizon = samples * 2.0
    return AlignQuery(
        names=names, since=0.0, until=horizon,
        step=max(1.0, horizon / 400.0),
    )


# ---------------------------------------------------------------------------
# Cache speedup
# ---------------------------------------------------------------------------
def test_bench_cache_hit_speedup():
    names = make_names(P["series"])
    store = fill(
        ShardedStore(shards=P["shards"], replication=0),
        names, P["samples"],
    )
    query = heavy_query(names, P["samples"])
    uncached = QueryFrontend(store, max_workers=0, cache=False)
    cached = QueryFrontend(store, max_workers=0)

    miss_s = min(
        _timed(lambda: uncached.serve("t", query))
        for _ in range(P["miss_repeats"])
    )
    populate = cached.serve("t", query)
    assert populate.ok and not populate.cache_hit
    hits = []
    for _ in range(P["hit_repeats"]):
        t, out = _timed_out(lambda: cached.serve("t", query))
        assert out.cache_hit
        hits.append(t)
    hit_s = min(hits)

    speedup = miss_s / hit_s
    RESULTS["cache"] = {
        "uncached_s": miss_s,
        "hit_s": hit_s,
        "speedup": speedup,
        "hit_qps": 1.0 / hit_s,
        "uncached_qps": 1.0 / miss_s,
        "stats": cached.cache_stats(),
    }
    assert speedup >= MIN_CACHE_SPEEDUP, (
        f"cache hit only {speedup:.1f}x faster than uncached "
        f"(uncached {miss_s * 1e6:.0f}us, hit {hit_s * 1e6:.0f}us)"
    )


def _timed(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def _timed_out(fn):
    t0 = time.perf_counter()
    out = fn()
    return time.perf_counter() - t0, out


# ---------------------------------------------------------------------------
# Admission control vs. unbounded backlog
# ---------------------------------------------------------------------------
def _burst(admission: bool) -> Dict[str, float]:
    """Submit the whole workload as one burst against a small worker pool
    and measure the completed queries' end-to-end latency distribution."""
    names = make_names(P["series"])
    store = fill(
        ShardedStore(shards=P["shards"], replication=0),
        names, P["samples"] // 2, seed=1,
    )
    horizon = (P["samples"] // 2) * 2.0
    events = heavy_tailed_workload(
        names, 0.0, horizon,
        WorkloadSpec(
            tenants=P["burst_tenants"], queries=P["burst_queries"], seed=7,
        ),
    )
    fe = QueryFrontend(
        store, max_workers=2,
        default_config=TenantConfig(
            rate=200.0, burst=16.0, max_concurrency=2, max_queue=8,
        ),
        global_queue=64,
        admission=admission,
        cache=True,
    )
    try:
        t0 = time.perf_counter()
        pending = [fe.submit(tenant, q) for tenant, q in events]
        outcomes = [p.result(timeout=120.0) for p in pending]
        wall = time.perf_counter() - t0
    finally:
        fe.close()
    completed = [o for o in outcomes if o.ok]
    rejected = [o for o in outcomes if o.rejected]
    lat = np.array([o.latency_s for o in completed])
    assert len(completed) > 0
    return {
        "completed": float(len(completed)),
        "rejected": float(len(rejected)),
        "errors": float(len(outcomes) - len(completed) - len(rejected)),
        "p50_s": float(np.percentile(lat, 50)),
        "p95_s": float(np.percentile(lat, 95)),
        "p99_s": float(np.percentile(lat, 99)),
        "max_s": float(lat.max()),
        "wall_s": wall,
        "completed_qps": len(completed) / wall,
        "cache_hit_ratio": (
            sum(1 for o in completed if o.cache_hit) / len(completed)
        ),
    }


def test_bench_admission_protects_tail_latency():
    with_ac = _burst(admission=True)
    without_ac = _burst(admission=False)
    RESULTS["admission"] = {"with": with_ac, "without": without_ac}
    # Without admission nothing is ever rejected: the burst piles into an
    # unbounded queue and late queries wait behind the whole backlog.
    assert without_ac["rejected"] == 0.0
    assert with_ac["rejected"] > 0.0
    assert with_ac["p99_s"] < without_ac["p99_s"], (
        f"admission control must cut p99: with {with_ac['p99_s'] * 1e3:.1f}ms"
        f" vs without {without_ac['p99_s'] * 1e3:.1f}ms"
    )


# ---------------------------------------------------------------------------
# Bit parity with the direct engine, across shard counts
# ---------------------------------------------------------------------------
def _direct(store, q):
    if q.kind == "names":
        return tuple(store.names())
    if q.kind == "select":
        return tuple(store.select(q.pattern))
    if q.kind == "range":
        return tuple(store.query(q.name, q.since, q.until))
    if q.kind == "resample":
        return tuple(store.resample(
            q.name, q.since, q.until, q.step, agg=q.agg,
        ))
    grid, matrix = store.align(
        list(q.names), q.since, q.until, q.step, agg=q.agg,
    )
    return (grid, matrix, q.names)


def _equal(a, b) -> bool:
    if isinstance(a, np.ndarray) and isinstance(b, np.ndarray):
        return a.shape == b.shape and bool(np.array_equal(
            np.asarray(a, dtype=np.float64).ravel().view(np.uint64),
            np.asarray(b, dtype=np.float64).ravel().view(np.uint64),
        ))
    if isinstance(a, tuple) and isinstance(b, tuple):
        return len(a) == len(b) and all(_equal(x, y) for x, y in zip(a, b))
    return a == b


def test_bench_parity_across_shard_counts():
    names = make_names(P["series"])
    parity = {}
    for shards in (1, 2, 8):
        store = fill(
            ShardedStore(shards=shards, replication=0),
            names, P["samples"] // 4, seed=2,
        )
        horizon = (P["samples"] // 4) * 2.0
        events = heavy_tailed_workload(
            names, 0.0, horizon,
            WorkloadSpec(tenants=4, queries=P["parity_queries"], seed=3,
                         hot_fraction=0.7),
        )
        fe = QueryFrontend(store, max_workers=0)
        checked = hits = 0
        ok = True
        for tenant, q in events:
            if q.kind == "align" and q.pattern is not None:
                continue
            out = fe.serve(tenant, q)
            assert out.ok, out.error
            hits += bool(out.cache_hit)
            ok = ok and _equal(out.payload, _direct(store, q))
            checked += 1
        parity[str(shards)] = {
            "bit_identical": ok,
            "queries_checked": checked,
            "cache_hits": hits,
        }
        assert ok, f"frontend answers diverged from direct engine at {shards} shards"
    RESULTS["parity"] = parity


def test_write_bench_artifact(write_artifact):
    # Runs last (file order): persists every section measured above.
    assert "cache" in RESULTS and "admission" in RESULTS and "parity" in RESULTS
    write_artifact(
        "BENCH_serving.json", json.dumps(RESULTS, indent=2) + "\n"
    )
