"""Supervision overhead and chaos-campaign resilience benchmark.

The PR-5 acceptance criteria: wrapping a control loop in the
:class:`~repro.oda.supervision.Supervisor` must cost <5% on the control
path (the wrapper is a heartbeat store, a breaker branch and a try/except
around the real decide), and a standard chaos campaign must produce finite
MTTD/MTTR for every fault.  Writes ``BENCH_chaos.json`` to
``benchmarks/output/`` so both figures are tracked like the other perf
artifacts.

The decide used for the overhead comparison is deliberately *realistic*
(reads fleet thermals and queue state like the orchestrator does, ~tens of
µs) rather than a no-op: supervision adds a fixed ~µs per call, and the
honest figure is that cost relative to a production-shaped decision, not
relative to ``pass``.

Timing uses the same per-operation round-robin as ``test_bench_obs.py``:
shared runners drift, so raw and supervised decides are timed adjacent in
time and each op's minimum across passes is summed per config.
"""

from __future__ import annotations

import json
import os
import platform
import time
from typing import Callable, Dict, List

import numpy as np

from repro.analytics.prescriptive.control import ControlLoop
from repro.facility.weather import DAY
from repro.oda import (
    ChaosEngine,
    DataCenter,
    MultiPillarOrchestrator,
    standard_campaign,
)
from repro.oda.supervision import SupervisionPolicy, Supervisor
from repro.simulation import Simulator, TraceLog

SCALE = os.environ.get("BENCH_SCALE", "small")

SCALES: Dict[str, Dict] = {
    "small": dict(decide_ops=300, repeats=20, campaign_days=0.5,
                  racks=1, nodes_per_rack=8,
                  fleet_racks=2, fleet_nodes_per_rack=16),
    "medium": dict(decide_ops=600, repeats=25, campaign_days=1.0,
                   racks=2, nodes_per_rack=8,
                   fleet_racks=4, fleet_nodes_per_rack=16),
    "large": dict(decide_ops=1_000, repeats=30, campaign_days=1.0,
                  racks=2, nodes_per_rack=16,
                  fleet_racks=4, fleet_nodes_per_rack=32),
}

P = SCALES[SCALE]

#: Supervision on the control path must stay under 5%.
MAX_SUPERVISION_OVERHEAD = 1.05

RESULTS: Dict[str, Dict] = {
    "scale": SCALE,
    "params": dict(P),
    "ceilings": {"supervised": MAX_SUPERVISION_OVERHEAD},
}

Config = Dict[str, object]


def _interleaved(
    configs: List[Config], n_ops: int, repeats: int
) -> Dict[str, float]:
    """Per-operation round-robin timing; each op's min across passes."""
    best = {c["name"]: [float("inf")] * n_ops for c in configs}
    for _ in range(repeats):
        for i in range(n_ops):
            for c in configs:
                op = c["op"]
                t0 = time.perf_counter()
                op(i)
                elapsed = time.perf_counter() - t0
                if elapsed < best[c["name"]][i]:
                    best[c["name"]][i] = elapsed
    return {name: sum(mins) for name, mins in best.items()}


def _realistic_decide(dc: DataCenter):
    """The actual orchestrator decision logic, in recommend-only mode so
    repeated timed calls read real fleet state without moving the plant."""
    orchestrator = MultiPillarOrchestrator(dc, recommend_only=True)
    return lambda now, _ro: orchestrator._decide_impl(now, True)


def test_bench_supervision_overhead():
    """Raw decide vs the same decide through the supervision wrapper.

    The fleet here is sized like a production deployment (``fleet_*``
    params), not like the fast campaign run: the wrapper's cost is a
    fixed handful of attribute checks per call, so the honest overhead
    figure is that constant relative to a real fleet-sized decision.
    """
    dc = DataCenter(seed=42, racks=P["fleet_racks"],
                    nodes_per_rack=P["fleet_nodes_per_rack"])
    dc.generate_workload(days=0.1, jobs_per_day=60.0)
    dc.run(days=0.1)  # populate fleet state so the decide reads real data

    raw = _realistic_decide(dc)

    sim = Simulator()
    supervised_loop = ControlLoop("bench", _realistic_decide(dc), period=60.0)
    sup = Supervisor(sim, trace=TraceLog(), policy=SupervisionPolicy())
    sup.supervise_loop(supervised_loop)
    wrapped = supervised_loop.decide  # the supervisor's guarded wrapper

    times = _interleaved(
        [
            {"name": "raw", "op": lambda i: raw(float(i), False)},
            {"name": "supervised", "op": lambda i: wrapped(float(i), False)},
        ],
        P["decide_ops"],
        P["repeats"],
    )
    raw_s, supervised_s = times["raw"], times["supervised"]
    RESULTS["supervision_overhead"] = {
        "raw_s": round(raw_s, 6),
        "supervised_s": round(supervised_s, 6),
        "overhead": round(supervised_s / raw_s, 4),
        "decide_ops": P["decide_ops"],
        "per_call_cost_us": round(
            (supervised_s - raw_s) / P["decide_ops"] * 1e6, 3
        ),
    }
    assert supervised_s / raw_s <= MAX_SUPERVISION_OVERHEAD, (
        RESULTS["supervision_overhead"]
    )


def test_bench_campaign_mttr():
    """Standard campaign: every fault detected and recovered, MTTR finite."""
    days = P["campaign_days"]
    dc = DataCenter(
        seed=7, racks=P["racks"], nodes_per_rack=P["nodes_per_rack"],
        shards=2, replication=1, health_period=300.0,
    )
    dc.enable_supervision()
    orchestrator = MultiPillarOrchestrator(dc)
    orchestrator.attach()
    campaign = standard_campaign(seed=7, horizon_s=days * DAY)
    engine = ChaosEngine(dc)
    engine.schedule(campaign)
    dc.generate_workload(days=days, jobs_per_day=40.0)

    t0 = time.perf_counter()
    dc.run(days=days)
    wall_s = time.perf_counter() - t0

    card = engine.scorecard(campaign)
    totals = card["totals"]
    RESULTS["campaign"] = {
        "wall_s": round(wall_s, 3),
        "sim_days": days,
        "faults": totals["faults"],
        "detected": totals["detected"],
        "recovered": totals["recovered"],
        "mean_mttd_s": totals["mean_mttd_s"],
        "mean_mttr_s": totals["mean_mttr_s"],
        "safe_state_entries": totals["safe_state_entries"],
        "breaker_opens": totals["breaker_opens"],
        "breaker_closes": totals["breaker_closes"],
        "per_fault": [
            {
                "pillar": row["pillar"],
                "target": row["target"],
                "mttd_s": row["mttd_s"],
                "mttr_s": row["mttr_s"],
            }
            for row in card["faults"]
        ],
    }
    assert totals["detected"] == totals["faults"]
    assert totals["unrecovered"] == 0
    assert all(np.isfinite(row["mttr_s"]) for row in card["faults"])


def test_write_bench_artifact(write_artifact):
    """Runs last in this module: persist the chaos benchmark artifact."""
    RESULTS["env"] = {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }
    write_artifact("BENCH_chaos.json", json.dumps(RESULTS, indent=2) + "\n")
    missing = {"supervision_overhead", "campaign"} - set(RESULTS)
    assert not missing, f"benchmarks did not run: {missing}"
