"""Sharded-tier benchmark: ingest and federated-query scaling vs shard count.

Measures the distributed storage tier (``repro.telemetry.distributed``)
against the single ``TimeSeriesStore`` on the same workload and writes
``BENCH_sharding.json`` to ``benchmarks/output/``:

* **ingest** — hash-partitioned batch ingest at 1/2/4/8 shards vs the
  single store, plus the per-shard load split (the scaling story in a
  single-process harness: wall-clock stays near parity while the work per
  shard drops ~1/N, which is what a multi-backend deployment parallelizes),
* **federated queries** — resample/align across every series through the
  federation layer vs the single store (shared reduceat kernels, so the
  overhead is routing only), with bit-for-bit equality asserted,
* **failover** — query throughput with replication=1 after every primary
  is killed (reads served entirely by replicas).

The PR-2 single-store trajectory in ``BENCH_telemetry.json`` is produced
by ``test_bench_hotpath.py`` and is untouched by this module.

Like every benchmark module here, this one is meant to run as its own
pytest invocation (CI runs one module per job step): the timing floors —
especially the multi-process fleet benchmark — are calibrated for an
otherwise-idle interpreter, and a whole-directory run on a small box
inherits allocator and scheduler pressure from the 30+ benches before it.
"""

from __future__ import annotations

import json
import os
import platform
import time
from typing import Callable, Dict, List

import numpy as np
import pytest

from repro.telemetry import SampleBatch, ShardedStore, TimeSeriesStore

SCALE = os.environ.get("BENCH_SCALE", "small")

SCALES: Dict[str, Dict] = {
    "small": dict(
        series=256, batches=150, query_series=64, query_samples=40_000,
        buckets=200, max_ingest_overhead=3.0, max_query_overhead=3.0,
        balance_factor=1.8, fleet_batches=40,
    ),
    "medium": dict(
        series=512, batches=400, query_series=128, query_samples=150_000,
        buckets=500, max_ingest_overhead=2.0, max_query_overhead=2.0,
        balance_factor=1.6, fleet_batches=80,
    ),
    "large": dict(
        series=1_000, batches=1_000, query_series=256, query_samples=400_000,
        buckets=1_000, max_ingest_overhead=1.8, max_query_overhead=1.5,
        balance_factor=1.5, fleet_batches=150,
    ),
}

# The fleet benchmark keeps 10k+ simulated nodes at every scale — the node
# count IS the claim (a fleet-wide scrape per tick); only the number of
# scrape ticks shrinks at reduced scale.
FLEET_NODES = 10_240
MIN_PARALLEL_SPEEDUP = 2.0  # floor for 8-shard parallel vs single store

P = SCALES[SCALE]
SHARD_COUNTS = (1, 2, 4, 8)

RESULTS: Dict[str, Dict] = {
    "scale": SCALE,
    "params": {k: v for k, v in P.items() if not k.startswith("max_")},
}


def _best_of(fn: Callable[[], object], repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _make_batches(n_series: int, n_batches: int) -> List[SampleBatch]:
    names = tuple(f"cluster.rack{i % 16}.node{i}.power" for i in range(n_series))
    rng = np.random.default_rng(7)
    return [
        SampleBatch(float(t), names, rng.random(n_series))
        for t in range(n_batches)
    ]


def test_bench_sharded_ingest():
    """Ingest wall-clock and per-shard load split at 1/2/4/8 shards."""
    batches = _make_batches(P["series"], P["batches"])
    total = P["series"] * P["batches"]
    repeats = 1 if SCALE == "large" else 2

    def run_single():
        store = TimeSeriesStore()
        for b in batches:
            store.ingest("c", b)
        store.flush()
        return store

    single_s = _best_of(run_single, repeats=repeats)
    out: Dict[str, Dict] = {
        "single": {
            "seconds": round(single_s, 4),
            "samples_per_sec": round(total / single_s),
        }
    }

    worst_overhead = 0.0
    for shards in SHARD_COUNTS:
        def run_sharded():
            store = ShardedStore(shards=shards)
            for b in batches:
                store.ingest("c", b)
            store.flush()
            return store

        sharded_s = _best_of(run_sharded, repeats=repeats)
        store = run_sharded()
        per_shard = [
            rs.primary.samples_ingested for rs in store.replica_sets
        ]
        overhead = sharded_s / single_s
        worst_overhead = max(worst_overhead, overhead)
        out[f"shards_{shards}"] = {
            "seconds": round(sharded_s, 4),
            "samples_per_sec": round(total / sharded_s),
            "overhead_vs_single": round(overhead, 2),
            "max_shard_samples": max(per_shard),
            "mean_shard_samples": round(total / shards),
        }
        # Hash balance: no shard holds more than balance_factor x its share.
        assert max(per_shard) <= P["balance_factor"] * total / shards, per_shard
        # Work per shard shrinks ~1/N: that is what real deployments
        # parallelize across backend nodes.
        assert sum(per_shard) == total

    RESULTS["ingest"] = {"samples": total, **out}
    # Partitioned ingest must stay within a bounded overhead of the single
    # store even at 8 shards (the split is cached and vectorized).
    assert worst_overhead <= P["max_ingest_overhead"], RESULTS["ingest"]


def test_bench_federated_queries():
    """Federated resample/align vs single store: equality + bounded cost."""
    n_series = P["query_series"]
    per_series = P["query_samples"] // n_series
    names = [f"fed.rack{i % 8}.node{i}.power" for i in range(n_series)]
    times = np.arange(per_series, dtype=np.float64)
    rng = np.random.default_rng(3)
    columns = [rng.random(per_series) for _ in names]

    single = TimeSeriesStore()
    for name, col in zip(names, columns):
        single.append_many(name, times, col)
    step = per_series / P["buckets"]

    single_resample_s = _best_of(
        lambda: [single.resample(n, 0.0, float(per_series), step) for n in names]
    )
    single_align_s = _best_of(
        lambda: single.align(names, 0.0, float(per_series), step)
    )
    out: Dict[str, Dict] = {
        "single": {
            "resample_s": round(single_resample_s, 5),
            "align_s": round(single_align_s, 5),
        }
    }

    worst = 0.0
    for shards in SHARD_COUNTS:
        sharded = ShardedStore(shards=shards)
        for name, col in zip(names, columns):
            sharded.append_many(name, times, col)

        resample_s = _best_of(
            lambda: [
                sharded.resample(n, 0.0, float(per_series), step) for n in names
            ]
        )
        align_s = _best_of(
            lambda: sharded.align(names, 0.0, float(per_series), step)
        )
        # Federated results are bit-for-bit the single-store results.
        _, ref = single.align(names, 0.0, float(per_series), step)
        _, fed = sharded.align(names, 0.0, float(per_series), step)
        np.testing.assert_array_equal(ref, fed)

        overhead = max(
            resample_s / single_resample_s, align_s / single_align_s
        )
        worst = max(worst, overhead)
        out[f"shards_{shards}"] = {
            "resample_s": round(resample_s, 5),
            "align_s": round(align_s, 5),
            "overhead_vs_single": round(overhead, 2),
        }

    RESULTS["federated_query"] = {
        "series": n_series, "samples_per_series": per_series, **out,
    }
    # Federation shares the reduceat kernels; only routing is added, so the
    # cost must stay within a small factor of the single store.
    assert worst <= P["max_query_overhead"], RESULTS["federated_query"]


def test_bench_failover_queries():
    """Replicated reads survive a full primary wipe-out at full speed."""
    n_series = P["query_series"]
    per_series = P["query_samples"] // n_series
    names = [f"ha.node{i}.power" for i in range(n_series)]
    times = np.arange(per_series, dtype=np.float64)
    rng = np.random.default_rng(9)

    sharded = ShardedStore(shards=4, replication=1)
    for name in names:
        sharded.append_many(name, times, rng.random(per_series))

    def query_all():
        for name in names:
            sharded.query(name)

    healthy_s = _best_of(query_all)
    for rs in sharded.replica_sets:
        rs.mark_down(0)  # kill every primary; replicas serve all reads
    failover_s = _best_of(query_all)

    for name in names:  # every query still answers, from replicas
        t, _ = sharded.query(name)
        assert t.size == per_series

    RESULTS["failover"] = {
        "series": n_series,
        "healthy_s": round(healthy_s, 5),
        "all_primaries_down_s": round(failover_s, 5),
        "overhead": round(failover_s / healthy_s, 2),
        "failover_reads": sum(rs.failover_reads for rs in sharded.replica_sets),
    }
    assert RESULTS["failover"]["failover_reads"] > 0


def test_bench_fleet_parallel_ingest():
    """Fleet-scale scrape ingest: parallel shard workers vs single store.

    One batch = one fleet-wide scrape of 10k+ node power sensors.  The
    parallel runtime pushes raw slots into shared-memory rings and the
    workers apply them columnar (one vectorized ``append_many`` per block)
    instead of the single store's per-sample staging loop — that
    architectural change, not core count, is where the throughput comes
    from, so the floor holds even on a single-core runner.
    """
    from repro.telemetry import RuntimeConfig

    n_batches = P["fleet_batches"]
    names = tuple(
        f"fleet.rack{i // 64}.node{i}.power" for i in range(FLEET_NODES)
    )
    rng = np.random.default_rng(17)
    values = [rng.random(FLEET_NODES) for _ in range(n_batches)]
    repeats = 1 if SCALE == "large" else 2
    # The parallel side gets one extra run: the first timed window also
    # absorbs copy-on-write faults in the freshly forked workers, so give
    # best-of a window past that warm-up.
    par_repeats = repeats if SCALE == "large" else repeats + 1
    # Each timed repeat ingests a fresh, strictly-later time range: stores
    # reject (single) or shed (worker) re-ingest of old timestamps, so
    # reusing one range would time the discard path, not ingest.
    runs = [
        [
            SampleBatch(float(rep * n_batches + t), names, values[t])
            for t in range(n_batches)
        ]
        for rep in range(par_repeats)
    ]
    total = FLEET_NODES * n_batches

    def run_single():
        store = TimeSeriesStore()
        for b in runs[0]:
            store.ingest("c", b)
        store.flush()
        return store

    import gc

    gc.collect()
    single_s = _best_of(run_single, repeats=repeats)
    single = run_single()
    out: Dict[str, Dict] = {
        "single": {
            "seconds": round(single_s, 4),
            "samples_per_sec": round(total / single_s),
        }
    }

    speedup_at_8 = 0.0
    for shards in (1, 2, 8):
        gc.collect()
        store = ShardedStore(
            shards=shards, parallel=True,
            parallel_config=RuntimeConfig(ring_capacity=512),
        )
        try:
            best = float("inf")
            for run in runs:
                t0 = time.perf_counter()
                for b in run:
                    store.ingest("c", b)
                store.runtime.drain()
                best = min(best, time.perf_counter() - t0)
            # Parity spot-check: the first run's window must hold exactly
            # the samples the single store holds.
            until = float(n_batches - 1)
            for name in (names[0], names[FLEET_NODES // 2], names[-1]):
                t_ref, v_ref = single.query(name)
                t_par, v_par = store.query(name, 0.0, until)
                np.testing.assert_array_equal(t_ref, t_par)
                np.testing.assert_array_equal(v_ref, v_par)
            rt = store.runtime
            assert rt.dropped_batches == 0, "fleet bench must not shed load"
            for shard in range(shards):
                assert rt.shard_stats(shard)["stager_errors"] == 0
            speedup = single_s / best
            if shards == 8:
                speedup_at_8 = speedup
            out[f"parallel_shards_{shards}"] = {
                "seconds": round(best, 4),
                "samples_per_sec": round(total / best),
                "speedup_vs_single": round(speedup, 2),
                "pushed_slots": rt.pushed_slots,
                "backpressure_waits": rt.backpressure_waits,
            }
        finally:
            store.close()

    RESULTS["fleet_parallel"] = {
        "nodes": FLEET_NODES, "scrapes": n_batches, "samples": total, **out,
    }
    # The scale-out claim: batched columnar apply through the parallel
    # runtime sustains at least 2x the single store's ingest rate.
    assert speedup_at_8 >= MIN_PARALLEL_SPEEDUP, RESULTS["fleet_parallel"]


def test_write_bench_artifact(write_artifact):
    """Runs last in this module: persist the sharding scaling artifact."""
    RESULTS["env"] = {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }
    write_artifact("BENCH_sharding.json", json.dumps(RESULTS, indent=2) + "\n")
    missing = {
        "ingest", "federated_query", "failover", "fleet_parallel",
    } - set(RESULTS)
    assert not missing, f"benchmarks did not run: {missing}"
