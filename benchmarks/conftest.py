"""Shared fixtures for the benchmark/experiment harness.

Each benchmark regenerates one paper artifact (table/figure) or validates
one discussion claim, writes the regenerated artifact to
``benchmarks/output/`` and asserts the *shape* of the result (who wins, by
roughly what factor) rather than absolute numbers — see EXPERIMENTS.md.
"""

from __future__ import annotations

import pathlib

import pytest

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"
REPO_ROOT = pathlib.Path(__file__).parent.parent


@pytest.fixture(scope="session")
def artifact_dir() -> pathlib.Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture(scope="session")
def write_artifact(artifact_dir):
    from repro.ioutil import atomic_write_text

    def _write(name: str, text: str) -> None:
        atomic_write_text(artifact_dir / name, text)
        if name.startswith("BENCH_"):
            # Repo-root copy: CI jobs upload these without digging into
            # benchmarks/output/, and diffs against the committed baseline
            # show up in review.
            atomic_write_text(REPO_ROOT / name, text)

    return _write


@pytest.fixture(scope="session")
def reference_dc():
    """One shared 1-day reference simulation used by several benches."""
    from repro.oda import DataCenter

    dc = DataCenter(seed=101, racks=2, nodes_per_rack=8, enable_faults=True,
                    noisy_node_fraction=0.125)
    dc.generate_workload(days=2.0, jobs_per_day=24)
    dc.run(days=2.0)
    return dc
