"""Experiment A2 — every cell of the 4x4 grid is runnable.

One representative analytics task per grid cell, all executed against the
same 2-day reference simulation.  This is the platform-level counterpart
of Table I: not just a taxonomy entry per cell, but a working computation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analytics.descriptive import (
    RooflineModel,
    entropy_series,
    pue,
    scheduling_report,
)
from repro.analytics.diagnostic import (
    ApplicationFingerprinter,
    OsNoiseDetector,
    PeerDeviationDetector,
    SubspaceDetector,
)
from repro.analytics.predictive import (
    ARForecaster,
    FailurePredictor,
    JobDurationPredictor,
    KpiForecaster,
)
from repro.analytics.prescriptive import (
    CodeAdvisor,
    HillClimbTuner,
    ModeSwitcher,
    PowerAwarePolicy,
    ReactiveEnergyGovernor,
    TuningSpace,
)
from repro.apps import default_catalog, profile_regions
from repro.software import JobState, SchedulingContext
from repro.software.jobs import Job


# ----------------------------------------------------------------------
# Descriptive row
# ----------------------------------------------------------------------
def test_cell_descriptive_infrastructure(benchmark, reference_dc):
    """PUE calculation [4]."""
    value = benchmark(pue, reference_dc.store, 0.0, reference_dc.sim.now)
    assert 1.0 < value < 2.0


def test_cell_descriptive_hardware(benchmark, reference_dc):
    """System Information Entropy over node power [14]."""
    grid, series = benchmark(
        entropy_series, reference_dc.store, "cluster.*.*.power",
        0.0, reference_dc.sim.now, 1800.0,
    )
    assert series.size > 0 and np.isfinite(series).all()


def test_cell_descriptive_software(benchmark, reference_dc):
    """Slowdown calculation [60]."""
    finished = [j for j in reference_dc.scheduler.accounting if j.terminal]
    report = benchmark(scheduling_report, finished)
    assert report.mean_slowdown >= 1.0


def test_cell_descriptive_applications(benchmark):
    """Roofline job performance model [63]."""
    regions = profile_regions(default_catalog().get("climate_model"))
    points = benchmark(RooflineModel().analyze, regions)
    assert any(p.memory_bound for p in points)


# ----------------------------------------------------------------------
# Diagnostic row
# ----------------------------------------------------------------------
def test_cell_diagnostic_infrastructure(benchmark, reference_dc):
    """Infrastructure anomaly detection [54] (peer deviation over plant)."""
    dc = reference_dc
    metrics = [f"facility.loop0.{c}.power" for c in ("chiller", "tower", "drycooler", "pump")]
    _, matrix = dc.store.align(metrics, 0.0, dc.sim.now, 600.0)
    finite = np.isfinite(matrix).all(axis=1)
    detector = PeerDeviationDetector(threshold=3.0)
    detections = benchmark(detector.detect, matrix[finite].T, metrics)
    assert isinstance(detections, list)  # no injected faults -> likely empty


def test_cell_diagnostic_hardware(benchmark, reference_dc):
    """Node-level anomaly detection [17][26] (residual subspace)."""
    dc = reference_dc
    node = dc.system.nodes[0].name
    metrics = [dc.system.node_metric(node, c) for c in ("power", "temp", "cpu_util", "ipc")]
    _, matrix = dc.store.align(metrics, 0.0, dc.sim.now, 300.0)
    finite = matrix[np.isfinite(matrix).all(axis=1)]
    half = finite.shape[0] // 2
    detector = SubspaceDetector(n_components=2, quantile=0.995)
    detector.fit(finite[:half])
    mask = benchmark(detector.detect, finite[half:])
    assert mask.mean() < 0.2  # a healthy node mostly looks healthy


def test_cell_diagnostic_software(benchmark, reference_dc):
    """OS-noise source identification [57]."""
    dc = reference_dc
    paths = {
        n.name: dc.system.node_metric(n.name, "ctx_switches") for n in dc.system.nodes
    }
    detector = OsNoiseDetector(dc.store)
    noisy = benchmark(detector.noisy_nodes, paths, 0.0, dc.sim.now)
    truth = dc.noise.ground_truth()
    expected = {name for name, is_noisy in truth.items() if is_noisy}
    assert set(noisy) == expected


def test_cell_diagnostic_applications(benchmark, reference_dc):
    """Application fingerprinting [33][36] on synthetic per-class features."""
    rng = np.random.default_rng(0)
    profiles = list(default_catalog())
    X, labels = [], []
    for i, profile in enumerate(profiles):
        mean = profile.mean_load()
        base = np.array([
            mean.cpu_util, mean.mem_bw_util, mean.io_bw_bytes / 1e9,
            mean.net_bw_bytes / 1e9, mean.compute_fraction, mean.flops_per_second,
        ])
        for _ in range(20):
            X.append(base * rng.lognormal(0, 0.05, base.size))
            labels.append(profile.name)
    X = np.vstack(X)
    fingerprinter = ApplicationFingerprinter(n_trees=15, seed=0)

    def fit_predict():
        fingerprinter.fit(X, labels)
        return fingerprinter.predict(X)

    predictions = benchmark.pedantic(fit_predict, rounds=1, iterations=1)
    assert np.mean([p == t for p, t in zip(predictions, labels)]) > 0.9


# ----------------------------------------------------------------------
# Predictive row
# ----------------------------------------------------------------------
def test_cell_predictive_infrastructure(benchmark, reference_dc):
    """Data-center KPI forecasting [45]."""
    dc = reference_dc
    model = KpiForecaster(lags=12, horizon=3, step=600.0)
    model.fit(dc.store, "facility.power.site_power", 0.0, dc.sim.now)
    _, recent = dc.store.query("facility.power.site_power", dc.sim.now - 4 * 3600, dc.sim.now)
    prediction = benchmark(model.predict_from, recent, dc.sim.now)
    assert np.isfinite(prediction) and prediction > 0


def test_cell_predictive_hardware(benchmark, reference_dc):
    """Component failure prediction [48]."""
    dc = reference_dc
    paths = {n.name: dc.system.node_metric(n.name, "ecc_errors") for n in dc.system.nodes}
    predictor = FailurePredictor(dc.store)
    warnings = benchmark(predictor.warn, paths, dc.sim.now)
    assert isinstance(warnings, list)


def test_cell_predictive_software(benchmark, reference_dc):
    """Workload prediction [23] (AR forecast of utilization)."""
    dc = reference_dc
    _, util = dc.store.resample("scheduler.utilization", 0.0, dc.sim.now, 600.0)
    util = util[np.isfinite(util)]
    model = ARForecaster(lags=12)
    model.fit(util)
    forecast = benchmark(model.forecast, 12)
    assert np.isfinite(forecast).all()


def test_cell_predictive_applications(benchmark, reference_dc):
    """Job duration prediction [30][34][35]."""
    dc = reference_dc
    completed = [j for j in dc.scheduler.accounting if j.state is JobState.COMPLETED]
    assert len(completed) >= 8, "reference run must complete enough jobs"
    predictor = JobDurationPredictor().fit(completed[: len(completed) // 2])
    metrics = benchmark(predictor.evaluate, completed[len(completed) // 2 :])
    assert metrics["mape"] < 2.0  # far better than walltime (~2.5x over)


# ----------------------------------------------------------------------
# Prescriptive row
# ----------------------------------------------------------------------
def test_cell_prescriptive_infrastructure(benchmark, reference_dc):
    """Cooling technology switching [12]."""
    dc = reference_dc
    switcher = ModeSwitcher(dc.facility, dc.facility.plant.loops[0])
    actions = benchmark(switcher._decide, dc.sim.now, False)
    assert isinstance(actions, list)


def test_cell_prescriptive_hardware(benchmark, reference_dc):
    """CPU frequency tuning [11][24][40]."""
    dc = reference_dc
    governor = ReactiveEnergyGovernor()

    def govern():
        return [
            governor.decide(node, node.counters(), dc.sim.now)
            for node in dc.system.nodes
        ]

    decisions = benchmark(govern)
    assert all(d is None or d in dc.system.nodes[0].cpu.freq_levels_ghz for d in decisions)


def test_cell_prescriptive_software(benchmark, reference_dc):
    """Power-aware scheduling [21]-[23]."""
    dc = reference_dc
    ctx = SchedulingContext(
        now=dc.sim.now,
        system=dc.system,
        free_nodes=dc.scheduler.free_node_names(),
        pending=dc.scheduler.queue.snapshot(),
        running=list(dc.scheduler.running),
    )
    policy = PowerAwarePolicy(power_cap_w=dc.peak_it_w * 0.8)
    allocations = benchmark(policy.select, ctx)
    assert isinstance(allocations, list)


def test_cell_prescriptive_applications(benchmark):
    """Application auto-tuning [28][29] + code recommendations [44]."""
    space = TuningSpace({"freq": (1.2, 1.6, 2.0, 2.4), "tile": (16, 32, 64)})
    tuner = HillClimbTuner(space, budget=20, seed=1)
    result = benchmark.pedantic(
        tuner.tune, args=(lambda c: (c["freq"] - 2.0) ** 2 + (c["tile"] - 32) ** 2 / 1e3,),
        rounds=1, iterations=1,
    )
    assert result.best_score < 0.5
    advice = CodeAdvisor().advise(profile_regions(default_catalog().get("graph_analytics")))
    assert advice
