"""Hot-path benchmark harness: ingest, resample/align kernels, bus routing.

Times the vectorized telemetry hot path against the pre-PR scalar reference
implementations (kept inline here as the "before" baselines: per-sample
ingest with a full-store retention sweep per new timestamp, per-bucket
Python-loop resampling, linear fnmatch bus routing) and writes
``BENCH_telemetry.json`` to ``benchmarks/output/`` so future PRs have a
performance trajectory to compare against.

Scale is selected with the ``BENCH_SCALE`` env var:

* ``small``  — CI smoke (~seconds), correctness + sanity speedup asserts,
* ``medium`` — local iteration,
* ``large``  — acceptance numbers: >=5x batch ingest at 1M+ samples across
  1k series with retention enabled, >=3x resample/align.
"""

from __future__ import annotations

import fnmatch
import json
import os
import platform
import time
from typing import Callable, Dict, List

import numpy as np
import pytest

from repro.telemetry import MessageBus, SampleBatch, SeriesBuffer, TimeSeriesStore

SCALE = os.environ.get("BENCH_SCALE", "small")

SCALES: Dict[str, Dict] = {
    "small": dict(
        series=200, batches=200, retention_batches=50,
        resample_samples=100_000, resample_buckets=500,
        align_series=8, align_samples=50_000,
        bus_subs=24, bus_publishes=3_000,
        rollup_days=30, rollup_period_s=2.0,
        min_ingest_speedup=1.2, min_resample_speedup=1.2,
        min_align_speedup=1.2, min_bus_speedup=1.2,
        min_rollup_speedup=5.0, min_archive_ratio=4.0,
    ),
    "medium": dict(
        series=500, batches=600, retention_batches=150,
        resample_samples=400_000, resample_buckets=1_000,
        align_series=12, align_samples=200_000,
        bus_subs=40, bus_publishes=10_000,
        rollup_days=60, rollup_period_s=1.0,
        min_ingest_speedup=3.0, min_resample_speedup=2.0,
        min_align_speedup=2.0, min_bus_speedup=1.5,
        min_rollup_speedup=5.0, min_archive_ratio=4.0,
    ),
    "large": dict(
        series=1_000, batches=1_000, retention_batches=250,
        resample_samples=1_000_000, resample_buckets=1_000,
        align_series=16, align_samples=400_000,
        bus_subs=50, bus_publishes=20_000,
        rollup_days=120, rollup_period_s=1.0,
        min_ingest_speedup=5.0, min_resample_speedup=3.0,
        min_align_speedup=3.0, min_bus_speedup=2.0,
        min_rollup_speedup=5.0, min_archive_ratio=4.0,
    ),
}

P = SCALES[SCALE]

#: Aggregated across the tests in this module; written out at the end.
RESULTS: Dict[str, Dict] = {
    "scale": SCALE,
    "params": {k: v for k, v in P.items() if not k.startswith("min_")},
}


def _best_of(fn: Callable[[], object], repeats: int = 3) -> float:
    """Best wall-clock of ``repeats`` runs (amortizes scheduler noise)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


# ---------------------------------------------------------------------------
# "Before" baselines: the pre-PR scalar implementations, verbatim.
# ---------------------------------------------------------------------------
class _LegacyStore:
    """Pre-PR ingest path: per-sample append + full-store retention sweep
    on every new timestamp."""

    def __init__(self, retention=None):
        self._series: Dict[str, SeriesBuffer] = {}
        self.retention = retention
        self.samples_ingested = 0
        self._latest_time = float("-inf")

    def ingest(self, topic: str, batch: SampleBatch) -> None:
        for name, value in batch:
            self.append(name, batch.time, value)

    def append(self, name: str, time_: float, value: float) -> None:
        series = self._series.get(name)
        if series is None:
            series = self._series[name] = SeriesBuffer(name)
        series.append(time_, value)
        self.samples_ingested += 1
        if time_ > self._latest_time:
            self._latest_time = time_
            if self.retention is not None:
                cutoff = self._latest_time - float(self.retention)
                for s in self._series.values():
                    s.trim_before(cutoff)


class _LegacySub:
    __slots__ = ("pattern", "callback", "active", "delivered")

    def __init__(self, pattern, callback):
        self.pattern = pattern
        self.callback = callback
        self.active = True
        self.delivered = 0


class _LegacyBus:
    """Pre-PR routing: linear scan with an fnmatch call per subscription
    per publish."""

    def __init__(self):
        self._subscriptions: List[_LegacySub] = []
        self.published = 0
        self.delivered = 0

    def subscribe(self, pattern, callback):
        sub = _LegacySub(pattern, callback)
        self._subscriptions.append(sub)
        return sub

    def publish(self, topic: str, batch: SampleBatch) -> int:
        self.published += 1
        count = 0
        for sub in self._subscriptions:
            if not sub.active:
                continue
            if sub.pattern != "#" and not fnmatch.fnmatchcase(topic, sub.pattern):
                continue
            sub.callback(topic, batch)
            sub.delivered += 1
            count += 1
        self.delivered += count
        return count


# ---------------------------------------------------------------------------
# Benchmarks
# ---------------------------------------------------------------------------
def _make_batches(n_series: int, n_batches: int) -> List[SampleBatch]:
    names = tuple(f"cluster.n{i}.power" for i in range(n_series))
    rng = np.random.default_rng(42)
    return [
        SampleBatch(float(t), names, rng.random(n_series))
        for t in range(n_batches)
    ]


def test_bench_batch_ingest():
    """Batch ingest with retention: staged/vectorized vs per-sample legacy."""
    batches = _make_batches(P["series"], P["batches"])
    retention = float(P["retention_batches"])  # batches are 1 s apart
    total = P["series"] * P["batches"]

    def run_legacy():
        store = _LegacyStore(retention=retention)
        for b in batches:
            store.ingest("cluster", b)
        return store

    def run_batched():
        store = TimeSeriesStore(retention=retention)
        for b in batches:
            store.ingest("cluster", b)
        store.flush()
        return store

    legacy_s = _best_of(run_legacy, repeats=1 if SCALE == "large" else 2)
    batched_s = _best_of(run_batched, repeats=1 if SCALE == "large" else 2)

    # Equivalence: both paths must hold identical post-retention data.
    legacy = run_legacy()
    batched = run_batched()
    for i in (0, P["series"] // 2, P["series"] - 1):
        name = f"cluster.n{i}.power"
        times, values = batched.query(name)
        ref = legacy._series[name]
        np.testing.assert_array_equal(times, ref.times)
        np.testing.assert_array_equal(values, ref.values)

    speedup = legacy_s / batched_s
    RESULTS["ingest"] = {
        "samples": total,
        "series": P["series"],
        "retention_s": retention,
        "legacy_s": round(legacy_s, 4),
        "batched_s": round(batched_s, 4),
        "legacy_samples_per_sec": round(total / legacy_s),
        "batched_samples_per_sec": round(total / batched_s),
        "speedup": round(speedup, 2),
    }
    assert speedup >= P["min_ingest_speedup"], RESULTS["ingest"]


def test_bench_resample_kernels():
    """Vectorized reduceat kernels vs the scalar per-bucket loop."""
    n = P["resample_samples"]
    store = TimeSeriesStore()
    store.append_many("m", np.arange(n, dtype=np.float64),
                      np.random.default_rng(0).random(n))
    step = n / P["resample_buckets"]
    out: Dict[str, Dict] = {}
    for agg in ("mean", "max", "sum"):
        scalar_s = _best_of(
            lambda: store.resample("m", 0.0, float(n), step, agg=agg,
                                   engine="scalar"))
        vector_s = _best_of(
            lambda: store.resample("m", 0.0, float(n), step, agg=agg))
        out[agg] = {
            "scalar_s": round(scalar_s, 5),
            "vectorized_s": round(vector_s, 5),
            "speedup": round(scalar_s / vector_s, 2),
        }
    RESULTS["resample"] = {"samples": n, "buckets": P["resample_buckets"], **out}
    worst = min(v["speedup"] for v in out.values())
    assert worst >= P["min_resample_speedup"], RESULTS["resample"]


def test_bench_align():
    """Multi-series alignment: shared edge grid + kernels vs scalar loop."""
    n_series = P["align_series"]
    per_series = P["align_samples"] // n_series
    names = [f"s{i}" for i in range(n_series)]
    store = TimeSeriesStore()
    rng = np.random.default_rng(1)
    for name in names:
        store.append_many(name, np.arange(per_series, dtype=np.float64),
                          rng.random(per_series))
    step = per_series / 500.0

    scalar_s = _best_of(
        lambda: store.align(names, 0.0, float(per_series), step,
                            engine="scalar"))
    vector_s = _best_of(
        lambda: store.align(names, 0.0, float(per_series), step))

    speedup = scalar_s / vector_s
    RESULTS["align"] = {
        "series": n_series,
        "samples_per_series": per_series,
        "scalar_s": round(scalar_s, 5),
        "vectorized_s": round(vector_s, 5),
        "speedup": round(speedup, 2),
    }
    assert speedup >= P["min_align_speedup"], RESULTS["align"]


def test_bench_bus_routing():
    """Indexed topic routing vs the linear fnmatch scan."""
    racks = 8
    topics = [f"cluster.rack{r}.node{i}" for r in range(racks) for i in range(4)]
    batch = SampleBatch.from_mapping(0.0, {"m": 1.0})

    def build(bus):
        for i in range(P["bus_subs"] - 2):
            bus.subscribe(f"cluster.rack{i % racks}.*", lambda t, b: None)
        bus.subscribe("#", lambda t, b: None)
        bus.subscribe("telemetry.*", lambda t, b: None)
        return bus

    def run(bus):
        n = P["bus_publishes"]
        for i in range(n):
            bus.publish(topics[i % len(topics)], batch)
        return bus

    legacy = build(_LegacyBus())
    indexed = build(MessageBus())
    legacy_s = _best_of(lambda: run(legacy))
    indexed_s = _best_of(lambda: run(indexed))

    # Same routing decisions: deliveries per publish must match.
    assert legacy.delivered / legacy.published == pytest.approx(
        indexed.delivered / indexed.published)

    speedup = legacy_s / indexed_s
    RESULTS["bus"] = {
        "subscriptions": P["bus_subs"],
        "publishes": P["bus_publishes"],
        "legacy_s": round(legacy_s, 4),
        "indexed_s": round(indexed_s, 4),
        "legacy_publishes_per_sec": round(P["bus_publishes"] / legacy_s),
        "indexed_publishes_per_sec": round(P["bus_publishes"] / indexed_s),
        "speedup": round(speedup, 2),
    }
    assert speedup >= P["min_bus_speedup"], RESULTS["bus"]


def _telemetry_series(days: float, period: float, seed: int = 7):
    """Year-scale-ish telemetry: regular cadence, quarter-rounded values
    (what a real power/temperature sensor emits)."""
    times = np.arange(0.0, days * 86400.0, period)
    rng = np.random.default_rng(seed)
    values = np.round(rng.normal(220.0, 8.0, times.size) * 4) / 4
    return times, values


def test_bench_rollup_tier_serving():
    """1h-bucket query over a month-plus of samples: materialized rollup
    tiers vs reducing the raw array on every query."""
    days = float(P["rollup_days"])
    times, values = _telemetry_series(days, P["rollup_period_s"])
    tiered = TimeSeriesStore(rollups=True)
    tiered.append_many("rack.power", times, values)
    raw = TimeSeriesStore()
    raw.append_many("rack.power", times, values)
    until = days * 86400.0

    def run_tiered():
        return tiered.resample("rack.power", 0.0, until, 3600.0, agg="mean")

    def run_raw():
        return raw.resample("rack.power", 0.0, until, 3600.0, agg="mean")

    # Tier-served answers must be bit-identical to the raw reduction.
    g1, r1 = run_tiered()
    g2, r2 = run_raw()
    np.testing.assert_array_equal(r1.view(np.uint64), r2.view(np.uint64))

    tiered_s = _best_of(run_tiered, repeats=5)
    raw_s = _best_of(run_raw, repeats=5)
    snap = tiered.metrics.snapshot()
    speedup = raw_s / tiered_s
    RESULTS["rollup"] = {
        "days": days,
        "samples": int(times.size),
        "query_step_s": 3600.0,
        "buckets": int(r1.size),
        "raw_s": round(raw_s, 5),
        "tiered_s": round(tiered_s, 5),
        "speedup": round(speedup, 2),
        "tier_hits": snap.get("telemetry.rollup.tier_hits", 0.0),
        "buckets_finalized": snap.get(
            "telemetry.rollup.buckets_finalized", 0.0),
    }
    assert snap.get("telemetry.rollup.tier_hits", 0.0) > 0, RESULTS["rollup"]
    assert speedup >= P["min_rollup_speedup"], RESULTS["rollup"]


def test_bench_archive_cold_tier():
    """Cold-tier columnar compression ratio + decode (scan) throughput."""
    days = float(P["rollup_days"])
    times, values = _telemetry_series(days, P["rollup_period_s"], seed=9)
    store = TimeSeriesStore(archive=True, retention=3600.0)
    store.append_many("rack.power", times, values)

    archive = store.archive
    assert archive.chunk_count() > 0
    ratio = archive.compression_ratio

    def run_scan():
        return archive.scan("rack.power", float("-inf"), float("inf"))

    scan_t, scan_v = run_scan()
    scan_s = _best_of(run_scan, repeats=5)

    # Demotion conserves samples: cold + hot covers everything ingested.
    hot_t, _ = store.query("rack.power")
    assert scan_t.size + np.sum(hot_t > scan_t[-1]) == times.size

    RESULTS["archive"] = {
        "days": days,
        "samples": int(times.size),
        "cold_samples": int(scan_t.size),
        "chunks": archive.chunk_count(),
        "raw_bytes": archive.raw_bytes,
        "encoded_bytes": archive.encoded_bytes,
        "compression_ratio": round(ratio, 2),
        "scan_s": round(scan_s, 5),
        "scan_samples_per_sec": round(scan_t.size / scan_s),
    }
    assert ratio >= P["min_archive_ratio"], RESULTS["archive"]


def test_write_bench_artifact(write_artifact):
    """Runs last in this module: persist the perf trajectory artifact."""
    RESULTS["env"] = {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }
    write_artifact("BENCH_telemetry.json", json.dumps(RESULTS, indent=2) + "\n")
    missing = ({"ingest", "resample", "align", "bus", "rollup", "archive"}
               - set(RESULTS))
    assert not missing, f"benchmarks did not run: {missing}"
