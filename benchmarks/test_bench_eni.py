"""Experiment D5 — the Bortot et al. (ENI) case (Section V-A, [39]).

A lightly-loaded site with noisy plant instrumentation suffers a pump
degradation.  Two diagnostic regimes:

* **without stress tests** — the fault signature at idle load is below the
  sensor noise floor;
* **with periodic stress tests** — the plant is briefly driven to design
  load, where the cube-law pump signature towers over the noise.

Expected shape: the stress-test regime detects the fault within the fault
window with no false alarms before onset; the no-stress regime either
misses it or false-alarms (its signal-to-noise is < 1).  The prescriptive
half then learns the cooling model and picks a cheaper feasible setpoint.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.analytics.predictive import CoolingPerformanceModel
from repro.analytics.prescriptive import SetpointOptimizer
from repro.facility import CoolingMode, FaultKind
from repro.oda import DataCenter

DAY = 86_400.0
DAYS = 2.5
NOISE_FLOOR_W = 10.0
ONSET_H = 30.0
DURATION_H = 18.0

#: Setpoint excitation schedule: system identification needs the knob to
#: move, otherwise the learned model cannot attribute power to it.
SETPOINT_CYCLE_C = (16.0, 22.0, 28.0, 19.0)


def simulate(stress_tests: bool, seed: int = 23):
    dc = DataCenter(
        seed=seed, racks=2, nodes_per_rack=8, start_time=160 * DAY,
        sensor_noise_floor_w=NOISE_FLOOR_W,
    )
    loop = dc.facility.plant.loops[0]
    loop.set_mode(CoolingMode.CHILLER)
    dc.generate_workload(days=DAYS, jobs_per_day=4)  # lightly loaded
    t0 = dc.sim.now
    for i, hour in enumerate(range(0, int(DAYS * 24), 5)):
        setpoint = SETPOINT_CYCLE_C[i % len(SETPOINT_CYCLE_C)]
        dc.sim.schedule_at(
            t0 + hour * 3600 + 1.0,
            lambda sim, sp=setpoint: loop.set_setpoint(sp),
        )
    onset = t0 + ONSET_H * 3600
    dc.facility.fault_injector.inject(
        loop.pump, FaultKind.DEGRADATION,
        start=onset, duration=DURATION_H * 3600, severity=0.5,
    )
    if stress_tests:
        for hour in range(6, int(DAYS * 24), 12):
            dc.sim.schedule_at(
                t0 + hour * 3600,
                lambda sim: dc.facility.stress_test(sim, duration=900.0),
            )
    dc.run(days=DAYS)
    return dc, t0, onset


def window_median_alarm(
    windows: List[Tuple[float, np.ndarray]], ratio: float = 1.5
) -> Optional[float]:
    """First window whose median exceeds ``ratio`` x the running median of
    all previous windows; returns its time or None."""
    history: List[float] = []
    for time, values in windows:
        median = float(np.median(values))
        if history and median > ratio * float(np.median(history)):
            return time
        history.append(median)
    return None


def detect(dc, t0: float, stress_tests: bool) -> Optional[float]:
    metric = "facility.loop0.pump.power"
    if stress_tests:
        starts = [r.time for r in dc.trace.select(kind="stress_test_start")]
        windows = []
        for start in starts:
            _, values = dc.store.query(metric, start, start + 900.0)
            if values.size:
                windows.append((start, values))
    else:
        # Best effort without stress tests: 6-hourly medians of the raw
        # (noisy, load-confounded) series.
        windows = []
        t = t0
        while t < dc.sim.now:
            _, values = dc.store.query(metric, t, t + 6 * 3600.0)
            if values.size:
                windows.append((t + 6 * 3600.0, values))
            t += 6 * 3600.0
    return window_median_alarm(windows)


SEEDS = (23, 24, 25, 26, 27)


def run_one(stress: bool, seed: int):
    dc, t0, onset = simulate(stress, seed=seed)
    alarm = detect(dc, t0, stress)
    fault_end = onset + DURATION_H * 3600
    return {
        "alarm_h": (alarm - t0) / 3600.0 if alarm else None,
        "true_detection": alarm is not None and onset <= alarm <= fault_end,
        "false_alarm": alarm is not None and alarm < onset,
    }


def run_experiment():
    """Detection reliability over several seeds (sensor noise is random)."""
    results = {"stress": [], "no_stress": []}
    for seed in SEEDS:
        results["no_stress"].append(run_one(False, seed))
        results["stress"].append(run_one(True, seed))
    return results


def _reliability(runs) -> float:
    good = sum(1 for r in runs if r["true_detection"] and not r["false_alarm"])
    return good / len(runs)


def test_bench_eni_detection(benchmark, write_artifact):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    lines = ["Experiment D5 — ENI-style infrastructure ODA [39]",
             f"(fault onset at {ONSET_H:.0f} h; {len(SEEDS)} noise seeds)"]
    for name, runs in results.items():
        lines.append(f"{name}: reliability {_reliability(runs):.2f}")
        for seed, r in zip(SEEDS, runs):
            lines.append(
                f"  seed {seed}: alarm {r['alarm_h']}, true {r['true_detection']}, "
                f"false {r['false_alarm']}"
            )
    write_artifact("d5_eni.txt", "\n".join(lines))

    # The published rationale: periodic stress tests make detection
    # reliable under realistic sensor noise; without them the sub-noise
    # idle signature makes the detector a coin flip or worse.
    assert _reliability(results["stress"]) == 1.0
    assert _reliability(results["no_stress"]) <= 0.6


def test_bench_eni_setpoint_optimization(benchmark, write_artifact):
    dc, t0, _ = simulate(stress_tests=True)
    loop = dc.facility.plant.loops[0]

    def optimize():
        model = CoolingPerformanceModel().fit_from_store(dc.store, t0, dc.sim.now)
        optimizer = SetpointOptimizer(dc.facility, loop, model, max_inlet_c=30.0)
        return model, optimizer.best_setpoint()

    model, best = benchmark.pedantic(optimize, rounds=1, iterations=1)
    weather = dc.facility.current_weather
    sweep_points = np.array([14.0, 20.0, 26.0])
    sweep = model.setpoint_sensitivity(
        max(loop.heat_load_w, 1e3), weather.drybulb_c, weather.wetbulb_c, sweep_points
    )
    write_artifact(
        "d5_eni_setpoint.txt",
        f"best setpoint: {best:.1f} C\n"
        + "\n".join(f"setpoint {s:.0f} C -> {p/1e3:.3f} kW" for s, p in zip(sweep_points, sweep)),
    )
    assert 10.0 <= best <= 40.0
    # Chiller physics: the learned model must prefer warmer water.
    assert sweep[-1] < sweep[0]
