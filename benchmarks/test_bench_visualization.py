"""Experiment D4 — visualization-oriented ODA dominates control (Section II).

"A survey on HPC ODA [13] revealed that most HPC centers use ODA in
visualization-oriented scenarios, with control use cases being often out
of reach due to their complexity."

Validated over the encoded corpus: visualization/reporting-oriented use
cases outnumber control-oriented ones, and control coincides with the
prescriptive row (the hardest stage of the staged model).
"""

from __future__ import annotations

from repro.core import AnalyticsType, analyze_survey, survey_grid


def test_bench_visualization_dominates(benchmark, write_artifact):
    stats = benchmark(lambda: analyze_survey(survey_grid()))
    write_artifact(
        "d4_visualization.txt",
        "Experiment D4 — visualization vs control orientation\n"
        + "\n".join(f"{k}: {v}" for k, v in stats.rows()),
    )
    assert stats.visualization_dominates
    # Control is concentrated in (and equals) the prescriptive row: every
    # non-prescriptive entry of the corpus reports to humans.
    grid = survey_grid()
    assert stats.control_oriented == len(grid.by_type(AnalyticsType.PRESCRIPTIVE))
    # Quantitative shape: roughly 3:1 in favour of visualization/reporting.
    assert stats.visualization_oriented >= 2.5 * stats.control_oriented
