"""Experiment A2 — telemetry pipeline degradation under injected faults.

Validates the deployment claim behind the fault-tolerance layer: with a
raising subscriber and a 10%-dropout + stuck-at sensor injected, a full
:class:`TelemetrySystem` simulation completes with bounded data loss, the
dead-letter queue and error counters are populated, health metrics are
queryable from the store, and a stale-metric alert fires for a dead sensor.
"""

from __future__ import annotations

import numpy as np

from repro.simulation import Simulator
from repro.telemetry import (
    FaultySource,
    Sampler,
    SensorFaultKind,
    StaleDataRule,
    TelemetrySystem,
)

PERIOD = 30.0
DURATION = 4 * 3600.0
DROPOUT = 0.10


def build_and_run(seed: int = 42):
    sim = Simulator()
    telemetry = TelemetrySystem(health_period=60.0)
    agent = telemetry.new_agent("site", period=PERIOD)

    faulty = FaultySource(
        lambda now: {"rack0.power": 12_000.0 + 500.0 * np.sin(now / 600.0)},
        np.random.default_rng(seed),
        dropout_prob=DROPOUT,
    )
    faulty.inject(SensorFaultKind.STUCK, start=1800.0, duration=900.0)
    agent.add_sampler(Sampler("rack0", faulty))
    dead = agent.add_sampler(
        Sampler("rack1", lambda now: {"rack1.power": 11_500.0})
    )

    def broken_sink(topic, batch):
        raise RuntimeError("sink down")

    bad_sub = telemetry.bus.subscribe("rack*", broken_sink)
    telemetry.alerts.add_stale_rule(
        StaleDataRule("no-data", "rack*.power", max_age=5 * PERIOD)
    )
    telemetry.start_all(sim)

    sim.run_until(DURATION / 2)
    dead.source = lambda now: (_ for _ in ()).throw(RuntimeError("sensor died"))
    sim.run_until(DURATION)
    return sim, telemetry, agent, faulty, bad_sub


def test_bench_pipeline_survives_injected_faults(write_artifact):
    sim, telemetry, agent, faulty, bad_sub = build_and_run()

    # The run completed — now the degradation must be graceful and visible.
    assert faulty.counts[SensorFaultKind.DROPOUT] > 0
    assert faulty.counts[SensorFaultKind.STUCK] > 0
    assert agent.scrape_errors > 0
    assert telemetry.bus.dead_letter_count > 0
    assert bad_sub.quarantined

    # Bounded data loss: the healthy fraction of scrapes landed in the store.
    expected_scrapes = DURATION / PERIOD + 1
    times, _ = telemetry.store.query("rack0.power")
    loss = 1.0 - times.size / expected_scrapes
    assert loss < 3 * DROPOUT  # dropout + backoff skips, not a collapse

    # Health metrics for the bus and the agent are queryable from the store.
    for name in (
        "telemetry.bus.delivered",
        "telemetry.bus.delivery_errors",
        "telemetry.bus.dead_letters",
        "telemetry.agent.site.scrapes",
        "telemetry.agent.site.scrape_errors",
        "telemetry.store.samples",
    ):
        t, v = telemetry.store.query(name)
        assert t.size > 0, name
    _, delivery_errors = telemetry.store.query("telemetry.bus.delivery_errors")
    assert delivery_errors[-1] > 0

    # The dead sensor raised a stale-data alert (and only rack1 is stale).
    stale = [a for a in telemetry.alerts.active_alerts()
             if isinstance(a.rule, StaleDataRule)]
    assert [a.metric for a in stale] == ["rack1.power"]
    assert stale[0].raised_at > DURATION / 2

    write_artifact(
        "resilience.txt",
        "telemetry pipeline degradation under injected faults\n"
        f"  duration: {DURATION:.0f}s, scrape period {PERIOD:.0f}s, "
        f"dropout prob {DROPOUT:.0%}\n"
        f"  sensor faults injected: "
        f"{ {k.value: v for k, v in faulty.counts.items() if v} }\n"
        f"  scrape errors: {agent.scrape_errors}, "
        f"skipped (backoff): {agent.scrapes_skipped}\n"
        f"  bus delivery errors: {telemetry.bus.delivery_errors}, "
        f"dead letters: {telemetry.bus.dead_letter_count}, "
        f"quarantined sinks: {telemetry.bus.quarantined_count}\n"
        f"  rack0 data loss: {loss:.1%} (bound {3 * DROPOUT:.0%})\n"
        f"  stale alerts: {[a.metric for a in stale]}\n",
    )


def test_bench_deterministic_under_seed():
    """Fault injection stays bit-for-bit reproducible under a seed."""
    _, t1, a1, f1, _ = build_and_run(seed=7)
    _, t2, a2, f2, _ = build_and_run(seed=7)
    assert f1.events == f2.events
    assert a1.scrape_errors == a2.scrape_errors
    assert t1.store.samples_ingested == t2.store.samples_ingested
    v1 = t1.store.query("rack0.power")[1]
    v2 = t2.store.query("rack0.power")[1]
    assert v1.tolist() == v2.tolist()


def test_bench_isolation_overhead(benchmark):
    """Publish-path overhead of error isolation stays negligible."""
    from repro.telemetry import MessageBus, SampleBatch

    bus = MessageBus()
    bus.subscribe("#", lambda t, b: None)
    batch = SampleBatch.from_mapping(
        0.0, {f"m{i}": float(i) for i in range(200)}
    )
    benchmark(lambda: bus.publish("x", batch))
    assert bus.delivery_errors == 0
