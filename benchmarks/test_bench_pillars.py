"""Experiment D2 — single- vs multi-pillar ODA (Section V-B).

Two parts:

* **Survey statistics**: single-pillar systems outnumber multi-pillar
  ones in the corpus ("a prevalence of single-pillar systems").
* **Orchestration experiment**: the same site run with a siloed
  single-pillar cooling controller vs the cross-pillar orchestrator that
  also sees node thermals and queue state.  Expected shape: orchestration
  lowers PUE and site energy per completed work — the "opportunities that
  can come from multi-pillar ODA".
"""

from __future__ import annotations

from repro.core import figure3_systems, pillar_crossing_stats
from repro.oda import DataCenter, MultiPillarOrchestrator, collect_kpis

DAY = 86_400.0
DAYS = 2.0
START = 150 * DAY  # early summer: cooling choices have consequences


def run(mode: str, seed: int = 13):
    dc = DataCenter(seed=seed, racks=2, nodes_per_rack=8, start_time=START)
    dc.generate_workload(days=DAYS, jobs_per_day=24)
    if mode == "siloed":
        # Single-pillar operation: the cooling loop holds a conservative
        # fixed setpoint chosen without any knowledge of node thermals.
        dc.facility.plant.loops[0].set_setpoint(16.0)
    elif mode == "orchestrated":
        orchestrator = MultiPillarOrchestrator(dc)
        orchestrator.attach()
    dc.run(days=DAYS)
    return collect_kpis(dc, since=START, until=dc.sim.now)


def test_bench_survey_pillar_stats(benchmark, write_artifact):
    stats = benchmark(pillar_crossing_stats, figure3_systems())
    write_artifact(
        "d2_survey_pillars.txt",
        "\n".join(f"{k}: {v}" for k, v in sorted(stats.items())),
    )
    assert stats["single_pillar"] > stats["multi_pillar"]


def test_bench_orchestration(benchmark, write_artifact):
    siloed = run("siloed")
    orchestrated = benchmark.pedantic(run, args=("orchestrated",), rounds=1, iterations=1)

    lines = [
        "Experiment D2 — siloed single-pillar vs orchestrated multi-pillar",
        f"{'KPI':>22} | {'siloed':>10} | {'orchestrated':>12}",
        f"{'PUE':>22} | {siloed.pue:>10.4f} | {orchestrated.pue:>12.4f}",
        f"{'site energy [kWh]':>22} | {siloed.site_energy_kwh:>10.2f} | {orchestrated.site_energy_kwh:>12.2f}",
        f"{'energy/work [kWh/s]':>22} | {siloed.energy_per_work_kwh:>10.6f} | {orchestrated.energy_per_work_kwh:>12.6f}",
        f"{'completed jobs':>22} | {siloed.completed_jobs:>10d} | {orchestrated.completed_jobs:>12d}",
    ]
    write_artifact("d2_orchestration.txt", "\n".join(lines))

    assert orchestrated.pue < siloed.pue - 0.02
    assert orchestrated.site_energy_kwh < siloed.site_energy_kwh * 0.97
    # The efficiency gain must not come from dropping work.
    assert orchestrated.completed_jobs >= siloed.completed_jobs - 1
