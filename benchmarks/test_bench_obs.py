"""Observability overhead benchmark: tracing off must be ~free, on must be
cheap.

The PR-4 acceptance criterion: instrumented hot paths (store ingest,
resample) with ``OBS`` **disabled** cost no more than a branch over calling
the private implementations directly, and with ``OBS`` **enabled** the
span + histogram machinery stays under 5% at production-shaped operation
sizes (thousand-metric scrape batches, million-sample resample windows).
Writes ``BENCH_obs.json`` to ``benchmarks/output/`` so the trajectory is
tracked like the other perf artifacts.

Baselines call the private ``_ingest`` / ``_resample_impl`` methods — the
exact pre-instrumentation code paths — so the comparison isolates the
instrumentation itself.

Measurement note: shared runners drift (CPU frequency decays over a run;
sibling jobs evict caches), and the drift is far larger than the ~µs span
cost, so timing each config as one contiguous block systematically
penalizes whichever config hits the slow window.  Instead every operation
is timed individually in a round-robin over the configs — adjacent in
time, so all configs see the same machine state — and each operation's
minimum across passes is summed per config, letting every op find its own
quiet window.
"""

from __future__ import annotations

import json
import os
import platform
import time
from typing import Callable, Dict, List

import numpy as np

from repro.obs import OBS
from repro.telemetry import SampleBatch, TimeSeriesStore

SCALE = os.environ.get("BENCH_SCALE", "small")

#: Operation sizes match production use: scrapes publish hundreds-to-
#: thousands of metrics per batch, and resample windows cover hours of
#: high-rate data, so the per-operation span cost amortizes as deployed.
#: The resample window is deliberately large: the multi-MB bucket sweep
#: evicts the span path from cache, so enter/exit runs cold (~10x its
#: tight-loop cost) — the honest per-call price, which the window size
#: must dominate.
SCALES: Dict[str, Dict] = {
    "small": dict(series=1_000, batches=100, resample_samples=2_000_000,
                  resample_buckets=1_000, resample_iters=8, repeats=20),
    "medium": dict(series=1_000, batches=300, resample_samples=2_000_000,
                   resample_buckets=1_000, resample_iters=12, repeats=25),
    "large": dict(series=2_000, batches=500, resample_samples=4_000_000,
                  resample_buckets=1_000, resample_iters=12, repeats=30),
}

P = SCALES[SCALE]

#: Overhead ceilings (ratios).  "off" is one attribute load + branch per
#: call — indistinguishable from timer noise; "on" pays span construction +
#: a histogram observe per operation.  Both must stay under 5%.
MAX_OFF_OVERHEAD = 1.05
MAX_ON_OVERHEAD = 1.05

RESULTS: Dict[str, Dict] = {
    "scale": SCALE,
    "params": dict(P),
    "ceilings": {"off": MAX_OFF_OVERHEAD, "on": MAX_ON_OVERHEAD},
}

#: One benchmark config: {"name", "enabled", "op"} plus scratch state.
#: ``op(config, i)`` performs the i-th operation for that config.
Config = Dict[str, object]


def _interleaved(
    configs: List[Config],
    n_ops: int,
    repeats: int,
    setup: Callable[[Config], None] = lambda c: None,
) -> Dict[str, float]:
    """Per-operation round-robin timing (see module note).

    Each pass runs ``setup`` per config untimed, then times every op
    individually with the configs rotating at op granularity; each op's
    minimum across passes is summed per config.  ``OBS`` is left disabled.
    """
    best = {c["name"]: [float("inf")] * n_ops for c in configs}
    try:
        for _ in range(repeats):
            for c in configs:
                setup(c)
            for i in range(n_ops):
                for c in configs:
                    OBS.enabled = c["enabled"]
                    op = c["op"]
                    t0 = time.perf_counter()
                    op(c, i)
                    elapsed = time.perf_counter() - t0
                    if elapsed < best[c["name"]][i]:
                        best[c["name"]][i] = elapsed
    finally:
        OBS.disable()
    return {name: sum(mins) for name, mins in best.items()}


def _make_batches(n_series: int, n_batches: int) -> List[SampleBatch]:
    names = tuple(f"cluster.n{i}.power" for i in range(n_series))
    rng = np.random.default_rng(7)
    return [
        SampleBatch(float(t), names, rng.random(n_series))
        for t in range(n_batches)
    ]


def _overhead_row(baseline_s: float, off_s: float, on_s: float, **extra):
    return {
        "baseline_s": round(baseline_s, 5),
        "obs_off_s": round(off_s, 5),
        "obs_on_s": round(on_s, 5),
        "off_overhead": round(off_s / baseline_s, 4),
        "on_overhead": round(on_s / baseline_s, 4),
        **extra,
    }


def test_bench_ingest_overhead():
    """Batch ingest: uninstrumented baseline vs OBS off vs OBS on."""
    batches = _make_batches(P["series"], P["batches"])
    total = P["series"] * P["batches"]

    def fresh_store(config: Config) -> None:
        config["store"] = TimeSeriesStore()

    def private_op(config: Config, i: int) -> None:
        config["store"]._ingest("cluster", batches[i])

    def public_op(config: Config, i: int) -> None:
        config["store"].ingest("cluster", batches[i])

    OBS.reset()
    assert not OBS.enabled
    times = _interleaved(
        [
            {"name": "baseline", "enabled": False, "op": private_op},
            {"name": "off", "enabled": False, "op": public_op},
            {"name": "on", "enabled": True, "op": public_op},
        ],
        P["batches"],
        P["repeats"],
        setup=fresh_store,
    )
    OBS.reset()
    baseline_s, off_s, on_s = times["baseline"], times["off"], times["on"]

    RESULTS["ingest"] = _overhead_row(
        baseline_s, off_s, on_s,
        samples=total,
        samples_per_sec_on=round(total / on_s),
    )
    assert off_s / baseline_s <= MAX_OFF_OVERHEAD, RESULTS["ingest"]
    assert on_s / baseline_s <= MAX_ON_OVERHEAD, RESULTS["ingest"]


def test_bench_resample_overhead():
    """Resample: the span wraps one large vectorized call, so the relative
    cost must vanish."""
    n = P["resample_samples"]
    store = TimeSeriesStore()
    store.append_many("m", np.arange(n, dtype=np.float64),
                      np.random.default_rng(0).random(n))
    step = n / P["resample_buckets"]
    store.resample("m", 0.0, float(n), step, agg="mean")  # warm caches

    def baseline_op(config: Config, i: int) -> None:
        store._resample_impl("m", 0.0, float(n), step, "mean", "auto")

    def public_op(config: Config, i: int) -> None:
        store.resample("m", 0.0, float(n), step, agg="mean")

    OBS.reset()
    times = _interleaved(
        [
            {"name": "baseline", "enabled": False, "op": baseline_op},
            {"name": "off", "enabled": False, "op": public_op},
            {"name": "on", "enabled": True, "op": public_op},
        ],
        P["resample_iters"],
        P["repeats"],
    )
    OBS.reset()
    baseline_s, off_s, on_s = times["baseline"], times["off"], times["on"]

    RESULTS["resample"] = _overhead_row(
        baseline_s, off_s, on_s,
        samples=n, buckets=P["resample_buckets"],
    )
    assert off_s / baseline_s <= MAX_OFF_OVERHEAD, RESULTS["resample"]
    assert on_s / baseline_s <= MAX_ON_OVERHEAD, RESULTS["resample"]


def test_write_bench_artifact(write_artifact):
    """Runs last in this module: persist the overhead artifact."""
    RESULTS["env"] = {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }
    write_artifact("BENCH_obs.json", json.dumps(RESULTS, indent=2) + "\n")
    missing = {"ingest", "resample"} - set(RESULTS)
    assert not missing, f"benchmarks did not run: {missing}"
