"""Experiment A3 — scheduling policy comparison (descriptive + prescriptive).

The same 2-day trace under FCFS, EASY backfill, power-aware and
cooling-aware policies.  Expected shapes: backfilling raises utilization
and throughput over FCFS; the power cap is honoured at a throughput cost;
cooling-aware placement lowers the thermal ceiling.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analytics.descriptive import scheduling_report
from repro.analytics.prescriptive import CoolingAwarePolicy, PowerAwarePolicy
from repro.oda import DataCenter, collect_kpis
from repro.software import EasyBackfillPolicy, FcfsPolicy

DAYS = 2.0
POWER_CAP_W = 4_800.0


def run(policy, seed=33):
    dc = DataCenter(seed=seed, racks=2, nodes_per_rack=8, policy=policy)
    dc.generate_workload(days=DAYS, jobs_per_day=26)
    dc.run(days=DAYS)
    kpis = collect_kpis(dc)
    _, it_power = dc.metric("cluster.it_power")
    hottest = max(
        float(dc.metric(dc.system.node_metric(n.name, "temp"))[1].max())
        for n in dc.system.nodes
    )
    return {"kpis": kpis, "peak_it_w": float(it_power.max()), "hottest_c": hottest}


@pytest.fixture(scope="module")
def results():
    return {
        "fcfs": run(FcfsPolicy()),
        "easy": run(EasyBackfillPolicy()),
        "power": run(PowerAwarePolicy(power_cap_w=POWER_CAP_W)),
        "cooling": run(CoolingAwarePolicy()),
    }


def test_bench_policy_comparison(benchmark, results, write_artifact):
    summary = benchmark(
        lambda: {
            name: (r["kpis"].completed_jobs, round(r["kpis"].utilization, 3),
                   round(r["peak_it_w"], 0), round(r["hottest_c"], 1))
            for name, r in results.items()
        }
    )
    write_artifact(
        "a3_scheduling.txt",
        "Experiment A3 — policy comparison (jobs, util, peak W, hottest C)\n"
        + "\n".join(f"{k}: {v}" for k, v in summary.items()),
    )

    # Backfilling beats strict FCFS on utilization and throughput.
    assert results["easy"]["kpis"].utilization > results["fcfs"]["kpis"].utilization
    assert results["easy"]["kpis"].completed_jobs >= results["fcfs"]["kpis"].completed_jobs
    # The power cap binds: peak draw clearly below the unconstrained run.
    assert results["power"]["peak_it_w"] < results["easy"]["peak_it_w"] * 0.95
    # Cooling-aware placement does not run hotter than naive placement.
    assert results["cooling"]["hottest_c"] <= results["easy"]["hottest_c"] + 0.1


def test_bench_qos_report(benchmark, results, write_artifact):
    finished_policy = "easy"
    kpis = results[finished_policy]["kpis"]

    def summarize():
        return (kpis.completed_jobs, kpis.mean_slowdown)

    jobs, slowdown = benchmark(summarize)
    assert jobs > 0
    assert slowdown >= 1.0
