"""Experiments F1-F3 — regenerate Figures 1, 2 and 3.

* F1: the 4-pillar diagram, with each pillar backed by a live substrate.
* F2: the staged analytics model with its ordering invariants.
* F3: complex ODA systems as grid footprints, matching the Section V
  discussion (ENI single-pillar/multi-type, PowerStack multi-pillar).
"""

from __future__ import annotations

import importlib

from repro.core import (
    PILLAR_ORDER,
    TYPE_ORDER,
    AnalyticsType,
    Pillar,
    figure3_systems,
    render_fig1,
    render_fig2,
    render_fig3,
)


def test_bench_fig1(benchmark, write_artifact):
    text = benchmark(render_fig1)
    write_artifact("fig1.txt", text)
    for pillar in PILLAR_ORDER:
        assert pillar.title in text
        # The reproduction's extra guarantee: every pillar is simulated by
        # an importable substrate package.
        module = importlib.import_module(pillar.substrate_module)
        assert module is not None
        assert pillar.substrate_module in text
    # All example components on the diagram.
    assert "chillers" in text and "compute nodes" in text
    assert "resource manager/scheduler" in text and "scientific workloads" in text


def test_bench_fig2(benchmark, write_artifact):
    text = benchmark(render_fig2)
    write_artifact("fig2.txt", text)
    # Staged model invariants: value and difficulty grow together.
    stages = [t.stage for t in TYPE_ORDER]
    assert stages == sorted(stages)
    # Hindsight/foresight split is the paper's reactive/proactive boundary.
    assert [t.hindsight for t in TYPE_ORDER] == [True, True, False, False]
    # The rendered staircase places prescriptive at the top (highest value).
    assert text.index("Prescriptive") < text.index("Descriptive")
    for analytics_type in TYPE_ORDER:
        assert analytics_type.question in text


def test_bench_fig3(benchmark, write_artifact):
    systems = figure3_systems()
    text = benchmark(render_fig3, systems)
    write_artifact("fig3.txt", text)

    by_name = {s.name: s for s in systems}
    # Section V-A: the ENI system is diagnostic + prescriptive, both within
    # building infrastructure.
    eni = by_name["Bortot et al. (ENI)"]
    assert eni.multi_type and not eni.multi_pillar
    assert eni.pillars == frozenset({Pillar.BUILDING_INFRASTRUCTURE})
    assert eni.analytics_types == frozenset(
        {AnalyticsType.DIAGNOSTIC, AnalyticsType.PRESCRIPTIVE}
    )
    # Section V-B: PowerStack crosses pillars with prescriptive+predictive.
    powerstack = by_name["PowerStack"]
    assert powerstack.multi_pillar
    assert {AnalyticsType.PRESCRIPTIVE, AnalyticsType.PREDICTIVE} <= set(
        powerstack.analytics_types
    )
    # Section V-C: the LLNL case is descriptive + predictive infrastructure.
    llnl = by_name["LLNL power forecasting"]
    assert llnl.pillars == frozenset({Pillar.BUILDING_INFRASTRUCTURE})
    # Rendering carries every system and its references.
    for system in systems:
        assert system.name in text
        for number in system.references:
            assert f"[{number}]" in text
