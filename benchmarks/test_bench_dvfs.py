"""Ablation A4 — DVFS governor trade-offs (Table I: CPU frequency tuning).

The same fixed workload run under three runtime configurations:

* static nominal frequency (no governor),
* reactive energy governor (clock down memory-bound phases),
* fleet power cap (GEOPM-balancer-like).

Expected shapes: the reactive governor saves IT energy at a bounded
throughput cost; the power-cap governor keeps aggregate draw under its
budget at a further throughput cost; static is the throughput ceiling.
"""

from __future__ import annotations

import numpy as np

from repro.analytics.prescriptive import PowerCapGovernor, ReactiveEnergyGovernor
from repro.oda import DataCenter
from repro.software import JobState

DAYS = 1.5
SEED = 88


def run(config: str):
    dc = DataCenter(seed=SEED, racks=2, nodes_per_rack=8)
    dc.generate_workload(days=DAYS, jobs_per_day=22)
    if config == "reactive":
        dc.install_runtime(ReactiveEnergyGovernor(), period=120.0)
    elif config == "powercap":
        dc.install_runtime(PowerCapGovernor(dc.system, cap_w=4_200.0), period=120.0)
    dc.run(days=DAYS)
    jobs = list(dc.scheduler.jobs.values())
    work_h = sum(j.work_done_s * j.nodes for j in jobs) / 3600.0
    times, it = dc.store.query("cluster.it_power")
    return {
        "it_energy_kwh": float(np.trapezoid(it, times)) / 3.6e6,
        "peak_it_w": float(it.max()),
        # Sustained draw: the cap governor reacts within a few periods, so
        # the budget claim is about the p95, not one-sample transients.
        "p95_it_w": float(np.percentile(it, 95)),
        "work_node_h": work_h,
        "completed": sum(1 for j in jobs if j.state is JobState.COMPLETED),
    }


def test_bench_dvfs_tradeoff(benchmark, write_artifact):
    static = run("static")
    reactive = run("reactive")
    powercap = benchmark.pedantic(run, args=("powercap",), rounds=1, iterations=1)

    lines = ["Ablation A4 — DVFS governors (same trace, same seed)"]
    for name, r in [("static", static), ("reactive", reactive), ("powercap", powercap)]:
        lines.append(
            f"{name:>9}: IT {r['it_energy_kwh']:.2f} kWh, peak {r['peak_it_w']:.0f} W, "
            f"p95 {r['p95_it_w']:.0f} W, work {r['work_node_h']:.1f} node-h, "
            f"done {r['completed']}"
        )
    write_artifact("a4_dvfs.txt", "\n".join(lines))

    # Reactive saves energy vs static...
    assert reactive["it_energy_kwh"] < static["it_energy_kwh"] * 0.97
    # ...without collapsing throughput (bounded cost).
    assert reactive["work_node_h"] > static["work_node_h"] * 0.75
    # The cap governor enforces its budget on sustained draw; single-sample
    # transients between governor passes are physical.
    assert powercap["p95_it_w"] < static["p95_it_w"]
    assert powercap["p95_it_w"] < 4_200.0 * 1.10
    # Capping costs throughput relative to the unconstrained runs.
    assert powercap["work_node_h"] <= static["work_node_h"]
