"""Experiment D1 — proactive beats reactive (Section V-A).

Two identical runs on a failure-prone fleet: reactive recovery (crash ->
restart from scratch) vs proactive maintenance (ECC-based failure
prediction -> evacuate + drain).  Expected shape: the proactive
configuration loses (almost) no jobs to crashes and completes more work
per unit energy.
"""

from __future__ import annotations

import numpy as np

from repro.analytics.prescriptive import ProactiveMaintenance
from repro.oda import DataCenter
from repro.software import JobState

DAYS = 3.0


def run(proactive: bool, seed: int = 42):
    dc = DataCenter(seed=seed, racks=2, nodes_per_rack=8, enable_faults=True)
    dc.system.fault_model.base_rate = 0.3
    dc.scheduler.resubmit_failed = True
    dc.generate_workload(days=DAYS, jobs_per_day=20)
    maintenance = None
    if proactive:
        maintenance = ProactiveMaintenance(dc.scheduler, dc.store, period=600.0)
        maintenance.attach(dc.sim, dc.trace)
    dc.run(days=DAYS)

    jobs = list(dc.scheduler.jobs.values())
    done = [j for j in jobs if j.state is JobState.COMPLETED]
    losses = len(dc.trace.select(kind="job_restart")) + sum(
        1 for j in jobs if j.state is JobState.FAILED
    )
    # Surviving work across *all* jobs: a reactive restart zeroes the lost
    # job's progress, a proactive checkpoint-requeue preserves it — this is
    # exactly the quantity the two regimes differ on.
    work_h = sum(j.work_done_s * j.nodes for j in jobs) / 3600.0
    times, it = dc.store.query("cluster.it_power")
    energy_kwh = float(np.trapezoid(it, times)) / 3.6e6
    return {
        "completed": len(done),
        "crashes": len(dc.trace.select(kind="node_crash")),
        "job_losses": losses,
        "work_node_h": work_h,
        "energy_kwh": energy_kwh,
        "work_per_kwh": work_h / energy_kwh,
        "evacuations": maintenance.evacuations if maintenance else 0,
    }


def test_bench_proactive_vs_reactive(benchmark, write_artifact):
    reactive = run(proactive=False)

    proactive = benchmark.pedantic(run, args=(True,), rounds=1, iterations=1)

    lines = [
        "Experiment D1 — proactive vs reactive ODA (Section V-A)",
        f"{'KPI':>18} | {'reactive':>10} | {'proactive':>10}",
    ]
    for key in reactive:
        lines.append(f"{key:>18} | {reactive[key]:>10.3f} | {proactive[key]:>10.3f}")
    write_artifact("d1_proactive.txt", "\n".join(lines))

    # Shape claims: both fleets crash, but the proactive one loses fewer
    # jobs and converts energy into surviving work strictly better.
    assert reactive["crashes"] > 0, "the experiment needs a failure-prone fleet"
    assert proactive["job_losses"] < reactive["job_losses"]
    assert proactive["evacuations"] > 0
    assert proactive["work_per_kwh"] > reactive["work_per_kwh"] * 1.02
