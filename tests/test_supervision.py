"""Tests for the control-plane supervision layer (repro.oda.supervision)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytics.prescriptive.control import ControlAction, ControlLoop, SetpointManager
from repro.errors import ChaosError, ControlError, SupervisionError
from repro.oda import DataCenter, MultiPillarOrchestrator, ODASystem
from repro.oda.pipeline import DerivedMetricStage
from repro.oda.supervision import (
    BreakerState,
    CircuitBreaker,
    ControllerFaultKind,
    SupervisionPolicy,
    Supervisor,
)
from repro.simulation import Simulator, TraceLog


# ----------------------------------------------------------------------
# Circuit breaker state machine
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def test_opens_after_threshold(self):
        b = CircuitBreaker(failure_threshold=3, open_timeout_s=100.0)
        assert not b.record_failure(0.0)
        assert not b.record_failure(1.0)
        assert b.record_failure(2.0)  # third consecutive failure opens
        assert b.state is BreakerState.OPEN
        assert not b.allow(50.0)  # still inside the open window

    def test_success_resets_consecutive_count(self):
        b = CircuitBreaker(failure_threshold=2)
        b.record_failure(0.0)
        b.record_success(1.0)
        assert not b.record_failure(2.0)  # count restarted
        assert b.state is BreakerState.CLOSED

    def test_half_open_probe_closes_on_success(self):
        b = CircuitBreaker(failure_threshold=1, open_timeout_s=100.0)
        b.record_failure(0.0)
        assert b.allow(100.0)  # probe allowed at the window edge
        assert b.state is BreakerState.HALF_OPEN
        b.record_success(100.0)
        assert b.state is BreakerState.CLOSED
        assert b.closes == 1

    def test_failed_probe_doubles_timeout(self):
        b = CircuitBreaker(failure_threshold=1, open_timeout_s=100.0,
                           backoff_factor=2.0)
        b.record_failure(0.0)
        assert b.allow(100.0)
        b.record_failure(100.0)  # probe fails -> re-open, window doubled
        assert b.state is BreakerState.OPEN
        assert not b.allow(250.0)   # 100 + 200 = 300 is the next probe
        assert b.allow(300.0)
        b.record_success(300.0)
        # A re-close resets the window back to the base timeout.
        b.record_failure(301.0)
        assert b.allow(401.0)

    def test_timeout_cap(self):
        b = CircuitBreaker(failure_threshold=1, open_timeout_s=100.0,
                           backoff_factor=10.0, max_open_timeout_s=400.0)
        b.record_failure(0.0)
        for _ in range(4):  # repeatedly fail probes
            t = b._probe_at
            assert b.allow(t)
            b.record_failure(t)
        assert b._current_timeout == 400.0

    def test_transitions_all_legal(self):
        b = CircuitBreaker(failure_threshold=1, open_timeout_s=10.0)
        b.record_failure(0.0)
        b.allow(10.0)
        b.record_failure(10.0)
        b.allow(40.0)
        b.record_success(40.0)
        legal = {
            (BreakerState.CLOSED, BreakerState.OPEN),
            (BreakerState.OPEN, BreakerState.HALF_OPEN),
            (BreakerState.HALF_OPEN, BreakerState.CLOSED),
            (BreakerState.HALF_OPEN, BreakerState.OPEN),
        }
        assert [(t.from_state, t.to_state) for t in b.transitions]
        assert all((t.from_state, t.to_state) in legal for t in b.transitions)

    def test_invalid_config_rejected(self):
        with pytest.raises(SupervisionError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(SupervisionError):
            CircuitBreaker(open_timeout_s=0.0)


# ----------------------------------------------------------------------
# Supervised loops on a bare simulator
# ----------------------------------------------------------------------
def _supervisor(sim, trace, **policy_kwargs):
    policy = SupervisionPolicy(**policy_kwargs)
    return Supervisor(sim, trace=trace, policy=policy).start()


class TestSupervisedLoop:
    def test_raising_decide_is_isolated(self, sim, trace):
        def bad_decide(now, ro):
            raise RuntimeError("boom")

        loop = ControlLoop("bad", bad_decide, period=10.0)
        loop.attach(sim, trace)
        sup = _supervisor(sim, trace, max_retries=0, failure_threshold=3)
        sup.supervise_loop(loop)
        sim.run(100.0)  # would raise into the event loop unsupervised
        s = sup.loops["bad"]
        assert s.decide_failures > 0
        assert s.breaker.state is BreakerState.OPEN
        assert any(e.kind == "breaker_open"
                   for e in trace.select(source="supervisor.bad"))

    def test_unsupervised_loop_still_raises(self, sim, trace):
        def bad_decide(now, ro):
            raise RuntimeError("boom")

        loop = ControlLoop("bad", bad_decide, period=10.0)
        loop.attach(sim, trace)
        with pytest.raises(RuntimeError):
            sim.run(100.0)

    def test_retry_masks_transient_failure(self, sim, trace):
        calls = {"n": 0}

        def flaky(now, ro):
            calls["n"] += 1
            if calls["n"] % 2 == 1:
                raise RuntimeError("transient")
            return []

        loop = ControlLoop("flaky", flaky, period=10.0)
        loop.attach(sim, trace)
        sup = _supervisor(sim, trace, max_retries=1, failure_threshold=2)
        sup.supervise_loop(loop)
        sim.run(100.0)
        s = sup.loops["flaky"]
        assert s.retries == 10           # one retry per tick
        assert s.breaker.state is BreakerState.CLOSED  # retries succeeded

    def test_breaker_recloses_after_fault_window(self, sim, trace):
        loop = ControlLoop("c", lambda now, ro: [], period=10.0)
        loop.attach(sim, trace)
        sup = _supervisor(sim, trace, max_retries=0, failure_threshold=2,
                          open_timeout_s=30.0)
        s = sup.supervise_loop(loop)
        s.inject_fault(ControllerFaultKind.RAISE, start=10.0, duration=15.0)
        sim.run(200.0)
        # Fails at t=10, 20 -> opens; probe at t=50 succeeds -> closes.
        assert s.breaker.opens == 1
        assert s.breaker.closes == 1
        assert s.breaker.state is BreakerState.CLOSED
        kinds = [e.kind for e in trace.select(source="supervisor.c")]
        assert "breaker_open" in kinds and "breaker_close" in kinds

    def test_safe_state_drives_manager_rate_limited(self, sim, trace):
        applied = []
        manager = SetpointManager(
            actuator=applied.append, initial=30.0, lo=10.0, hi=40.0,
            max_step=2.0,
        )

        loop = ControlLoop("cool", lambda now, ro: [], period=10.0)
        loop.attach(sim, trace)
        sup = _supervisor(sim, trace, max_retries=0, failure_threshold=1,
                          open_timeout_s=1000.0)
        s = sup.supervise_loop(loop, manager=manager, safe_setpoint=20.0)
        s.inject_fault(ControllerFaultKind.RAISE, start=10.0, duration=5.0)
        sim.run(100.0)
        # Breaker opens at t=10; each subsequent tick steps 2 C toward 20.
        assert manager.current == 20.0
        assert applied == [28.0, 26.0, 24.0, 22.0, 20.0]
        assert s.safe_state_entries == 1
        safe_actions = [a for a in loop.actions if a.knob == "safe_setpoint"]
        assert len(safe_actions) == 5
        assert safe_actions[0].controller == "supervisor.cool"
        assert any(e.kind == "safe_state_enter"
                   for e in trace.select(source="supervisor.cool"))

    def test_garbage_decisions_rejected_and_counted(self, sim, trace):
        loop = ControlLoop("g", lambda now, ro: [], period=10.0)
        loop.attach(sim, trace)
        sup = _supervisor(sim, trace, failure_threshold=3)
        s = sup.supervise_loop(loop)
        s.inject_fault(ControllerFaultKind.GARBAGE, start=10.0, duration=25.0)
        sim.run(100.0)
        assert s.garbage_actions == 3
        assert s.breaker.opens == 1  # garbage is a failure mode
        assert all(np.isfinite(a.value) for a in loop.actions)

    def test_real_nan_action_also_rejected(self, sim, trace):
        loop = ControlLoop(
            "nan", lambda now, ro: [ControlAction(now, "nan", "k", float("nan"))],
            period=10.0,
        )
        loop.attach(sim, trace)
        sup = _supervisor(sim, trace, failure_threshold=100)
        sup.supervise_loop(loop)
        sim.run(50.0)
        assert sup.loops["nan"].garbage_actions == 5
        assert loop.actions == []

    def test_hang_detected_by_watchdog(self, sim, trace):
        loop = ControlLoop("h", lambda now, ro: [], period=10.0)
        loop.attach(sim, trace)
        sup = _supervisor(
            sim, trace, failure_threshold=2, watchdog_period_s=10.0,
            watchdog_factor=2.5, open_timeout_s=500.0,
        )
        s = sup.supervise_loop(loop)
        s.inject_fault(ControllerFaultKind.HANG, start=10.0, duration=80.0)
        sim.run(100.0)
        assert s.missed_deadlines >= 2
        assert s.breaker.opens == 1
        assert any(e.kind == "missed_deadline"
                   for e in trace.select(source="supervisor.h"))

    def test_stale_guard_refuses_actuation(self, sim, trace):
        from repro.telemetry.store import TimeSeriesStore

        store = TimeSeriesStore()
        store.append("sensor.x", 0.0, 1.0)
        calls = {"n": 0}

        def decide(now, ro):
            calls["n"] += 1
            return []

        loop = ControlLoop("s", decide, period=10.0)
        loop.attach(sim, trace)
        sup = Supervisor(
            sim, trace=trace, store=store,
            policy=SupervisionPolicy(stale_horizon_s=25.0),
        ).start()
        s = sup.supervise_loop(loop, inputs=("sensor.x",))
        sim.run(100.0)
        # Fresh until t=25, stale afterwards: decides at 10, 20 only.
        assert calls["n"] == 2
        assert s.stale_skips == 8
        assert s.breaker.state is BreakerState.CLOSED  # stale is not failure
        assert any(e.kind == "stale_skip"
                   for e in trace.select(source="supervisor.s"))

    def test_missing_input_counts_as_stale(self, sim, trace):
        from repro.telemetry.store import TimeSeriesStore

        loop = ControlLoop("m", lambda now, ro: [], period=10.0)
        loop.attach(sim, trace)
        sup = Supervisor(
            sim, trace=trace, store=TimeSeriesStore(),
            policy=SupervisionPolicy(stale_horizon_s=60.0),
        ).start()
        s = sup.supervise_loop(loop, inputs=("never.there",))
        sim.run(30.0)
        assert s.stale_skips == 3

    def test_supervise_loop_idempotent(self, sim, trace):
        loop = ControlLoop("x", lambda now, ro: [], period=10.0)
        sup = _supervisor(sim, trace)
        a = sup.supervise_loop(loop)
        assert sup.supervise_loop(loop) is a
        other = ControlLoop("x", lambda now, ro: [], period=10.0)
        with pytest.raises(SupervisionError):
            sup.supervise_loop(other)

    def test_safe_setpoint_without_manager_rejected(self, sim, trace):
        loop = ControlLoop("y", lambda now, ro: [], period=10.0)
        sup = _supervisor(sim, trace)
        with pytest.raises(SupervisionError):
            sup.supervise_loop(loop, safe_setpoint=20.0)

    def test_metrics_registry_exports(self, sim, trace):
        loop = ControlLoop("z", lambda now, ro: [], period=10.0)
        loop.attach(sim, trace)
        sup = _supervisor(sim, trace)
        sup.supervise_loop(loop)
        sim.run(50.0)
        snap = sup.health_metrics()
        assert snap["oda.supervisor.loops"] == 1.0
        assert snap["oda.supervisor.decide_failures"] == 0.0
        assert "oda_supervisor_loops 1.0" in sup.metrics_registry.to_prometheus()


# ----------------------------------------------------------------------
# Supervised streaming stages
# ----------------------------------------------------------------------
class TestSupervisedStage:
    def _site(self):
        dc = DataCenter(seed=3, racks=1, nodes_per_rack=4)
        dc.enable_supervision()
        return dc

    def test_broken_stage_breaker_opens_and_skips(self):
        dc = self._site()
        system = ODASystem("site", dc)
        calls = {"n": 0}

        def explode(values):
            calls["n"] += 1
            raise RuntimeError("bad stage")

        stage = DerivedMetricStage(
            dc.telemetry.bus, "facility", "derived.bad",
            inputs=("facility.pue",), compute=explode,
        )
        system.add_stage(stage)
        dc.run(seconds=3600.0)
        supervised = dc.supervisor.stages["derived.bad"]
        assert supervised.breaker.opens >= 1
        assert supervised.skipped > 0          # fast-fail while open
        assert stage.errors == supervised.failures  # own counter intact
        # The breaker throttles calls: far fewer than one per batch.
        assert calls["n"] < stage.processed

    def test_healthy_stage_untouched(self):
        dc = self._site()
        system = ODASystem("site", dc)
        stage = DerivedMetricStage(
            dc.telemetry.bus, "facility", "derived.pue",
            inputs=("facility.power.site_power", "facility.power.it_power"),
            compute=lambda v: {"derived.pue": v["facility.power.site_power"]
                               / max(v["facility.power.it_power"], 1.0)},
        )
        system.add_stage(stage)
        dc.run(seconds=3600.0)
        supervised = dc.supervisor.stages["derived.pue"]
        assert supervised.breaker.state is BreakerState.CLOSED
        assert supervised.skipped == 0
        assert stage.emitted > 0


# ----------------------------------------------------------------------
# Satellite bugfixes: transactional SetpointManager, partial audit log
# ----------------------------------------------------------------------
class TestTransactionalSetpoint:
    def test_failed_actuation_leaves_state_unchanged(self):
        def actuator(value):
            raise ControlError("plant refused")

        manager = SetpointManager(actuator, initial=25.0, lo=10.0, hi=40.0,
                                  max_step=2.0)
        with pytest.raises(ControlError):
            manager.request(30.0)
        assert manager.current == 25.0
        assert manager.actuations == 0

    def test_successful_actuation_commits(self):
        seen = []
        manager = SetpointManager(seen.append, initial=25.0, lo=10.0, hi=40.0,
                                  max_step=2.0)
        assert manager.request(30.0) == 27.0
        assert manager.current == 27.0
        assert manager.actuations == 1
        assert seen == [27.0]


class TestPartialAuditLog:
    def test_applied_actions_logged_when_decide_fails_midway(self, sim, trace):
        def decide(now, ro):
            loop.record_applied(ControlAction(now, "c", "knob_a", 1.0))
            raise RuntimeError("failed after first actuation")

        loop = ControlLoop("c", decide, period=10.0)
        loop.attach(sim, trace)
        with pytest.raises(RuntimeError):
            sim.run(15.0)
        assert len(loop.actions) == 1
        assert loop.actions[0].knob == "knob_a"
        events = trace.select(source="control.c", kind="control_action")
        assert len(events) == 1
        assert events[0].detail["partial"] is True

    def test_returned_and_registered_actions_logged_once(self, sim, trace):
        def decide(now, ro):
            action = loop.record_applied(ControlAction(now, "c", "k", 2.0))
            return [action]

        loop = ControlLoop("c", decide, period=10.0)
        loop.attach(sim, trace)
        sim.run(10.0)
        assert len(loop.actions) == 1


# ----------------------------------------------------------------------
# Satellite: property test for supervision invariants
# ----------------------------------------------------------------------
LEGAL = {
    (BreakerState.CLOSED, BreakerState.OPEN),
    (BreakerState.OPEN, BreakerState.HALF_OPEN),
    (BreakerState.HALF_OPEN, BreakerState.CLOSED),
    (BreakerState.HALF_OPEN, BreakerState.OPEN),
}


class TestSupervisionInvariants:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        fail_prob=st.floats(min_value=0.05, max_value=0.9),
        threshold=st.integers(min_value=1, max_value=4),
        open_timeout=st.floats(min_value=20.0, max_value=200.0),
    )
    def test_random_failures_never_escape_and_transitions_legal(
        self, seed, fail_prob, threshold, open_timeout
    ):
        rng = np.random.default_rng(seed)
        sim = Simulator()
        trace = TraceLog()
        applied = []
        manager = SetpointManager(applied.append, initial=30.0, lo=10.0,
                                  hi=40.0, max_step=2.0)

        def flaky(now, ro):
            roll = rng.random()
            if roll < fail_prob / 2:
                raise RuntimeError("decide exploded")
            if roll < fail_prob:
                # Actuator path: request raises through decide.
                raise ChaosError("actuator refused")
            return []

        loop = ControlLoop("p", flaky, period=10.0)
        loop.attach(sim, trace)
        sup = Supervisor(
            sim, trace=trace,
            policy=SupervisionPolicy(
                max_retries=0, failure_threshold=threshold,
                open_timeout_s=open_timeout, watchdog_period_s=50.0,
            ),
        ).start()
        s = sup.supervise_loop(loop, manager=manager, safe_setpoint=20.0)
        sim.run(2000.0)  # always completes: failures are isolated

        transitions = s.breaker.transitions
        # 1. Every transition is legal, and they chain state-to-state.
        assert all((t.from_state, t.to_state) in LEGAL for t in transitions)
        for prev, nxt in zip(transitions, transitions[1:]):
            assert prev.to_state is nxt.from_state
        if transitions:
            assert transitions[0].from_state is BreakerState.CLOSED

        # 2. Safe state entered exactly once per breaker-open episode.
        # An episode spans CLOSED->OPEN up to the next HALF_OPEN->CLOSED
        # (re-opens from HALF_OPEN stay inside the same episode).
        episodes = sum(
            1 for t in transitions
            if t.from_state is BreakerState.CLOSED and t.to_state is BreakerState.OPEN
        )
        assert s.safe_state_entries == episodes
        assert s.safe_state_exits <= s.safe_state_entries

        # 3. The safe drive is rate-limited and bounded.
        assert all(10.0 <= v <= 40.0 for v in applied)
        for prev, nxt in zip([30.0] + applied, applied):
            assert abs(nxt - prev) <= 2.0 + 1e-12


# ----------------------------------------------------------------------
# Acceptance: supervised no-fault run is bit-identical to unsupervised
# ----------------------------------------------------------------------
class TestBitIdenticalWhenHealthy:
    def _run(self, supervised: bool) -> DataCenter:
        dc = DataCenter(seed=21, racks=1, nodes_per_rack=8)
        if supervised:
            dc.enable_supervision()
        orchestrator = MultiPillarOrchestrator(dc)
        orchestrator.attach()
        dc.generate_workload(days=0.3, jobs_per_day=40.0)
        dc.run(days=0.3)
        return dc

    def test_plant_trajectory_identical(self):
        plain = self._run(False)
        supervised = self._run(True)
        assert supervised.supervisor is not None
        assert "orchestrator" in supervised.supervisor.loops
        for series in ("facility.pue", "cluster.it_power",
                       "facility.loop0.pump.power", "cluster.nodes_up"):
            ta, va = plain.store.query(series)
            tb, vb = supervised.store.query(series)
            assert np.array_equal(ta, tb)
            assert np.array_equal(va, vb)
        sup = supervised.supervisor
        assert sup._sum("decide_failures") == 0
        assert sup.open_breakers() == 0
