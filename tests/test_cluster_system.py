"""Tests for racks, the HPCSystem aggregate and hardware faults."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import (
    ComputeNode,
    NodeFaultKind,
    NodeFaultModel,
    NodeLoad,
    Rack,
    build_system,
)
from repro.errors import ConfigurationError


def busy():
    return NodeLoad(cpu_util=0.9, mem_bw_util=0.3, compute_fraction=0.7,
                    net_bw_bytes=1e8, io_bw_bytes=1e8, flops_per_second=0.3)


class TestRack:
    def test_inlet_propagation_with_offset(self):
        nodes = [ComputeNode(f"n{i}") for i in range(3)]
        rack = Rack("r", nodes, cooling_offset_c=2.0)
        rack.set_inlet_temp(18.0)
        assert all(n.inlet_temp_c == 20.0 for n in nodes)

    def test_empty_rack_rejected(self):
        with pytest.raises(ConfigurationError):
            Rack("r", [])

    def test_sensors_aggregate(self):
        nodes = [ComputeNode(f"n{i}") for i in range(2)]
        rack = Rack("r", nodes)
        for n in nodes:
            n.update(30.0)
        sensors = rack.sensors()
        assert sensors["nodes_up"] == 2.0
        assert sensors["power"] == pytest.approx(sum(n.power_w for n in nodes))


class TestHPCSystem:
    @pytest.fixture
    def system(self, sim, trace, rng):
        system = build_system(racks=2, nodes_per_rack=4)
        system.attach(sim, trace, rng)
        return system

    def test_build_system_shape(self, system):
        assert system.node_count == 8
        assert len(system.racks) == 2
        assert system.node("r1n3").name == "r1n3"

    def test_duplicate_node_names_rejected(self):
        nodes = [ComputeNode("same"), ComputeNode("same")]
        with pytest.raises(ConfigurationError):
            from repro.cluster.system import HPCSystem
            HPCSystem([Rack("a", [nodes[0]]), Rack("b", [nodes[1]])])

    def test_apply_loads_and_progress(self, system, sim):
        system.apply_loads({f"r0n{i}": ("j1", busy()) for i in range(4)})
        sim.run(600)
        assert system.job_progress_rate("j1") > 0.5
        assert system.it_power_w > 8 * 100.0

    def test_unassigned_nodes_idle(self, system, sim):
        system.apply_loads({"r0n0": ("j1", busy())})
        assert system.node("r0n1").job_id is None

    def test_loop_supply_propagates_to_inlets(self, system, sim):
        system.set_loop_supply("loop0", 30.0)
        sim.run(60)
        assert system.node("r0n0").inlet_temp_c >= 30.0

    def test_sampler_matches_specs(self, system, sim):
        sim.run(120)
        readings = system._read_sensors(sim.now)
        assert set(readings) == {s.name for s in system.metric_specs()}

    def test_node_metric_path(self, system):
        assert system.node_metric("r0n2", "power") == "cluster.rack0.r0n2.power"

    def test_contention_applied_to_job(self, system, sim):
        # Saturate the filesystem: demand far above the pool.
        heavy_io = NodeLoad(cpu_util=0.9, io_bw_bytes=1e12, compute_fraction=0.1)
        system.apply_loads({f"r0n{i}": ("j1", heavy_io) for i in range(4)})
        sim.run(60)
        assert system.job_progress_rate("j1") < 0.5

    def test_job_progress_zero_when_not_running(self, system):
        assert system.job_progress_rate("ghost") == 0.0


class TestNodeFaultModel:
    def test_deterministic_injection_crash_and_repair(self, sim, trace, rng):
        system = build_system(racks=1, nodes_per_rack=4)
        system.attach(sim, trace, rng)
        model = NodeFaultModel(sim, trace, rng, system.nodes)
        node = system.node("r0n0")
        model.inject(node, NodeFaultKind.CRASH, start=100.0, duration=500.0)
        sim.run_until(200.0)
        assert not node.up
        sim.run_until(700.0)
        assert node.up
        kinds = [r.kind for r in trace]
        assert "node_crash" in kinds and "node_repair" in kinds

    def test_injected_degradation_severity(self, sim, trace, rng):
        system = build_system(racks=1, nodes_per_rack=2)
        system.attach(sim, trace, rng)
        model = NodeFaultModel(sim, trace, rng, system.nodes)
        node = system.node("r0n1")
        model.inject(node, NodeFaultKind.MEM_DEGRADATION, 10.0, 100.0, severity=0.4)
        sim.run_until(20.0)
        assert node.mem_bw_health == pytest.approx(0.6)
        sim.run_until(200.0)
        assert node.mem_bw_health == 1.0

    def test_stochastic_faults_emit_ecc_before_crash(self, sim, trace):
        rng = np.random.default_rng(3)
        system = build_system(racks=2, nodes_per_rack=8)
        system.attach(sim, trace, rng)
        model = NodeFaultModel(
            sim, trace, rng, system.nodes,
            base_rate_per_node_day=5.0,  # exaggerated for the test
            ecc_leadtime_s=1800.0,
        )
        model.start()
        sim.run(86_400.0 / 4)
        crashes = trace.select(kind="node_crash")
        assert crashes, "exaggerated hazard should produce crashes"
        # The crashed node accumulated ECC errors beforehand.
        crashed = crashes[0].source.split(".")[-1]
        assert any(f.node == crashed for f in model.faults)

    def test_thermal_acceleration_raises_hazard(self, sim, trace, rng):
        system = build_system(racks=1, nodes_per_rack=1)
        model = NodeFaultModel(sim, trace, rng, system.nodes)
        node = system.nodes[0]
        node.temp_c = 50.0
        cool_hazard = model._hazard(node)
        node.temp_c = 90.0
        assert model._hazard(node) > cool_hazard * 2
