"""Tests for the Facility aggregate and infrastructure fault injection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.facility import Facility, FaultInjector, FaultKind
from repro.facility.sizing import scaled_cooling_plant, scaled_distribution


@pytest.fixture
def facility(rng, sim, trace):
    fac = Facility(
        rng,
        plant=scaled_cooling_plant(1e5),
        distribution=scaled_distribution(1e5),
        it_power_source=lambda: 8e4,
        tick=60.0,
    )
    fac.attach(sim, trace)
    return fac


class TestFacility:
    def test_pue_above_one_under_load(self, facility, sim):
        sim.run(3600)
        assert 1.0 < facility.pue_instantaneous < 2.0

    def test_energy_counters_monotone(self, facility, sim):
        sim.run(1800)
        first = facility.site_energy_j
        sim.run(1800)
        assert facility.site_energy_j > first
        assert facility.site_energy_j > facility.it_energy_j

    def test_sampler_covers_specs(self, facility, sim):
        sim.run(120)
        readings = facility.sampler().scrape(sim.now).as_dict()
        spec_names = {s.name for s in facility.metric_specs()}
        assert spec_names == set(readings)

    def test_components_enumeration(self, facility):
        names = [c.name for c in facility.components()]
        assert "chiller" in names and "transformer" in names

    def test_idle_pue_infinite(self, rng):
        fac = Facility(rng)
        assert fac.pue_instantaneous == float("inf")

    def test_stress_test_raises_load_then_restores(self, facility, sim):
        sim.run(600)
        baseline = facility.plant.loops[0].heat_load_w
        facility.stress_test(sim, duration=300.0)
        sim.run(120)
        assert facility.plant.loops[0].heat_load_w > baseline * 1.1
        sim.run(600)
        assert facility.plant.loops[0].heat_load_w == pytest.approx(baseline, rel=0.2)
        kinds = [r.kind for r in facility.trace.select(source="facility")]
        assert "stress_test_start" in kinds and "stress_test_end" in kinds


class TestFaultInjector:
    def test_degradation_applied_and_cleared(self, facility, sim):
        chiller = facility.plant.loops[0].chiller
        injector = facility.fault_injector
        injector.inject(chiller, FaultKind.DEGRADATION, start=100.0, duration=200.0, severity=0.5)
        sim.run_until(150.0)
        assert chiller.health == pytest.approx(0.5)
        sim.run_until(400.0)
        assert chiller.health == 1.0

    def test_outage_disables_component(self, facility, sim):
        pump = facility.plant.loops[0].pump
        facility.fault_injector.inject(pump, FaultKind.OUTAGE, start=10.0, duration=50.0)
        sim.run_until(20.0)
        assert not pump.enabled
        sim.run_until(100.0)
        assert pump.enabled

    def test_sensor_drift_biases_telemetry_not_physics(self, facility, sim):
        pump = facility.plant.loops[0].pump
        facility.fault_injector.inject(
            pump, FaultKind.SENSOR_DRIFT, start=10.0, duration=1e6, severity=0.5
        )
        sim.run_until(120.0)
        readings = facility.sampler().scrape(sim.now).as_dict()
        biased = readings["facility.loop0.pump.power"]
        assert biased == pytest.approx(pump.power_w * 1.5)

    def test_ground_truth_recorded(self, facility, sim):
        chiller = facility.plant.loops[0].chiller
        fault = facility.fault_injector.inject(
            chiller, FaultKind.DEGRADATION, 100.0, 200.0, 0.4
        )
        assert fault.overlaps(150.0, 160.0)
        assert not fault.overlaps(400.0, 500.0)
        sim.run_until(150.0)
        assert facility.fault_injector.active_at(150.0) == [fault]

    def test_inject_random_poisson(self, sim, trace, rng):
        injector = FaultInjector(sim, trace, rng)
        from repro.facility import Pump

        components = [Pump(name=f"p{i}") for i in range(5)]
        faults = injector.inject_random(components, horizon=30 * 86400.0, rate_per_day=1.0)
        assert len(faults) > 10  # ~30 expected
        assert all(f.start >= 0 for f in faults)
