"""Tests for shared analytics utilities."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytics.common import (
    FEATURE_NAMES,
    StandardScaler,
    lag_matrix,
    sliding_windows,
    summary_features,
    train_test_split_time,
)
from repro.errors import InsufficientDataError, NotFittedError


class TestSlidingWindows:
    def test_shape_and_content(self):
        windows = sliding_windows(np.arange(10.0), width=4)
        assert windows.shape == (7, 4)
        assert windows[0].tolist() == [0, 1, 2, 3]
        assert windows[-1].tolist() == [6, 7, 8, 9]

    def test_step(self):
        windows = sliding_windows(np.arange(10.0), width=4, step=3)
        assert windows.shape == (3, 4)
        assert windows[1].tolist() == [3, 4, 5, 6]

    def test_zero_copy_view(self):
        data = np.arange(10.0)
        windows = sliding_windows(data, 3)
        assert windows.base is not None

    def test_too_few_samples(self):
        with pytest.raises(InsufficientDataError):
            sliding_windows(np.arange(3.0), width=4)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            sliding_windows(np.arange(10.0), width=0)


class TestLagMatrix:
    def test_shapes(self):
        X, y = lag_matrix(np.arange(10.0), lags=3)
        assert X.shape == (7, 3)
        assert y.shape == (7,)
        assert X[0].tolist() == [0, 1, 2]
        assert y[0] == 3.0

    def test_insufficient(self):
        with pytest.raises(InsufficientDataError):
            lag_matrix(np.arange(3.0), lags=3)


class TestSplit:
    def test_chronological(self):
        train, test = train_test_split_time(np.arange(100), test_fraction=0.25)
        assert train.shape[0] == 75
        assert test[0] == 75  # the future, not a shuffle

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            train_test_split_time(np.arange(10), test_fraction=1.5)

    def test_degenerate_split(self):
        with pytest.raises(InsufficientDataError):
            train_test_split_time(np.arange(2), test_fraction=0.01)


class TestStandardScaler:
    def test_zero_mean_unit_std(self):
        X = np.random.default_rng(0).normal(5, 3, (200, 4))
        Z = StandardScaler().fit_transform(X)
        assert np.allclose(Z.mean(axis=0), 0, atol=1e-9)
        assert np.allclose(Z.std(axis=0), 1, atol=1e-9)

    def test_constant_column_survives(self):
        X = np.column_stack([np.ones(10), np.arange(10.0)])
        Z = StandardScaler().fit_transform(X)
        assert np.all(np.isfinite(Z))
        assert np.allclose(Z[:, 0], 0.0)

    def test_inverse_roundtrip(self):
        X = np.random.default_rng(1).normal(2, 5, (50, 3))
        scaler = StandardScaler().fit(X)
        assert np.allclose(scaler.inverse_transform(scaler.transform(X)), X)

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            StandardScaler().transform(np.ones((2, 2)))


class TestSummaryFeatures:
    def test_length_matches_names(self):
        features = summary_features(np.arange(100.0))
        assert features.shape == (len(FEATURE_NAMES),)

    def test_known_values(self):
        features = summary_features(np.arange(101.0))
        named = dict(zip(FEATURE_NAMES, features))
        assert named["mean"] == pytest.approx(50.0)
        assert named["min"] == 0.0
        assert named["max"] == 100.0
        assert named["median"] == 50.0
        assert named["skew"] == pytest.approx(0.0, abs=1e-9)

    def test_nan_handling(self):
        values = np.array([1.0, np.nan, 3.0])
        features = summary_features(values)
        assert dict(zip(FEATURE_NAMES, features))["mean"] == pytest.approx(2.0)

    def test_all_nan_gives_zeros(self):
        assert (summary_features(np.array([np.nan, np.nan])) == 0).all()

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=2, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_features_always_finite(self, values):
        assert np.all(np.isfinite(summary_features(np.array(values))))
