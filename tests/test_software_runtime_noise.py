"""Tests for the node runtime (governor loop) and OS-noise injection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import build_system, NodeLoad
from repro.software import NodeRuntime, OsNoiseInjector


class FixedGovernor:
    """Test governor: always requests one fixed frequency."""

    def __init__(self, ghz):
        self.ghz = ghz
        self.calls = 0

    def decide(self, node, counters, now):
        self.calls += 1
        return self.ghz


class NoopGovernor:
    def decide(self, node, counters, now):
        return None


class TestNodeRuntime:
    def test_governor_applied_periodically(self, sim, trace, rng):
        system = build_system(racks=1, nodes_per_rack=4)
        system.attach(sim, trace, rng)
        governor = FixedGovernor(1.6)
        runtime = NodeRuntime(system, governor, period=100.0)
        runtime.attach(sim, trace)
        sim.run(250)
        assert all(n.frequency_ghz == 1.6 for n in system.nodes)
        assert governor.calls == 2 * 4  # two passes over four nodes
        # Frequency only *changed* on the first pass.
        assert runtime.changes == 4

    def test_none_decision_keeps_frequency(self, sim, trace, rng):
        system = build_system(racks=1, nodes_per_rack=2)
        system.attach(sim, trace, rng)
        runtime = NodeRuntime(system, NoopGovernor(), period=50.0)
        runtime.attach(sim, trace)
        sim.run(200)
        assert all(n.frequency_ghz == n.cpu.nominal_ghz for n in system.nodes)
        assert runtime.changes == 0

    def test_dvfs_changes_traced(self, sim, trace, rng):
        system = build_system(racks=1, nodes_per_rack=2)
        system.attach(sim, trace, rng)
        runtime = NodeRuntime(system, FixedGovernor(2.0), period=50.0)
        runtime.attach(sim, trace)
        sim.run(120)
        assert len(trace.select(kind="dvfs_change")) == 2

    def test_down_nodes_skipped(self, sim, trace, rng):
        system = build_system(racks=1, nodes_per_rack=2)
        system.attach(sim, trace, rng)
        system.nodes[0].fail()
        runtime = NodeRuntime(system, FixedGovernor(1.2), period=50.0)
        runtime.attach(sim, trace)
        sim.run(120)
        assert system.nodes[0].frequency_ghz != 1.2
        assert system.nodes[1].frequency_ghz == 1.2


class TestOsNoise:
    def test_noisy_subset_has_higher_noise(self, sim, trace):
        rng = np.random.default_rng(5)
        system = build_system(racks=2, nodes_per_rack=8)
        system.attach(sim, trace, rng)
        injector = OsNoiseInjector(system, rng, noisy_fraction=0.25, noisy_level=0.1)
        injector.attach(sim, trace)
        sim.run(600)
        truth = injector.ground_truth()
        noisy = [n for n in system.nodes if truth[n.name]]
        quiet = [n for n in system.nodes if not truth[n.name]]
        assert len(noisy) == 4
        assert min(n.os_noise for n in noisy) > max(q.os_noise for q in quiet)

    def test_zero_fraction_all_baseline(self, sim, trace):
        rng = np.random.default_rng(5)
        system = build_system(racks=1, nodes_per_rack=4)
        system.attach(sim, trace, rng)
        injector = OsNoiseInjector(system, rng, noisy_fraction=0.0)
        injector.attach(sim, trace)
        sim.run(600)
        assert all(n.os_noise < 0.01 for n in system.nodes)

    def test_noise_slows_job_progress(self, sim, trace):
        rng = np.random.default_rng(5)
        system = build_system(racks=1, nodes_per_rack=2)
        system.attach(sim, trace, rng)
        load = NodeLoad(cpu_util=0.9, compute_fraction=0.9)
        system.apply_loads({"r0n0": ("j", load)})
        system.nodes[0].os_noise = 0.2
        sim.run(60)
        assert system.job_progress_rate("j") < 0.85
