"""Tests for metric specs and the registry."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, UnknownMetricError
from repro.telemetry import MetricKind, MetricRegistry, MetricSpec, Unit


class TestMetricSpec:
    def test_defaults(self):
        spec = MetricSpec("cluster.n0.power")
        assert spec.kind is MetricKind.GAUGE
        assert spec.unit is Unit.DIMENSIONLESS

    def test_invalid_names_rejected(self):
        for bad in ("", ".x", "x."):
            with pytest.raises(ConfigurationError):
                MetricSpec(bad)

    def test_bounds_validation(self):
        spec = MetricSpec("m", low=0.0, high=1.0)
        assert spec.validate(0.5)
        assert not spec.validate(-0.1)
        assert not spec.validate(1.1)

    def test_unbounded_sides(self):
        assert MetricSpec("m", low=0.0).validate(1e12)
        assert MetricSpec("m", high=10.0).validate(-1e12)

    def test_inverted_bounds_rejected(self):
        with pytest.raises(ConfigurationError):
            MetricSpec("m", low=2.0, high=1.0)

    def test_component_and_leaf(self):
        spec = MetricSpec("cluster.rack0.n3.power")
        assert spec.component == "cluster.rack0.n3"
        assert spec.leaf == "power"

    def test_top_level_metric_component_empty(self):
        assert MetricSpec("power").component == ""


class TestMetricRegistry:
    def test_register_and_get(self):
        registry = MetricRegistry()
        spec = registry.register(MetricSpec("a.b"))
        assert registry.get("a.b") is spec
        assert "a.b" in registry
        assert len(registry) == 1

    def test_reregister_identical_is_noop(self):
        registry = MetricRegistry()
        registry.register(MetricSpec("a.b", Unit.WATT))
        registry.register(MetricSpec("a.b", Unit.WATT))
        assert len(registry) == 1

    def test_reregister_conflicting_rejected(self):
        registry = MetricRegistry()
        registry.register(MetricSpec("a.b", Unit.WATT))
        with pytest.raises(ConfigurationError):
            registry.register(MetricSpec("a.b", Unit.JOULE))

    def test_unknown_metric_error(self):
        with pytest.raises(UnknownMetricError):
            MetricRegistry().get("missing")

    def test_select_pattern(self):
        registry = MetricRegistry()
        for name in ("c.n0.power", "c.n1.power", "c.n0.temp"):
            registry.register(MetricSpec(name))
        assert [s.name for s in registry.select("c.*.power")] == [
            "c.n0.power", "c.n1.power",
        ]

    def test_select_prefix(self):
        registry = MetricRegistry()
        for name in ("c.n0.power", "c.n0.temp", "c.n10.power", "d.x"):
            registry.register(MetricSpec(name))
        names = [s.name for s in registry.select_prefix("c.n0")]
        assert names == ["c.n0.power", "c.n0.temp"]

    def test_select_prefix_no_partial_segment_match(self):
        registry = MetricRegistry()
        registry.register(MetricSpec("c.n1.power"))
        registry.register(MetricSpec("c.n10.power"))
        assert [s.name for s in registry.select_prefix("c.n1")] == ["c.n1.power"]

    def test_select_labels(self):
        registry = MetricRegistry()
        registry.register(MetricSpec("a", labels={"pillar": "system_hardware"}))
        registry.register(MetricSpec("b", labels={"pillar": "applications"}))
        assert [s.name for s in registry.select_labels(pillar="applications")] == ["b"]

    def test_names_sorted(self):
        registry = MetricRegistry()
        for name in ("z", "a", "m"):
            registry.register(MetricSpec(name))
        assert registry.names() == ["a", "m", "z"]
