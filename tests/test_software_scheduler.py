"""Tests for scheduling policies and the workload manager."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import default_catalog
from repro.apps.generator import JobRequest
from repro.cluster import build_system
from repro.errors import SchedulingError
from repro.software import (
    EasyBackfillPolicy,
    FcfsPolicy,
    Job,
    JobState,
    PriorityPolicy,
    Scheduler,
    SchedulingContext,
    estimate_job_power,
)


def request(job_id, nodes=2, submit=0.0, work=600.0, wall=86_400.0, profile="cfd_solver"):
    return JobRequest(
        job_id=job_id, submit_time=submit, user="u",
        profile=default_catalog().get(profile),
        nodes=nodes, work_s=work, walltime_req_s=wall,
    )


def make_ctx(free, pending, running=(), system=None, now=0.0):
    return SchedulingContext(
        now=now, system=system or build_system(racks=1, nodes_per_rack=8),
        free_nodes=list(free), pending=list(pending), running=list(running),
    )


class TestFcfsPolicy:
    def test_starts_jobs_in_order(self):
        pending = [Job(request("a", 2)), Job(request("b", 2))]
        allocations = FcfsPolicy().select(make_ctx([f"r0n{i}" for i in range(4)], pending))
        assert [a.job.job_id for a in allocations] == ["a", "b"]

    def test_head_blocks_queue(self):
        pending = [Job(request("big", 8)), Job(request("small", 1))]
        allocations = FcfsPolicy().select(make_ctx(["r0n0", "r0n1"], pending))
        assert allocations == []

    def test_disjoint_placements(self):
        pending = [Job(request("a", 2)), Job(request("b", 2))]
        allocations = FcfsPolicy().select(make_ctx([f"r0n{i}" for i in range(4)], pending))
        used = [n for a in allocations for n in a.node_names]
        assert len(used) == len(set(used)) == 4


class TestEasyBackfillPolicy:
    def test_backfills_small_job_past_blocked_head(self):
        running = [Job(request("r", 6))]
        running[0].start(0.0, [f"r0n{i}" for i in range(6)])
        pending = [Job(request("big", 8, wall=3600.0)),
                   Job(request("tiny", 1, wall=60.0))]
        ctx = make_ctx(["r0n6", "r0n7"], pending, running, now=10.0)
        allocations = EasyBackfillPolicy().select(ctx)
        assert [a.job.job_id for a in allocations] == ["tiny"]

    def test_backfill_does_not_delay_head_reservation(self):
        """A long backfill candidate that would push the head back is denied."""
        running = [Job(request("r", 6, wall=1000.0))]
        running[0].start(0.0, [f"r0n{i}" for i in range(6)])
        pending = [Job(request("big", 8, wall=3600.0)),
                   Job(request("long", 2, wall=50_000.0))]
        ctx = make_ctx(["r0n6", "r0n7"], pending, running, now=10.0)
        allocations = EasyBackfillPolicy().select(ctx)
        # "long" needs 2 nodes = all free nodes, finishing after the shadow
        # time, and extra is 0 -> denied.
        assert allocations == []

    def test_starts_head_when_it_fits(self):
        pending = [Job(request("a", 2))]
        allocations = EasyBackfillPolicy().select(
            make_ctx(["r0n0", "r0n1", "r0n2"], pending)
        )
        assert [a.job.job_id for a in allocations] == ["a"]


class TestPriorityPolicy:
    def test_default_prefers_small_short(self):
        pending = [Job(request("big", 4, wall=10_000.0)),
                   Job(request("small", 1, wall=100.0))]
        allocations = PriorityPolicy().select(make_ctx([f"r0n{i}" for i in range(8)], pending))
        assert allocations[0].job.job_id == "small"

    def test_no_head_blocking(self):
        pending = [Job(request("big", 8)), Job(request("small", 1))]
        allocations = PriorityPolicy().select(make_ctx(["r0n0"], pending))
        assert [a.job.job_id for a in allocations] == ["small"]


class TestEstimateJobPower:
    def test_scales_with_nodes(self):
        system = build_system(racks=1, nodes_per_rack=4)
        small = estimate_job_power(Job(request("a", 1)), system)
        large = estimate_job_power(Job(request("b", 4)), system)
        assert large == pytest.approx(small * 4)


class TestScheduler:
    @pytest.fixture
    def setup(self, sim, trace, rng):
        system = build_system(racks=1, nodes_per_rack=8)
        system.attach(sim, trace, rng)
        scheduler = Scheduler(system, tick=60.0)
        scheduler.attach(sim, trace)
        return sim, system, scheduler

    def test_job_runs_to_completion(self, setup):
        sim, system, scheduler = setup
        scheduler.submit(request("a", nodes=2, work=600.0))
        sim.run(3600)
        job = scheduler.jobs["a"]
        assert job.state is JobState.COMPLETED
        assert job.runtime >= 600.0  # cannot run faster than the work

    def test_duplicate_submission_rejected(self, setup):
        _, _, scheduler = setup
        scheduler.submit(request("a"))
        with pytest.raises(SchedulingError):
            scheduler.submit(request("a"))

    def test_walltime_enforced(self, setup):
        sim, _, scheduler = setup
        scheduler.submit(request("t", nodes=1, work=10_000.0, wall=600.0))
        sim.run(3600)
        assert scheduler.jobs["t"].state is JobState.TIMEOUT

    def test_node_failure_fails_job(self, setup):
        sim, system, scheduler = setup
        scheduler.submit(request("f", nodes=2, work=50_000.0, wall=86_400.0))
        sim.run(300)
        job = scheduler.jobs["f"]
        assert job.state is JobState.RUNNING
        system.node(job.assigned_nodes[0]).fail()
        sim.run(300)
        assert job.state is JobState.FAILED

    def test_load_trace_submits_at_times(self, setup):
        sim, _, scheduler = setup
        scheduler.load_trace(sim, [request("a", submit=100.0), request("b", submit=200.0)])
        sim.run(150)
        assert "a" in scheduler.jobs and "b" not in scheduler.jobs
        sim.run(100)
        assert "b" in scheduler.jobs

    def test_cancel_running_job(self, setup):
        sim, _, scheduler = setup
        scheduler.submit(request("c", nodes=1, work=50_000.0))
        sim.run(300)
        scheduler.cancel("c", sim.now)
        assert scheduler.jobs["c"].state is JobState.CANCELLED
        sim.run(120)
        assert scheduler.running == []

    def test_utilization_and_sensors(self, setup):
        sim, _, scheduler = setup
        scheduler.submit(request("a", nodes=4, work=50_000.0))
        sim.run(300)
        assert scheduler.utilization() == pytest.approx(0.5)
        readings = scheduler._read_sensors(sim.now)
        assert readings["scheduler.running_jobs"] == 1.0

    def test_trace_records_lifecycle(self, setup, trace):
        sim, _, scheduler = setup
        scheduler.submit(request("a", nodes=1, work=300.0))
        sim.run(3600)
        kinds = [r.kind for r in trace.select(source="scheduler")]
        assert kinds.count("job_submit") == 1
        assert kinds.count("job_start") == 1
        assert kinds.count("job_end") == 1

    def test_progress_slower_at_low_frequency(self, setup):
        """DVFS on all job nodes lengthens the measured runtime."""
        sim, system, scheduler = setup
        scheduler.submit(request("slow", nodes=1, work=1200.0))
        sim.run(120)
        for name in scheduler.jobs["slow"].assigned_nodes:
            system.node(name).set_frequency(1.2)
        sim.run(7200)
        job = scheduler.jobs["slow"]
        assert job.state is JobState.COMPLETED
        assert job.runtime > 1200.0 * 1.2
