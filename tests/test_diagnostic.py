"""Tests for diagnostic analytics: detectors, classifiers, RCA, fingerprints."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analytics.diagnostic import (
    ApplicationFingerprinter,
    CrisisLibrary,
    CpuContentionDetector,
    DecisionTreeClassifier,
    EwmaDetector,
    GaussianNaiveBayes,
    IsolationForest,
    KNeighborsClassifier,
    MemoryLeakDetector,
    OsNoiseDetector,
    PcaReconstructionDetector,
    PeerDeviationDetector,
    RandomForestClassifier,
    RootCauseAnalyzer,
    SubspaceDetector,
    ZScoreDetector,
    accuracy,
    confusion_matrix,
    detection_metrics,
    f1_score,
)
from repro.errors import InsufficientDataError, NotFittedError
from repro.telemetry import TimeSeriesStore


def two_blobs(n=150, separation=4.0, seed=0):
    rng = np.random.default_rng(seed)
    X = np.vstack([rng.normal(0, 1, (n, 3)), rng.normal(separation, 1, (n, 3))])
    y = np.array([0] * n + [1] * n)
    return X, y


class TestClassifiers:
    @pytest.mark.parametrize("model", [
        KNeighborsClassifier(k=5),
        GaussianNaiveBayes(),
        DecisionTreeClassifier(max_depth=6),
        RandomForestClassifier(n_trees=10, seed=1),
    ], ids=["knn", "gnb", "tree", "forest"])
    def test_separable_blobs(self, model):
        X, y = two_blobs()
        model.fit(X, y)
        assert accuracy(y, model.predict(X)) > 0.95

    @pytest.mark.parametrize("model", [
        KNeighborsClassifier(), GaussianNaiveBayes(),
        DecisionTreeClassifier(), RandomForestClassifier(n_trees=3),
    ], ids=["knn", "gnb", "tree", "forest"])
    def test_not_fitted(self, model):
        with pytest.raises(NotFittedError):
            model.predict(np.ones((1, 3)))

    def test_tree_handles_pure_node(self):
        X = np.ones((10, 2))
        y = np.zeros(10, dtype=int)
        tree = DecisionTreeClassifier().fit(X, y)
        assert (tree.predict(X) == 0).all()

    def test_confusion_matrix(self):
        cm = confusion_matrix([0, 0, 1, 1], [0, 1, 1, 1], n_classes=2)
        assert cm.tolist() == [[1, 1], [0, 2]]

    def test_f1(self):
        assert f1_score([1, 1, 0, 0], [1, 0, 0, 0]) == pytest.approx(2 / 3)
        assert f1_score([0, 0], [0, 0]) == 0.0

    def test_shape_validation(self):
        with pytest.raises(InsufficientDataError):
            KNeighborsClassifier().fit(np.ones((3, 2)), np.ones(4))


class TestUnivariateDetectors:
    def test_zscore_flags_level_shift(self):
        values = np.concatenate([np.random.default_rng(0).normal(0, 1, 200), [15.0]])
        detector = ZScoreDetector(window=50, threshold=5.0)
        assert detector.detect(values)[-1]

    def test_zscore_quiet_on_stationary(self):
        values = np.random.default_rng(0).normal(0, 1, 300)
        assert ZScoreDetector(window=50, threshold=6.0).detect(values).sum() == 0

    def test_ewma_flags_spike(self):
        values = np.concatenate([np.ones(100), [50.0]])
        assert EwmaDetector(threshold=4.0).detect(values)[-1]

    def test_ewma_adapts_to_drift(self):
        """Slow drift should not alarm an adaptive chart."""
        values = np.linspace(0, 1, 500) + np.random.default_rng(0).normal(0, 0.05, 500)
        breaches = EwmaDetector(alpha=0.2, threshold=6.0).detect(values).sum()
        assert breaches == 0

    def test_insufficient_data(self):
        with pytest.raises(InsufficientDataError):
            ZScoreDetector(window=60).score(np.ones(10))


class TestMultivariateDetectors:
    @pytest.fixture
    def healthy_and_anomalous(self):
        rng = np.random.default_rng(0)
        t = rng.normal(0, 3, 400)
        healthy = np.column_stack([t, 2 * t, -t]) + rng.normal(0, 0.2, (400, 3))
        # Anomalies break the correlation structure, not the marginals.
        anomalous = rng.normal(0, 3, (40, 3))
        return healthy, anomalous

    @pytest.mark.parametrize("cls", [PcaReconstructionDetector, SubspaceDetector],
                             ids=["pca", "subspace"])
    def test_correlation_break_detected(self, cls, healthy_and_anomalous):
        healthy, anomalous = healthy_and_anomalous
        detector = cls(n_components=1, quantile=0.99).fit(healthy)
        false_rate = detector.detect(healthy).mean()
        hit_rate = detector.detect(anomalous).mean()
        assert false_rate < 0.05
        assert hit_rate > 0.5

    def test_peer_deviation(self):
        matrix = np.ones((8, 4))
        matrix[3] = 10.0
        detector = PeerDeviationDetector(threshold=3.0)
        detections = detector.detect(matrix, [f"n{i}" for i in range(8)])
        assert [d.entity for d in detections] == ["n3"]

    def test_peer_deviation_needs_three(self):
        with pytest.raises(InsufficientDataError):
            PeerDeviationDetector().score(np.ones((2, 3)))

    def test_detection_metrics(self):
        truth = np.array([True, True, False, False])
        pred = np.array([True, False, True, False])
        m = detection_metrics(truth, pred)
        assert m["precision"] == 0.5 and m["recall"] == 0.5


class TestIsolationForest:
    def test_isolates_global_outliers(self):
        rng = np.random.default_rng(0)
        X = rng.normal(0, 1, (500, 4))
        X[:5] = 10.0
        forest = IsolationForest(n_trees=50, contamination=0.02, seed=1).fit(X)
        scores = forest.score(X)
        assert scores[:5].min() > np.median(scores[5:])
        assert forest.detect(X)[:5].all()

    def test_scores_bounded(self):
        X = np.random.default_rng(0).normal(0, 1, (100, 2))
        scores = IsolationForest(n_trees=20, seed=0).fit(X).score(X)
        assert ((scores > 0) & (scores <= 1)).all()

    def test_invalid_contamination(self):
        with pytest.raises(ValueError):
            IsolationForest(contamination=0.9)


class TestRootCause:
    def make_incident_store(self):
        """Cause metric deviates at t=500, symptom follows at t=600."""
        store = TimeSeriesStore()
        t = np.arange(0.0, 1000.0, 10.0)
        rng = np.random.default_rng(0)
        cause = rng.normal(10, 0.1, t.size)
        cause[t >= 500] += 8.0
        symptom = rng.normal(5, 0.1, t.size)
        symptom[t >= 600] += 6.0
        bystander = rng.normal(1, 0.1, t.size)
        store.append_many("pump.power", t, cause)
        store.append_many("loop.supply_temp", t, symptom)
        store.append_many("weather.humidity", t, bystander)
        return store

    def test_cause_ranked_first(self):
        store = self.make_incident_store()
        rca = RootCauseAnalyzer(store, baseline_s=400.0, step=10.0)
        causes = rca.rank_causes(
            "loop.supply_temp", 600.0, 1000.0,
            ["pump.power", "weather.humidity"],
        )
        assert causes[0].metric == "pump.power"
        assert causes[0].lead_s > 0

    def test_bystander_not_flagged(self):
        store = self.make_incident_store()
        rca = RootCauseAnalyzer(store, baseline_s=400.0)
        causes = rca.rank_causes(
            "loop.supply_temp", 600.0, 1000.0, ["weather.humidity"]
        )
        assert causes == []

    def test_preceding_events(self, trace):
        trace.emit(100.0, "faults.pump", "fault_onset")
        trace.emit(550.0, "scheduler", "job_start")
        trace.emit(700.0, "scheduler", "job_start")
        events = RootCauseAnalyzer.preceding_events(trace, symptom_start=600.0, lookback_s=200.0)
        assert [e.time for e in events] == [550.0]


class TestFingerprinting:
    def test_application_fingerprinter_separates_classes(self):
        rng = np.random.default_rng(0)
        # Synthetic feature vectors: three app classes with distinct means.
        means = {"cfd": 0.0, "graph": 4.0, "cryptominer": -4.0}
        X, labels = [], []
        for label, mean in means.items():
            X.append(rng.normal(mean, 1.0, (40, 12)))
            labels += [label] * 40
        X = np.vstack(X)
        fp = ApplicationFingerprinter(n_trees=15, seed=0).fit(X, labels)
        predictions = fp.predict(X)
        assert np.mean([p == t for p, t in zip(predictions, labels)]) > 0.95
        rogue = fp.flag_rogue(rng.normal(-4.0, 1.0, (5, 12)))
        assert all(rogue)

    def test_crisis_library_matches_known_crisis(self):
        store = TimeSeriesStore()
        t = np.arange(0.0, 3000.0, 10.0)
        rng = np.random.default_rng(0)
        a = rng.normal(10, 0.2, t.size)
        b = rng.normal(5, 0.2, t.size)
        # Crisis 1 (t in [1000,1500]): metric a spikes. Crisis 2: b drops.
        a[(t >= 1000) & (t < 1500)] += 5
        b[(t >= 2000) & (t < 2500)] -= 3
        store.append_many("m.a", t, a)
        store.append_many("m.b", t, b)
        library = CrisisLibrary(store, ["m.a", "m.b"], baseline_s=500.0)
        library.learn("a_spike", 1000.0, 1500.0)
        library.learn("b_drop", 2000.0, 2500.0)
        # Probe a re-occurrence of crisis 1's shape.
        matches = library.identify(1050.0, 1450.0)
        assert matches[0][0] == "a_spike"

    def test_crisis_library_empty_raises(self):
        store = TimeSeriesStore()
        store.append("m.a", 0.0, 1.0)
        library = CrisisLibrary(store, ["m.a"])
        with pytest.raises(NotFittedError):
            library.identify(0.0, 1.0)


class TestSoftwareAnomalies:
    def test_memory_leak_detected(self):
        store = TimeSeriesStore()
        t = np.arange(0.0, 7200.0, 60.0)
        store.append_many("n0.mem", t, 0.2 + t / 7200.0 * 0.5)
        verdict = MemoryLeakDetector().check(store, "n0.mem", 0.0, 7200.0)
        assert verdict is not None and verdict.kind == "memory_leak"

    def test_stable_memory_not_flagged(self):
        store = TimeSeriesStore()
        t = np.arange(0.0, 7200.0, 60.0)
        rng = np.random.default_rng(0)
        store.append_many("n0.mem", t, 0.5 + rng.normal(0, 0.01, t.size))
        assert MemoryLeakDetector().check(store, "n0.mem", 0.0, 7200.0) is None

    def test_cpu_contention_detected(self):
        store = TimeSeriesStore()
        t = np.arange(0.0, 3600.0, 60.0)
        ipc = np.full(t.size, 1.8)
        ipc[t.size // 2:] = 1.0  # achievement drops
        store.append_many("n0.util", t, np.full(t.size, 0.95))
        store.append_many("n0.ipc", t, ipc)
        verdict = CpuContentionDetector().check(store, "n0.util", "n0.ipc", 0.0, 3600.0)
        assert verdict is not None and verdict.kind == "cpu_contention"

    def test_healthy_run_not_flagged(self):
        store = TimeSeriesStore()
        t = np.arange(0.0, 3600.0, 60.0)
        store.append_many("n0.util", t, np.full(t.size, 0.95))
        store.append_many("n0.ipc", t, np.full(t.size, 1.8))
        assert CpuContentionDetector().check(store, "n0.util", "n0.ipc", 0.0, 3600.0) is None


class TestOsNoiseDetector:
    def test_noisy_node_identified(self):
        store = TimeSeriesStore()
        t = np.arange(0.0, 600.0, 30.0)
        paths = {}
        for i in range(8):
            metric = f"c.n{i}.ctx"
            noise = 0.08 if i == 3 else 0.002
            store.append_many(metric, t, np.full(t.size, 200.0 + 50_000.0 * noise))
            paths[f"n{i}"] = metric
        detector = OsNoiseDetector(store)
        assert detector.noisy_nodes(paths, 0.0, 600.0) == ["n3"]
        verdicts = {v.node: v for v in detector.assess(paths, 0.0, 600.0)}
        assert verdicts["n3"].estimated_noise_fraction == pytest.approx(0.08, rel=0.1)

    def test_tight_fleet_no_flags(self):
        store = TimeSeriesStore()
        t = np.arange(0.0, 600.0, 30.0)
        rng = np.random.default_rng(0)
        paths = {}
        for i in range(6):
            metric = f"c.n{i}.ctx"
            store.append_many(metric, t, 300.0 + rng.normal(0, 5, t.size))
            paths[f"n{i}"] = metric
        assert OsNoiseDetector(store).noisy_nodes(paths, 0.0, 600.0) == []
