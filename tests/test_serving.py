"""Tests for the multi-tenant query-serving front door.

Covers the admission layer (token buckets, bounded fair queues, load
shedding), the typed query surface and its parity with direct store
queries, tenant visibility scoping, the breaker-driven shed-first mode,
supervision wiring, the seeded workload generator, and the
TelemetrySystem/DataCenter accessors.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.errors import ConfigurationError, ServingError
from repro.oda.supervision import BreakerState, CircuitBreaker, Supervisor
from repro.simulation.engine import Simulator
from repro.simulation.trace import TraceLog
from repro.telemetry import TelemetrySystem, TimeSeriesStore
from repro.telemetry.distributed import ShardedStore
from repro.telemetry.serving import (
    AdmissionController,
    AlignQuery,
    NamesQuery,
    QueryFrontend,
    RangeQuery,
    RejectReason,
    ResampleQuery,
    SelectQuery,
    TenantConfig,
    TokenBucket,
    WorkloadSpec,
    heavy_tailed_workload,
    replay,
)

NAMES = tuple(
    f"rack{r}.node{n}.power" for r in range(2) for n in range(4)
)


class FakeClock:
    def __init__(self, t: float = 0.0):
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


def fill_store(store, names=NAMES, n=200, seed=0):
    rng = np.random.default_rng(seed)
    for name in names:
        times = np.arange(n, dtype=np.float64) * 5.0
        store.append_many(name, times, rng.random(n))
    return store


def inline_frontend(store=None, **kwargs) -> QueryFrontend:
    store = store if store is not None else fill_store(TimeSeriesStore())
    kwargs.setdefault("max_workers", 0)
    return QueryFrontend(store, **kwargs)


# ---------------------------------------------------------------------------
# Token bucket
# ---------------------------------------------------------------------------
class TestTokenBucket:
    def test_burst_then_rate_limit(self):
        b = TokenBucket(rate=1.0, burst=2.0, now=0.0)
        assert b.try_take(0.0) == 0.0
        assert b.try_take(0.0) == 0.0
        wait = b.try_take(0.0)
        assert wait == pytest.approx(1.0)
        # A failed take leaves the bucket untouched.
        assert b.try_take(0.0) == pytest.approx(1.0)
        assert b.try_take(1.0) == 0.0  # refilled exactly one token

    def test_refill_caps_at_burst(self):
        b = TokenBucket(rate=100.0, burst=3.0, now=0.0)
        for _ in range(3):
            assert b.try_take(1000.0) == 0.0
        assert b.try_take(1000.0) > 0.0

    def test_retry_hint_scales_with_rate(self):
        b = TokenBucket(rate=4.0, burst=1.0, now=0.0)
        assert b.try_take(0.0) == 0.0
        assert b.try_take(0.0) == pytest.approx(0.25)

    def test_infinite_rate_never_limits(self):
        b = TokenBucket(rate=float("inf"), burst=1.0)
        assert all(b.try_take(0.0) == 0.0 for _ in range(100))

    def test_validation(self):
        with pytest.raises(ServingError):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ServingError):
            TokenBucket(rate=1.0, burst=0.5)
        with pytest.raises(ServingError):
            TenantConfig(max_concurrency=0)
        with pytest.raises(ServingError):
            TenantConfig(max_queue=0)
        with pytest.raises(ServingError):
            TenantConfig(rate=-1.0)


# ---------------------------------------------------------------------------
# Admission controller
# ---------------------------------------------------------------------------
class TestAdmissionController:
    def test_fair_round_robin_across_tenants(self):
        ctl = AdmissionController()
        a = ctl.tenant("a", 0.0)
        b = ctl.tenant("b", 0.0)
        for task in ("a1", "a2", "a3"):
            ctl.push(a, task)
        ctl.push(b, "b1")
        # Tenant a's backlog must not starve b: dispatch interleaves.
        order = [ctl.pop() for _ in range(4)]
        assert order == ["a1", "b1", "a2", "a3"]
        assert ctl.pop() is None

    def test_max_concurrency_skips_until_done(self):
        ctl = AdmissionController(
            default_config=TenantConfig(max_concurrency=1)
        )
        a = ctl.tenant("a", 0.0)
        ctl.push(a, "a1")
        ctl.push(a, "a2")
        assert ctl.pop() == "a1"
        assert ctl.pop() is None  # a is at max_concurrency
        ctl.task_done(a)
        assert ctl.pop() == "a2"

    def test_queue_bounds(self):
        ctl = AdmissionController(
            default_config=TenantConfig(max_queue=1), global_queue=2
        )
        a = ctl.tenant("a", 0.0)
        b = ctl.tenant("b", 0.0)
        assert ctl.try_admit(a, 0.0) is None
        ctl.push(a, "a1")
        reason, _ = ctl.try_admit(a, 0.0)
        assert reason is RejectReason.QUEUE_FULL  # per-tenant bound
        assert ctl.try_admit(b, 0.0) is None
        ctl.push(b, "b1")
        reason, _ = ctl.try_admit(b, 0.0)
        assert reason is RejectReason.QUEUE_FULL  # global bound

    def test_disabled_admission_admits_everything(self):
        ctl = AdmissionController(
            default_config=TenantConfig(rate=0.001, burst=1.0, max_queue=1),
            global_queue=1, enabled=False,
        )
        a = ctl.tenant("a", 0.0)
        for task in range(10):
            assert ctl.try_admit(a, 0.0) is None
            ctl.push(a, task)


# ---------------------------------------------------------------------------
# Inline frontend: query surface and parity
# ---------------------------------------------------------------------------
class TestQuerySurface:
    def test_names_and_select(self):
        fe = inline_frontend()
        out = fe.serve("t", NamesQuery())
        assert out.ok and out.payload == tuple(sorted(NAMES))
        sel = fe.serve("t", SelectQuery("rack0.*"))
        assert sel.ok
        assert sel.payload == tuple(n for n in sorted(NAMES) if n.startswith("rack0."))

    def test_range_resample_align_match_direct(self):
        store = fill_store(TimeSeriesStore())
        fe = QueryFrontend(store, max_workers=0)
        name = NAMES[0]

        out = fe.serve("t", RangeQuery(name, 100.0, 600.0))
        times, values = store.query(name, 100.0, 600.0)
        assert np.array_equal(out.payload[0], times)
        assert np.array_equal(out.payload[1], values)

        out = fe.serve("t", ResampleQuery(name, 0.0, 900.0, 60.0, agg="max"))
        grid, vals = store.resample(name, 0.0, 900.0, 60.0, agg="max")
        assert np.array_equal(out.payload[0], grid)
        assert np.array_equal(out.payload[1], vals, equal_nan=True)

        q = AlignQuery(names=NAMES[:3], since=0.0, until=900.0, step=60.0)
        out = fe.serve("t", q)
        grid, matrix = store.align(list(NAMES[:3]), 0.0, 900.0, 60.0)
        assert np.array_equal(out.payload[0], grid)
        assert np.array_equal(out.payload[1], matrix, equal_nan=True)
        assert out.payload[2] == NAMES[:3]

    def test_pattern_align_resolves_visible_names(self):
        fe = inline_frontend()
        out = fe.serve("t", AlignQuery(
            pattern="rack1.*", since=0.0, until=900.0, step=60.0,
        ))
        assert out.ok
        assert out.payload[2] == tuple(
            n for n in sorted(NAMES) if n.startswith("rack1.")
        )

    def test_unknown_metric_is_error_value_not_exception(self):
        fe = inline_frontend()
        out = fe.serve("t", RangeQuery("no.such.series"))
        assert not out.ok and not out.rejected
        assert "no.such.series" in out.error
        # Domain errors never feed the breaker.
        assert fe.breaker.state is BreakerState.CLOSED

    def test_bad_arguments_are_error_values(self):
        fe = inline_frontend()
        out = fe.serve("t", ResampleQuery(NAMES[0], 0.0, 900.0, -5.0))
        assert not out.ok and out.error
        assert fe.breaker.state is BreakerState.CLOSED

    def test_latency_recorded(self):
        fe = inline_frontend()
        out = fe.serve("t", NamesQuery())
        assert out.latency_s >= 0.0
        snap = fe.health_metrics()
        assert snap["telemetry.serving.latency.count"] == 1.0
        assert snap["telemetry.serving.tenant.t.latency.count"] == 1.0


class TestVisibility:
    def cfg(self, *patterns):
        return TenantConfig(visibility=patterns)

    def test_catalog_queries_filtered(self):
        fe = inline_frontend(tenants={"scoped": self.cfg("rack0.*")})
        out = fe.serve("scoped", NamesQuery())
        assert out.payload == tuple(
            n for n in sorted(NAMES) if n.startswith("rack0.")
        )
        sel = fe.serve("scoped", SelectQuery("*.power"))
        assert all(n.startswith("rack0.") for n in sel.payload)

    def test_invisible_series_indistinguishable_from_absent(self):
        fe = inline_frontend(tenants={"scoped": self.cfg("rack0.*")})
        hidden = fe.serve("scoped", RangeQuery("rack1.node0.power"))
        absent = fe.serve("scoped", RangeQuery("rack0.missing.power"))
        assert not hidden.ok and not absent.ok
        # Same error shape: a tenant cannot probe for others' series.
        assert hidden.error.replace("rack1.node0.power", "X") == \
            absent.error.replace("rack0.missing.power", "X")

    def test_explicit_align_checks_every_name(self):
        fe = inline_frontend(tenants={"scoped": self.cfg("rack0.*")})
        out = fe.serve("scoped", AlignQuery(
            names=("rack0.node0.power", "rack1.node0.power"),
            since=0.0, until=900.0, step=60.0,
        ))
        assert not out.ok and "rack1.node0.power" in out.error

    def test_unscoped_tenant_sees_everything(self):
        fe = inline_frontend(tenants={"scoped": self.cfg("rack0.*")})
        out = fe.serve("other", NamesQuery())
        assert out.payload == tuple(sorted(NAMES))


# ---------------------------------------------------------------------------
# Admission through the frontend
# ---------------------------------------------------------------------------
class TestFrontendAdmission:
    def test_rate_limit_with_retry_hint(self):
        clock = FakeClock()
        fe = inline_frontend(
            tenants={"t": TenantConfig(rate=1.0, burst=1.0)}, clock=clock,
        )
        assert fe.serve("t", NamesQuery()).ok
        out = fe.serve("t", NamesQuery())
        assert out.rejected and out.reason is RejectReason.RATE_LIMITED
        assert out.retry_after_s == pytest.approx(1.0)
        clock.advance(1.0)
        assert fe.serve("t", NamesQuery()).ok

    def test_tenant_queue_full(self):
        fe = inline_frontend(
            tenants={"t": TenantConfig(max_queue=2)}, global_queue=100,
        )
        pending = [fe.submit("t", NamesQuery()) for _ in range(3)]
        assert not pending[0].done() and not pending[1].done()
        out = pending[2].result(0.0)
        assert out.rejected and out.reason is RejectReason.QUEUE_FULL
        fe.pump()
        assert all(p.result(0.0).ok for p in pending[:2])

    def test_saturation_shed_at_watermark(self):
        fe = inline_frontend(global_queue=10, shed_watermark=0.5)
        pending = [fe.submit("t", NamesQuery()) for _ in range(6)]
        shed = [p.result(0.0) for p in pending if p.done()]
        assert len(shed) == 1
        assert shed[0].reason is RejectReason.SHED
        assert fe.saturation_sheds == 1
        assert fe.pump() == 5

    def test_fairness_under_backlog(self):
        fe = inline_frontend()
        heavy = [fe.submit("heavy", NamesQuery()) for _ in range(8)]
        light = fe.submit("light", NamesQuery())
        fe.pump(max_tasks=2)  # one dispatch round: one heavy, one light
        assert light.done() and light.result(0.0).ok
        assert sum(1 for p in heavy if p.done()) == 1

    def test_admission_disabled_runs_everything(self):
        fe = inline_frontend(
            tenants={"t": TenantConfig(rate=0.001, burst=1.0, max_queue=1)},
            admission=False, clock=FakeClock(),
        )
        outs = [fe.serve("t", NamesQuery()) for _ in range(20)]
        assert all(o.ok for o in outs)

    def test_rejections_visible_in_metrics(self):
        clock = FakeClock()
        fe = inline_frontend(
            tenants={"t": TenantConfig(rate=1.0, burst=1.0)}, clock=clock,
        )
        fe.serve("t", NamesQuery())
        fe.serve("t", NamesQuery())
        snap = fe.health_metrics()
        assert snap["telemetry.serving.rejected.rate_limited"] == 1.0
        assert snap["telemetry.serving.queries"] == 2.0
        assert snap["telemetry.serving.admitted"] == 1.0
        stats = fe.tenant_stats()["t"]
        assert stats["rejected.rate_limited"] == 1.0


# ---------------------------------------------------------------------------
# Breaker / shed-first mode
# ---------------------------------------------------------------------------
class TestBreakerShedFirst:
    def make(self):
        clock = FakeClock()
        store = fill_store(ShardedStore(shards=2, replication=0))
        fe = QueryFrontend(
            store, max_workers=0, clock=clock,
            breaker=CircuitBreaker(
                failure_threshold=2, open_timeout_s=10.0,
                max_open_timeout_s=10.0,
            ),
        )
        return fe, store, clock

    def downed_name(self, store):
        """A series whose owning shard is fully down."""
        victim = store.shard_of(NAMES[0])
        store.replica_sets[victim].mark_down(0)
        return NAMES[0], victim

    def test_shard_down_errors_trip_breaker(self):
        fe, store, clock = self.make()
        name, victim = self.downed_name(store)
        for _ in range(2):
            out = fe.serve("t", RangeQuery(name))
            assert not out.ok and not out.rejected
        assert fe.shedding
        out = fe.serve("t", RangeQuery(name))
        assert out.rejected and out.reason is RejectReason.BREAKER_OPEN
        snap = fe.health_metrics()
        assert snap["telemetry.serving.shedding"] == 1.0
        assert snap["telemetry.serving.breaker_opens"] == 1.0

    def test_half_open_probe_recovers(self):
        fe, store, clock = self.make()
        name, victim = self.downed_name(store)
        fe.serve("t", RangeQuery(name))
        fe.serve("t", RangeQuery(name))
        assert fe.shedding
        store.replica_sets[victim].revive(0)
        clock.advance(11.0)
        out = fe.serve("t", RangeQuery(name))  # half-open probe
        assert out.ok
        assert not fe.shedding

    def test_watchdog_saturation_degrades_to_shedding(self):
        fe = inline_frontend(
            global_queue=10, shed_watermark=0.5,
            breaker=CircuitBreaker(failure_threshold=1, open_timeout_s=10.0),
            clock=FakeClock(),
        )
        for _ in range(5):
            fe.submit("t", NamesQuery())
        events = fe.watchdog_check()
        kinds = [k for k, _ in events]
        assert "saturated" in kinds and "breaker_transition" in kinds
        assert fe.shedding
        out = fe.serve("t", NamesQuery())
        assert out.rejected and out.reason is RejectReason.BREAKER_OPEN

    def test_supervisor_watchdog_traces_frontend_events(self):
        sim = Simulator()
        trace = TraceLog()
        fe = inline_frontend(
            global_queue=10, shed_watermark=0.5,
            breaker=CircuitBreaker(failure_threshold=1, open_timeout_s=1e6),
            clock=FakeClock(),
        )
        sup = Supervisor(sim, trace=trace).start()
        sup.watch_frontend(fe)
        sup.watch_frontend(fe)  # idempotent
        assert sup.frontends == [fe]
        for _ in range(5):
            fe.submit("t", NamesQuery())
        sim.run(601.0)  # past a watchdog period
        saturated = trace.select(source="supervisor.frontend", kind="saturated")
        assert saturated and saturated[0].detail["depth"] == 5
        transitions = trace.select(
            source="supervisor.frontend", kind="breaker_transition"
        )
        assert any(t.detail["to"] == "open" for t in transitions)
        values = sup.metrics_registry.snapshot()
        assert values["oda.supervisor.frontends"] == 1.0
        assert values["oda.supervisor.frontends_shedding"] == 1.0
        assert values["oda.supervisor.frontend_breaker_opens"] >= 1.0


# ---------------------------------------------------------------------------
# Worker pool / threaded serving
# ---------------------------------------------------------------------------
class TestThreadedServing:
    def test_threaded_replay_completes_and_matches_direct(self):
        store = fill_store(ShardedStore(shards=2, replication=1))
        fe = QueryFrontend(store, max_workers=3)
        try:
            events = heavy_tailed_workload(
                sorted(store.names()), 0.0, 1000.0,
                WorkloadSpec(tenants=4, queries=80, seed=3),
            )
            outcomes = replay(fe, events, submitters=4)
            assert len(outcomes) == len(events)
            assert all(o is not None and o.ok for o in outcomes)
            # Spot-check bit parity against the federation engine.
            for (tenant, q), out in zip(events, outcomes):
                if q.kind == "resample":
                    grid, vals = store.resample(
                        q.name, q.since, q.until, q.step, agg=q.agg,
                    )
                    assert np.array_equal(out.payload[0], grid)
                    assert np.array_equal(out.payload[1], vals, equal_nan=True)
            snap = fe.health_metrics()
            assert snap["telemetry.serving.completed"] == float(len(events))
            assert snap["telemetry.serving.queue_depth"] == 0.0
            assert snap["telemetry.serving.inflight"] == 0.0
        finally:
            fe.close()

    def test_concurrent_submit_and_ingest_keeps_serving(self):
        store = fill_store(TimeSeriesStore())
        fe = QueryFrontend(store, max_workers=2)
        stop = threading.Event()

        def ingest():
            t = 2000.0
            while not stop.is_set():
                store.append(NAMES[0], t, 1.0)
                t += 1.0

        w = threading.Thread(target=ingest)
        w.start()
        try:
            outs = [
                fe.serve("t", ResampleQuery(NAMES[0], 0.0, 900.0, 60.0))
                for _ in range(50)
            ]
            assert all(o.ok for o in outs)
            # Every answer over the frozen window is identical.
            first = outs[0].payload
            for out in outs[1:]:
                assert np.array_equal(out.payload[0], first[0])
                assert np.array_equal(out.payload[1], first[1], equal_nan=True)
        finally:
            stop.set()
            w.join()
            fe.close()

    def test_close_resolves_queued_as_closed(self):
        fe = inline_frontend()
        pending = [fe.submit("t", NamesQuery()) for _ in range(3)]
        fe.close()
        outs = [p.result(0.0) for p in pending]
        assert all(o.rejected and o.reason is RejectReason.CLOSED for o in outs)
        after = fe.serve("t", NamesQuery())
        assert after.rejected and after.reason is RejectReason.CLOSED
        fe.close()  # idempotent

    def test_result_timeout_raises_serving_error(self):
        fe = inline_frontend()
        pending = fe.submit("t", NamesQuery())  # never pumped
        with pytest.raises(ServingError):
            pending.result(0.01)
        fe.close()


# ---------------------------------------------------------------------------
# Workload generator
# ---------------------------------------------------------------------------
class TestWorkload:
    def test_deterministic_per_seed(self):
        spec = WorkloadSpec(tenants=4, queries=60, seed=7)
        a = heavy_tailed_workload(NAMES, 0.0, 1000.0, spec)
        b = heavy_tailed_workload(NAMES, 0.0, 1000.0, spec)
        assert a == b
        c = heavy_tailed_workload(
            NAMES, 0.0, 1000.0, WorkloadSpec(tenants=4, queries=60, seed=8)
        )
        assert a != c

    def test_hot_pool_repeats_queries(self):
        events = heavy_tailed_workload(
            NAMES, 0.0, 1000.0,
            WorkloadSpec(tenants=4, queries=200, seed=0, hot_fraction=0.7),
        )
        queries = [q for _, q in events]
        assert len(set(queries)) < len(queries)  # cache fodder exists

    def test_tenant_load_is_skewed(self):
        events = heavy_tailed_workload(
            NAMES, 0.0, 1000.0,
            WorkloadSpec(tenants=6, queries=300, seed=0),
        )
        counts = {}
        for tenant, _ in events:
            counts[tenant] = counts.get(tenant, 0) + 1
        assert counts["tenant0"] > counts.get("tenant5", 0) * 3

    def test_validation(self):
        with pytest.raises(ServingError):
            heavy_tailed_workload((), 0.0, 1000.0)
        with pytest.raises(ServingError):
            replay(inline_frontend(), [], submitters=0)


# ---------------------------------------------------------------------------
# TelemetrySystem / DataCenter wiring
# ---------------------------------------------------------------------------
class TestWiring:
    def test_telemetry_system_frontend_create_once(self):
        ts = TelemetrySystem()
        fill_store(ts.store)
        fe = ts.frontend(max_workers=0)
        assert ts.frontend() is fe
        with pytest.raises(ConfigurationError):
            ts.frontend(max_workers=2)
        assert fe.serve("t", NamesQuery()).ok
        assert any(
            "telemetry.serving.queries" in reg.snapshot()
            for reg in ts.metric_registries()
        )
        assert "telemetry_serving_queries" in ts.prometheus()
        ts.close()
        out = fe.serve("t", NamesQuery())
        assert out.rejected and out.reason is RejectReason.CLOSED

    def test_datacenter_frontend_under_supervision(self):
        from repro.oda import DataCenter

        dc = DataCenter(seed=1, racks=1, nodes_per_rack=2)
        try:
            dc.run(seconds=600.0)
            dc.enable_supervision()
            fe = dc.frontend(max_workers=0)
            assert dc.supervisor.frontends == [fe]
            assert dc.frontend() is fe
            out = fe.serve("ops", NamesQuery())
            assert out.ok and len(out.payload) > 0
            assert "oda_supervisor_frontends" in dc.prometheus()
        finally:
            dc.close()
