"""Tests for the structured trace log."""

from __future__ import annotations

from repro.simulation import TraceLog


class TestTraceLog:
    def test_emit_and_len(self, trace):
        trace.emit(1.0, "scheduler", "job_start", job_id="j1")
        trace.emit(2.0, "scheduler", "job_end", job_id="j1")
        assert len(trace) == 2
        assert trace[0].detail["job_id"] == "j1"

    def test_select_by_kind(self, trace):
        trace.emit(1.0, "a", "x")
        trace.emit(2.0, "a", "y")
        trace.emit(3.0, "b", "x")
        assert len(trace.select(kind="x")) == 2

    def test_select_by_source_prefix(self, trace):
        trace.emit(1.0, "facility.chiller0", "fault")
        trace.emit(2.0, "cluster.n1", "fault")
        assert len(trace.select(source="facility")) == 1

    def test_select_by_time_window(self, trace):
        for t in (1.0, 5.0, 9.0):
            trace.emit(t, "s", "k")
        assert len(trace.select(since=2.0, until=8.0)) == 1

    def test_kinds_sorted_distinct(self, trace):
        trace.emit(1.0, "s", "b")
        trace.emit(1.0, "s", "a")
        trace.emit(1.0, "s", "b")
        assert trace.kinds() == ["a", "b"]

    def test_subscriber_called_on_emit(self, trace):
        seen = []
        trace.subscribe(seen.append)
        record = trace.emit(1.0, "s", "k")
        assert seen == [record]

    def test_capacity_trims_oldest(self):
        log = TraceLog(capacity=10)
        for i in range(25):
            log.emit(float(i), "s", "k")
        assert len(log) <= 13  # halved once capacity exceeded
        # Most recent record always retained.
        assert log[len(log) - 1].time == 24.0

    def test_record_matches(self, trace):
        record = trace.emit(0.0, "facility.pump", "fault")
        assert record.matches(source="facility")
        assert record.matches(kind="fault")
        assert not record.matches(kind="other")
        assert not record.matches(source="cluster")
