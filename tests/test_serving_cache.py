"""Property tests: the serving result cache is invisible.

The contract under test is the front door's strongest claim: **a cached
answer is bit-identical to an uncached execution of the same query, right
now** — across storage tiers (in-process single store, sharded, sharded
with worker-process shards), and through every invalidation path (ingest
moving a shard watermark, failover changing the serving member).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.telemetry import SampleBatch, TimeSeriesStore
from repro.telemetry.distributed import ShardedStore
from repro.telemetry.serving import (
    AlignQuery,
    NamesQuery,
    QueryFrontend,
    RangeQuery,
    ResampleQuery,
    SelectQuery,
)

NAMES = tuple(f"c.rack{r}.node{n}.w" for r in range(2) for n in range(3))
SHARD_COUNTS = (0, 1, 2, 8)  # 0 = plain in-process TimeSeriesStore


def _bits(a: np.ndarray) -> np.ndarray:
    return np.asarray(a, dtype=np.float64).view(np.uint64)


def payload_equal(a, b) -> bool:
    """Bit-exact payload comparison (NaNs compared by bit pattern)."""
    if isinstance(a, np.ndarray) and isinstance(b, np.ndarray):
        return a.shape == b.shape and bool(
            np.array_equal(_bits(a.ravel()), _bits(b.ravel()))
        )
    if isinstance(a, tuple) and isinstance(b, tuple):
        return len(a) == len(b) and all(
            payload_equal(x, y) for x, y in zip(a, b)
        )
    return a == b


def make_store(shards: int, seed: int, n: int = 60):
    if shards == 0:
        store = TimeSeriesStore()
    else:
        store = ShardedStore(shards=shards, replication=1)
    rng = np.random.default_rng(seed)
    # Irregular cadence: uneven gaps exercise the resample/align kernels.
    times = np.cumsum(rng.uniform(0.5, 9.5, size=n))
    for batch_t, row in zip(times, rng.standard_normal((n, len(NAMES)))):
        store.ingest("t", SampleBatch(float(batch_t), NAMES, row))
    return store, float(times[-1])


def make_query(kind: str, seed: int, horizon: float):
    rng = np.random.default_rng(seed + 1)
    since = float(rng.uniform(0.0, horizon * 0.5))
    until = float(rng.uniform(since + 1.0, max(horizon * 1.2, since + 2.0)))
    step = float(rng.uniform(1.0, max((until - since) / 2.0, 1.5)))
    agg = str(rng.choice(("mean", "max", "min", "sum", "count")))
    name = str(NAMES[int(rng.integers(len(NAMES)))])
    if kind == "names":
        return NamesQuery()
    if kind == "select":
        return SelectQuery("c.rack0.*")
    if kind == "range":
        return RangeQuery(name, since, until)
    if kind == "resample":
        return ResampleQuery(name, since, until, step, agg=agg)
    k = int(rng.integers(1, len(NAMES) + 1))
    return AlignQuery(names=NAMES[:k], since=since, until=until, step=step, agg=agg)


def direct_answer(store, query):
    """The same query answered by the store/federation APIs directly."""
    if query.kind == "names":
        return tuple(store.names())
    if query.kind == "select":
        return tuple(store.select(query.pattern))
    if query.kind == "range":
        return tuple(store.query(query.name, query.since, query.until))
    if query.kind == "resample":
        return tuple(store.resample(
            query.name, query.since, query.until, query.step, agg=query.agg,
        ))
    grid, matrix = store.align(
        list(query.names), query.since, query.until, query.step, agg=query.agg,
    )
    return (grid, matrix, query.names)


class TestCacheIsInvisible:
    @given(
        seed=st.integers(0, 10_000),
        shards=st.sampled_from(SHARD_COUNTS),
        kind=st.sampled_from(("range", "resample", "align", "names", "select")),
    )
    @settings(max_examples=60, deadline=None)
    def test_cached_uncached_direct_identical(self, seed, shards, kind):
        store, horizon = make_store(shards, seed)
        query = make_query(kind, seed, horizon)
        direct = direct_answer(store, query)
        cached = QueryFrontend(store, max_workers=0)
        uncached = QueryFrontend(store, max_workers=0, cache=False)

        miss = cached.serve("t", query)
        hit = cached.serve("t", query)
        plain = uncached.serve("t", query)
        assert miss.ok and hit.ok and plain.ok
        assert not miss.cache_hit and hit.cache_hit and not plain.cache_hit
        assert payload_equal(miss.payload, direct)
        assert payload_equal(hit.payload, direct)
        assert payload_equal(plain.payload, direct)

    @given(
        seed=st.integers(0, 10_000),
        shards=st.sampled_from(SHARD_COUNTS),
    )
    @settings(max_examples=40, deadline=None)
    def test_ingest_past_watermark_invalidates(self, seed, shards):
        store, horizon = make_store(shards, seed)
        query = ResampleQuery(NAMES[0], 0.0, horizon * 2.0, horizon / 17.0)
        fe = QueryFrontend(store, max_workers=0)
        assert fe.serve("t", query).ok  # populate the cache
        assert fe.serve("t", query).cache_hit

        # Ingest past the window end on the queried series: the owning
        # shard's watermark moves, so the cached entry must die.
        rng = np.random.default_rng(seed + 2)
        store.ingest("t", SampleBatch(
            horizon + 1.0, NAMES, rng.standard_normal(len(NAMES)),
        ))
        fresh = fe.serve("t", query)
        assert fresh.ok and not fresh.cache_hit
        assert payload_equal(fresh.payload, direct_answer(store, query))
        assert fe.cache_stats()["invalidations"] >= 1.0
        # And the refreshed entry is servable again.
        again = fe.serve("t", query)
        assert again.cache_hit
        assert payload_equal(again.payload, fresh.payload)

    @given(seed=st.integers(0, 10_000), shards=st.sampled_from((1, 2, 8)))
    @settings(max_examples=30, deadline=None)
    def test_failover_invalidates_even_with_identical_replica(self, seed, shards):
        store, horizon = make_store(shards, seed)
        query = AlignQuery(
            names=NAMES, since=0.0, until=horizon, step=horizon / 13.0,
        )
        fe = QueryFrontend(store, max_workers=0)
        assert fe.serve("t", query).ok
        assert fe.serve("t", query).cache_hit

        # Fail the primary of one owning shard.  The replica holds the
        # same data, but the cache must not assume that: the member index
        # is part of the version stamp.
        victim = store.shard_of(NAMES[0])
        store.replica_sets[victim].mark_down(0)
        out = fe.serve("t", query)
        assert out.ok and not out.cache_hit
        assert payload_equal(out.payload, direct_answer(store, query))
        assert fe.cache_stats()["invalidations"] >= 1.0


class TestParallelTierParity:
    @pytest.mark.parametrize("shards", [1, 2])
    def test_cached_serving_over_worker_process_shards(self, shards):
        par, horizon = make_store_parallel(shards, seed=5)
        ref, _ = make_store(shards, seed=5, n=40)
        fe = QueryFrontend(par, max_workers=0)
        try:
            queries = [
                ResampleQuery(NAMES[0], 0.0, horizon, horizon / 11.0),
                AlignQuery(names=NAMES, since=0.0, until=horizon,
                           step=horizon / 7.0),
                RangeQuery(NAMES[3], horizon * 0.2, horizon * 0.8),
                NamesQuery(),
            ]
            for query in queries:
                miss = fe.serve("t", query)
                hit = fe.serve("t", query)
                assert miss.ok and hit.ok and hit.cache_hit
                direct = direct_answer(ref, query)
                assert payload_equal(miss.payload, direct)
                assert payload_equal(hit.payload, direct)
            # Ingest through the worker processes invalidates, and the
            # refreshed answer matches an in-process store fed the same way.
            extra = SampleBatch(
                horizon + 1.0, NAMES,
                np.arange(len(NAMES), dtype=np.float64),
            )
            par.ingest("t", extra)
            ref.ingest("t", extra)
            out = fe.serve("t", queries[0])
            assert out.ok and not out.cache_hit
            assert payload_equal(
                out.payload, direct_answer(ref, queries[0])
            )
        finally:
            fe.close()
            par.close()


def make_store_parallel(shards: int, seed: int, n: int = 40):
    store = ShardedStore(shards=shards, replication=1, parallel=True)
    rng = np.random.default_rng(seed)
    times = np.cumsum(rng.uniform(0.5, 9.5, size=n))
    for batch_t, row in zip(times, rng.standard_normal((n, len(NAMES)))):
        store.ingest("t", SampleBatch(float(batch_t), NAMES, row))
    return store, float(times[-1])
