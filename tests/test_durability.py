"""Durability layer: WAL framing, crash recovery, checksummed archives,
anti-entropy repair, and the loss-accounting audit across repair paths."""

from __future__ import annotations

import os
import zipfile

import numpy as np
import pytest

from repro.errors import JournalError, PersistenceError
from repro.telemetry import (
    JournalConfig,
    ReplicaSet,
    SampleBatch,
    ShardedStore,
    TimeSeriesStore,
    WriteAheadJournal,
    corrupt_artifact,
    load_store,
    save_store,
    scan_journal,
    tear_wal_tail,
)
from repro.telemetry.durability import (
    RecoveryStats,
    iter_records,
    read_watermark,
)


def _bits_equal(a, b) -> bool:
    return np.array_equal(
        np.asarray(a, dtype=np.float64).view(np.uint64),
        np.asarray(b, dtype=np.float64).view(np.uint64),
    )


def _drain(directory, **kwargs):
    stats = RecoveryStats()
    records = list(iter_records(directory, stats=stats, **kwargs))
    return records, stats


# ---------------------------------------------------------------------------
# WAL segment format
# ---------------------------------------------------------------------------
class TestJournalFormat:
    def test_all_record_types_round_trip(self, tmp_path):
        wal = WriteAheadJournal(JournalConfig(dir=str(tmp_path / "wal")))
        names = ("a.x", "a.y", "b.z")
        values = np.array([1.5, -2.0, np.pi])
        times = np.array([10.0, 20.0, 30.0])
        rows = np.arange(6, dtype=np.float64).reshape(2, 3)
        s1 = wal.append_names(0, names)
        s2 = wal.append_batch(0, 5.0, values)
        s3 = wal.append_many("b.z", times, values)
        s4 = wal.append_block(0, times[:2], rows)
        s5 = wal.append_mark(42)
        assert [s1, s2, s3, s4, s5] == [1, 2, 3, 4, 5]
        wal.flush()
        wal.close()

        records, stats = _drain(str(tmp_path / "wal"))
        kinds = [r[0] for r in records]
        assert kinds == ["names", "batch", "many", "block", "mark"]
        assert records[0][2:] == (0, names)
        _, seq, nid, t, vals = records[1]
        assert (seq, nid, t) == (2, 0, 5.0) and _bits_equal(vals, values)
        _, _, name, mt, mv = records[2]
        assert name == "b.z"
        assert _bits_equal(mt, times) and _bits_equal(mv, values)
        _, _, bid, bt, brows = records[3]
        assert bid == 0 and _bits_equal(bt, times[:2])
        assert _bits_equal(brows, rows)
        assert records[4][2] == 42
        assert stats.replayed_records == 5 and stats.corrupt_records == 0

    def test_counters_and_rotation(self, tmp_path):
        cfg = JournalConfig(dir=str(tmp_path / "wal"),
                            segment_max_bytes=512, group_bytes=128)
        wal = WriteAheadJournal(cfg)
        for i in range(50):
            wal.append_many("s", np.array([float(i)]), np.array([float(i)]))
        wal.flush()
        assert wal.records == 50
        assert wal.bytes_written > 0
        assert wal.rotations > 1  # opening counts as the first rotation
        segs = [f for f in os.listdir(cfg.dir) if f.endswith(".seg")]
        assert len(segs) == wal.rotations
        wal.close()
        records, stats = _drain(cfg.dir)
        assert len(records) == 50
        assert stats.segments == len(segs)

    def test_sync_policies(self, tmp_path):
        always = WriteAheadJournal(
            JournalConfig(dir=str(tmp_path / "a"), sync="always")
        )
        always.append_mark(1)
        assert always.syncs >= 1
        assert always.synced_seq == 1
        always.close()

        never = WriteAheadJournal(
            JournalConfig(dir=str(tmp_path / "n"), sync="never")
        )
        never.append_mark(1)
        never.flush()
        assert never.syncs == 0
        assert never.sync() == 1  # explicit sync still works
        never.close()

    def test_bad_sync_policy_rejected(self, tmp_path):
        with pytest.raises(JournalError):
            JournalConfig(dir=str(tmp_path), sync="sometimes")

    def test_interval_sync_covers_trickle_ingest(self, tmp_path):
        # A writer that never fills the group buffer must still get its
        # bounded-loss-window fsync once the interval elapses.
        cfg = JournalConfig(
            dir=str(tmp_path / "wal"), sync="interval", sync_interval_s=0.0
        )
        wal = WriteAheadJournal(cfg)
        seq = wal.append_mark(1)  # tiny record, far below group_bytes
        assert wal.syncs >= 1
        assert wal.synced_seq == seq
        wal.close()

    def test_mark_durable_reinterns_names(self, tmp_path):
        # Pruning deletes the segment holding the original NAMES record;
        # the live table passed to mark_durable is re-appended above the
        # watermark so later batches stay resolvable.
        cfg = JournalConfig(dir=str(tmp_path / "wal"),
                            segment_max_bytes=256, group_bytes=64)
        wal = WriteAheadJournal(cfg)
        names = ("a.x", "a.y")
        wal.append_names(0, names)
        for i in range(30):
            wal.append_batch(0, float(i), np.array([1.0, 2.0]))
        seq = wal.flush()
        wal.mark_durable(seq, names={0: names})
        wal.append_batch(0, 99.0, np.array([3.0, 4.0]))
        wal.sync()
        wal.close()
        records, _stats = _drain(cfg.dir)  # default min_seq = the watermark
        kinds = [r[0] for r in records]
        assert "names" in kinds
        assert kinds.index("names") < kinds.index("batch")
        batch = records[kinds.index("batch")]
        assert batch[2] == 0 and batch[3] == 99.0

    def test_mark_durable_prunes_covered_segments(self, tmp_path):
        cfg = JournalConfig(dir=str(tmp_path / "wal"),
                            segment_max_bytes=512, group_bytes=128)
        wal = WriteAheadJournal(cfg)
        for i in range(60):
            wal.append_many("s", np.array([float(i)]), np.array([1.0]))
        seq = wal.flush()
        before = len([f for f in os.listdir(cfg.dir) if f.endswith(".seg")])
        wal.mark_durable(seq)
        after = len([f for f in os.listdir(cfg.dir) if f.endswith(".seg")])
        assert after < before  # fully-covered segments truncated away
        assert read_watermark(cfg.dir) == seq
        records, stats = _drain(cfg.dir)  # default min_seq = the watermark
        assert records == []
        wal.close()

    def test_reopen_continues_sequence_in_fresh_segment(self, tmp_path):
        cfg = JournalConfig(dir=str(tmp_path / "wal"))
        wal = WriteAheadJournal(cfg)
        wal.append_mark(7)
        wal.flush()
        wal.close()
        reopened = WriteAheadJournal(cfg)
        seq = reopened.append_mark(8)
        reopened.flush()
        reopened.close()
        assert seq == 2  # continues, never reuses, the crashed sequence
        records, stats = _drain(cfg.dir)
        assert [r[1] for r in records] == [1, 2]
        assert stats.segments == 2  # rotate-on-open: never append in place

    def test_reopen_after_header_only_tail_segment(self, tmp_path):
        # A journal opened then closed (or crashed) before any append
        # leaves a header-only tail; the next incarnation resumes at the
        # same start seq and must replace it, not append a second header.
        cfg = JournalConfig(dir=str(tmp_path / "wal"))
        WriteAheadJournal(cfg).close()
        wal = WriteAheadJournal(cfg)
        for i in range(50):
            wal.append_many("s", np.array([float(i)]), np.array([1.0]))
        wal.sync()
        del wal  # crash: no close()
        records, stats = _drain(cfg.dir)
        assert len(records) == 50
        assert stats.torn_tail_drops == 0 and stats.corrupt_records == 0

    def test_reopen_after_fully_torn_tail_segment(self, tmp_path):
        # Same collision via the other route: every record of the tail
        # segment destroyed, so resume numbering lands on its start seq.
        from repro.telemetry.durability import _HEADER

        cfg = JournalConfig(dir=str(tmp_path / "wal"))
        wal = WriteAheadJournal(cfg)
        for i in range(5):
            wal.append_many("s", np.array([float(i)]), np.array([1.0]))
        wal.flush()
        wal.close()
        (seg,) = [f for f in os.listdir(cfg.dir) if f.endswith(".seg")]
        with open(os.path.join(cfg.dir, seg), "r+b") as fh:
            fh.truncate(_HEADER.size + 3)  # header survives, no records do
        reopened = WriteAheadJournal(cfg)
        for i in range(50):
            reopened.append_many(
                "s", np.array([float(i)]), np.array([2.0])
            )
        reopened.sync()
        del reopened  # crash: no close()
        records, stats = _drain(cfg.dir)
        assert len(records) == 50
        assert stats.torn_tail_drops == 0 and stats.corrupt_records == 0


# ---------------------------------------------------------------------------
# Torn tails and mid-journal damage
# ---------------------------------------------------------------------------
class TestJournalDamage:
    def _journal_with(self, directory, count):
        wal = WriteAheadJournal(JournalConfig(dir=directory))
        for i in range(count):
            wal.append_many(
                "s", np.array([float(i)]), np.array([float(i) * 2])
            )
        wal.flush()
        wal.close()

    def test_torn_tail_drops_only_the_tail(self, tmp_path):
        directory = str(tmp_path / "wal")
        self._journal_with(directory, 20)
        event = tear_wal_tail(directory, nbytes=5)
        assert event.kind == "torn_wal"
        records, stats = _drain(directory)
        assert stats.torn_tail_drops == 1
        assert len(records) == 19  # only the mid-write record is gone
        assert [r[1] for r in records] == list(range(1, 20))

    def test_scan_journal_summary(self, tmp_path):
        directory = str(tmp_path / "wal")
        self._journal_with(directory, 10)
        stats = scan_journal(directory)
        assert stats.records == 10
        assert stats.replayed_samples == 10

    def test_mid_segment_corruption_drops_rest_of_segment(self, tmp_path):
        cfg = JournalConfig(dir=str(tmp_path / "wal"),
                            segment_max_bytes=512, group_bytes=128)
        wal = WriteAheadJournal(cfg)
        for i in range(40):
            wal.append_many("s", np.array([float(i)]), np.array([1.0]))
        wal.flush()
        wal.close()
        segs = sorted(
            f for f in os.listdir(cfg.dir) if f.endswith(".seg")
        )
        assert len(segs) >= 3
        first = os.path.join(cfg.dir, segs[0])
        with open(first, "r+b") as fh:
            fh.seek(os.path.getsize(first) // 2)
            byte = fh.read(1)
            fh.seek(-1, os.SEEK_CUR)
            fh.write(bytes([byte[0] ^ 0xFF]))
        records, stats = _drain(cfg.dir)
        assert stats.corrupt_records >= 1
        assert stats.dropped_bytes > 0
        # Later segments still replay: the scan resumes past the damage.
        assert any(r[1] > 10 for r in records)

    def test_tear_empty_journal_raises(self, tmp_path):
        with pytest.raises(JournalError):
            tear_wal_tail(str(tmp_path / "nope"))


# ---------------------------------------------------------------------------
# Store-level crash recovery
# ---------------------------------------------------------------------------
class TestStoreRecovery:
    def test_recovery_replays_exact_bits(self, tmp_path):
        cfg = JournalConfig(dir=str(tmp_path / "wal"))
        store = TimeSeriesStore(journal=cfg)
        rng = np.random.default_rng(5)
        names = tuple(f"m.s{i}" for i in range(6))
        for t in range(40):
            store.ingest("t", SampleBatch(float(t), names, rng.normal(size=6)))
        extra_t = np.arange(100.0, 150.0)
        store.append_many("m.extra", extra_t, rng.normal(size=50))
        store.flush()
        store.flush_journal()
        reference = {n: store.query(n) for n in store.names()}
        del store  # crash: no close(), the journal is the only copy

        recovered = TimeSeriesStore(journal=cfg)
        assert recovered.recovery.replayed_samples == 40 * 6 + 50
        assert sorted(recovered.names()) == sorted(reference)
        for name, (t, v) in reference.items():
            rt, rv = recovered.query(name)
            assert _bits_equal(rt, t) and _bits_equal(rv, v)
        recovered.close()

    def test_recovery_tolerates_torn_tail(self, tmp_path):
        cfg = JournalConfig(dir=str(tmp_path / "wal"))
        store = TimeSeriesStore(journal=cfg)
        t = np.arange(0.0, 100.0)
        store.append_many("a", t, t * 2.0)
        store.sync_journal()  # acked: must survive anything short of disk loss
        store.append_many("b", t, t)
        store.flush_journal()
        del store
        tear_wal_tail(cfg.dir, nbytes=8)  # tear lands in the unsynced tail

        recovered = TimeSeriesStore(journal=cfg)
        assert recovered.recovery.torn_tail_drops == 1
        rt, rv = recovered.query("a")
        assert _bits_equal(rt, t) and _bits_equal(rv, t * 2.0)
        assert "b" not in recovered.names()  # unacked write, honestly gone
        recovered.close()

    def test_journal_mark_durable_after_save(self, tmp_path):
        cfg = JournalConfig(dir=str(tmp_path / "wal"))
        store = TimeSeriesStore(journal=cfg)
        t = np.arange(0.0, 50.0)
        store.append_many("a", t, t)
        store.flush()
        save_store(store, str(tmp_path / "archive.npz"))
        store.journal_mark_durable()
        # One append_many call is one journal record; the watermark covers it.
        assert read_watermark(cfg.dir) >= 1
        store.close()
        # A reopen replays nothing: the archive owns the data now.
        fresh = TimeSeriesStore(journal=cfg)
        assert fresh.recovery.replayed_samples == 0
        assert fresh.recovery.skipped_records >= 0
        fresh.close()

    def test_acked_batches_after_save_watermark_recover(self, tmp_path):
        # Batches journaled after a save reference NAMES interned before
        # the save's durable watermark; they must resolve on recovery, not
        # drop silently as replay conflicts.
        cfg = JournalConfig(dir=str(tmp_path / "wal"))
        store = TimeSeriesStore(journal=cfg)
        names = ("d.a", "d.b")
        rng = np.random.default_rng(7)
        for t in range(10):
            store.ingest("t", SampleBatch(float(t), names, rng.normal(size=2)))
        store.flush()
        save_store(store, str(tmp_path / "archive.npz"))  # moves watermark
        for t in range(10, 20):
            store.ingest("t", SampleBatch(float(t), names, rng.normal(size=2)))
        store.flush()
        reference = {n: store.query(n) for n in names}
        store.sync_journal()
        del store  # crash: no close()

        recovered = TimeSeriesStore(journal=cfg)
        assert recovered.recovery.replay_conflicts == 0
        assert recovered.recovery.replayed_samples == 10 * 2
        for name in names:
            rt, rv = recovered.query(name)
            t, v = reference[name]
            assert _bits_equal(rt, t[10:]) and _bits_equal(rv, v[10:])
        recovered.close()

    def test_names_survive_segment_pruning(self, tmp_path):
        # Small segments so the save's mark_durable actually deletes the
        # segment holding the original NAMES interning record.
        cfg = JournalConfig(dir=str(tmp_path / "wal"),
                            segment_max_bytes=512, group_bytes=64)
        store = TimeSeriesStore(journal=cfg)
        names = ("p.a", "p.b", "p.c")
        rng = np.random.default_rng(11)
        for t in range(60):
            store.ingest("t", SampleBatch(float(t), names, rng.normal(size=3)))
        store.flush()
        before = len([f for f in os.listdir(cfg.dir) if f.endswith(".seg")])
        save_store(store, str(tmp_path / "archive.npz"))
        after = len([f for f in os.listdir(cfg.dir) if f.endswith(".seg")])
        assert after < before  # the early segments really were pruned
        for t in range(60, 80):
            store.ingest("t", SampleBatch(float(t), names, rng.normal(size=3)))
        store.flush()
        reference = {n: store.query(n) for n in names}
        store.sync_journal()
        del store  # crash: no close()

        recovered = TimeSeriesStore(journal=cfg)
        assert recovered.recovery.replay_conflicts == 0
        for name in names:
            rt, rv = recovered.query(name)
            t, v = reference[name]
            assert _bits_equal(rt, t[60:]) and _bits_equal(rv, v[60:])
        recovered.close()


# ---------------------------------------------------------------------------
# Checksummed persistence (v4) and the pre-v4 typed error path
# ---------------------------------------------------------------------------
class TestChecksummedPersistence:
    def _store(self):
        store = TimeSeriesStore()
        rng = np.random.default_rng(9)
        t = np.arange(0.0, 500.0)
        for i in range(8):
            store.append_many(f"rack.s{i}", t, rng.normal(100.0, 3.0, t.size))
        store.flush()
        return store

    def test_bitflip_degrades_and_counts(self, tmp_path):
        store = self._store()
        path = str(tmp_path / "a.npz")
        save_store(store, path)
        corrupt_artifact(path, mode="bitflip", rng=np.random.default_rng(1))
        loaded = load_store(path)
        assert loaded.corrupt_artifacts >= 1
        snap = loaded.metrics.snapshot()
        assert snap["telemetry.durability.corrupt_artifacts"] >= 1.0
        # Every series that did load is bit-identical to the original.
        for name in loaded.names():
            t, v = loaded.query(name)
            ot, ov = store.query(name)
            assert _bits_equal(t, ot) and _bits_equal(v, ov)

    def test_truncation_is_a_typed_refusal(self, tmp_path):
        store = self._store()
        path = str(tmp_path / "a.npz")
        save_store(store, path)
        corrupt_artifact(path, mode="truncate",
                         rng=np.random.default_rng(2))
        with pytest.raises((PersistenceError, Exception)) as err:
            loaded = load_store(path)
            # Severe truncation may still parse: then it must degrade,
            # never serve silently-wrong series.
            assert loaded.corrupt_artifacts >= 1
            raise PersistenceError("degraded as required", path=path)
        if isinstance(err.value, PersistenceError):
            assert err.value.path == path

    def test_pre_v4_damage_raises_with_path_and_offset(self, tmp_path):
        import json as _json

        from repro.telemetry.persistence import _META_KEY, _encode_meta

        store = self._store()
        v4 = str(tmp_path / "v4.npz")
        save_store(store, v4)
        # Rewrite as a v2 archive: no checksums, pre-durability format.
        with np.load(v4) as z:
            data = {k: z[k] for k in z.files if not k.startswith("__crc__")}
        meta = _json.loads(bytes(data[_META_KEY]).decode("utf-8"))
        meta["version"] = 2
        meta.pop("checksums", None)
        data[_META_KEY] = _encode_meta(meta)
        v2 = str(tmp_path / "v2.npz")
        np.savez_compressed(v2, **data)
        assert load_store(v2).names()  # intact v2 loads fine

        # Flip a byte inside one member's compressed payload.
        victim = "rack.s3::v.npy"
        with zipfile.ZipFile(v2) as zf:
            info = zf.getinfo(victim)
        offset = info.header_offset + 80  # inside the member's data
        with open(v2, "r+b") as fh:
            fh.seek(offset)
            byte = fh.read(1)
            fh.seek(offset)
            fh.write(bytes([byte[0] ^ 0x01]))
        with pytest.raises(PersistenceError) as err:
            loaded = load_store(v2)
            loaded.query("rack.s3")
        assert err.value.path == v2

    def test_sharded_member_damage_degrades_per_member(self, tmp_path):
        sharded = ShardedStore(shards=3)
        rng = np.random.default_rng(3)
        names = tuple(f"n.s{i}" for i in range(12))
        for t in range(50):
            sharded.ingest(
                "t", SampleBatch(float(t), names, rng.normal(size=12))
            )
        sharded.flush()
        path = str(tmp_path / "a.npz")
        save_store(sharded, path)
        victim = str(tmp_path / "a.shard1.npz")
        corrupt_artifact(victim, mode="truncate",
                         rng=np.random.default_rng(4))
        loaded = load_store(path)
        assert loaded.corrupt_artifacts >= 1
        # Healthy shards' series are intact and exact.
        healthy = [n for n in names if sharded.shard_of(n) != 1]
        assert healthy
        for name in healthy:
            t, v = loaded.query(name)
            ot, ov = sharded.query(name)
            assert _bits_equal(t, ot) and _bits_equal(v, ov)

    def test_save_is_atomic_over_existing_archive(self, tmp_path):
        from repro.ioutil import commit_hook

        store = self._store()
        path = str(tmp_path / "a.npz")
        save_store(store, path)
        before = os.path.getsize(path)

        def bomb(dest):
            raise RuntimeError("power cut")

        other = TimeSeriesStore()
        other.append_many("x", np.arange(3.0), np.ones(3))
        with commit_hook(bomb):
            with pytest.raises(RuntimeError):
                save_store(other, path)
        assert os.path.getsize(path) == before  # old archive untouched
        assert sorted(load_store(path).names()) == sorted(store.names())
        leftovers = [f for f in os.listdir(tmp_path) if f.endswith(".tmp")]
        assert leftovers == []


# ---------------------------------------------------------------------------
# Anti-entropy repair and the loss-accounting audit
# ---------------------------------------------------------------------------
class TestAntiEntropy:
    W = 100.0

    def _diverged_set(self):
        """Primary+replica where the replica missed two full windows."""
        rs = ReplicaSet(0, replication=1)
        rng = np.random.default_rng(21)
        names = ("p.a", "p.b")
        t = 0.0
        # Both members share the first three windows.
        for _ in range(30):
            rs.ingest("t", SampleBatch(t, names, rng.normal(size=2)))
            t += 10.0
        rs.flush()
        rs.mark_down(1)
        missed = 0
        while t < 500.0:  # replica misses windows [300, 400) and [400, 500)
            rs.ingest("t", SampleBatch(t, names, rng.normal(size=2)))
            missed += len(names)
            t += 10.0
        rs.flush()
        rs.revive(1, resync=False)
        # One write past the divergent span closes those windows.
        rs.ingest("t", SampleBatch(t, names, rng.normal(size=2)))
        rs.flush()
        return rs, missed

    def test_repairs_only_differing_windows(self):
        rs, _ = self._diverged_set()
        summary = rs.anti_entropy(window_s=self.W, now=500.0)
        assert summary["diverged_windows"] == 4  # 2 windows x 2 series
        assert summary["repaired_windows"] == 4
        assert summary["repaired_samples"] > 0
        # Replica now bit-matches the primary over the repaired span.
        for name in ("p.a", "p.b"):
            pt, pv = rs.members[0].query(name, until=500.0)
            st, sv = rs.members[1].query(name, until=500.0)
            assert _bits_equal(pt, st) and _bits_equal(pv, sv)
        again = rs.anti_entropy(window_s=self.W, now=500.0)
        assert again["diverged_windows"] == 0

    def test_repair_heals_loss_accounting(self):
        # Satellite audit: a repaired window must not still be counted as
        # lost — missed_writes shrinks by exactly the samples restored.
        rs, missed = self._diverged_set()
        assert rs.missed_writes[1] == missed
        rs.anti_entropy(window_s=self.W, now=500.0)
        # Everything inside closed windows was healed; only the samples
        # landed past the last closed boundary can still be outstanding.
        assert rs.missed_writes[1] < missed
        assert rs.missed_writes[1] == 0
        assert rs.repaired_samples[1] >= missed

    def test_resync_revive_resets_both_loss_counters(self):
        rs = ReplicaSet(0, replication=1)
        rng = np.random.default_rng(22)
        rs.degrade(1.0, np.random.default_rng(1), member=1)
        for t in range(20):
            rs.ingest("t", SampleBatch(float(t), ("a",), rng.normal(size=1)))
        rs.degrade(0.0, np.random.default_rng(1), member=1)
        rs.mark_down(1)
        for t in range(20, 30):
            rs.ingest("t", SampleBatch(float(t), ("a",), rng.normal(size=1)))
        assert rs.dropped_writes[1] > 0 and rs.missed_writes[1] > 0
        rs.revive(1, resync=True)
        # Audit: a full resync healed everything — neither counter may
        # keep charging the member for samples it now holds.
        assert rs.dropped_writes[1] == 0
        assert rs.missed_writes[1] == 0
        pt, pv = rs.members[0].query("a")
        st, sv = rs.members[1].query("a")
        assert _bits_equal(pt, st) and _bits_equal(pv, sv)

    def test_counters_exported_in_metrics(self):
        rs, _ = self._diverged_set()
        rs.anti_entropy(window_s=self.W, now=500.0)
        snap = rs.metrics_registry("telemetry.replica").snapshot()
        assert snap["telemetry.replica.repaired_windows"] >= 1.0
        assert snap["telemetry.replica.diverged_windows"] >= 1.0


# ---------------------------------------------------------------------------
# Worker-process WAL recovery (the parallel runtime path)
# ---------------------------------------------------------------------------
class TestWorkerWalRecovery:
    def _ingest(self, store, names, rng, start, count):
        for t in range(start, start + count):
            store.ingest(
                "t", SampleBatch(float(t), names, rng.normal(size=len(names)))
            )

    def test_crash_restart_loses_no_acked_samples(self, tmp_path):
        names = tuple(f"w.s{i}" for i in range(8))
        rng = np.random.default_rng(31)
        store = ShardedStore(
            shards=2, replication=1, parallel=True,
            journal=str(tmp_path / "wal"),
        )
        try:
            self._ingest(store, names, rng, 0, 60)
            store.flush()
            store.sync_journal()
            acked = {n: store.query(n) for n in names}
            self._ingest(store, names, rng, 60, 20)  # unacked tail
            for shard in range(2):
                store.runtime.crash_worker(shard)
                store.runtime.restart_worker(shard)
            store.flush()
            for name in names:
                t, v = store.query(name)
                at, av = acked[name]
                assert at.size <= t.size
                assert _bits_equal(t[: at.size], at)
                assert _bits_equal(v[: at.size], av)
        finally:
            store.close()

    def test_torn_wal_tail_recovers_acked(self, tmp_path):
        names = tuple(f"w.s{i}" for i in range(8))
        rng = np.random.default_rng(32)
        base = str(tmp_path / "wal")
        store = ShardedStore(
            shards=2, replication=1, parallel=True, journal=base,
        )
        try:
            self._ingest(store, names, rng, 0, 60)
            store.flush()
            store.sync_journal()
            acked = {n: store.query(n) for n in names}
            self._ingest(store, names, rng, 60, 20)
            store.runtime.crash_worker(0)
            tear_wal_tail(os.path.join(base, "shard0", "wal"), nbytes=16)
            store.runtime.restart_worker(0)
            store.flush()
            for name in names:
                t, v = store.query(name)
                at, av = acked[name]
                assert _bits_equal(t[: at.size], at)
                assert _bits_equal(v[: at.size], av)
        finally:
            store.close()

    def test_checkpoint_then_crash_keeps_post_checkpoint_batches(
        self, tmp_path
    ):
        # After a checkpoint advances the WAL watermark (and prunes
        # segments), post-checkpoint batches reference NAMES interned
        # before it; a restarted worker must still resolve and replay them.
        from repro.telemetry.runtime import RuntimeConfig

        names = tuple(f"w.s{i}" for i in range(6))
        rng = np.random.default_rng(34)
        store = ShardedStore(
            shards=2, replication=1, parallel=True,
            journal=str(tmp_path / "wal"),
            parallel_config=RuntimeConfig(
                durability="wal",
                checkpoint_dir=str(tmp_path / "ckpt"),
            ),
        )
        try:
            self._ingest(store, names, rng, 0, 40)
            store.flush()
            store.runtime.checkpoint()  # snapshot + watermark + prune
            self._ingest(store, names, rng, 40, 30)
            store.flush()
            store.sync_journal()
            acked = {n: store.query(n) for n in names}
            for shard in range(2):
                store.runtime.crash_worker(shard)
                store.runtime.restart_worker(shard)
            store.flush()
            for name in names:
                t, v = store.query(name)
                at, av = acked[name]
                assert t.size >= at.size
                assert _bits_equal(t[: at.size], at)
                assert _bits_equal(v[: at.size], av)
        finally:
            store.close()

    def test_cold_reopen_replays_journals(self, tmp_path):
        names = tuple(f"w.s{i}" for i in range(4))
        rng = np.random.default_rng(33)
        base = str(tmp_path / "wal")
        store = ShardedStore(
            shards=2, replication=1, parallel=True, journal=base,
        )
        store.ingest("t", SampleBatch(1.0, names, rng.normal(size=4)))
        store.flush()
        reference = {n: store.query(n) for n in names}
        store.close()

        reopened = ShardedStore(
            shards=2, replication=1, parallel=True, journal=base,
        )
        try:
            reopened.flush()
            assert reopened.recovered_samples >= len(names)
            for name in names:
                t, v = reopened.query(name)
                rt, rv = reference[name]
                assert _bits_equal(t, rt) and _bits_equal(v, rv)
        finally:
            reopened.close()


# ---------------------------------------------------------------------------
# Supervised anti-entropy sweeps
# ---------------------------------------------------------------------------
class TestSupervisedAntiEntropy:
    def test_watchdog_round_robins_replica_sets(self):
        from repro.oda import DataCenter

        dc = DataCenter(
            seed=17, racks=1, nodes_per_rack=4, shards=2, replication=1,
            telemetry_period=120.0,
        )
        supervisor = dc.enable_supervision()
        supervisor.watch_replicas(dc.store, window_s=600.0)
        assert len(supervisor.replica_watches) == 1
        supervisor.watch_replicas(dc.store)  # idempotent per store
        assert len(supervisor.replica_watches) == 1
        dc.generate_workload(days=0.05, jobs_per_day=24)
        dc.run(seconds=0.05 * 86400.0)
        sweeps = sum(rs.anti_entropy_sweeps for rs in dc.store.replica_sets)
        assert sweeps >= 2  # the watchdog swept more than one set
        snap = supervisor.metrics_registry.snapshot()
        assert snap["oda.supervisor.replica_watches"] == 1.0
