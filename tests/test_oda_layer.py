"""Tests for the ODA composition layer: capabilities, pipelines, systems, KPIs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import AnalyticsType, GridCell, Pillar
from repro.errors import ConfigurationError
from repro.oda import (
    DataCenter,
    DerivedMetricStage,
    MultiPillarOrchestrator,
    ODACapability,
    ODASystem,
    StreamingDetectorStage,
    build_clustercockpit_like,
    build_eni_like,
    build_geopm_like,
    build_llnl_like,
    capability,
    collect_kpis,
    compare_kpis,
)
from repro.telemetry import MessageBus, SampleBatch


class TestCapability:
    def test_explicit_cell(self):
        cap = ODACapability(
            "x", GridCell(AnalyticsType.PREDICTIVE, Pillar.APPLICATIONS), lambda: 42
        )
        assert cap() == 42
        assert cap.invocations == 1
        assert cap.last_result == 42

    def test_auto_classification(self):
        cap = capability(
            "cooling dashboards",
            run=lambda: None,
            description="dashboards visualizing facility cooling data",
        )
        assert cap.cell.analytics_type is AnalyticsType.DESCRIPTIVE
        assert cap.cell.pillar is Pillar.BUILDING_INFRASTRUCTURE


class TestStreamingStages:
    def test_derived_metric_stage_republishes(self):
        bus = MessageBus()
        seen = {}
        bus.subscribe("derived.*", lambda t, b: seen.update(b.as_dict()))
        DerivedMetricStage(
            bus, "raw", "derived.pue",
            inputs=("site", "it"),
            compute=lambda v: {"derived.pue": v["site"] / v["it"]},
        )
        bus.publish("raw", SampleBatch.from_mapping(0.0, {"site": 120.0, "it": 100.0}))
        assert seen["derived.pue"] == pytest.approx(1.2)

    def test_derived_stage_skips_incomplete_batches(self):
        bus = MessageBus()
        stage = DerivedMetricStage(
            bus, "raw", "out", inputs=("a", "b"), compute=lambda v: {"x": 1.0}
        )
        bus.publish("raw", SampleBatch.from_mapping(0.0, {"a": 1.0}))
        assert stage.emitted == 0

    def test_detector_stage_counts_breaches(self):
        bus = MessageBus()
        stage = StreamingDetectorStage(
            bus, "raw", "scores", metrics=("m",), alpha=0.2, threshold=3.0
        )
        for t in range(50):
            bus.publish("raw", SampleBatch.from_mapping(float(t), {"m": 1.0}))
        bus.publish("raw", SampleBatch.from_mapping(51.0, {"m": 100.0}))
        assert stage.breaches >= 1

    def test_stage_stop(self):
        bus = MessageBus()
        stage = DerivedMetricStage(bus, "raw", "out", inputs=("a",),
                                   compute=lambda v: {"x": v["a"]})
        stage.stop()
        bus.publish("raw", SampleBatch.from_mapping(0.0, {"a": 1.0}))
        assert stage.processed == 0


class TestODASystem:
    @pytest.fixture
    def dc(self):
        return DataCenter(seed=1, racks=1, nodes_per_rack=4)

    def test_footprint_and_coverage(self, dc):
        system = ODASystem("s", dc)
        system.add_capability(ODACapability(
            "a", GridCell(AnalyticsType.DESCRIPTIVE, Pillar.APPLICATIONS), lambda: None
        ))
        system.add_capability(ODACapability(
            "b", GridCell(AnalyticsType.PRESCRIPTIVE, Pillar.SYSTEM_HARDWARE), lambda: None
        ))
        profile = system.footprint()
        assert profile.multi_pillar and profile.multi_type
        assert system.coverage() == pytest.approx(2 / 16)

    def test_duplicate_capability_rejected(self, dc):
        system = ODASystem("s", dc)
        cap = ODACapability("a", GridCell(AnalyticsType.DESCRIPTIVE, Pillar.APPLICATIONS), lambda: None)
        system.add_capability(cap)
        with pytest.raises(ConfigurationError):
            system.add_capability(ODACapability(
                "a", GridCell(AnalyticsType.DESCRIPTIVE, Pillar.APPLICATIONS), lambda: None
            ))

    def test_roadmap_respects_existing_coverage(self, dc):
        system = ODASystem("s", dc)
        system.add_capability(ODACapability(
            "a", GridCell(AnalyticsType.DESCRIPTIVE, Pillar.BUILDING_INFRASTRUCTURE), lambda: None
        ))
        steps = system.roadmap(horizon=3)
        assert all(s.cell != system.covered_cells()[0] for s in steps)

    def test_describe_renders(self, dc):
        system = ODASystem("s", dc)
        system.add_capability(ODACapability(
            "a", GridCell(AnalyticsType.DESCRIPTIVE, Pillar.APPLICATIONS), lambda: None
        ))
        assert "Capabilities:" in system.describe()


class TestKpiCollection:
    @pytest.fixture(scope="class")
    def ran(self):
        dc = DataCenter(seed=5, racks=1, nodes_per_rack=8)
        dc.generate_workload(days=0.5, jobs_per_day=60)
        dc.run(days=0.5)
        return dc

    def test_collect_kpis_physical(self, ran):
        kpis = collect_kpis(ran)
        assert kpis.pue > 1.0
        assert kpis.site_energy_kwh > kpis.it_energy_kwh
        assert kpis.completed_jobs >= 0
        assert np.isfinite(kpis.energy_per_work_kwh) or kpis.completed_jobs == 0

    def test_compare_kpis_signs(self, ran):
        kpis = collect_kpis(ran)
        diff = compare_kpis(kpis, kpis)
        assert diff["pue"] == pytest.approx(0.0)
        assert diff["site_energy"] == pytest.approx(0.0)

    def test_rows_renderable(self, ran):
        rows = collect_kpis(ran).rows()
        assert any("PUE" == k for k, _ in rows)


class TestDeployments:
    @pytest.fixture(scope="class")
    def ran_dc(self):
        dc = DataCenter(seed=6, racks=2, nodes_per_rack=8)
        dc.generate_workload(days=0.5, jobs_per_day=60)
        systems = {
            "eni": build_eni_like(dc),
            "llnl": build_llnl_like(dc),
            "geopm": build_geopm_like(dc),
            "cockpit": build_clustercockpit_like(dc),
        }
        dc.run(days=0.5)
        return dc, systems

    def test_footprints_match_published_systems(self, ran_dc):
        _, systems = ran_dc
        from repro.core import figure3_systems

        published = {s.name: s for s in figure3_systems()}
        assert systems["eni"].footprint().cells == published["Bortot et al. (ENI)"].cells
        assert systems["llnl"].footprint().cells == published["LLNL power forecasting"].cells
        assert systems["geopm"].footprint().cells == published["GEOPM"].cells
        assert systems["cockpit"].footprint().cells == published["ClusterCockpit"].cells

    def test_llnl_capabilities_run(self, ran_dc):
        dc, systems = ran_dc
        dashboard = systems["llnl"].run_capability("site power dashboard", 0.0, dc.sim.now)
        assert "site power" in dashboard
        ramps = systems["llnl"].run_capability(
            "power ramp forecasting", 0.0, dc.sim.now, 4 * 3600.0, 1e9
        )
        assert ramps == []  # absurd threshold: nothing to notify

    def test_eni_capabilities_run(self, ran_dc):
        dc, systems = ran_dc
        anomalies = systems["eni"].run_capability(
            "infrastructure anomaly detection", 0.0, dc.sim.now
        )
        assert isinstance(anomalies, list)
        setpoint = systems["eni"].run_capability(
            "cooling setpoint optimization", 0.0, dc.sim.now
        )
        assert 10.0 <= setpoint <= 40.0

    def test_cockpit_dashboard_for_job(self, ran_dc):
        dc, systems = ran_dc
        started = [j for j in dc.scheduler.jobs.values() if j.start_time is not None]
        assert started
        out = systems["cockpit"].run_capability("job-level dashboards", started[0].job_id)
        assert "cpu" in out


class TestOrchestrator:
    def test_orchestrator_acts_and_traces(self):
        dc = DataCenter(seed=9, racks=1, nodes_per_rack=8)
        dc.generate_workload(days=0.3, jobs_per_day=120)
        orchestrator = MultiPillarOrchestrator(dc)
        orchestrator.attach()
        dc.run(days=0.3)
        assert orchestrator.actions, "orchestrator should have actuated something"
        kinds = {a.knob for a in orchestrator.actions}
        assert kinds <= {"supply_setpoint", "frequency_bias"}
        assert dc.trace.select(kind="control_action")

    def test_recommend_only_logs_cooling_without_actuating(self):
        dc = DataCenter(seed=9, racks=1, nodes_per_rack=8)
        dc.generate_workload(days=0.3, jobs_per_day=120)
        orchestrator = MultiPillarOrchestrator(dc, recommend_only=True)
        initial_setpoint = orchestrator.manager.current
        orchestrator.attach()
        dc.run(days=0.3)
        # Recommendations are logged (previously silently dropped) ...
        cooling = [a for a in orchestrator.actions if a.knob == "supply_setpoint"]
        assert cooling, "recommend-only mode must still log cooling decisions"
        assert all(
            orchestrator.manager.lo <= a.value <= orchestrator.manager.hi
            for a in cooling
        )
        # ... but nothing touched the plant.
        assert orchestrator.manager.actuations == 0
        assert orchestrator.manager.current == initial_setpoint

    def test_recommend_only_matches_actuating_decisions(self):
        def run(recommend_only):
            dc = DataCenter(seed=9, racks=1, nodes_per_rack=8)
            dc.generate_workload(days=0.2, jobs_per_day=120)
            orch = MultiPillarOrchestrator(dc, recommend_only=recommend_only)
            orch.attach()
            dc.run(days=0.2)
            return orch

        acting, advising = run(False), run(True)
        # The first recommendation matches the first actuation (identical
        # state up to that point); afterwards trajectories may diverge.
        first_act = next(
            a for a in acting.actions if a.knob == "supply_setpoint"
        )
        first_rec = next(
            a for a in advising.actions if a.knob == "supply_setpoint"
        )
        assert first_rec.time == first_act.time
        assert first_rec.value == first_act.value
