"""Tests for the distributed storage tier: sharding, replication, failover,
federation, shard-fault injection, and single-store equivalence."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, ShardDownError, UnknownMetricError
from repro.oda import DataCenter
from repro.simulation.engine import Simulator
from repro.telemetry import (
    AGGREGATIONS,
    VECTORIZED_AGGREGATIONS,
    HashPartitioner,
    MessageBus,
    SampleBatch,
    ShardFault,
    ShardFaultKind,
    ShardedStore,
    TelemetrySystem,
    TimeSeriesStore,
)
from repro.telemetry.distributed.faults import FAULT_TOPIC

NAMES = tuple(f"cluster.rack{r}.node{n}.power" for r in range(2) for n in range(6))


def make_batches(n_batches: int = 50, names: tuple = NAMES, seed: int = 0):
    rng = np.random.default_rng(seed)
    return [
        SampleBatch(float(t), names, rng.random(len(names)))
        for t in range(n_batches)
    ]


def fill_pair(shards: int, replication: int = 0, batches=None):
    """A single store and a sharded store fed identical batches."""
    batches = batches if batches is not None else make_batches()
    single = TimeSeriesStore()
    sharded = ShardedStore(shards=shards, replication=replication)
    for batch in batches:
        single.ingest("t", batch)
        sharded.ingest("t", batch)
    return single, sharded


class TestPartitioner:
    def test_deterministic_and_in_range(self):
        p = HashPartitioner(8)
        for name in NAMES:
            shard = p(name)
            assert 0 <= shard < 8
            assert p(name) == shard  # stable
        assert HashPartitioner(8)(NAMES[0]) == p(NAMES[0])  # across instances

    def test_single_shard_maps_everything_to_zero(self):
        p = HashPartitioner(1)
        assert {p(n) for n in NAMES} == {0}

    def test_rejects_bad_shard_count(self):
        with pytest.raises(ConfigurationError):
            HashPartitioner(0)


class TestShardedStoreBasics:
    def test_series_land_on_exactly_one_shard(self):
        _, sharded = fill_pair(shards=4)
        for name in NAMES:
            holders = [
                i
                for i, rs in enumerate(sharded.replica_sets)
                if name in rs.primary
            ]
            assert holders == [sharded.shard_of(name)]

    def test_names_and_select_federate(self):
        single, sharded = fill_pair(shards=4)
        assert sharded.names() == single.names()
        assert sharded.select("cluster.rack1.*") == single.select("cluster.rack1.*")
        assert len(sharded) == len(single)
        assert NAMES[0] in sharded

    def test_unknown_metric_raises(self):
        _, sharded = fill_pair(shards=2)
        with pytest.raises(UnknownMetricError):
            sharded.query("no.such.metric")

    def test_rejects_bad_topology(self):
        with pytest.raises(ConfigurationError):
            ShardedStore(shards=0)
        with pytest.raises(ConfigurationError):
            ShardedStore(shards=2, replication=-1)

    def test_misbehaving_partitioner_detected(self):
        sharded = ShardedStore(shards=2, partitioner=lambda name: 7)
        # Modulo folds out-of-range ids back into range consistently.
        assert sharded.shard_of("a") == 1

    def test_append_paths_route(self):
        sharded = ShardedStore(shards=3)
        sharded.append("m.one", 0.0, 1.0)
        sharded.append_many("m.two", np.arange(5.0), np.ones(5))
        assert sharded.latest("m.one") == (0.0, 1.0)
        times, _ = sharded.query("m.two")
        assert times.size == 5
        assert sharded.value_at("m.two", 10.0) == 1.0
        assert sharded.latest_time == 4.0

    def test_per_shard_config_applies(self):
        sharded = ShardedStore(shards=2, retention=10.0,
                               retention_slack=0.0, flush_threshold=4)
        for rs in sharded.replica_sets:
            assert rs.primary.retention == 10.0
            assert rs.primary.flush_threshold == 4
        t = np.arange(0.0, 100.0)
        sharded.append_many("a.b", t, t)
        times, _ = sharded.query("a.b")
        assert times[0] >= 89.0  # retention enforced on the owning shard


class TestReplicationAndFailover:
    def test_replicas_hold_identical_data(self):
        _, sharded = fill_pair(shards=2, replication=2)
        sharded.flush()
        for rs in sharded.replica_sets:
            ref = rs.primary
            for member in rs.members[1:]:
                assert member.names() == ref.names()
                for name in ref.names():
                    t0, v0 = ref.query(name)
                    t1, v1 = member.query(name)
                    np.testing.assert_array_equal(t0, t1)
                    np.testing.assert_array_equal(v0, v1)

    def test_read_failover_preserves_data(self):
        single, sharded = fill_pair(shards=4, replication=1)
        victim = sharded.shard_of(NAMES[0])
        sharded.replica_sets[victim].mark_down(0)
        t0, v0 = single.query(NAMES[0])
        t1, v1 = sharded.query(NAMES[0])
        np.testing.assert_array_equal(t0, t1)
        np.testing.assert_array_equal(v0, v1)
        assert sharded.replica_sets[victim].failover_reads > 0

    def test_all_members_down_read_raises_write_counts(self):
        _, sharded = fill_pair(shards=2, replication=0)
        name = NAMES[0]
        victim = sharded.shard_of(name)
        rs = sharded.replica_sets[victim]
        rs.mark_down(0)
        with pytest.raises(ShardDownError):
            sharded.query(name)
        before = rs.lost_batches
        sharded.ingest("t", SampleBatch(99.0, (name,), np.ones(1)))
        assert rs.lost_batches == before + 1
        assert rs.lost_samples >= 1

    def test_down_member_misses_writes_until_resync(self):
        _, sharded = fill_pair(shards=1, replication=1)
        rs = sharded.replica_sets[0]
        rs.mark_down(0)
        late = SampleBatch(100.0, NAMES, np.full(len(NAMES), 7.0))
        sharded.ingest("t", late)
        assert rs.missed_writes[0] == len(NAMES)
        # Without resync the revived primary serves stale data.
        rs.revive(0, resync=False)
        t, _ = sharded.query(NAMES[0])
        assert 100.0 not in t
        # With resync it is rebuilt from the healthy replica.
        rs.mark_down(0)
        rs.revive(0, resync=True)
        t, v = sharded.query(NAMES[0])
        assert t[-1] == 100.0 and v[-1] == 7.0
        assert rs.missed_writes[0] == 0

    def test_degrade_drops_writes(self):
        sharded = ShardedStore(shards=1, replication=1)
        rs = sharded.replica_sets[0]
        rs.degrade(1.0, np.random.default_rng(0), member=1)
        for batch in make_batches(10):
            sharded.ingest("t", batch)
        assert rs.dropped_writes[1] == 10 * len(NAMES)
        assert len(rs.members[1]) == 0
        assert len(rs.primary) == len(NAMES)
        rs.degrade(0.0, np.random.default_rng(0), member=1)
        sharded.ingest("t", SampleBatch(50.0, NAMES, np.ones(len(NAMES))))
        rs.members[1].flush()
        assert len(rs.members[1]) == len(NAMES)


class TestShardFault:
    def test_kill_and_revive_record_events(self):
        _, sharded = fill_pair(shards=2, replication=1)
        bus = MessageBus()
        seen = []
        bus.subscribe(FAULT_TOPIC, lambda t, b: seen.append(b))
        fault = ShardFault(sharded, bus=bus)
        fault.kill(1, now=5.0)
        fault.revive(1, now=9.0)
        assert [e.kind for e in fault.events] == [
            ShardFaultKind.KILL, ShardFaultKind.REVIVE,
        ]
        assert fault.counts[ShardFaultKind.KILL] == 1
        assert len(seen) == 2 and seen[0].time == 5.0

    def test_rejects_bad_targets(self):
        _, sharded = fill_pair(shards=2)
        fault = ShardFault(sharded)
        with pytest.raises(ConfigurationError):
            fault.kill(9)
        with pytest.raises(ConfigurationError):
            fault.kill(0, member=3)

    def test_scheduled_kill_fires_mid_run(self):
        telemetry = TelemetrySystem(shards=2, replication=1)
        sim = Simulator()
        agent = telemetry.new_agent("a", period=10.0)
        from repro.telemetry import Sampler

        agent.add_sampler(
            Sampler("t", lambda now: {n: float(now) for n in NAMES})
        )
        agent.start(sim)
        fault = ShardFault(telemetry.store, bus=telemetry.bus)
        fault.schedule_kill(sim, at=50.0, shard=0)
        sim.run(100.0)
        assert fault.events and fault.events[0].time == 50.0
        # Collection continued through the kill and queries still work.
        for name in NAMES:
            times, _ = telemetry.store.query(name)
            assert times[-1] == 100.0


class TestHealthMetrics:
    def test_shard_subtree_counters(self):
        _, sharded = fill_pair(shards=2, replication=1)
        sharded.replica_sets[0].mark_down(0)
        health = sharded.health_metrics()
        assert health["telemetry.shard.count"] == 2.0
        assert health["telemetry.shard.replication"] == 1.0
        assert health["telemetry.shard.down_members"] == 1.0
        assert health["telemetry.shard.0.down_members"] == 1.0
        per_shard_series = (
            health["telemetry.shard.0.series"] + health["telemetry.shard.1.series"]
        )
        assert per_shard_series == float(len(NAMES))

    def test_health_monitor_publishes_shard_metrics(self):
        telemetry = TelemetrySystem(shards=2, replication=1, health_period=30.0)
        sim = Simulator()
        telemetry.health.start(sim)
        sim.run(65.0)
        times, values = telemetry.store.query("telemetry.shard.count")
        assert times.size >= 2
        assert (values == 2.0).all()


class TestTelemetrySystemWiring:
    def test_sharded_system_routes_collector_output(self):
        telemetry = TelemetrySystem(shards=4)
        telemetry.bus.publish("t", SampleBatch(0.0, NAMES, np.ones(len(NAMES))))
        assert isinstance(telemetry.store, ShardedStore)
        assert telemetry.store.names() == sorted(NAMES)

    def test_replication_without_shards_rejected(self):
        with pytest.raises(ConfigurationError):
            TelemetrySystem(replication=1)

    def test_datacenter_sharded_run(self):
        dc = DataCenter(seed=11, racks=1, nodes_per_rack=4, shards=2,
                        replication=1)
        dc.run(seconds=600.0)
        assert isinstance(dc.store, ShardedStore)
        times, pue = dc.store.query("facility.pue")
        assert times.size > 0
        fault = dc.shard_fault()
        fault.kill(0, now=dc.sim.now)
        fault.kill(1, now=dc.sim.now)
        # replication=1: every query still served after both primaries die.
        t2, p2 = dc.store.query("facility.pue")
        np.testing.assert_array_equal(np.asarray(times), np.asarray(t2))

    def test_datacenter_without_shards_has_no_shard_fault(self):
        dc = DataCenter(seed=1, racks=1, nodes_per_rack=2)
        with pytest.raises(ConfigurationError):
            dc.shard_fault()


# ---------------------------------------------------------------------------
# Property suite: federated results must equal single-store results
# ---------------------------------------------------------------------------
ALL_AGGS = sorted(AGGREGATIONS)  # includes std/median/p95/rate + vectorized


@st.composite
def ingest_runs(draw):
    """A batched ingest run: metric-name pool + per-tick random values."""
    pool = draw(st.lists(
        st.sampled_from([f"m{i}.s" for i in range(12)]),
        min_size=1, max_size=8, unique=True,
    ))
    n_batches = draw(st.integers(min_value=1, max_value=30))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    dt = draw(st.floats(min_value=0.25, max_value=7.5))
    rng = np.random.default_rng(seed)
    names = tuple(pool)
    return [
        SampleBatch(round(t * dt, 6), names, rng.random(len(names)))
        for t in range(n_batches)
    ]


class TestFederatedEquivalence:
    @given(runs=ingest_runs(), shards=st.sampled_from([1, 2, 8]))
    @settings(max_examples=40, deadline=None)
    def test_query_and_resample_match_single_store(self, runs, shards):
        single = TimeSeriesStore()
        sharded = ShardedStore(shards=shards, replication=1)
        for batch in runs:
            single.ingest("t", batch)
            sharded.ingest("t", batch)
        until = runs[-1].time + 1.0
        step = max(until / 7.0, 0.5)

        def check():
            assert sharded.names() == single.names()
            for name in single.names():
                t0, v0 = single.query(name)
                t1, v1 = sharded.query(name)
                np.testing.assert_array_equal(t0, t1)
                np.testing.assert_array_equal(v0, v1)
                for agg in ALL_AGGS:
                    g0, r0 = single.resample(name, 0.0, until, step, agg=agg)
                    g1, r1 = sharded.resample(name, 0.0, until, step, agg=agg)
                    np.testing.assert_array_equal(g0, g1)
                    np.testing.assert_array_equal(r0, r1)
            grid0, m0 = single.align(single.names(), 0.0, until, step)
            grid1, m1 = sharded.align(sharded.names(), 0.0, until, step)
            np.testing.assert_array_equal(grid0, grid1)
            np.testing.assert_array_equal(m0, m1)

        check()
        # Kill one shard's primary: replication=1 must keep every result
        # bit-for-bit identical through failover.
        victim = sharded.shard_of(single.names()[0])
        sharded.replica_sets[victim].mark_down(0)
        check()

    @given(runs=ingest_runs())
    @settings(max_examples=15, deadline=None)
    def test_vectorized_kernels_match_scalar_federated(self, runs):
        sharded = ShardedStore(shards=2)
        for batch in runs:
            sharded.ingest("t", batch)
        until = runs[-1].time + 1.0
        step = max(until / 5.0, 0.5)
        name = runs[0].names[0]
        for agg in VECTORIZED_AGGREGATIONS:
            _, fast = sharded.resample(name, 0.0, until, step, agg=agg,
                                       engine="vectorized")
            _, ref = sharded.resample(name, 0.0, until, step, agg=agg,
                                      engine="scalar")
            # reduceat and np.sum accumulate in different orders; match the
            # single-store kernel tests' tolerance (NaN pattern exact).
            np.testing.assert_array_equal(np.isnan(fast), np.isnan(ref))
            ok = ~np.isnan(fast)
            np.testing.assert_allclose(fast[ok], ref[ok], rtol=1e-9, atol=1e-9)


# ---------------------------------------------------------------------------
# Regression tests for the distributed-tier bugfix sweep
# ---------------------------------------------------------------------------
class TestSplitPlanCacheLRU:
    """The split-plan cache must evict one cold entry at a time, never
    wholesale-``clear()`` — a full clear forced every live scrape shape to
    re-consult the partitioner on its next batch."""

    def test_cache_never_empties_under_churn(self):
        from repro.telemetry.distributed.shard import _SPLIT_CACHE_CAP

        sharded = ShardedStore(shards=2)
        hot = ("hot.metric.a", "hot.metric.b")
        sharded.ingest("t", SampleBatch(0.0, hot, np.ones(2)))
        min_len = len(sharded._split_cache)
        # Churn far past the cap with unique batch shapes, touching the hot
        # shape between every cold insert so LRU keeps it resident.
        for i in range(_SPLIT_CACHE_CAP + 64):
            sharded.ingest("t", SampleBatch(float(i), (f"cold.{i}",), np.ones(1)))
            sharded.ingest("t", SampleBatch(float(i), hot, np.ones(2)))
            min_len = min(min_len, len(sharded._split_cache))
        assert min_len >= 1  # never emptied
        assert len(sharded._split_cache) == _SPLIT_CACHE_CAP  # stays full
        assert hot in sharded._split_cache  # hot shape survived the churn

    def test_lru_evicts_coldest_entry_first(self):
        from repro.telemetry.distributed.shard import _SPLIT_CACHE_CAP

        sharded = ShardedStore(shards=2)
        shapes = [(f"m{i}.s",) for i in range(_SPLIT_CACHE_CAP)]
        for i, names in enumerate(shapes):
            sharded.ingest("t", SampleBatch(float(i), names, np.ones(1)))
        assert len(sharded._split_cache) == _SPLIT_CACHE_CAP
        # Touch the oldest entry, then insert one more shape: the eviction
        # must fall on shapes[1] (now coldest), not the freshly-touched one.
        sharded.ingest("t", SampleBatch(9e9, shapes[0], np.ones(1)))
        sharded.ingest("t", SampleBatch(9e9, ("fresh.s",), np.ones(1)))
        assert shapes[0] in sharded._split_cache
        assert shapes[1] not in sharded._split_cache
        assert len(sharded._split_cache) == _SPLIT_CACHE_CAP


class TestFederationPinnedReads:
    """Fan-outs resolve each involved shard's read-store exactly once per
    query, so a primary dying between fan-out legs cannot mix two members'
    views in one merged result."""

    def _stale_replica_set(self):
        """One shard, replication=1, replica stale for the last 10 ticks."""
        sharded = ShardedStore(shards=1, replication=1)
        names = ("a.power", "b.power", "c.power")
        rng = np.random.default_rng(7)
        for t in range(10):
            sharded.ingest("t", SampleBatch(float(t), names, rng.random(3)))
        rs = sharded.replica_sets[0]
        rs.mark_down(1)
        for t in range(10, 20):
            sharded.ingest("t", SampleBatch(float(t), names, rng.random(3)))
        rs.revive(1, resync=False)  # replica rejoins stale
        return sharded, rs, names

    def test_primary_death_mid_fanout_yields_consistent_snapshot(self):
        sharded, rs, names = self._stale_replica_set()
        # Reference: full (primary) view of every series.
        expect = {n: sharded.query(n) for n in names}

        calls = {"n": 0}
        orig = rs.read_store

        def dying_read_store():
            calls["n"] += 1
            store = orig()
            rs.mark_down(0)  # primary dies right after this resolution
            return store

        rs.read_store = dying_read_store
        try:
            grid, matrix = sharded.align(names, 0.0, 20.0, 1.0, fill="nan")
        finally:
            rs.read_store = orig
            rs.revive(0, resync=False)
        # Exactly one resolution for the whole fan-out...
        assert calls["n"] == 1
        # ...so every column reflects the primary's (full) data, including
        # the ticks the stale replica never saw.
        single = TimeSeriesStore()
        for n in names:
            t, v = expect[n]
            single.append_many(n, t, v)
        _, ref = single.align(names, 0.0, 20.0, 1.0, fill="nan")
        np.testing.assert_array_equal(matrix, ref)

    def test_untouched_down_shard_cannot_fail_a_query(self):
        # Resolution is lazy per shard: an align over names owned by one
        # shard must succeed even when another shard is fully down.
        sharded = ShardedStore(shards=4, replication=0)
        names = tuple(f"m{i}.s" for i in range(8))
        for t in range(5):
            sharded.ingest("t", SampleBatch(float(t), names, np.ones(8)))
        victim = sharded.shard_of(names[0])
        survivor_names = [n for n in names if sharded.shard_of(n) != victim]
        sharded.replica_sets[victim].mark_down(0)
        grid, matrix = sharded.align(survivor_names, 0.0, 5.0, 1.0)
        assert matrix.shape == (len(grid), len(survivor_names))
        with pytest.raises(ShardDownError):
            sharded.align(names, 0.0, 5.0, 1.0)


class TestReviveResyncFailure:
    """``revive(resync=True)`` with no healthy peer must count and warn —
    the member re-enters service with stale data, which used to be silent."""

    def test_counts_and_warns(self, caplog):
        import logging

        sharded = ShardedStore(shards=1, replication=1)
        names = ("a.power",)
        for t in range(6):
            sharded.ingest("t", SampleBatch(float(t), names, np.ones(1)))
        rs = sharded.replica_sets[0]
        rs.mark_down(1)
        for t in range(6, 9):
            sharded.ingest("t", SampleBatch(float(t), names, np.ones(1)))
        rs.mark_down(0)  # now every peer is down too
        with caplog.at_level(logging.WARNING,
                             logger="repro.telemetry.distributed.replica"):
            rs.revive(1, resync=True)
        assert rs.resync_failures == 1
        assert any("no healthy peer" in r.message for r in caplog.records)
        assert sharded.health_metrics()["telemetry.shard.resync_failed"] == 1.0
        # The stale member serves reads again (primary still down).
        t, v = sharded.query("a.power")
        assert len(t) == 6  # missed ticks 6..8 while down

    def test_successful_resync_does_not_count(self):
        sharded = ShardedStore(shards=1, replication=1)
        rs = sharded.replica_sets[0]
        sharded.ingest("t", SampleBatch(0.0, ("a.s",), np.ones(1)))
        rs.mark_down(1)
        sharded.ingest("t", SampleBatch(1.0, ("a.s",), np.ones(1)))
        rs.revive(1, resync=True)  # healthy primary available
        assert rs.resync_failures == 0

    def test_unreplicated_revive_stays_silent(self, caplog):
        import logging

        # replication=0 chaos kill/revive cycles have no peer by design;
        # they must not inflate the failure counter or spam warnings.
        sharded = ShardedStore(shards=1, replication=0)
        rs = sharded.replica_sets[0]
        sharded.ingest("t", SampleBatch(0.0, ("a.s",), np.ones(1)))
        rs.mark_down(0)
        with caplog.at_level(logging.WARNING,
                             logger="repro.telemetry.distributed.replica"):
            rs.revive(0, resync=True)
        assert rs.resync_failures == 0
        assert not caplog.records
