"""Rollup cascades + compressed cold tier: unit coverage.

Covers the tentpole paths end to end: incremental tier maintenance at
ingest/flush, the query planner's eligibility gates and hybrid
tier-plus-raw-tail serving, hot→cold demotion driven by the retention
sweep, cold-chunk scans feeding the resample kernels, background
compaction, chunk adoption, degraded loading, and the tier metrics.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import StoreError, UnknownMetricError
from repro.telemetry import (
    ArchiveConfig,
    ArchiveTier,
    ColdChunk,
    RollupConfig,
    RollupEngine,
    SERVABLE_AGGREGATIONS,
    TimeSeriesStore,
)

DAY = 86400.0


def _bits_equal(a: np.ndarray, b: np.ndarray) -> bool:
    return np.array_equal(
        np.asarray(a, dtype=np.float64).view(np.uint64),
        np.asarray(b, dtype=np.float64).view(np.uint64),
    )


def _filled(days: float = 2.0, period: float = 10.0, **kwargs):
    """A tiered store and an identical raw store over the same samples."""
    rng = np.random.default_rng(42)
    times = np.arange(0.0, days * DAY, period)
    values = np.round(rng.normal(220.0, 6.0, times.size) * 4) / 4
    tiered = TimeSeriesStore(rollups=True, **kwargs)
    raw = TimeSeriesStore()
    tiered.append_many("node.power", times, values)
    raw.append_many("node.power", times, values)
    return tiered, raw, times, values


class TestRollupConfig:
    def test_round_trip(self):
        cfg = RollupConfig(steps=(5.0, 30.0))
        assert RollupConfig.from_dict(cfg.to_dict()).steps == (5.0, 30.0)

    def test_steps_must_increase(self):
        with pytest.raises(StoreError):
            RollupConfig(steps=(60.0, 10.0))

    def test_bool_and_dict_forms(self):
        assert TimeSeriesStore(rollups=True).rollup_config is not None
        store = TimeSeriesStore(rollups={"steps": [2.0, 4.0]})
        assert store.rollup_config.steps == (2.0, 4.0)
        assert TimeSeriesStore().rollup_config is None


class TestRollupServing:
    @pytest.mark.parametrize("agg", SERVABLE_AGGREGATIONS)
    @pytest.mark.parametrize("step", [60.0, 3600.0, 7200.0])
    def test_tier_served_bits_match_raw(self, agg, step):
        tiered, raw, _, _ = _filled()
        g1, r1 = tiered.resample("node.power", 0.0, 2 * DAY, step, agg)
        g2, r2 = raw.resample("node.power", 0.0, 2 * DAY, step, agg)
        assert _bits_equal(g1, g2)
        assert _bits_equal(r1, r2)
        if step in (60.0, 3600.0) or agg in ("min", "max", "count"):
            # mean/sum are only servable at an exact tier step (k == 1:
            # float addition is not associative); min/max/count combine
            # across k tier buckets, so every case here is tier-served.
            assert tiered.rollups.buckets_served > 0

    def test_full_tier_hit_counted(self):
        tiered, _, _, _ = _filled()
        tiered.resample("node.power", 0.0, DAY, 3600.0, "mean")
        assert tiered.rollups.tier_hits >= 1

    def test_unaligned_since_falls_back_to_raw(self):
        tiered, raw, _, _ = _filled()
        before = tiered.rollups.buckets_served
        g1, r1 = tiered.resample("node.power", 7.0, DAY, 3600.0, "mean")
        g2, r2 = raw.resample("node.power", 7.0, DAY, 3600.0, "mean")
        assert _bits_equal(r1, r2)
        assert tiered.rollups.buckets_served == before
        assert tiered.rollups.raw_fallbacks >= 1

    def test_unaligned_step_falls_back_to_raw(self):
        tiered, raw, _, _ = _filled()
        g1, r1 = tiered.resample("node.power", 0.0, DAY, 93.0, "mean")
        g2, r2 = raw.resample("node.power", 0.0, DAY, 93.0, "mean")
        assert _bits_equal(r1, r2)

    def test_scalar_engine_never_tier_served(self):
        tiered, _, _, _ = _filled()
        before = tiered.rollups.buckets_served
        tiered.resample("node.power", 0.0, DAY, 3600.0, "sum",
                        engine="scalar")
        assert tiered.rollups.buckets_served == before

    def test_non_servable_agg_falls_back(self):
        tiered, raw, _, _ = _filled()
        g1, r1 = tiered.resample("node.power", 0.0, DAY, 3600.0, "p95")
        g2, r2 = raw.resample("node.power", 0.0, DAY, 3600.0, "p95")
        assert _bits_equal(r1, r2)

    def test_final_bucket_served_raw(self):
        # The closed upper bound makes the final bucket's semantics differ
        # from the half-open tier buckets; the planner must compute it from
        # raw even when every earlier bucket is tier-served.
        tiered, raw, _, _ = _filled(days=1.0)
        tiered.append("node.power", DAY, 1.0)
        raw.append("node.power", DAY, 1.0)
        g1, r1 = tiered.resample("node.power", 0.0, DAY, 3600.0, "count")
        g2, r2 = raw.resample("node.power", 0.0, DAY, 3600.0, "count")
        assert _bits_equal(r1, r2)
        # Last grid bucket includes the sample AT `until` (closed bound),
        # unlike the half-open tier bucket: 360 in-bucket samples + 1.
        assert r1[-1] == 361.0

    def test_align_matches_raw(self):
        rng = np.random.default_rng(1)
        times = np.arange(0.0, DAY, 10.0)
        tiered = TimeSeriesStore(rollups=True)
        raw = TimeSeriesStore()
        for name in ("a.p", "b.p", "c.p"):
            vals = rng.normal(100.0, 3.0, times.size)
            tiered.append_many(name, times, vals)
            raw.append_many(name, times, vals)
        g1, m1 = tiered.align(["a.p", "b.p", "c.p"], 0.0, DAY, 3600.0,
                              "max", fill="nan")
        g2, m2 = raw.align(["a.p", "b.p", "c.p"], 0.0, DAY, 3600.0,
                           "max", fill="nan")
        assert _bits_equal(m1, m2)

    def test_incremental_equals_bulk(self):
        """Tiers built sample-by-sample match tiers built in one append."""
        rng = np.random.default_rng(9)
        times = np.arange(0.0, 30000.0, 5.0)
        values = rng.normal(50.0, 2.0, times.size)
        bulk = TimeSeriesStore(rollups=True)
        bulk.append_many("m", times, values)
        drip = TimeSeriesStore(rollups=True, flush_threshold=16)
        for t, v in zip(times, values):
            drip.append("m", float(t), float(v))
        drip.flush()
        g1, r1 = bulk.resample("m", 0.0, 30000.0, 60.0, "mean")
        g2, r2 = drip.resample("m", 0.0, 30000.0, 60.0, "mean")
        assert _bits_equal(r1, r2)

    def test_lww_overwrite_at_tail(self):
        """Re-publishing the latest timestamp (LWW) stays consistent: the
        overwritten sample lives in the never-finalized tail bucket."""
        tiered = TimeSeriesStore(rollups=True)
        raw = TimeSeriesStore()
        for s in (tiered, raw):
            s.append_many("m", np.arange(0.0, 100.0, 1.0),
                          np.ones(100))
            s.append("m", 99.0, 7.0)  # overwrite
            s.append_many("m", np.arange(100.0, 200.0, 1.0), np.ones(100))
        g1, r1 = tiered.resample("m", 0.0, 200.0, 10.0, "sum")
        g2, r2 = raw.resample("m", 0.0, 200.0, 10.0, "sum")
        assert _bits_equal(r1, r2)
        assert r1[9] == 16.0  # nine 1.0 samples + the overwritten 7.0


class TestGapBucketSemantics:
    """Satellite: count/sum on gap buckets are NaN — never 0 — in the
    scalar engine, the vectorized engine, and tier-served answers."""

    def _gappy(self):
        tiered = TimeSeriesStore(rollups={"steps": [10.0, 60.0]})
        raw = TimeSeriesStore()
        t = np.concatenate([
            np.arange(0.0, 600.0, 10.0),
            np.arange(1800.0, 2400.0, 10.0),  # 20-minute hole
        ])
        v = np.linspace(1.0, 2.0, t.size)
        tiered.append_many("m", t, v)
        raw.append_many("m", t, v)
        return tiered, raw

    @pytest.mark.parametrize("agg", ["count", "sum"])
    def test_gap_is_nan_in_all_three_paths(self, agg):
        tiered, raw = self._gappy()
        _, vec = raw.resample("m", 0.0, 2400.0, 60.0, agg)
        _, sca = raw.resample("m", 0.0, 2400.0, 60.0, agg, engine="scalar")
        _, tier = tiered.resample("m", 0.0, 2400.0, 60.0, agg)
        gap = slice(10, 30)  # buckets [600, 1800)
        assert np.isnan(vec[gap]).all()
        assert np.isnan(sca[gap]).all()
        assert np.isnan(tier[gap]).all()
        # The engines must agree on which buckets are gaps (NaN, never 0);
        # scalar np.sum is pairwise so its non-gap values may differ from
        # reduceat in the last ulp — which is exactly why the planner never
        # tier-serves the scalar engine.  Tier output is bit-identical to
        # the vectorized engine it stands in for.
        assert np.array_equal(np.isnan(vec), np.isnan(sca))
        np.testing.assert_allclose(vec[~np.isnan(vec)], sca[~np.isnan(sca)],
                                   rtol=1e-12)
        assert _bits_equal(vec, tier)
        assert tiered.rollups.buckets_served > 0

    def test_present_buckets_are_counts_not_nan(self):
        tiered, raw = self._gappy()
        _, tier = tiered.resample("m", 0.0, 2400.0, 60.0, "count")
        assert tier[0] == 6.0 and tier[-10] == 6.0


class TestTimestampCodec:
    @pytest.mark.parametrize("times", [
        np.arange(0.0, 1e5, 10.0),                       # regular cadence
        np.arange(0.0, 100.0, 0.25),                     # fractional ticks
        np.array([0.0]),                                 # single sample
        np.array([], dtype=np.float64),                  # empty
        np.array([1.5e9, 1.5e9 + 0.1, 1.5e9 + 0.3]),     # epoch-scale jitter
        np.cumsum(np.random.default_rng(0).uniform(1e-9, 1e3, 500)),
    ])
    def test_exact_round_trip(self, times):
        from repro.telemetry.archive import decode_timestamps, encode_timestamps

        params, payload = encode_timestamps(np.asarray(times, np.float64))
        out = decode_timestamps(params, payload)
        assert _bits_equal(times, out)

    def test_regular_cadence_is_near_free(self):
        from repro.telemetry.archive import encode_timestamps

        params, payload = encode_timestamps(np.arange(0.0, 1e6, 10.0))
        assert params["width"] == 0 and payload.size == 0


class TestValueCodec:
    @pytest.mark.parametrize("values", [
        np.array([1.0, 1.0, 1.0]),
        np.array([np.nan, np.inf, -np.inf, -0.0, 0.0, 5e-324]),
        np.linspace(-1e18, 1e18, 100),
        np.random.default_rng(3).normal(220.0, 5.0, 1000),
        np.array([], dtype=np.float64),
    ])
    def test_exact_round_trip(self, values):
        from repro.telemetry.archive import decode_values, encode_values

        params, bitmap, payload = encode_values(
            np.asarray(values, np.float64)
        )
        out = decode_values(params, bitmap, payload)
        assert _bits_equal(values, out)


class TestArchiveTier:
    def test_demote_scan_round_trip(self):
        tier = ArchiveTier(ArchiveConfig(chunk_samples=128))
        t = np.arange(0.0, 5000.0, 10.0)
        v = np.random.default_rng(5).normal(0.0, 1.0, t.size)
        tier.demote("m", t, v)
        ts, vs = tier.scan("m", float("-inf"), float("inf"))
        assert _bits_equal(t, ts) and _bits_equal(v, vs)
        ts, vs = tier.scan("m", 1000.0, 2000.0)
        assert ts[0] >= 1000.0 and ts[-1] <= 2000.0
        assert tier.cold_scans == 2

    def test_demote_rejects_out_of_order(self):
        tier = ArchiveTier()
        tier.demote("m", np.array([0.0, 1.0]), np.zeros(2))
        with pytest.raises(StoreError):
            tier.demote("m", np.array([0.5]), np.zeros(1))

    def test_compaction_merges_small_chunks(self):
        tier = ArchiveTier(ArchiveConfig(chunk_samples=100,
                                         compaction_trigger=4))
        for i in range(12):
            t = np.arange(i * 100.0, i * 100.0 + 50.0, 10.0)
            tier.demote("m", t, np.ones(t.size))
        assert tier.compactions > 0
        assert tier.chunk_count("m") < 12
        ts, _ = tier.scan("m", float("-inf"), float("inf"))
        assert ts.size == 12 * 5  # nothing lost

    def test_adopt_rejects_overlap(self):
        tier = ArchiveTier()
        tier.demote("m", np.array([0.0, 10.0]), np.zeros(2))
        chunk = ColdChunk.encode(np.array([5.0]), np.array([1.0]))
        with pytest.raises(StoreError):
            tier.adopt("m", [chunk])

    def test_value_at_locf(self):
        tier = ArchiveTier()
        tier.demote("m", np.array([0.0, 10.0, 20.0]),
                    np.array([1.0, 2.0, 3.0]))
        assert tier.value_at("m", 15.0) == 2.0
        assert tier.value_at("m", 20.0) == 3.0
        assert tier.value_at("m", -1.0) is None

    def test_compression_ratio_on_telemetry(self):
        tier = ArchiveTier()
        t = np.arange(0.0, DAY, 10.0)
        v = np.round(np.random.default_rng(0).normal(220, 5, t.size) * 4) / 4
        tier.demote("m", t, v)
        assert tier.compression_ratio >= 4.0


class TestStoreTiering:
    def test_retention_demotes_instead_of_deleting(self):
        store = TimeSeriesStore(rollups=True, archive=True, retention=3600.0)
        t = np.arange(0.0, 3 * DAY, 10.0)
        v = np.random.default_rng(2).normal(100.0, 4.0, t.size)
        store.append_many("m", t, v)
        assert store.archive.samples("m") > 0
        times, values = store.query("m")
        assert _bits_equal(t, times) and _bits_equal(v, values)

    def test_cold_spliced_resample_matches_raw(self):
        cold = TimeSeriesStore(archive=True, retention=3600.0)
        raw = TimeSeriesStore()
        t = np.arange(0.0, 2 * DAY, 10.0)
        v = np.random.default_rng(4).normal(0.0, 1.0, t.size)
        cold.append_many("m", t, v)
        raw.append_many("m", t, v)
        g1, r1 = cold.resample("m", 0.0, 2 * DAY, 600.0, "mean")
        g2, r2 = raw.resample("m", 0.0, 2 * DAY, 600.0, "mean")
        assert _bits_equal(r1, r2)

    def test_latest_and_value_at_reach_cold(self):
        store = TimeSeriesStore(archive=True, retention=100.0)
        store.append_many("m", np.arange(0.0, 5000.0, 10.0),
                          np.arange(500.0))
        # Values fully inside the cold tier:
        assert store.value_at("m", 55.0) == 5.0
        t, v = store.latest("m")
        assert t == 4990.0

    def test_unknown_metric_still_raises(self):
        store = TimeSeriesStore(archive=True)
        with pytest.raises(UnknownMetricError):
            store.query("nope")

    def test_rollups_survive_raw_trim_without_archive(self):
        """Rollups are long-horizon memory: with no cold tier, tier-served
        history outlives the trimmed raw samples."""
        store = TimeSeriesStore(rollups={"steps": [60.0]}, retention=1800.0)
        t = np.arange(0.0, DAY, 10.0)
        store.append_many("m", t, np.ones(t.size))
        hot_t, _ = store.query("m")
        assert hot_t[0] > 0.0  # raw really was trimmed
        g, r = store.resample("m", 0.0, 1800.0, 60.0, "count")
        assert r[0] == 6.0  # served from the tier, raw is gone

    def test_metrics_exposed(self):
        store = TimeSeriesStore(rollups=True, archive=True, retention=600.0)
        store.append_many("m", np.arange(0.0, 5000.0, 10.0), np.ones(500))
        store.resample("m", 0.0, 4000.0, 60.0, "mean")
        snap = store.metrics.snapshot()
        assert snap["telemetry.rollup.buckets_finalized"] > 0
        assert snap["telemetry.archive.demoted_samples"] > 0
        assert "telemetry.archive.missing_chunks" in snap
        assert snap["telemetry.archive.encoded_bytes"] > 0


class TestRollupEngineInternals:
    def test_serve_requires_observed_series(self):
        engine = RollupEngine(RollupConfig(),
                              fetch=lambda n, s, u: (np.empty(0),
                                                     np.empty(0)))
        edges = np.arange(0.0, 100.0, 10.0)
        assert engine.serve("m", 0.0, 90.0, 10.0, "mean", "auto",
                            edges) is None

    def test_cursor_time_advances(self):
        store = TimeSeriesStore(rollups={"steps": [10.0]})
        store.append_many("m", np.arange(0.0, 100.0, 1.0), np.ones(100))
        cursor = store.rollups.cursor_time("m", 10.0)
        assert cursor == 90.0  # everything before the tail bucket finalized
