"""Persistence format matrix: v1 and v2 archives still load, v3 round-trips
tiers, and damaged v3 archives degrade instead of failing.

v1: series arrays + minimal header (no config).
v2: + store configuration (retention/slack/flush threshold).
v3: + rollup/archive configs, still-encoded cold chunks, materialized
rollup tiers; tolerates individually missing cold chunks.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.errors import StoreError
from repro.telemetry import (
    ShardedStore,
    TimeSeriesStore,
    load_store,
    save_store,
)
from repro.telemetry.persistence import _META_KEY, _encode_meta

DAY = 86400.0


def _bits_equal(a, b) -> bool:
    return np.array_equal(
        np.asarray(a, dtype=np.float64).view(np.uint64),
        np.asarray(b, dtype=np.float64).view(np.uint64),
    )


def _tiered_store() -> TimeSeriesStore:
    store = TimeSeriesStore(rollups=True, archive=True, retention=7200.0)
    rng = np.random.default_rng(11)
    t = np.arange(0.0, 2 * DAY, 10.0)
    store.append_many("rack.power", t, rng.normal(220.0, 5.0, t.size))
    store.append_many("rack.temp", t[:300], rng.normal(30.0, 1.0, 300))
    return store


def _rewrite(path: str, out: str, *, version: int, drop_prefixes=(),
             strip_meta=()):
    """Clone an archive, dropping keys/meta entries and pinning a version."""
    with np.load(path) as z:
        data = {
            k: z[k] for k in z.files
            if not k.startswith(tuple(drop_prefixes)) or k == _META_KEY
        }
    meta = json.loads(bytes(data[_META_KEY]).decode("utf-8"))
    for key in strip_meta:
        meta.pop(key, None)
    meta["version"] = version
    data[_META_KEY] = _encode_meta(meta)
    np.savez_compressed(out, **data)
    return out


class TestFormatMatrix:
    def test_v3_round_trips_tiers(self, tmp_path):
        store = _tiered_store()
        path = str(tmp_path / "v3.npz")
        save_store(store, path)
        loaded = load_store(path)
        assert loaded.rollup_config is not None
        assert loaded.archive_config is not None
        assert loaded.archive.chunk_count() == store.archive.chunk_count()
        for agg in ("mean", "min", "max", "sum", "count"):
            _, r1 = store.resample("rack.power", 0.0, 2 * DAY, 3600.0, agg)
            _, r2 = loaded.resample("rack.power", 0.0, 2 * DAY, 3600.0, agg)
            assert _bits_equal(r1, r2), agg
        t1, v1 = store.query("rack.power")
        t2, v2 = loaded.query("rack.power")
        assert _bits_equal(t1, t2) and _bits_equal(v1, v2)

    def test_v3_restores_tier_state_not_just_config(self, tmp_path):
        store = _tiered_store()
        path = str(tmp_path / "v3.npz")
        save_store(store, path)
        loaded = load_store(path)
        saved = store.rollups.tier_state("rack.power")
        restored = loaded.rollups.tier_state("rack.power")
        assert len(saved) == len(restored)
        for (s1, c1, a1), (s2, c2, a2) in zip(saved, restored):
            assert s1 == s2 and c1 == c2
            assert np.array_equal(a1["idx"], a2["idx"])
            assert _bits_equal(a1["sum"], a2["sum"])

    @pytest.mark.parametrize("version", [1, 2])
    def test_older_formats_still_load(self, tmp_path, version):
        store = _tiered_store()
        v3 = str(tmp_path / "v3.npz")
        save_store(store, v3)
        strip = ["cold", "rollup_state", "rollups", "archive"]
        if version == 1:
            strip += ["retention", "retention_slack", "flush_threshold"]
        older = _rewrite(
            v3, str(tmp_path / f"v{version}.npz"), version=version,
            drop_prefixes=("__cold__", "__rollup__"), strip_meta=strip,
        )
        loaded = load_store(older)
        # Tiers stay disabled; the hot samples that were in the v3 archive
        # load as plain raw series.
        assert loaded.rollup_config is None and loaded.archive_config is None
        assert loaded.names() == store.names()

    def test_unknown_version_rejected(self, tmp_path):
        store = _tiered_store()
        v3 = str(tmp_path / "v3.npz")
        save_store(store, v3)
        bad = _rewrite(v3, str(tmp_path / "v99.npz"), version=99)
        with pytest.raises(StoreError):
            load_store(bad)

    def test_missing_cold_chunk_degrades(self, tmp_path):
        store = _tiered_store()
        path = str(tmp_path / "v3.npz")
        save_store(store, path)
        with np.load(path) as z:
            data = {k: z[k] for k in z.files}
        victims = [k for k in data
                   if k.startswith("__cold__::rack.power::0::")]
        assert victims
        for k in victims:
            del data[k]
        damaged = str(tmp_path / "damaged.npz")
        np.savez_compressed(damaged, **data)
        loaded = load_store(damaged)  # must not raise
        assert loaded.archive.missing_chunks == 1
        assert loaded.archive.chunk_count() == store.archive.chunk_count() - 1
        # Remaining history still queries fine.
        t, v = loaded.query("rack.power")
        lost = store.archive.chunks("rack.power")[0].count
        t_all, _ = store.query("rack.power")
        assert t.size == t_all.size - lost
        snap = loaded.metrics.snapshot()
        assert snap["telemetry.archive.missing_chunks"] == 1.0

    def test_sharded_manifest_round_trips_config(self, tmp_path):
        from repro.telemetry.sample import SampleBatch

        names = tuple(f"n{i}.p" for i in range(5))
        store = ShardedStore(shards=2, replication=1, rollups=True,
                             archive=True, retention=3600.0)
        rng = np.random.default_rng(3)
        for t in np.arange(0.0, 30000.0, 10.0):
            store.ingest("m", SampleBatch(float(t), names,
                                          rng.normal(100.0, 2.0, 5)))
        path = str(tmp_path / "sharded.npz")
        save_store(store, path)
        loaded = load_store(path)
        assert loaded.rollup_config is not None
        assert loaded.archive_config is not None
        g1, m1 = store.align(list(names), 0.0, 30000.0, 600.0, "mean",
                             fill="nan")
        g2, m2 = loaded.align(list(names), 0.0, 30000.0, 600.0, "mean",
                              fill="nan")
        assert _bits_equal(m1, m2)
        # Every replica member received the cold chunks.
        for rs in loaded.replica_sets:
            assert all(m.archive.chunk_count() > 0 for m in rs.members)

    def test_cold_only_series_round_trips(self, tmp_path):
        """A series whose samples are all demoted (no hot buffer) still
        saves and reloads."""
        store = TimeSeriesStore(archive=True)
        t = np.arange(0.0, 1000.0, 10.0)
        store.append_many("m", t, np.ones(t.size))
        # Demote everything by hand, then drop the hot series the way a
        # resync/adopt path can produce cold-only state.
        chunks_src = TimeSeriesStore(archive=True, retention=100.0)
        chunks_src.append_many("m", t, np.ones(t.size))
        cold = TimeSeriesStore(archive=True)
        cold.archive.adopt("m", chunks_src.archive.chunks("m"))
        path = str(tmp_path / "coldonly.npz")
        assert save_store(cold, path) == 1
        loaded = load_store(path)
        ts, vs = loaded.query("m")
        ref_t, _ = chunks_src.archive.scan("m", float("-inf"), float("inf"))
        assert ts.size >= ref_t.size
