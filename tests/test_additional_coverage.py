"""Additional coverage: ERE, live plan-based scheduling, KPI edge cases."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analytics.descriptive import per_user_report
from repro.analytics.descriptive.kpis import ere, pue
from repro.analytics.prescriptive import PlanBasedPolicy
from repro.apps import default_catalog
from repro.apps.generator import JobRequest
from repro.cluster import build_system
from repro.errors import InsufficientDataError
from repro.oda import DataCenter, compare_kpis, collect_kpis
from repro.software import JobState, Scheduler
from repro.telemetry import TimeSeriesStore


def make_power_store(site=1200.0, it=1000.0, reuse=0.0, n=50):
    store = TimeSeriesStore()
    t = np.arange(float(n)) * 60.0
    store.append_many("facility.power.site_power", t, np.full(n, site))
    store.append_many("facility.power.it_power", t, np.full(n, it))
    if reuse:
        store.append_many("facility.power.reuse", t, np.full(n, reuse))
    return store


class TestEre:
    def test_without_reuse_equals_pue(self):
        store = make_power_store()
        window = (0.0, 2000.0)
        assert ere(store, *window) == pytest.approx(pue(store, *window))

    def test_heat_reuse_lowers_ere_below_pue(self):
        store = make_power_store(reuse=150.0)
        window = (0.0, 2000.0)
        value = ere(store, *window, reuse_metric="facility.power.reuse")
        assert value < pue(store, *window)
        assert value == pytest.approx((1200.0 - 150.0) / 1000.0)

    def test_idle_window_rejected(self):
        store = make_power_store(site=0.0, it=0.0)
        with pytest.raises(InsufficientDataError):
            ere(store, 0.0, 2000.0)


class TestPlanBasedLive:
    def test_plan_based_policy_runs_full_trace(self, sim, trace, rng):
        system = build_system(racks=1, nodes_per_rack=8)
        system.attach(sim, trace, rng)
        policy = PlanBasedPolicy(
            predictor=lambda job: job.request.walltime_req_s * 0.5,
            replan_interval=600.0,
        )
        scheduler = Scheduler(system, policy=policy, tick=60.0)
        scheduler.attach(sim, trace)
        profile = default_catalog().get("cfd_solver")
        for i in range(6):
            scheduler.load_trace(sim, [JobRequest(
                job_id=f"j{i}", submit_time=float(i * 300), user="u",
                profile=profile, nodes=4, work_s=1800.0, walltime_req_s=7200.0,
            )])
        sim.run(12 * 3600.0)
        states = {j.job_id: j.state for j in scheduler.jobs.values()}
        assert all(s is JobState.COMPLETED for s in states.values()), states
        assert policy.replans >= 1

    def test_plan_survives_node_failure(self, sim, trace, rng):
        """Planned nodes lost to failures fall back to first-fit."""
        system = build_system(racks=1, nodes_per_rack=8)
        system.attach(sim, trace, rng)
        policy = PlanBasedPolicy(predictor=lambda job: 1800.0)
        scheduler = Scheduler(system, policy=policy, tick=60.0)
        scheduler.attach(sim, trace)
        profile = default_catalog().get("md_sim")
        scheduler.load_trace(sim, [
            JobRequest(job_id="a", submit_time=0.0, user="u", profile=profile,
                       nodes=4, work_s=1200.0, walltime_req_s=7200.0),
            JobRequest(job_id="b", submit_time=60.0, user="u", profile=profile,
                       nodes=4, work_s=1200.0, walltime_req_s=7200.0),
        ])
        sim.run(120)
        system.node("r0n7").fail()  # may or may not be planned; must not wedge
        sim.run(4 * 3600.0)
        assert scheduler.jobs["a"].terminal
        assert scheduler.jobs["b"].terminal


class TestKpiEdgeCases:
    def test_compare_kpis_nan_on_zero_baseline(self):
        dc = DataCenter(seed=2, racks=1, nodes_per_rack=4)
        dc.run(seconds=3600.0)
        kpis = collect_kpis(dc)
        diff = compare_kpis(kpis, kpis)
        # Slowdown is NaN on an idle run; comparison must not explode.
        assert np.isnan(diff["mean_slowdown"]) or diff["mean_slowdown"] == 0.0

    def test_idle_run_kpis(self):
        dc = DataCenter(seed=2, racks=1, nodes_per_rack=4)
        dc.run(seconds=3600.0)
        kpis = collect_kpis(dc)
        assert kpis.completed_jobs == 0
        assert kpis.energy_per_job_kwh == float("inf")
        assert kpis.pue > 1.0

    def test_too_short_run_rejected(self):
        dc = DataCenter(seed=2, racks=1, nodes_per_rack=4)
        with pytest.raises(InsufficientDataError):
            collect_kpis(dc)


class TestPerUserReport:
    def test_split_by_user(self, sim, trace, rng):
        system = build_system(racks=1, nodes_per_rack=8)
        system.attach(sim, trace, rng)
        scheduler = Scheduler(system, tick=60.0)
        scheduler.attach(sim, trace)
        profile = default_catalog().get("cfd_solver")
        for i, user in enumerate(["alice", "bob", "alice"]):
            scheduler.load_trace(sim, [JobRequest(
                job_id=f"j{i}", submit_time=float(i * 60), user=user,
                profile=profile, nodes=2, work_s=600.0, walltime_req_s=7200.0,
            )])
        sim.run(4 * 3600.0)
        reports = per_user_report(scheduler.accounting)
        assert set(reports) == {"alice", "bob"}
        assert reports["alice"].jobs == 2
        assert reports["bob"].jobs == 1
