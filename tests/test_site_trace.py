"""Tests for the LLNL-scale site-power trace generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.facility import SitePowerTraceGenerator, SpikePattern

DAY = 86_400.0


def make(seed=0, **kwargs):
    return SitePowerTraceGenerator(np.random.default_rng(seed), **kwargs)


class TestSitePowerTrace:
    def test_reproducible(self):
        t1, w1, e1 = make(seed=1).generate(days=3.0)
        t2, w2, e2 = make(seed=1).generate(days=3.0)
        assert (w1 == w2).all()
        assert e1 == e2

    def test_scale_and_positivity(self):
        _, watts, _ = make().generate(days=7.0)
        assert watts.min() > 15e6
        assert watts.max() < 35e6

    def test_diurnal_structure(self):
        times, watts, _ = make(noise_sigma_w=1e3).generate(days=10.0)
        hours = (times % DAY) / 3600.0
        midday = watts[(hours >= 11) & (hours < 15)].mean()
        night = watts[(hours >= 1) & (hours < 5)].mean()
        assert midday - night > 2e6

    def test_weekend_quieter(self):
        times, watts, _ = make(noise_sigma_w=1e3).generate(days=28.0)
        weekday_mask = (times % (7 * DAY)) / DAY < 5
        hours = (times % DAY) / 3600.0
        midday = (hours >= 11) & (hours < 15)
        weekday_midday = watts[weekday_mask & midday].mean()
        weekend_midday = watts[~weekday_mask & midday].mean()
        assert weekday_midday > weekend_midday + 1e6

    def test_spike_events_recorded_and_applied(self):
        generator = make(
            noise_sigma_w=1e3,
            patterns=[SpikePattern(hour=12.0, magnitude_w=3e6, duration_s=3600.0,
                                   probability=1.0, jitter_s=0.0)],
        )
        times, watts, events = generator.generate(days=2.0, step_s=300.0)
        assert len(events) == 2  # one per day
        for start, magnitude in events:
            during = watts[(times >= start + 300) & (times < start + 3000)]
            before = watts[(times >= start - 3000) & (times < start - 300)]
            assert during.mean() - before.mean() > 2e6

    def test_weekdays_only_pattern(self):
        generator = make(
            patterns=[SpikePattern(hour=12.0, magnitude_w=1e6, duration_s=600.0,
                                   probability=1.0, weekdays_only=True)],
        )
        _, _, events = generator.generate(days=7.0)
        assert len(events) == 5

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            make().generate(days=0.0)
        with pytest.raises(ConfigurationError):
            make(base_w=-1.0)

    def test_noise_autocorrelated(self):
        """OU noise: adjacent samples correlate, distant ones do not."""
        generator = make(diurnal_amp_w=0.0, patterns=[], noise_sigma_w=1e6)
        _, watts, _ = generator.generate(days=14.0, step_s=300.0)
        noise = watts - watts.mean()
        def autocorr(lag):
            return float(np.corrcoef(noise[:-lag], noise[lag:])[0, 1])
        assert autocorr(1) > 0.9
        assert abs(autocorr(2000)) < 0.3
