"""Property tests: vectorized resample kernels match the scalar reference.

Every aggregation in :data:`VECTORIZED_AGGREGATIONS` must agree with the
scalar :data:`AGGREGATIONS` callable it replaces, bucket for bucket — on
random series, including empty buckets, single-sample buckets and the
partial trailing bucket.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StoreError
from repro.telemetry import TimeSeriesStore
from repro.telemetry.store import AGGREGATIONS, VECTORIZED_AGGREGATIONS

VECTOR_AGGS = sorted(VECTORIZED_AGGREGATIONS)


def _assert_engines_agree(store, name, since, until, step, agg):
    grid_v, vec = store.resample(name, since, until, step, agg=agg)
    grid_s, ref = store.resample(name, since, until, step, agg=agg,
                                 engine="scalar")
    assert grid_v.tolist() == grid_s.tolist()
    assert vec.shape == ref.shape
    nan_v, nan_s = np.isnan(vec), np.isnan(ref)
    assert (nan_v == nan_s).all(), f"{agg}: NaN (empty-bucket) mask differs"
    np.testing.assert_allclose(vec[~nan_v], ref[~nan_s], rtol=1e-9, atol=1e-9)


class TestKernelEquivalence:
    @pytest.mark.parametrize("agg", VECTOR_AGGS)
    @given(
        times=st.lists(
            st.floats(min_value=0.0, max_value=100.0,
                      allow_nan=False, allow_infinity=False),
            min_size=1, max_size=150,
        ),
        step=st.floats(min_value=0.3, max_value=40.0),
        until=st.floats(min_value=1.0, max_value=120.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_vectorized_matches_scalar_on_random_series(self, agg, times, step, until):
        """Random irregular series: sparse (empty + single-sample buckets),
        dense clusters, and a partial trailing bucket when until % step != 0."""
        times = np.sort(np.asarray(times, dtype=np.float64))
        rng = np.random.default_rng(int(times.sum() * 1000) % 2**32)
        values = rng.normal(scale=100.0, size=times.size)
        store = TimeSeriesStore()
        store.append_many("m", times, values)
        _assert_engines_agree(store, "m", 0.0, until, step, agg)

    @pytest.mark.parametrize("agg", VECTOR_AGGS)
    def test_all_buckets_empty(self, agg):
        store = TimeSeriesStore()
        store.append("m", 1000.0, 1.0)
        _, out = store.resample("m", 0.0, 100.0, 10.0, agg=agg)
        assert np.isnan(out).all()

    @pytest.mark.parametrize("agg", VECTOR_AGGS)
    def test_single_sample_buckets(self, agg):
        store = TimeSeriesStore()
        store.append_many("m", np.array([5.0, 25.0, 45.0]),
                          np.array([1.0, -2.0, 3.0]))
        _assert_engines_agree(store, "m", 0.0, 50.0, 10.0, agg)

    @pytest.mark.parametrize("agg", VECTOR_AGGS)
    def test_partial_trailing_bucket(self, agg):
        store = TimeSeriesStore()
        store.append_many("m", np.arange(17.0), np.arange(17.0) * 3.0)
        # until=16 -> 1 full bucket [0,10) + partial [10,16] incl. t=16.
        _assert_engines_agree(store, "m", 0.0, 16.0, 10.0, agg)

    @pytest.mark.parametrize("agg", VECTOR_AGGS)
    def test_nan_samples_propagate_like_scalar(self, agg):
        store = TimeSeriesStore()
        values = np.array([1.0, np.nan, 3.0, 4.0])
        store.append_many("m", np.arange(4.0), values)
        grid_v, vec = store.resample("m", 0.0, 4.0, 2.0, agg=agg)
        _, ref = store.resample("m", 0.0, 4.0, 2.0, agg=agg, engine="scalar")
        # NaN *samples* poison their bucket identically in both engines
        # (count is NaN-blind in both).
        assert np.array_equal(vec, ref, equal_nan=True)

    def test_scalar_only_aggs_fall_back(self):
        store = TimeSeriesStore()
        store.append_many("m", np.arange(20.0), np.arange(20.0))
        for agg in ("std", "median", "p95", "rate"):
            assert agg not in VECTORIZED_AGGREGATIONS
            _, out = store.resample("m", 0.0, 20.0, 5.0, agg=agg)
            assert out.size == 4 and np.isfinite(out).all()

    def test_vectorized_engine_rejects_scalar_only_agg(self):
        store = TimeSeriesStore()
        store.append("m", 0.0, 1.0)
        with pytest.raises(StoreError):
            store.resample("m", 0.0, 10.0, 1.0, agg="p95", engine="vectorized")

    def test_unknown_engine_rejected(self):
        store = TimeSeriesStore()
        store.append("m", 0.0, 1.0)
        with pytest.raises(StoreError):
            store.resample("m", 0.0, 10.0, 1.0, engine="numba")

    def test_align_engines_agree(self):
        store = TimeSeriesStore()
        rng = np.random.default_rng(7)
        for i in range(4):
            n = 40 + 10 * i
            store.append_many(f"s{i}", np.sort(rng.uniform(0, 100, n)),
                              rng.normal(size=n))
        for fill in ("ffill", "nan"):
            grid_v, mat_v = store.align([f"s{i}" for i in range(4)],
                                        0.0, 95.0, 7.0, fill=fill)
            grid_s, mat_s = store.align([f"s{i}" for i in range(4)],
                                        0.0, 95.0, 7.0, fill=fill,
                                        engine="scalar")
            assert grid_v.tolist() == grid_s.tolist()
            assert (np.isnan(mat_v) == np.isnan(mat_s)).all()
            np.testing.assert_allclose(mat_v[~np.isnan(mat_v)],
                                       mat_s[~np.isnan(mat_s)], rtol=1e-9)

    def test_every_scalar_agg_has_consistent_registry(self):
        # Vectorized kernels may only exist for aggs the scalar table knows.
        assert set(VECTORIZED_AGGREGATIONS) <= set(AGGREGATIONS)


class TestGapBucketRegression:
    """Audited gap-bucket contract: a bucket with no samples is NaN — never
    0 — for every aggregation, in BOTH engines.  ``count`` and ``sum`` are
    the regression-prone cases (0 is a plausible-but-wrong answer there),
    and the rollup tier-serving path is committed to the same contract."""

    def _store_with_hole(self):
        store = TimeSeriesStore()
        t = np.concatenate([np.arange(0.0, 50.0, 5.0),
                            np.arange(200.0, 250.0, 5.0)])
        store.append_many("m", t, np.ones(t.size))
        return store

    @pytest.mark.parametrize("agg", ["count", "sum"])
    @pytest.mark.parametrize("engine", ["vectorized", "scalar"])
    def test_gap_buckets_are_nan_not_zero(self, agg, engine):
        store = self._store_with_hole()
        _, v = store.resample("m", 0.0, 250.0, 10.0, agg=agg, engine=engine)
        hole = v[5:20]  # buckets covering (50, 200): no samples
        assert np.isnan(hole).all(), f"{engine}/{agg}: gap must be NaN"
        assert not np.any(v == 0.0), f"{engine}/{agg}: 0 would fake data"

    @pytest.mark.parametrize("agg", ["count", "sum"])
    def test_engines_agree_on_gap_mask(self, agg):
        store = self._store_with_hole()
        _, vec = store.resample("m", 0.0, 250.0, 10.0, agg=agg)
        _, sca = store.resample("m", 0.0, 250.0, 10.0, agg=agg,
                                engine="scalar")
        assert np.array_equal(np.isnan(vec), np.isnan(sca))
        np.testing.assert_allclose(vec[~np.isnan(vec)], sca[~np.isnan(sca)],
                                   rtol=1e-12)

    def test_leading_and_trailing_gaps(self):
        store = TimeSeriesStore()
        store.append_many("m", np.array([55.0, 57.0]), np.array([1.0, 2.0]))
        for engine in ("vectorized", "scalar"):
            _, v = store.resample("m", 0.0, 100.0, 10.0, agg="count",
                                  engine=engine)
            assert np.isnan(v[:5]).all() and np.isnan(v[6:]).all()
            assert v[5] == 2.0
