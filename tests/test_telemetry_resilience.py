"""Tests for the fault-tolerance layer: sensor-fault injection, pipeline
self-metrics, and end-to-end degradation under injected faults."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError, SensorDropoutError
from repro.telemetry import (
    HEALTH_TOPIC,
    FaultySource,
    HealthMonitor,
    MessageBus,
    Sampler,
    SensorFaultKind,
    StaleDataRule,
    TelemetrySystem,
    TimeSeriesStore,
    load_store,
    save_store,
)


def steady_source(now):
    return {"m.power": 100.0, "m.temp": 50.0}


class TestFaultySource:
    def test_passthrough_without_faults(self):
        src = FaultySource(steady_source)
        assert src(0.0) == {"m.power": 100.0, "m.temp": 50.0}

    def test_scheduled_dropout_raises(self):
        src = FaultySource(steady_source)
        src.inject(SensorFaultKind.DROPOUT, start=10.0, duration=5.0)
        assert src(0.0)["m.power"] == 100.0
        with pytest.raises(SensorDropoutError):
            src(12.0)
        assert src(20.0)["m.power"] == 100.0
        assert src.counts[SensorFaultKind.DROPOUT] == 1

    def test_scheduled_stuck_repeats_last_good(self):
        values = iter(range(100))
        src = FaultySource(lambda now: {"m.x": float(next(values))})
        src.inject(SensorFaultKind.STUCK, start=5.0, duration=10.0)
        assert src(0.0)["m.x"] == 0.0
        assert src(6.0)["m.x"] == 0.0  # frozen at last good reading
        assert src(10.0)["m.x"] == 0.0
        assert src(20.0)["m.x"] == 1.0  # recovered: source advances again

    def test_scheduled_spike_and_nan(self):
        src = FaultySource(steady_source)
        src.inject(SensorFaultKind.SPIKE, 0.0, 10.0, magnitude=5.0,
                   metrics="m.power")
        src.inject(SensorFaultKind.NAN, 20.0, 10.0, metrics="m.temp")
        readings = src(5.0)
        assert readings["m.power"] == 500.0
        assert readings["m.temp"] == 50.0  # pattern-restricted
        readings = src(25.0)
        assert math.isnan(readings["m.temp"])
        assert readings["m.power"] == 100.0

    def test_scheduled_drift_grows_linearly(self):
        src = FaultySource(steady_source)
        src.inject(SensorFaultKind.DRIFT, 0.0, 100.0, magnitude=0.5)
        assert src(10.0)["m.power"] == pytest.approx(105.0)
        assert src(20.0)["m.power"] == pytest.approx(110.0)

    def test_stochastic_dropout_is_seeded(self):
        def run(seed):
            src = FaultySource(
                steady_source, np.random.default_rng(seed), dropout_prob=0.3
            )
            events = []
            for t in range(50):
                try:
                    src(float(t))
                    events.append(0)
                except SensorDropoutError:
                    events.append(1)
            return events

        assert run(7) == run(7)  # deterministic under a seed
        assert sum(run(7)) > 0  # and some dropouts actually happen

    def test_stochastic_stuck_opens_episode(self):
        values = iter(range(1000))
        src = FaultySource(
            lambda now: {"m.x": float(next(values))},
            np.random.default_rng(3),
            stuck_prob=0.2,
            stuck_duration_s=10.0,
        )
        readings = [src(float(t))["m.x"] for t in range(60)]
        # At least one repeated (stuck) reading must appear.
        assert any(a == b for a, b in zip(readings, readings[1:]))
        assert src.counts[SensorFaultKind.STUCK] > 0

    def test_probabilities_validated(self):
        with pytest.raises(ConfigurationError):
            FaultySource(steady_source, np.random.default_rng(0), dropout_prob=1.5)
        with pytest.raises(ConfigurationError):
            FaultySource(steady_source, dropout_prob=0.5)  # rng required


class TestHealthMonitor:
    def test_health_metrics_published_and_stored(self, sim):
        telemetry = TelemetrySystem(health_period=10.0)
        agent = telemetry.new_agent("a", period=5.0)
        agent.add_sampler(Sampler("s", steady_source))
        telemetry.start_all(sim)
        sim.run_until(30.0)
        t, delivered = telemetry.store.query("telemetry.bus.delivered")
        assert t.size == 3  # health ticks at 10, 20, 30
        assert delivered[-1] > 0
        t, scrapes = telemetry.store.query("telemetry.agent.a.scrapes")
        assert scrapes[-1] >= 6.0
        _, samples = telemetry.store.query("telemetry.store.samples")
        assert samples[-1] > 0

    def test_health_tick_drives_stale_alerts(self, sim):
        telemetry = TelemetrySystem(health_period=10.0)
        agent = telemetry.new_agent("a", period=5.0)
        sampler = agent.add_sampler(Sampler("s", steady_source))
        telemetry.alerts.add_stale_rule(
            StaleDataRule("dead-sensor", "m.*", max_age=15.0)
        )
        telemetry.start_all(sim)
        sim.run_until(20.0)
        assert telemetry.alerts.active_alerts() == []
        # Kill the sensor: every scrape now raises.
        def dead(now):
            raise RuntimeError("sensor died")

        sampler.source = dead
        sim.run_until(100.0)
        stale = [a for a in telemetry.alerts.active_alerts()
                 if isinstance(a.rule, StaleDataRule)]
        assert {a.metric for a in stale} == {"m.power", "m.temp"}
        assert sampler.errors > 0

    def test_probe_metrics_included(self):
        bus = MessageBus()
        monitor = HealthMonitor(bus, period=10.0)
        monitor.add_probe(lambda: {"custom.probe": 42.0})
        batch = monitor.collect(5.0)
        assert batch.as_dict()["custom.probe"] == 42.0
        assert bus.topic_count(HEALTH_TOPIC) == 1

    def test_stop_all_stops_health(self, sim):
        telemetry = TelemetrySystem(health_period=10.0)
        telemetry.start_all(sim)
        assert telemetry.health.running
        telemetry.stop_all()
        assert not telemetry.health.running


class TestPersistenceRetention:
    def test_load_store_applies_retention(self, tmp_path):
        """Regression: load_store went through append_many, which used to
        bypass retention — an archived store grew without bound on reload."""
        source = TimeSeriesStore()  # no retention while recording
        source.append_many("m", np.arange(100.0), np.arange(100.0))
        source.retention = 10.0  # archived with a retention policy
        path = str(tmp_path / "archive.npz")
        save_store(source, path)

        loaded = load_store(path)
        assert loaded.retention == 10.0
        times, _ = loaded.query("m")
        assert times[0] >= 89.0
        assert len(loaded.series("m")) <= 12

    def test_round_trip_of_retention_limited_store(self, tmp_path):
        store = TimeSeriesStore(retention=20.0)
        for t in range(100):
            store.append("a", float(t), float(t) * 2)
        store.append_many("b", np.arange(90.0, 100.0), np.ones(10))
        path = str(tmp_path / "rt.npz")
        save_store(store, path)
        loaded = load_store(path)
        for name in ("a", "b"):
            orig_t, orig_v = store.query(name)
            new_t, new_v = loaded.query(name)
            assert new_t.tolist() == orig_t.tolist()
            assert new_v.tolist() == orig_v.tolist()


class TestEndToEndResilience:
    def test_pipeline_degrades_gracefully_under_faults(self, sim):
        """The acceptance scenario: raising subscriber + faulty sensor."""
        telemetry = TelemetrySystem(health_period=30.0)
        agent = telemetry.new_agent("a", period=10.0)
        rng = np.random.default_rng(42)
        faulty = FaultySource(steady_source, rng, dropout_prob=0.1)
        faulty.inject(SensorFaultKind.STUCK, start=200.0, duration=100.0)
        agent.add_sampler(Sampler("s", faulty))

        def bad_sink(topic, batch):
            raise RuntimeError("analytics sink down")

        bad = telemetry.bus.subscribe("s", bad_sink)
        telemetry.alerts.add_stale_rule(
            StaleDataRule("nodata", "m.*", max_age=60.0)
        )
        telemetry.start_all(sim)
        sim.run_until(600.0)  # completes without an unhandled exception

        assert telemetry.bus.dead_letter_count > 0
        assert bad.quarantined
        assert faulty.counts[SensorFaultKind.DROPOUT] > 0
        assert agent.scrape_errors > 0
        # Data still flowed around the faults into the store.
        times, _ = telemetry.store.query("m.power")
        assert times.size > 0
        _, errors = telemetry.store.query("telemetry.bus.delivery_errors")
        assert errors[-1] > 0
