"""Tests for the process-parallel shard runtime: shared-memory rings,
worker lifecycle (crash / detect / restart / replay), backpressure, durable
checkpointing, and bit-for-bit parity with the in-process sharded store."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, ShardDownError
from repro.oda import DataCenter
from repro.telemetry import (
    ParallelShardRuntime,
    RuntimeConfig,
    SampleBatch,
    SampleRing,
    ShardedStore,
    TelemetrySystem,
    TimeSeriesStore,
)

NAMES = tuple(f"cluster.rack{r}.node{n}.power" for r in range(2) for n in range(6))


def make_batches(n_batches: int = 50, names: tuple = NAMES, seed: int = 0):
    rng = np.random.default_rng(seed)
    return [
        SampleBatch(float(t), names, rng.random(len(names)))
        for t in range(n_batches)
    ]


@pytest.fixture
def parallel_store(request):
    """Factory for parallel ShardedStores that are always closed."""
    opened = []

    def build(shards: int, replication: int = 0, **cfg) -> ShardedStore:
        store = ShardedStore(
            shards=shards,
            replication=replication,
            parallel=True,
            parallel_config=RuntimeConfig(**cfg) if cfg else None,
        )
        opened.append(store)
        return store

    yield build
    for store in opened:
        store.close()


def _consume_one_slot(ring, conn):
    """Child-process half of the ring sharing test."""
    names_id, time, view = ring.read_slot(0)
    conn.send((names_id, time, np.asarray(view).copy()))
    ring.mark_applied(1)
    ring.mark_acked(1)
    conn.close()


# ---------------------------------------------------------------------------
# The shared-memory ring itself
# ---------------------------------------------------------------------------
class TestSampleRing:
    def test_push_read_ack_roundtrip(self):
        ring = SampleRing(capacity=4, slot_width=8)
        values = np.arange(3.0)
        assert ring.try_push(7, 1.5, values)
        assert ring.head == 1 and ring.backlog == 1
        names_id, time, view = ring.read_slot(0)
        assert names_id == 7 and time == 1.5
        np.testing.assert_array_equal(view, values)
        ring.mark_applied(1)
        ring.mark_acked(1)
        assert ring.backlog == 0 and ring.unacked == 0
        assert ring.free_slots == 4

    def test_full_ring_rejects_until_acked(self):
        ring = SampleRing(capacity=2, slot_width=4)
        assert ring.try_push(0, 0.0, np.ones(1))
        assert ring.try_push(0, 1.0, np.ones(1))
        assert not ring.try_push(0, 2.0, np.ones(1))  # full: unacked == cap
        ring.mark_applied(1)
        assert not ring.try_push(0, 2.0, np.ones(1))  # applied != reclaimed
        ring.mark_acked(1)
        assert ring.try_push(0, 2.0, np.ones(1))  # slot reclaimed at ack

    def test_slot_wraparound_preserves_data(self):
        ring = SampleRing(capacity=2, slot_width=4)
        for t in range(7):
            assert ring.try_push(t, float(t), np.full(2, float(t)))
            _, time, view = ring.read_slot(t)
            assert time == float(t)
            np.testing.assert_array_equal(view, np.full(2, float(t)))
            ring.mark_applied(t + 1)
            ring.mark_acked(t + 1)

    def test_oversized_and_invalid_pushes_rejected(self):
        ring = SampleRing(capacity=2, slot_width=4)
        with pytest.raises(ValueError):
            ring.try_push(0, 0.0, np.ones(5))  # wider than a slot
        with pytest.raises(ValueError):
            SampleRing(capacity=0, slot_width=4)

    def test_ring_is_shared_with_child_process(self):
        # Workers receive the ring through Process args: the NumPy views
        # are dropped for transfer and rebuilt over the *same* shared
        # RawArrays on the other side, so a child's acks and a parent's
        # pushes are visible to each other.
        import multiprocessing as mp

        ring = SampleRing(capacity=4, slot_width=8)
        ring.try_push(3, 9.0, np.array([1.0, 2.0]))
        parent, child = mp.Pipe()
        proc = mp.Process(target=_consume_one_slot, args=(ring, child))
        proc.start()
        child.close()
        names_id, time, values = parent.recv()
        proc.join(timeout=10.0)
        assert (names_id, time) == (3, 9.0)
        np.testing.assert_array_equal(values, [1.0, 2.0])
        assert ring.applied == 1 and ring.acked == 1  # child's marks visible
        assert ring.free_slots == 4


# ---------------------------------------------------------------------------
# Parity: parallel mode must be indistinguishable from in-process sharding
# ---------------------------------------------------------------------------
@st.composite
def ingest_runs(draw):
    pool = draw(st.lists(
        st.sampled_from([f"m{i}.s" for i in range(12)]),
        min_size=1, max_size=8, unique=True,
    ))
    n_batches = draw(st.integers(min_value=1, max_value=25))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    dt = draw(st.floats(min_value=0.25, max_value=7.5))
    rng = np.random.default_rng(seed)
    names = tuple(pool)
    return [
        SampleBatch(round(t * dt, 6), names, rng.random(len(names)))
        for t in range(n_batches)
    ]


class TestParallelParity:
    @given(runs=ingest_runs(), shards=st.sampled_from([1, 2, 8]))
    @settings(max_examples=12, deadline=None)
    def test_queries_bit_identical_to_in_process(self, runs, shards):
        inproc = ShardedStore(shards=shards, replication=0)
        par = ShardedStore(shards=shards, replication=0, parallel=True)
        try:
            for batch in runs:
                inproc.ingest("t", batch)
                par.ingest("t", batch)
            par.runtime.drain()
            until = runs[-1].time + 1.0
            step = max(until / 7.0, 0.5)
            assert par.names() == inproc.names()
            for name in inproc.names():
                t0, v0 = inproc.query(name)
                t1, v1 = par.query(name)
                np.testing.assert_array_equal(t0, t1)
                np.testing.assert_array_equal(v0, v1)
                for agg in ("mean", "max", "p95", "rate"):
                    g0, r0 = inproc.resample(name, 0.0, until, step, agg=agg)
                    g1, r1 = par.resample(name, 0.0, until, step, agg=agg)
                    np.testing.assert_array_equal(g0, g1)
                    np.testing.assert_array_equal(r0, r1)
            grid0, m0 = inproc.align(inproc.names(), 0.0, until, step)
            grid1, m1 = par.align(par.names(), 0.0, until, step)
            np.testing.assert_array_equal(grid0, grid1)
            np.testing.assert_array_equal(m0, m1)
        finally:
            par.close()

    def test_store_config_mirrored_into_workers(self, parallel_store):
        par = parallel_store(2)
        inproc = ShardedStore(shards=2)
        for batch in make_batches(30):
            par.ingest("t", batch)
            inproc.ingest("t", batch)
        par.runtime.drain()
        rs = par.replica_sets[0]
        assert rs.primary.flush_threshold == inproc.replica_sets[0].primary.flush_threshold
        assert NAMES[0] in par
        assert len(par.select("cluster.rack0.*")) == len(inproc.select("cluster.rack0.*"))
        assert par.latest(NAMES[0]) == inproc.latest(NAMES[0])
        assert par.value_at(NAMES[0], 10.0) == inproc.value_at(NAMES[0], 10.0)

    def test_duplicate_timestamps_match(self, parallel_store):
        # Last-writer-wins on equal timestamps must survive the columnar
        # batched apply in the worker.
        par = parallel_store(1)
        inproc = ShardedStore(shards=1)
        rng = np.random.default_rng(5)
        times = [0.5, 1.0, 1.0, 2.0, 3.0, 3.0]
        for t in times:
            batch = SampleBatch(t, ("a.s", "b.s"), rng.random(2))
            par.ingest("t", batch)
            inproc.ingest("t", batch)
        par.runtime.drain()
        for name in ("a.s", "b.s"):
            t0, v0 = inproc.query(name)
            t1, v1 = par.query(name)
            np.testing.assert_array_equal(t0, t1)
            np.testing.assert_array_equal(v0, v1)


# ---------------------------------------------------------------------------
# Worker lifecycle: crash, detection, restart, replay, durability
# ---------------------------------------------------------------------------
class TestWorkerLifecycle:
    def test_crash_detected_and_restarted(self, parallel_store):
        par = parallel_store(2)
        for batch in make_batches(20):
            par.ingest("t", batch)
        par.runtime.drain()
        par.runtime.crash_worker(0)
        assert not par.runtime.worker_alive(0)
        crashed = par.runtime.check_workers()
        assert crashed == [0]
        assert par.runtime.worker_crashes == 1
        assert par.runtime.worker_restarts == 1
        assert par.runtime.worker_alive(0)

    def test_on_crash_callback_fires(self, parallel_store):
        par = parallel_store(1)
        seen = []
        par.runtime.on_crash = seen.append
        par.runtime.crash_worker(0)
        par.runtime.check_workers()
        assert seen == [0]

    def test_auto_restart_disabled_leaves_worker_down(self, parallel_store):
        par = parallel_store(1, auto_restart=False)
        par.runtime.crash_worker(0)
        assert par.runtime.check_workers() == [0]
        assert not par.runtime.worker_alive(0)
        assert par.runtime.worker_restarts == 0

    def test_restart_replays_unacked_backlog(self, parallel_store):
        # durability="none": data already applied lives only in the dead
        # worker's memory and is lost, but the un-acked ring window
        # survives the crash and replays into the replacement — nothing
        # still sitting in the ring is ever dropped.
        par = parallel_store(1, ring_capacity=64)
        for batch in make_batches(10):
            par.ingest("t", batch)
        par.runtime.drain()
        par.runtime.crash_worker(0)
        # Pushes while the worker is dead pile up in the shared ring.
        for batch in make_batches(10, seed=1)[5:]:
            batch = SampleBatch(batch.time + 100.0, batch.names, batch.values)
            par.ingest("t", batch)
        par.runtime.check_workers()  # detect + restart
        par.runtime.drain()
        t, _ = par.query(NAMES[0])
        np.testing.assert_array_equal(t, [105.0, 106.0, 107.0, 108.0, 109.0])
        assert par.runtime.replayed_slots >= 5

    def test_checkpoint_durability_loses_no_acked_batch(self, tmp_path):
        par = ShardedStore(
            shards=2, replication=1, parallel=True,
            parallel_config=RuntimeConfig(
                durability="checkpoint",
                checkpoint_dir=str(tmp_path),
                checkpoint_interval=8,
                ring_capacity=64,
            ),
        )
        try:
            for batch in make_batches(40):
                par.ingest("t", batch)
            par.runtime.drain()
            acked_before = [r.acked for r in par.runtime.rings]
            par.runtime.crash_worker(0)
            par.runtime.crash_worker(1)
            par.runtime.check_workers()
            for batch in make_batches(50, seed=3)[40:]:
                par.ingest("t", batch)
            par.runtime.drain()
            # Every acknowledged batch survived the crash...
            for name in NAMES:
                t, _ = par.query(name)
                assert len(t) == 50
            # ...and the restart resumed from at least the acked frontier.
            assert all(
                r.acked >= a for r, a in zip(par.runtime.rings, acked_before)
            )
        finally:
            par.close()

    def test_close_drains_pending_batches(self):
        par = ShardedStore(shards=2, parallel=True)
        for batch in make_batches(25):
            par.ingest("t", batch)
        par.close()  # graceful drain: nothing pushed may be lost
        assert all(r.backlog == 0 and r.unacked == 0 for r in par.runtime.rings)
        par.close()  # idempotent

    def test_watchdog_sweep_traces_and_restarts(self):
        # No ingest traffic: the supervisor's periodic sweep is the only
        # detector, so the crash must surface as a traced watchdog event.
        from repro.oda.supervision import Supervisor
        from repro.simulation.engine import Simulator
        from repro.simulation.trace import TraceLog

        sim = Simulator()
        trace = TraceLog()
        runtime = ParallelShardRuntime(2, 0, {})
        try:
            sup = Supervisor(sim, trace=trace).start()
            sup.watch_runtime(runtime)
            sup.watch_runtime(runtime)  # idempotent
            assert sup.runtimes == [runtime]
            runtime.crash_worker(1)
            sim.run(601.0)  # past a watchdog period (300 s)
            events = trace.select(
                source="supervisor.runtime", kind="worker_crash"
            )
            assert len(events) == 1
            assert events[0].detail["shard"] == 1
            assert events[0].detail["restarted"] is True
            assert runtime.worker_alive(1)
            values = sup.metrics_registry.snapshot()
            assert values["oda.supervisor.worker_crashes"] == 1.0
            assert values["oda.supervisor.worker_restarts"] == 1.0
        finally:
            runtime.close()

    def test_supervised_datacenter_survives_mid_run_crash(self, tmp_path):
        dc = DataCenter(
            seed=11, racks=2, nodes_per_rack=2, shards=2, replication=1,
            parallel=True,
            parallel_config=RuntimeConfig(
                durability="checkpoint", checkpoint_dir=str(tmp_path),
                checkpoint_interval=8,
            ),
        )
        try:
            dc.enable_supervision()
            dc.run(days=0.1)
            t0, _ = dc.metric("facility.pue")
            dc.shard_fault().crash_worker(0, now=dc.sim.now)
            dc.run(seconds=1800)
            # Either the ingest path's self-repair or the watchdog sweep
            # wins the race — both end in exactly one detected crash and
            # one replacement worker, with collection uninterrupted.
            rt = dc.store.runtime
            assert rt.worker_crashes == 1 and rt.worker_restarts == 1
            t1, _ = dc.metric("facility.pue")
            assert len(t1) > len(t0)  # ingest kept flowing after restart
            assert "oda_supervisor_worker_crashes 1.0" in dc.prometheus()
        finally:
            dc.close()


# ---------------------------------------------------------------------------
# Backpressure and chunking
# ---------------------------------------------------------------------------
class TestBackpressure:
    def test_full_ring_drops_after_timeout_never_raises(self, parallel_store):
        par = parallel_store(
            1, ring_capacity=4, push_timeout=0.05, auto_restart=False,
        )
        par.runtime.crash_worker(0)  # nobody drains: ring fills for real
        for batch in make_batches(12):
            par.ingest("t", batch)  # must not raise
        rt = par.runtime
        assert rt.dropped_batches == 8
        assert rt.dropped_samples == 8 * len(NAMES)
        assert rt.backpressure_waits >= 8
        metrics = rt.health_metrics()
        assert metrics["telemetry.runtime.dropped_batches"] == 8.0
        assert metrics["telemetry.runtime.backlog"] == 4.0

    def test_wide_batches_chunk_across_slots(self, parallel_store):
        par = parallel_store(1, slot_width=8)
        names = tuple(f"wide.m{i}" for i in range(20))  # 3 slots at width 8
        rng = np.random.default_rng(2)
        expect = {}
        for t in range(5):
            values = rng.random(len(names))
            par.ingest("t", SampleBatch(float(t), names, values))
            expect[t] = values
        par.runtime.drain()
        assert par.runtime.pushed_slots == 15
        for i, name in enumerate(names):
            t, v = par.query(name)
            np.testing.assert_array_equal(
                v, [expect[tick][i] for tick in range(5)]
            )


# ---------------------------------------------------------------------------
# Faults through the proxy layer
# ---------------------------------------------------------------------------
class TestParallelFaults:
    def test_down_member_misses_writes_until_resync(self, parallel_store):
        par = parallel_store(1, replication=1)
        batches = make_batches(30)
        for batch in batches[:10]:
            par.ingest("t", batch)
        rs = par.replica_sets[0]
        rs.mark_down(1)
        for batch in batches[10:20]:
            par.ingest("t", batch)
        assert rs.missed_writes[1] == 10 * len(NAMES)  # counted per sample
        rs.revive(1, resync=True)
        for batch in batches[20:]:
            par.ingest("t", batch)
        par.runtime.drain()
        rs.mark_down(0)  # force reads onto the resynced replica
        t, _ = par.query(NAMES[0])
        assert len(t) == 30  # resync recovered the missed window

    def test_fully_down_shard_raises_and_counts_losses(self, parallel_store):
        par = parallel_store(1, replication=0)
        par.ingest("t", make_batches(1)[0])
        rs = par.replica_sets[0]
        rs.mark_down(0)
        par.ingest("t", make_batches(2)[1])
        assert rs.lost_batches == 1
        assert rs.lost_samples == len(NAMES)
        with pytest.raises(ShardDownError):
            par.query(NAMES[0])

    def test_resync_failure_surfaces_from_worker(self, parallel_store):
        par = parallel_store(1, replication=1)
        for batch in make_batches(5):
            par.ingest("t", batch)
        rs = par.replica_sets[0]
        rs.mark_down(1)
        rs.mark_down(0)
        rs.revive(1, resync=True)  # no healthy peer in the worker either
        assert rs.resync_failures == 1
        assert par.health_metrics()["telemetry.shard.resync_failed"] == 1.0

    def test_degrade_is_reproducible_across_restart(self, parallel_store):
        par = parallel_store(1, replication=1)
        rs = par.replica_sets[0]
        rs.degrade(0.5, np.random.default_rng(9), member=1)
        for batch in make_batches(20):
            par.ingest("t", batch)
        par.runtime.drain()
        dropped_before = rs.dropped_writes[1]
        assert dropped_before > 0
        # Restart mirrors the fault state (including the drawn seed) into
        # the replacement worker: degradation keeps applying.
        par.runtime.crash_worker(0)
        par.runtime.check_workers()
        for batch in make_batches(40, seed=4)[20:]:
            par.ingest("t", batch)
        par.runtime.drain()
        assert rs.dropped_writes[1] > dropped_before


# ---------------------------------------------------------------------------
# Configuration guard rails
# ---------------------------------------------------------------------------
class TestRuntimeValidation:
    def test_custom_store_factory_rejected_in_parallel(self):
        with pytest.raises(ConfigurationError):
            ShardedStore(
                shards=2, parallel=True, store_factory=TimeSeriesStore,
            )

    def test_parallel_requires_shards_in_telemetry_system(self):
        with pytest.raises(ConfigurationError):
            TelemetrySystem(parallel=True)

    def test_checkpoint_durability_requires_dir(self):
        with pytest.raises(ConfigurationError):
            RuntimeConfig(durability="checkpoint")
        with pytest.raises(ConfigurationError):
            RuntimeConfig(durability="paxos")

    def test_runtime_rejects_bad_topology(self):
        with pytest.raises(ConfigurationError):
            ParallelShardRuntime(0, 0, {})
