"""Tests for scheduler drain/requeue and proactive maintenance."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analytics.prescriptive import ProactiveMaintenance
from repro.apps import default_catalog
from repro.apps.generator import JobRequest
from repro.cluster import NodeFaultKind, build_system
from repro.errors import SchedulingError
from repro.oda import DataCenter
from repro.software import JobState, Scheduler


def request(job_id, nodes=2, work=20_000.0, wall=86_400.0):
    return JobRequest(
        job_id=job_id, submit_time=0.0, user="u",
        profile=default_catalog().get("cfd_solver"),
        nodes=nodes, work_s=work, walltime_req_s=wall,
    )


@pytest.fixture
def setup(sim, trace, rng):
    system = build_system(racks=1, nodes_per_rack=8)
    system.attach(sim, trace, rng)
    scheduler = Scheduler(system, tick=60.0)
    scheduler.attach(sim, trace)
    return sim, system, scheduler


class TestDrain:
    def test_drained_node_not_allocated(self, setup):
        sim, system, scheduler = setup
        scheduler.drain("r0n0", sim.now)
        scheduler.submit(request("a", nodes=8))
        sim.run(600)
        assert scheduler.jobs["a"].state is JobState.PENDING  # 7 free < 8

    def test_undrain_restores(self, setup):
        sim, system, scheduler = setup
        scheduler.drain("r0n0", sim.now)
        scheduler.undrain("r0n0", sim.now)
        scheduler.submit(request("a", nodes=8))
        sim.run(600)
        assert scheduler.jobs["a"].state is JobState.RUNNING

    def test_drain_traced(self, setup, trace):
        sim, _, scheduler = setup
        scheduler.drain("r0n3", sim.now)
        assert trace.select(kind="node_drain")

    def test_drain_unknown_node(self, setup):
        sim, _, scheduler = setup
        with pytest.raises(Exception):
            scheduler.drain("bogus", sim.now)


class TestRequeue:
    def test_requeue_keeps_progress(self, setup):
        sim, _, scheduler = setup
        scheduler.submit(request("a", nodes=2, work=50_000.0))
        sim.run(3600)
        job = scheduler.jobs["a"]
        progress = job.work_done_s
        assert progress > 1000.0
        scheduler.requeue("a", sim.now, keep_progress=True)
        assert job.state is JobState.PENDING
        assert job.work_done_s == progress
        sim.run(300)
        assert job.state is JobState.RUNNING  # restarted on free nodes

    def test_requeue_without_progress(self, setup):
        sim, _, scheduler = setup
        scheduler.submit(request("a", nodes=2, work=50_000.0))
        sim.run(3600)
        scheduler.requeue("a", sim.now, keep_progress=False)
        assert scheduler.jobs["a"].work_done_s == 0.0

    def test_requeue_pending_rejected(self, setup):
        sim, _, scheduler = setup
        scheduler.drain("r0n0", sim.now)  # keep the job queued
        for name in [f"r0n{i}" for i in range(1, 8)]:
            scheduler.drain(name, sim.now)
        scheduler.submit(request("a"))
        sim.run(120)
        with pytest.raises(SchedulingError):
            scheduler.requeue("a", sim.now)


class TestResubmitFailed:
    def test_failed_job_restarts_from_scratch(self, sim, trace, rng):
        system = build_system(racks=1, nodes_per_rack=4)
        system.attach(sim, trace, rng)
        scheduler = Scheduler(system, tick=60.0, resubmit_failed=True)
        scheduler.attach(sim, trace)
        scheduler.submit(request("a", nodes=2, work=50_000.0))
        sim.run(3600)
        job = scheduler.jobs["a"]
        victim = job.assigned_nodes[0]
        system.node(victim).fail()
        sim.run(300)
        assert job.state is JobState.PENDING or job.state is JobState.RUNNING
        assert job.restarts == 1
        assert trace.select(kind="job_restart")

    def test_max_restarts_enforced(self, sim, trace, rng):
        system = build_system(racks=1, nodes_per_rack=4)
        system.attach(sim, trace, rng)
        scheduler = Scheduler(system, tick=60.0, resubmit_failed=True, max_restarts=1)
        scheduler.attach(sim, trace)
        scheduler.submit(request("a", nodes=4, work=500_000.0))
        for _ in range(2):
            sim.run(600)
            job = scheduler.jobs["a"]
            if job.assigned_nodes:
                system.node(job.assigned_nodes[0]).fail()
            sim.run(300)
            for node in system.nodes:
                node.restore()
        assert scheduler.jobs["a"].state is JobState.FAILED


class TestProactiveMaintenance:
    def test_evacuates_before_predicted_crash(self):
        dc = DataCenter(seed=5, racks=1, nodes_per_rack=8, enable_faults=True)
        dc.scheduler.resubmit_failed = True
        maintenance = ProactiveMaintenance(dc.scheduler, dc.store, period=600.0)
        maintenance.attach(dc.sim, dc.trace)
        dc.scheduler.submit(request("a", nodes=8, work=400_000.0), 0.0)
        dc.run(seconds=600)
        # Force a pending crash with an ECC ramp on a job node.
        victim = dc.scheduler.jobs["a"].assigned_nodes[0]
        dc.system.fault_model._pending_crash[victim] = dc.sim.now + 2 * 3600.0
        dc.run(seconds=3 * 3600.0)
        assert maintenance.drains >= 1
        assert maintenance.evacuations >= 1
        assert dc.trace.select(kind="job_requeue")
        # The job survived the crash (never lost its progress).
        assert dc.scheduler.jobs["a"].restarts == 0

    def test_repaired_node_undrained(self):
        dc = DataCenter(seed=6, racks=1, nodes_per_rack=4, enable_faults=True)
        maintenance = ProactiveMaintenance(dc.scheduler, dc.store, period=600.0)
        maintenance.attach(dc.sim, dc.trace)
        victim = dc.system.nodes[0]
        dc.system.fault_model._pending_crash[victim.name] = dc.sim.now + 3600.0
        dc.run(seconds=2 * 3600.0)   # drains, then node crashes
        assert victim.name in dc.scheduler.drained or not victim.up
        dc.run(seconds=10 * 3600.0)  # repair (exp mttr 6h) then undrain
        if victim.up:
            assert victim.name not in dc.scheduler.drained
