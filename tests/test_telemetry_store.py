"""Tests for the columnar time-series store."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StoreError, UnknownMetricError
from repro.telemetry import SampleBatch, SeriesBuffer, TimeSeriesStore


class TestSeriesBuffer:
    def test_append_and_views(self):
        buf = SeriesBuffer("m")
        buf.append(1.0, 10.0)
        buf.append(2.0, 20.0)
        assert len(buf) == 2
        assert buf.times.tolist() == [1.0, 2.0]
        assert buf.values.tolist() == [10.0, 20.0]

    def test_growth_beyond_initial_capacity(self):
        buf = SeriesBuffer("m", capacity=4)
        for i in range(100):
            buf.append(float(i), float(i) * 2)
        assert len(buf) == 100
        assert buf.values[-1] == 198.0

    def test_equal_timestamp_overwrites(self):
        buf = SeriesBuffer("m")
        buf.append(1.0, 10.0)
        buf.append(1.0, 99.0)
        assert len(buf) == 1
        assert buf.values[0] == 99.0

    def test_out_of_order_rejected(self):
        buf = SeriesBuffer("m")
        buf.append(5.0, 1.0)
        with pytest.raises(StoreError):
            buf.append(4.0, 1.0)

    def test_range_query_inclusive(self):
        buf = SeriesBuffer("m")
        for t in range(10):
            buf.append(float(t), float(t))
        times, values = buf.range(2.0, 5.0)
        assert times.tolist() == [2.0, 3.0, 4.0, 5.0]

    def test_range_returns_views_not_copies(self):
        buf = SeriesBuffer("m")
        for t in range(10):
            buf.append(float(t), float(t))
        times, _ = buf.range(0.0, 9.0)
        assert times.base is not None  # a view onto the internal buffer

    def test_latest(self):
        buf = SeriesBuffer("m")
        buf.append(1.0, 5.0)
        buf.append(3.0, 7.0)
        assert buf.latest() == (3.0, 7.0)

    def test_latest_empty_raises(self):
        with pytest.raises(StoreError):
            SeriesBuffer("m").latest()

    def test_value_at_carries_forward(self):
        buf = SeriesBuffer("m")
        buf.append(1.0, 5.0)
        buf.append(10.0, 7.0)
        assert buf.value_at(5.0) == 5.0
        assert buf.value_at(10.0) == 7.0
        assert buf.value_at(100.0) == 7.0

    def test_value_at_before_first_raises(self):
        buf = SeriesBuffer("m")
        buf.append(5.0, 1.0)
        with pytest.raises(StoreError):
            buf.value_at(4.0)

    def test_append_many(self):
        buf = SeriesBuffer("m")
        buf.append_many(np.arange(5.0), np.arange(5.0) * 10)
        assert len(buf) == 5
        buf.append_many(np.arange(5.0, 10.0), np.ones(5))
        assert len(buf) == 10

    def test_append_many_must_not_precede_last(self):
        buf = SeriesBuffer("m")
        buf.append(5.0, 1.0)
        with pytest.raises(StoreError):
            buf.append_many(np.array([4.0, 6.0]), np.zeros(2))

    def test_append_many_equal_boundary_overwrites(self):
        """Regression: a bulk append starting at the last stored timestamp
        used to be rejected; it must overwrite in place (last writer wins)
        to match ``append`` semantics."""
        buf = SeriesBuffer("m")
        buf.append(5.0, 1.0)
        buf.append_many(np.array([5.0, 6.0]), np.array([7.0, 8.0]))
        assert len(buf) == 2
        assert buf.times.tolist() == [5.0, 6.0]
        assert buf.values.tolist() == [7.0, 8.0]

    def test_append_many_all_equal_boundary_collapses(self):
        buf = SeriesBuffer("m")
        buf.append(5.0, 1.0)
        buf.append_many(np.array([5.0, 5.0]), np.array([2.0, 3.0]))
        assert len(buf) == 1
        assert buf.values.tolist() == [3.0]  # final writer wins

    def test_append_many_rejects_unsorted(self):
        with pytest.raises(StoreError):
            SeriesBuffer("m").append_many(np.array([2.0, 1.0]), np.zeros(2))

    def test_trim_before(self):
        buf = SeriesBuffer("m")
        for t in range(10):
            buf.append(float(t), float(t))
        dropped = buf.trim_before(5.0)
        assert dropped == 5
        assert buf.times.tolist() == [5.0, 6.0, 7.0, 8.0, 9.0]


class TestStoreIngest:
    def test_ingest_batch(self):
        store = TimeSeriesStore()
        store.ingest("topic", SampleBatch.from_mapping(1.0, {"a": 1.0, "b": 2.0}))
        assert store.names() == ["a", "b"]
        assert store.samples_ingested == 2

    def test_latest_time_tracks_max(self):
        store = TimeSeriesStore()
        store.append("a", 5.0, 1.0)
        store.append("b", 3.0, 1.0)
        assert store.latest_time == 5.0

    def test_retention_trims(self):
        store = TimeSeriesStore(retention=10.0)
        for t in range(100):
            store.append("a", float(t), 0.0)
        times, _ = store.query("a")
        assert times[0] >= 89.0

    def test_retention_applies_to_append_many(self):
        """Regression: bulk ingest used to bypass the retention policy."""
        store = TimeSeriesStore(retention=10.0)
        store.append_many("a", np.arange(100.0), np.zeros(100))
        times, _ = store.query("a")
        assert times[0] >= 89.0
        assert len(store.series("a")) <= 12

    def test_retention_append_many_trims_other_series(self):
        store = TimeSeriesStore(retention=10.0)
        for t in range(50):
            store.append("old", float(t), 0.0)
        store.append_many("new", np.arange(100.0, 120.0), np.zeros(20))
        old_times, _ = store.query("old")
        assert old_times.size == 0  # everything older than 119 - 10

    def test_retention_append_append_many_interleaved(self):
        store = TimeSeriesStore(retention=20.0)
        store.append("a", 0.0, 1.0)
        store.append_many("b", np.arange(0.0, 30.0), np.zeros(30))
        store.append("a", 35.0, 2.0)
        store.append_many("b", np.arange(40.0, 50.0), np.ones(10))
        for name in ("a", "b"):
            times, _ = store.query(name)
            assert times.size == 0 or times[0] >= store.latest_time - 20.0

    def test_unknown_series(self):
        with pytest.raises(UnknownMetricError):
            TimeSeriesStore().query("nope")


class TestStagedIngest:
    """Batch ingest stages samples per series and flushes vectorized."""

    def test_staged_samples_visible_to_queries(self):
        store = TimeSeriesStore(flush_threshold=1000)
        for t in range(10):
            store.ingest("topic", SampleBatch.from_mapping(float(t), {"a": float(t)}))
        assert store.staged_samples == 10  # nothing flushed yet
        times, values = store.query("a")
        assert times.tolist() == [float(t) for t in range(10)]
        assert store.staged_samples == 0  # read flushed the series

    def test_flush_threshold_triggers_vectorized_flush(self):
        store = TimeSeriesStore(flush_threshold=4)
        for t in range(10):
            store.ingest("topic", SampleBatch.from_mapping(float(t), {"a": 1.0}))
        assert store.flushes >= 2
        assert len(store.series("a")) == 10

    def test_staged_series_listed_before_flush(self):
        store = TimeSeriesStore(flush_threshold=1000)
        store.ingest("topic", SampleBatch.from_mapping(0.0, {"a": 1.0, "b": 2.0}))
        assert store.names() == ["a", "b"]
        assert "a" in store and len(store) == 2

    def test_equal_timestamp_ingest_is_last_writer_wins(self):
        store = TimeSeriesStore(flush_threshold=1000)
        store.ingest("t1", SampleBatch.from_mapping(1.0, {"a": 1.0}))
        store.ingest("t2", SampleBatch.from_mapping(1.0, {"a": 9.0}))
        times, values = store.query("a")
        assert times.tolist() == [1.0]
        assert values.tolist() == [9.0]

    def test_lww_across_flush_boundary(self):
        store = TimeSeriesStore(flush_threshold=1000)
        store.ingest("t", SampleBatch.from_mapping(1.0, {"a": 1.0}))
        store.flush()
        store.ingest("t", SampleBatch.from_mapping(1.0, {"a": 9.0}))
        times, values = store.query("a")
        assert times.tolist() == [1.0]
        assert values.tolist() == [9.0]

    def test_out_of_order_ingest_raises_immediately(self):
        store = TimeSeriesStore(flush_threshold=1000)
        store.ingest("t", SampleBatch.from_mapping(5.0, {"a": 1.0}))
        with pytest.raises(StoreError):
            store.ingest("t", SampleBatch.from_mapping(4.0, {"a": 2.0}))

    def test_out_of_order_vs_flushed_data_raises(self):
        store = TimeSeriesStore(flush_threshold=1000)
        store.ingest("t", SampleBatch.from_mapping(5.0, {"a": 1.0}))
        store.flush()
        with pytest.raises(StoreError):
            store.ingest("t", SampleBatch.from_mapping(4.0, {"a": 2.0}))

    def test_interleaved_ingest_and_direct_append(self):
        store = TimeSeriesStore(flush_threshold=1000)
        store.ingest("t", SampleBatch.from_mapping(1.0, {"a": 1.0}))
        store.append("a", 2.0, 2.0)  # flushes staging first, stays ordered
        store.ingest("t", SampleBatch.from_mapping(3.0, {"a": 3.0}))
        times, values = store.query("a")
        assert times.tolist() == [1.0, 2.0, 3.0]
        assert values.tolist() == [1.0, 2.0, 3.0]

    def test_direct_append_older_than_staged_rejected(self):
        store = TimeSeriesStore(flush_threshold=1000)
        store.ingest("t", SampleBatch.from_mapping(10.0, {"a": 1.0}))
        with pytest.raises(StoreError):
            store.append("a", 5.0, 0.0)

    def test_flush_returns_sample_count(self):
        store = TimeSeriesStore(flush_threshold=1000)
        store.ingest("t", SampleBatch.from_mapping(0.0, {"a": 1.0, "b": 2.0}))
        store.ingest("t", SampleBatch.from_mapping(1.0, {"a": 1.0}))
        assert store.flush() == 3
        assert store.flush() == 0

    def test_health_metrics_expose_staging(self):
        store = TimeSeriesStore(retention=10.0, flush_threshold=1000)
        store.ingest("t", SampleBatch.from_mapping(0.0, {"a": 1.0}))
        metrics = store.health_metrics()
        assert metrics["telemetry.store.samples"] == 1.0
        assert metrics["telemetry.store.staged"] == 1.0
        assert "telemetry.store.retention_trims" in metrics


class TestRetentionWatermark:
    def test_reads_enforce_exact_cutoff(self):
        store = TimeSeriesStore(retention=10.0, retention_slack=0.9)
        for t in range(100):
            store.ingest("t", SampleBatch.from_mapping(float(t), {"a": 0.0}))
        times, _ = store.query("a")
        assert times[0] >= 89.0  # exact on read, whatever the slack

    def test_ingest_path_defers_until_watermark(self):
        store = TimeSeriesStore(retention=10.0, retention_slack=0.9,
                                flush_threshold=1)
        for t in range(30):
            store.ingest("t", SampleBatch.from_mapping(float(t), {"a": 0.0}))
        # Stale fraction (~2/3) is under the 0.9 watermark: no trim yet.
        assert len(store._series["a"]) == 30
        # A read still never shows stale samples.
        times, _ = store.query("a")
        assert times[0] >= 19.0

    def test_zero_slack_trims_on_flush(self):
        store = TimeSeriesStore(retention=10.0, retention_slack=0.0,
                                flush_threshold=1)
        for t in range(100):
            store.ingest("t", SampleBatch.from_mapping(float(t), {"a": 0.0}))
        assert len(store._series["a"]) <= 12
        assert store.retention_trims > 0
        assert store.samples_trimmed > 0

    def test_cold_series_swept_round_robin(self):
        store = TimeSeriesStore(retention=10.0, retention_slack=0.1,
                                flush_threshold=1)
        store.ingest("t", SampleBatch.from_mapping(0.0, {"cold": 1.0}))
        store.flush()
        # Only "hot" receives data; the sweep must still reclaim "cold".
        for t in range(1, 50):
            store.ingest("t", SampleBatch.from_mapping(float(t), {"hot": 0.0}))
        assert len(store._series["cold"]) == 0  # reclaimed without a read

    def test_invalid_slack_rejected(self):
        with pytest.raises(StoreError):
            TimeSeriesStore(retention_slack=1.5)
        with pytest.raises(StoreError):
            TimeSeriesStore(flush_threshold=0)


class TestSelectCaching:
    def test_select_matches_fnmatch_reference(self):
        store = TimeSeriesStore()
        for name in ("a.power", "a.temp", "b.power"):
            store.append(name, 0.0, 1.0)
        assert store.select("*.power") == ["a.power", "b.power"]
        assert store.select("a.*") == ["a.power", "a.temp"]
        assert store.select("nope*") == []

    def test_names_cache_invalidated_on_new_series(self):
        store = TimeSeriesStore()
        store.append("a", 0.0, 1.0)
        assert store.select("*") == ["a"]
        store.ingest("t", SampleBatch.from_mapping(1.0, {"b": 2.0}))
        assert store.select("*") == ["a", "b"]


class TestResample:
    @pytest.fixture
    def store(self):
        store = TimeSeriesStore()
        # One sample per second for 100 s, value == time.
        store.append_many("m", np.arange(100.0), np.arange(100.0))
        return store

    def test_mean_buckets(self, store):
        times, values = store.resample("m", 0.0, 100.0, 10.0)
        assert times.tolist() == [float(t) for t in range(0, 100, 10)]
        assert values[0] == pytest.approx(4.5)  # mean of 0..9

    def test_max_and_min(self, store):
        _, max_values = store.resample("m", 0.0, 100.0, 10.0, agg="max")
        _, min_values = store.resample("m", 0.0, 100.0, 10.0, agg="min")
        assert max_values[0] == 9.0
        assert min_values[0] == 0.0

    def test_empty_bucket_is_nan(self):
        store = TimeSeriesStore()
        store.append("m", 0.0, 1.0)
        store.append("m", 25.0, 2.0)
        _, values = store.resample("m", 0.0, 30.0, 10.0)
        assert np.isnan(values[1])

    def test_rate_aggregation_for_counters(self):
        store = TimeSeriesStore()
        store.append_many("e", np.arange(10.0), np.arange(10.0) ** 2)
        _, rates = store.resample("e", 0.0, 10.0, 5.0, agg="rate")
        assert rates[0] == 16.0  # 4^2 - 0^2

    def test_rate_handles_counter_reset(self):
        """Regression: a counter reset mid-bucket gave a negative total."""
        store = TimeSeriesStore()
        # Counter climbs to 40, wraps to 0, climbs again to 20.
        store.append_many(
            "c", np.arange(7.0),
            np.array([0.0, 20.0, 40.0, 0.0, 5.0, 10.0, 20.0]),
        )
        _, rates = store.resample("c", 0.0, 7.0, 7.0, agg="rate")
        # Increase = 40 (pre-reset) + 20 (post-reset, from zero) = 60.
        assert rates[0] == 60.0

    def test_trailing_partial_bucket_emitted(self):
        """Regression: samples past the last full bucket were dropped."""
        store = TimeSeriesStore()
        store.append_many("m", np.arange(96.0), np.arange(96.0))
        times, values = store.resample("m", 0.0, 95.0, 10.0)
        assert times.size == 10  # 9 full buckets + 1 partial [90, 95]
        assert times[-1] == 90.0
        assert values[-1] == pytest.approx(np.mean([90, 91, 92, 93, 94, 95]))

    def test_sample_at_until_included_in_final_bucket(self):
        store = TimeSeriesStore()
        store.append_many("m", np.arange(11.0), np.arange(11.0))
        _, values = store.resample("m", 0.0, 10.0, 5.0, agg="max")
        # Final bucket is closed at `until`: the sample at t=10 counts.
        assert values[-1] == 10.0

    def test_resample_empty_range(self, store):
        times, values = store.resample("m", 50.0, 50.0, 10.0)
        assert times.size == 0 and values.size == 0

    def test_resample_range_shorter_than_step(self):
        store = TimeSeriesStore()
        store.append_many("m", np.arange(5.0), np.ones(5))
        times, values = store.resample("m", 0.0, 4.0, 10.0)
        assert times.tolist() == [0.0]
        assert values[0] == 1.0

    def test_unknown_aggregation(self, store):
        with pytest.raises(StoreError):
            store.resample("m", 0.0, 100.0, 10.0, agg="bogus")

    def test_invalid_step(self, store):
        with pytest.raises(StoreError):
            store.resample("m", 0.0, 100.0, 0.0)


class TestAlign:
    def test_align_shapes(self):
        store = TimeSeriesStore()
        store.append_many("a", np.arange(100.0), np.ones(100))
        store.append_many("b", np.arange(100.0), np.full(100, 2.0))
        grid, matrix = store.align(["a", "b"], 0.0, 100.0, 10.0)
        assert matrix.shape == (10, 2)
        assert (matrix[:, 0] == 1.0).all()
        assert (matrix[:, 1] == 2.0).all()

    def test_align_ffill_fills_gaps(self):
        store = TimeSeriesStore()
        store.append("a", 0.0, 5.0)
        store.append("a", 95.0, 9.0)
        _, matrix = store.align(["a"], 0.0, 100.0, 10.0, fill="ffill")
        # Bucket 0 has the sample; buckets 1..8 carry it forward.
        assert matrix[4, 0] == 5.0
        assert matrix[9, 0] == 9.0

    def test_align_nan_mode_keeps_gaps(self):
        store = TimeSeriesStore()
        store.append("a", 0.0, 5.0)
        store.append("a", 95.0, 9.0)
        _, matrix = store.align(["a"], 0.0, 100.0, 10.0, fill="nan")
        assert np.isnan(matrix[4, 0])

    def test_align_leading_nans_preserved(self):
        store = TimeSeriesStore()
        store.append("a", 55.0, 1.0)
        _, matrix = store.align(["a"], 0.0, 100.0, 10.0, fill="ffill")
        assert np.isnan(matrix[0, 0])
        assert matrix[6, 0] == 1.0

    def test_invalid_fill_mode(self):
        store = TimeSeriesStore()
        store.append("a", 0.0, 1.0)
        with pytest.raises(StoreError):
            store.align(["a"], 0.0, 10.0, 1.0, fill="interp")


class TestPropertyBased:
    @given(
        values=st.lists(
            st.floats(min_value=-1e9, max_value=1e9, allow_nan=False),
            min_size=1, max_size=200,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_append_preserves_all_samples(self, values):
        buf = SeriesBuffer("m")
        for i, v in enumerate(values):
            buf.append(float(i), v)
        assert len(buf) == len(values)
        assert buf.values.tolist() == pytest.approx(values)

    @given(
        n=st.integers(min_value=1, max_value=100),
        lo=st.floats(min_value=0, max_value=100),
        hi=st.floats(min_value=0, max_value=100),
    )
    @settings(max_examples=50, deadline=None)
    def test_range_query_matches_linear_scan(self, n, lo, hi):
        buf = SeriesBuffer("m")
        for i in range(n):
            buf.append(float(i), float(i))
        times, _ = buf.range(lo, hi)
        expected = [float(i) for i in range(n) if lo <= i <= hi]
        assert times.tolist() == expected

    @given(
        n=st.integers(min_value=1, max_value=100),
        step=st.floats(min_value=0.5, max_value=20.0),
        until=st.floats(min_value=0.5, max_value=120.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_resample_buckets_partition_the_range(self, n, step, until):
        """Every sample in [since, until] lands in exactly one bucket."""
        store = TimeSeriesStore()
        store.append_many("m", np.arange(float(n)), np.ones(n))
        _, counts = store.resample("m", 0.0, until, step, agg="count")
        in_range = sum(1 for i in range(n) if 0.0 <= i <= until)
        assert int(np.nansum(counts)) == in_range

    @given(
        chunks=st.lists(
            st.tuples(st.booleans(), st.integers(min_value=1, max_value=8)),
            min_size=1, max_size=20,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_retention_invariant_under_interleaved_appends(self, chunks):
        """Retention holds however append and append_many interleave."""
        store = TimeSeriesStore(retention=15.0)
        t = 0.0
        for use_bulk, size in chunks:
            if use_bulk:
                times = t + np.arange(size, dtype=np.float64)
                store.append_many("m", times, np.zeros(size))
                t += size
            else:
                store.append("m", t, 0.0)
                t += 1.0
        times = store.series("m").times
        assert times.size > 0
        assert times[0] >= store.latest_time - 15.0
