"""Tests for predictive analytics: regression, forecasting, jobs, failures."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analytics.predictive import (
    ARForecaster,
    CoolingPerformanceModel,
    ExponentialSmoothing,
    FourierForecaster,
    HoltWinters,
    JobDurationPredictor,
    KpiForecaster,
    LinearRegression,
    NaiveForecaster,
    PractiseEnsemble,
    ResourceClassPredictor,
    RidgeRegression,
    SeasonalNaiveForecaster,
    detect_ramps,
    forecast_skill,
    mae,
    mape,
    polynomial_features,
    rmse,
    rolling_origin_backtest,
    submission_features,
)
from repro.apps import default_catalog
from repro.apps.generator import JobRequest
from repro.errors import InsufficientDataError, NotFittedError
from repro.software.jobs import Job, JobState
from repro.telemetry import TimeSeriesStore


def seasonal_series(n=600, period=48, noise=0.2, trend=0.0, seed=0):
    rng = np.random.default_rng(seed)
    t = np.arange(n)
    return 10 + 3 * np.sin(2 * np.pi * t / period) + trend * t + rng.normal(0, noise, n)


class TestRegression:
    def test_ols_recovers_coefficients(self):
        rng = np.random.default_rng(0)
        X = rng.normal(0, 1, (200, 2))
        y = 3.0 * X[:, 0] - 1.5 * X[:, 1] + 4.0
        model = LinearRegression().fit(X, y)
        assert model.coef_ == pytest.approx([3.0, -1.5], abs=1e-9)
        assert model.intercept_ == pytest.approx(4.0)
        assert model.score(X, y) == pytest.approx(1.0)

    def test_ridge_shrinks_toward_zero(self):
        rng = np.random.default_rng(0)
        X = rng.normal(0, 1, (100, 1))
        y = 5.0 * X[:, 0]
        ols = LinearRegression().fit(X, y)
        ridge = RidgeRegression(alpha=100.0).fit(X, y)
        assert abs(ridge.coef_[0]) < abs(ols.coef_[0])

    def test_ridge_intercept_unpenalized(self):
        X = np.zeros((50, 1))
        y = np.full(50, 7.0)
        model = RidgeRegression(alpha=10.0).fit(X, y)
        assert model.predict(np.zeros((1, 1)))[0] == pytest.approx(7.0)

    def test_1d_input_accepted(self):
        x = np.arange(50.0)
        model = LinearRegression().fit(x, 2 * x)
        assert model.predict(np.array([100.0]))[0] == pytest.approx(200.0)

    def test_polynomial_features(self):
        out = polynomial_features(np.array([[2.0]]), degree=3)
        assert out.tolist() == [[2.0, 4.0, 8.0]]

    def test_insufficient_samples(self):
        with pytest.raises(InsufficientDataError):
            LinearRegression().fit(np.ones((2, 3)), np.ones(2))


class TestForecasters:
    def test_naive_persists_last(self):
        model = NaiveForecaster().fit(np.array([1.0, 2.0, 3.0]))
        assert (model.forecast(4) == 3.0).all()

    def test_seasonal_naive_repeats_season(self):
        values = np.tile(np.array([1.0, 2.0, 3.0]), 4)
        model = SeasonalNaiveForecaster(period=3).fit(values)
        assert model.forecast(5).tolist() == [1.0, 2.0, 3.0, 1.0, 2.0]

    def test_exponential_smoothing_level(self):
        model = ExponentialSmoothing(alpha=1.0).fit(np.array([1.0, 9.0]))
        assert (model.forecast(2) == 9.0).all()

    def test_holtwinters_beats_naive_on_seasonal(self):
        values = seasonal_series()
        result_hw = rolling_origin_backtest(
            values, lambda: HoltWinters(period=48), horizon=48, min_train=200
        )
        assert result_hw["skill"] > 0.3

    def test_holtwinters_tracks_trend(self):
        values = seasonal_series(trend=0.01)
        model = HoltWinters(period=48).fit(values)
        forecast = model.forecast(96)
        assert forecast[-1] > forecast[0]  # the trend continues

    def test_ar_on_ar_process(self):
        rng = np.random.default_rng(0)
        values = np.zeros(500)
        for i in range(1, 500):
            values[i] = 0.9 * values[i - 1] + rng.normal(0, 0.1)
        result = rolling_origin_backtest(
            values, lambda: ARForecaster(lags=5), horizon=5, min_train=100
        )
        assert result["mae"] < 0.5

    def test_ensemble_weights_sum_to_one(self):
        ensemble = PractiseEnsemble(period=48).fit(seasonal_series())
        assert sum(ensemble.model_weights.values()) == pytest.approx(1.0)

    def test_ensemble_competitive_with_best_member(self):
        values = seasonal_series()
        ens = rolling_origin_backtest(
            values, lambda: PractiseEnsemble(period=48), horizon=48, min_train=300
        )
        assert ens["skill"] > 0.2

    def test_not_fitted_errors(self):
        for model in (NaiveForecaster(), HoltWinters(4), ARForecaster(2),
                      SeasonalNaiveForecaster(4), PractiseEnsemble(4)):
            with pytest.raises(NotFittedError):
                model.forecast(1)


class TestFourier:
    def test_recovers_pure_harmonic(self):
        t = np.arange(0.0, 4000.0, 10.0)
        y = 100 + 20 * np.sin(2 * np.pi * t / 500.0)
        # detrend=False: a pure periodic signal on an integer number of
        # cycles is recovered exactly; the trend fit would add leakage.
        model = FourierForecaster(n_harmonics=3, detrend=False).fit(t, y)
        future_t = np.arange(4000.0, 4500.0, 10.0)
        expected = 100 + 20 * np.sin(2 * np.pi * future_t / 500.0)
        assert mae(expected, model.predict(future_t)) < 1.0

    def test_detrending(self):
        t = np.arange(0.0, 2000.0, 10.0)
        y = 0.05 * t + 10 * np.sin(2 * np.pi * t / 200.0)
        model = FourierForecaster(n_harmonics=2).fit(t, y)
        future = model.predict(np.array([2500.0]))
        assert future[0] > 100.0  # trend extrapolated

    def test_irregular_sampling_rejected(self):
        t = np.array([0.0, 1.0, 2.0, 10.0, 11.0, 12.0, 13.0, 14.0])
        with pytest.raises(InsufficientDataError):
            FourierForecaster().fit(t, np.ones_like(t))

    def test_detect_ramps_finds_step(self):
        t = np.arange(0.0, 3600.0, 60.0)
        watts = np.full(t.size, 1e6)
        watts[t >= 1800] = 2e6  # 1 MW step
        events = detect_ramps(t, watts, threshold_w=750e3, window_s=900.0)
        assert len(events) == 1
        assert events[0].direction == "up"
        assert events[0].delta_w == pytest.approx(1e6)

    def test_detect_ramps_ignores_slow_drift(self):
        t = np.arange(0.0, 86400.0, 60.0)
        watts = 1e6 + t * 5.0  # +5 W/s -> 4.5 kW per 15 min
        assert detect_ramps(t, watts, threshold_w=750e3) == []

    def test_ramp_direction_down(self):
        t = np.arange(0.0, 3600.0, 60.0)
        watts = np.full(t.size, 2e6)
        watts[t >= 1800] = 1e6
        events = detect_ramps(t, watts, threshold_w=750e3)
        assert events[0].direction == "down"


def completed_job(job_id, user, profile_name, runtime, submit=0.0, nodes=2, wall=None):
    profile = default_catalog().get(profile_name)
    request = JobRequest(
        job_id=job_id, submit_time=submit, user=user, profile=profile,
        nodes=nodes, work_s=runtime, walltime_req_s=wall or runtime * 2,
    )
    job = Job(request)
    job.start(submit + 10.0, [f"n{i}" for i in range(nodes)])
    job.finish(submit + 10.0 + runtime, JobState.COMPLETED)
    return job


class TestJobPrediction:
    def test_history_dominates_for_known_user_app(self):
        jobs = [
            completed_job(f"j{i}", "alice", "cfd_solver", runtime=3600.0, submit=i * 100.0)
            for i in range(10)
        ]
        predictor = JobDurationPredictor().fit(jobs)
        request = JobRequest(
            job_id="new", submit_time=2000.0, user="alice",
            profile=default_catalog().get("cfd_solver"),
            nodes=2, work_s=1.0, walltime_req_s=20_000.0,
        )
        assert predictor.predict(request) == pytest.approx(3600.0)

    def test_fallback_walltime_fraction_unfitted(self):
        predictor = JobDurationPredictor(walltime_fraction=0.4)
        request = JobRequest(
            job_id="x", submit_time=0.0, user="bob",
            profile=default_catalog().get("md_sim"),
            nodes=1, work_s=1.0, walltime_req_s=10_000.0,
        )
        assert predictor.predict(request) == pytest.approx(4000.0)

    def test_evaluate_improves_over_time(self):
        rng = np.random.default_rng(0)
        jobs = []
        for i in range(40):
            user = f"user{i % 4}"
            runtime = 1800.0 * (1 + (i % 4)) * float(rng.lognormal(0, 0.05))
            jobs.append(completed_job(f"j{i}", user, "cfd_solver", runtime, submit=i * 50.0))
        predictor = JobDurationPredictor().fit(jobs[:20])
        metrics = predictor.evaluate(jobs[20:])
        assert metrics["mape"] < 0.3  # per-user history is a strong signal

    def test_fit_requires_enough_jobs(self):
        with pytest.raises(InsufficientDataError):
            JobDurationPredictor().fit([])

    def test_resource_class_predictor(self):
        rng = np.random.default_rng(1)
        requests, usage = [], []
        for i in range(60):
            profile = default_catalog().get("cfd_solver" if i % 2 else "genomics_pipeline")
            nodes = 1 + (i % 4)
            requests.append(JobRequest(
                job_id=f"j{i}", submit_time=float(i), user="u",
                profile=profile, nodes=nodes, work_s=100.0, walltime_req_s=200.0 * nodes,
            ))
            usage.append(nodes * 100.0 + rng.normal(0, 5))
        model = ResourceClassPredictor(n_classes=3, seed=0).fit(requests, np.array(usage))
        predicted = model.predict(requests)
        truth = model.classify_usage(np.array(usage))
        assert (predicted == truth).mean() > 0.7

    def test_submission_features_no_oracle(self):
        request = JobRequest(
            job_id="j", submit_time=3600.0 * 30, user="u",
            profile=default_catalog().get("md_sim"),
            nodes=4, work_s=123.0, walltime_req_s=999.0,
        )
        features = submission_features(request)
        assert 123.0 not in features.tolist()  # true work never leaks


class TestKpiForecaster:
    def make_store(self):
        store = TimeSeriesStore()
        t = np.arange(0.0, 10 * 86400.0, 600.0)
        values = 1000 + 200 * np.sin(2 * np.pi * t / 86400.0)
        store.append_many("kpi", t, values + np.random.default_rng(0).normal(0, 10, t.size))
        return store

    def test_beats_persistence_on_diurnal_kpi(self):
        store = self.make_store()
        model = KpiForecaster(lags=24, horizon=6, step=600.0)
        model.fit(store, "kpi", 0.0, 7 * 86400.0)
        result = model.backtest(store, "kpi", 7 * 86400.0, 10 * 86400.0)
        assert result["skill"] > 0.3

    def test_predict_from_recent(self):
        store = self.make_store()
        model = KpiForecaster(lags=24, horizon=6, step=600.0)
        model.fit(store, "kpi", 0.0, 7 * 86400.0)
        _, recent = store.query("kpi", 6 * 86400.0, 7 * 86400.0)
        prediction = model.predict_from(recent, 7 * 86400.0)
        assert 600 < prediction < 1400


class TestEvaluationHelpers:
    def test_metrics_basic(self):
        a = np.array([1.0, 2.0, 3.0])
        p = np.array([1.0, 2.0, 5.0])
        assert mae(a, p) == pytest.approx(2 / 3)
        assert rmse(a, p) == pytest.approx(np.sqrt(4 / 3))
        assert mape(a, p) == pytest.approx((0 + 0 + 2 / 3) / 3)

    def test_skill_positive_when_better(self):
        actual = np.array([1.0, 1.0])
        assert forecast_skill(actual, actual, np.array([2.0, 2.0])) == 1.0

    def test_backtest_insufficient(self):
        with pytest.raises(InsufficientDataError):
            rolling_origin_backtest(np.ones(10), NaiveForecaster, horizon=5, min_train=50)


class TestCoolingModel:
    def test_learned_setpoint_sensitivity_direction(self):
        """Higher setpoint -> lower chiller power; the model must learn it."""
        rng = np.random.default_rng(0)
        n = 300
        heat = rng.uniform(4e4, 9e4, n)
        dry = rng.uniform(10, 30, n)
        wet = dry - 5
        setpoint = rng.uniform(14, 38, n)
        # Physics-like target: power ~ heat / cop, cop rises with setpoint.
        cop = 4.0 + 0.15 * (setpoint - 16) - 0.05 * (dry - 15)
        power = heat / np.clip(cop, 1.0, None) + rng.normal(0, 200, n)
        model = CoolingPerformanceModel().fit(
            np.column_stack([heat, dry, wet, setpoint]), power
        )
        sweep = model.setpoint_sensitivity(7e4, 20.0, 15.0, np.array([16.0, 30.0]))
        assert sweep[1] < sweep[0]

    def test_fit_from_store_requires_data(self):
        with pytest.raises(Exception):
            CoolingPerformanceModel().fit_from_store(TimeSeriesStore(), 0.0, 1.0)
