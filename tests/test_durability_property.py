"""Property tests for the durability layer.

Two guarantees, verified over generated histories rather than fixed
scripts:

* **Zero acked-sample loss** — whatever interleaving of ingest rounds and
  ack points (flush + journal fsync) precedes a crash, every sample acked
  before the crash is present and bit-exact after recovery, and every
  sample the recovered store *does* serve matches what was written (no
  silently-wrong reads).  Checked at 1/2/8 shards, in-process and with
  worker-process shards.
* **Crash-consistent saves** — aborting the archive writer at *every*
  commit point of a multi-file sharded save leaves a loadable state where
  each series is bit-exact to either the old or the new generation, never
  a mixture.
"""

from __future__ import annotations

import os
import shutil
import tempfile

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ioutil import commit_hook
from repro.telemetry import (
    SampleBatch,
    ShardedStore,
    load_store,
    save_store,
    tear_wal_tail,
)

NAMES = tuple(f"prop.s{i:02d}" for i in range(12))


def _bits_equal(a, b) -> bool:
    return np.array_equal(
        np.asarray(a, dtype=np.float64).view(np.uint64),
        np.asarray(b, dtype=np.float64).view(np.uint64),
    )


class _Shadow:
    """Ground truth of everything handed to the store, with an ack cut."""

    def __init__(self):
        self.times = {n: [] for n in NAMES}
        self.values = {n: [] for n in NAMES}
        self.acked = {n: 0 for n in NAMES}

    def record(self, time, values):
        for n, v in zip(NAMES, values):
            self.times[n].append(time)
            self.values[n].append(float(v))

    def ack(self):
        for n in NAMES:
            self.acked[n] = len(self.times[n])

    def verify(self, store):
        """Acked samples all present; present samples all bit-exact."""
        for n in NAMES:
            st_t = np.asarray(self.times[n])
            st_v = np.asarray(self.values[n])
            try:
                got_t, got_v = store.query(n)
            except KeyError:
                got_t, got_v = np.array([]), np.array([])
            cut = self.acked[n]
            present = np.isin(st_t, got_t)
            assert present[:cut].all(), (
                f"{n}: {cut - int(np.count_nonzero(present[:cut]))} acked "
                f"samples lost"
            )
            idx = np.searchsorted(got_t, st_t[present])
            assert _bits_equal(got_v[idx], st_v[present]), (
                f"{n}: recovered values differ from what was written"
            )
            # No invented samples: everything served was actually written.
            assert np.isin(got_t, st_t).all(), f"{n}: phantom samples"


rounds_strategy = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=6),  # batches this round
        st.booleans(),                          # ack after the round?
    ),
    min_size=1,
    max_size=4,
)


class TestNoAckedLossInProcess:
    @pytest.mark.parametrize("shards", [1, 2, 8])
    @settings(max_examples=12, deadline=None)
    @given(rounds=rounds_strategy, replication=st.integers(0, 1),
           tear=st.booleans(), seed=st.integers(0, 2**16))
    def test_crash_recover_is_lossless(self, shards, rounds, replication,
                                       tear, seed):
        workdir = tempfile.mkdtemp(prefix="dur-prop-")
        try:
            rng = np.random.default_rng(seed)
            shadow = _Shadow()
            store = ShardedStore(
                shards=shards, replication=replication, journal=workdir,
            )
            clock = 0.0
            unacked_tail = False
            for batches, ack in rounds:
                for _ in range(batches):
                    clock += 1.0
                    values = rng.normal(0.0, 1e6, len(NAMES))
                    store.ingest("t", SampleBatch(clock, NAMES, values))
                    shadow.record(clock, values)
                if ack:
                    store.flush()
                    store.sync_journal()
                    shadow.ack()
                    unacked_tail = False
                else:
                    # Hand the journal buffers to the OS without fsync:
                    # survives the in-process "crash" below but leaves an
                    # unsynced tail for the torn-write case.
                    store.flush()
                    for rs in store.replica_sets:
                        for member in rs.members:
                            member.flush_journal()
                    unacked_tail = True
            del store  # crash: no close

            if tear and unacked_tail:
                # Torn write in the unsynced tail of one member's journal.
                victim = os.path.join(workdir, "shard0", "member0")
                if os.path.isdir(victim):
                    tear_wal_tail(victim, nbytes=4)

            recovered = ShardedStore(
                shards=shards, replication=replication, journal=workdir,
            )
            recovered.flush()
            shadow.verify(recovered)
        finally:
            shutil.rmtree(workdir, ignore_errors=True)


class TestNoAckedLossParallel:
    @pytest.mark.parametrize("shards", [1, 2, 8])
    @settings(max_examples=3, deadline=None)
    @given(rounds=rounds_strategy, seed=st.integers(0, 2**16))
    def test_worker_crash_is_lossless(self, shards, rounds, seed):
        workdir = tempfile.mkdtemp(prefix="dur-prop-par-")
        store = None
        try:
            rng = np.random.default_rng(seed)
            shadow = _Shadow()
            store = ShardedStore(
                shards=shards, replication=1, parallel=True, journal=workdir,
            )
            clock = 0.0
            for batches, ack in rounds:
                for _ in range(batches):
                    clock += 1.0
                    values = rng.normal(0.0, 1e6, len(NAMES))
                    store.ingest("t", SampleBatch(clock, NAMES, values))
                    shadow.record(clock, values)
                if ack:
                    store.flush()
                    store.sync_journal()
                    shadow.ack()
            for shard in range(shards):
                store.runtime.crash_worker(shard)
                store.runtime.restart_worker(shard)
            store.flush()
            shadow.verify(store)
        finally:
            if store is not None:
                store.close()
            shutil.rmtree(workdir, ignore_errors=True)


class TestCrashMidSave:
    def _populated(self, scale: float) -> ShardedStore:
        store = ShardedStore(shards=2)
        rng = np.random.default_rng(int(scale))
        for t in range(30):
            store.ingest(
                "t",
                SampleBatch(float(t), NAMES,
                            scale * rng.normal(10.0, 1.0, len(NAMES))),
            )
        store.flush()
        return store

    def test_abort_at_every_commit_point(self, tmp_path):
        old = self._populated(1.0)
        new = self._populated(1000.0)
        reference = {
            "old": {n: old.query(n) for n in NAMES},
            "new": {n: new.query(n) for n in NAMES},
        }

        # Count the commit points of one full sharded save.
        commits = []
        probe = str(tmp_path / "probe" / "a.npz")
        os.makedirs(os.path.dirname(probe))
        with commit_hook(commits.append):
            save_store(old, probe)
        assert len(commits) >= 3  # two shard files + the manifest

        for k in range(len(commits)):
            workdir = tmp_path / f"abort{k}"
            os.makedirs(workdir)
            path = str(workdir / "a.npz")
            save_store(old, path)  # generation A on disk, complete

            state = {"n": 0}

            def bomb(dest, _k=k):
                if state["n"] == _k:
                    raise RuntimeError(f"crash before commit {_k}")
                state["n"] += 1

            with commit_hook(bomb):
                with pytest.raises(RuntimeError):
                    save_store(new, path)  # generation B, aborted mid-save

            loaded = load_store(path)  # must load, possibly degraded
            for n in loaded.names():
                t, v = loaded.query(n)
                if t.size == 0:
                    continue
                matches_old = _bits_equal(
                    t, reference["old"][n][0]
                ) and _bits_equal(v, reference["old"][n][1])
                matches_new = _bits_equal(
                    t, reference["new"][n][0]
                ) and _bits_equal(v, reference["new"][n][1])
                assert matches_old or matches_new, (
                    f"abort point {k}: series {n} is a mix of generations"
                )
