"""Tests for samplers, collection agents and the TelemetrySystem bundle."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.telemetry import (
    CollectionAgent,
    MessageBus,
    MetricRegistry,
    MetricSpec,
    Sampler,
    TelemetrySystem,
    Unit,
)


def constant_source(value: float):
    return lambda now: {"m.x": value}


class TestSampler:
    def test_scrape_packages_batch(self):
        sampler = Sampler("s", constant_source(3.0))
        batch = sampler.scrape(5.0)
        assert batch.time == 5.0
        assert batch.as_dict() == {"m.x": 3.0}
        assert sampler.scrapes == 1
        assert sampler.samples == 1


class TestCollectionAgent:
    def test_collect_once_publishes(self):
        bus = MessageBus()
        seen = []
        bus.subscribe("#", lambda t, b: seen.append((t, b.time)))
        agent = CollectionAgent("a", bus, period=10.0)
        agent.add_sampler(Sampler("s1", constant_source(1.0)))
        agent.add_sampler(Sampler("s2", constant_source(2.0)))
        assert agent.collect_once(7.0) == 2
        assert seen == [("s1", 7.0), ("s2", 7.0)]

    def test_registry_populated_from_specs(self):
        registry = MetricRegistry()
        agent = CollectionAgent("a", MessageBus(), 10.0, registry=registry)
        agent.add_sampler(
            Sampler("s", constant_source(1.0), [MetricSpec("m.x", Unit.WATT)])
        )
        assert "m.x" in registry

    def test_invalid_period(self):
        with pytest.raises(ConfigurationError):
            CollectionAgent("a", MessageBus(), 0.0)

    def test_periodic_collection(self, sim):
        bus = MessageBus()
        times = []
        bus.subscribe("#", lambda t, b: times.append(b.time))
        agent = CollectionAgent("a", bus, period=10.0)
        agent.add_sampler(Sampler("s", constant_source(1.0)))
        agent.start(sim, start_delay=0.0)
        sim.run_until(25.0)
        assert times == [0.0, 10.0, 20.0]

    def test_stop_ends_collection(self, sim):
        bus = MessageBus()
        times = []
        bus.subscribe("#", lambda t, b: times.append(b.time))
        agent = CollectionAgent("a", bus, period=10.0)
        agent.add_sampler(Sampler("s", constant_source(1.0)))
        agent.start(sim, start_delay=0.0)
        sim.run_until(15.0)
        agent.stop()
        sim.run_until(100.0)
        assert times == [0.0, 10.0]

    def test_double_start_rejected(self, sim):
        agent = CollectionAgent("a", MessageBus(), 10.0)
        agent.start(sim)
        with pytest.raises(ConfigurationError):
            agent.start(sim)


class TestSamplerFaultHandling:
    def test_raising_source_is_isolated(self):
        """A raising source must not kill the collection tick."""
        bus = MessageBus()
        seen = []
        bus.subscribe("#", lambda t, b: seen.append(t))
        agent = CollectionAgent("a", bus, period=10.0)

        def bad(now):
            raise RuntimeError("sensor hw error")

        sampler = agent.add_sampler(Sampler("bad", bad))
        agent.add_sampler(Sampler("good", constant_source(1.0)))
        assert agent.collect_once(0.0) == 1
        assert seen == ["good"]
        assert sampler.errors == 1
        assert agent.scrape_errors == 1
        assert "sensor hw error" in agent.last_error

    def test_failing_sampler_backs_off_exponentially(self, sim):
        bus = MessageBus()
        agent = CollectionAgent("a", bus, period=10.0)

        calls = []

        def bad(now):
            calls.append(now)
            raise RuntimeError("down")

        agent.add_sampler(Sampler("bad", bad))
        agent.start(sim, start_delay=0.0)
        sim.run_until(150.0)
        # Backoff 1, 2, 4, 8 periods: attempts at t = 0, 10, 30, 70, 150.
        assert calls == [0.0, 10.0, 30.0, 70.0, 150.0]
        assert agent.scrapes_skipped > 0

    def test_recovered_sampler_resumes_publishing(self, sim):
        bus = MessageBus()
        seen = []
        bus.subscribe("#", lambda t, b: seen.append(b.time))
        agent = CollectionAgent("a", bus, period=10.0)
        state = {"fail": True}

        def flaky(now):
            if state["fail"]:
                raise RuntimeError("down")
            return {"m.x": 1.0}

        sampler = agent.add_sampler(Sampler("s", flaky))
        agent.start(sim, start_delay=0.0)
        sim.run_until(5.0)
        state["fail"] = False
        sim.run_until(30.0)
        assert seen == [10.0, 20.0, 30.0]
        assert sampler.consecutive_errors == 0
        assert sampler.errors == 1

    def test_health_metrics_snapshot(self):
        agent = CollectionAgent("a", MessageBus(), 10.0)
        agent.add_sampler(Sampler("s", constant_source(1.0)))
        agent.collect_once(0.0)
        metrics = agent.health_metrics()
        assert metrics["telemetry.agent.a.scrapes"] == 1.0
        assert metrics["telemetry.agent.a.scrape_errors"] == 0.0
        assert metrics["telemetry.agent.a.samplers"] == 1.0


class TestTelemetrySystem:
    def test_end_to_end_pipeline(self, sim):
        telemetry = TelemetrySystem()
        agent = telemetry.new_agent("a", period=5.0)
        counter = {"v": 0.0}

        def source(now):
            counter["v"] += 1.0
            return {"m.count": counter["v"]}

        agent.add_sampler(Sampler("s", source, [MetricSpec("m.count")]))
        telemetry.start_all(sim)
        sim.run_until(20.0)
        times, values = telemetry.store.query("m.count")
        # start_all begins scraping immediately: t = 0, 5, 10, 15, 20.
        assert len(times) == 5
        assert values.tolist() == [1.0, 2.0, 3.0, 4.0, 5.0]
        assert "m.count" in telemetry.registry

    def test_store_retention_passthrough(self):
        telemetry = TelemetrySystem(store_retention=60.0)
        assert telemetry.store.retention == 60.0
