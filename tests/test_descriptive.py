"""Tests for descriptive analytics: KPIs, metrics, entropy, reduction, dashboards."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analytics.descriptive import (
    PCA,
    Dashboard,
    RooflineModel,
    correlation_order,
    correlation_wise_smoothing,
    entropy_series,
    group_aggregate,
    hampel_filter,
    heatmap,
    itue,
    mad_clean,
    normalize,
    outlier_fraction,
    pue,
    quantile_transport,
    scheduling_report,
    shannon_entropy,
    sparkline,
    state_entropy,
    table,
    tue,
    zscore_clean,
)
from repro.apps import default_catalog, profile_regions
from repro.errors import InsufficientDataError
from repro.telemetry import TimeSeriesStore


def power_store(site=1000.0, it=800.0, n=100):
    store = TimeSeriesStore()
    t = np.arange(float(n)) * 60.0
    store.append_many("facility.power.site_power", t, np.full(n, site))
    store.append_many("facility.power.it_power", t, np.full(n, it))
    store.append_many("cluster.it_power", t, np.full(n, it * 0.98))
    return store


class TestKpis:
    def test_pue_constant_power(self):
        store = power_store(site=1200.0, it=1000.0)
        assert pue(store, 0.0, 5000.0) == pytest.approx(1.2)

    def test_pue_idle_window_raises(self):
        store = power_store(site=0.0, it=0.0)
        with pytest.raises(InsufficientDataError):
            pue(store, 0.0, 5000.0)

    def test_itue_above_one(self):
        store = power_store()
        value = itue(store, 0.0, 5000.0)
        assert value > 1.0

    def test_tue_product(self):
        assert tue(1.2, 1.1) == pytest.approx(1.32)

    def test_pue_single_sample_raises(self):
        store = TimeSeriesStore()
        store.append("facility.power.site_power", 0.0, 100.0)
        store.append("facility.power.it_power", 0.0, 80.0)
        with pytest.raises(InsufficientDataError):
            pue(store, 0.0, 10.0)


class TestEntropy:
    def test_shannon_uniform(self):
        assert shannon_entropy(np.array([1, 1, 1, 1])) == pytest.approx(2.0)

    def test_shannon_degenerate(self):
        assert shannon_entropy(np.array([10, 0, 0])) == 0.0

    def test_state_entropy_uniform_fleet_zero(self):
        matrix = np.ones((8, 3))
        assert state_entropy(matrix) == 0.0

    def test_state_entropy_diverse_fleet_positive(self):
        rng = np.random.default_rng(0)
        assert state_entropy(rng.normal(0, 1, (32, 3))) > 1.0

    def test_entropy_series_spikes_on_transition(self):
        store = TimeSeriesStore()
        t = np.arange(100.0)
        # 8 nodes: identical until t=50, then half diverge strongly.
        for i in range(8):
            values = np.ones(100) * 5.0
            if i % 2 == 0:
                values[50:] = 50.0 + i
            store.append_many(f"c.n{i}.power", t, values)
        grid, series = entropy_series(store, "c.*.power", 0.0, 100.0, 10.0)
        assert series[-1] > series[0]


class TestAggregation:
    def test_quantile_transport(self):
        store = TimeSeriesStore()
        t = np.arange(50.0)
        for i in range(10):
            store.append_many(f"c.n{i}.temp", t, np.full(50, float(i)))
        summary = quantile_transport(store, "c.*.temp", 0.0, 50.0, 10.0)
        assert summary.median[0] == pytest.approx(4.5)
        assert summary.spread[0] == pytest.approx(8.1 - 0.9)

    def test_group_aggregate(self):
        store = TimeSeriesStore()
        t = np.arange(20.0)
        store.append_many("a1", t, np.full(20, 1.0))
        store.append_many("a2", t, np.full(20, 3.0))
        grid, out = group_aggregate(store, {"a": ["a1", "a2"]}, 0.0, 20.0, 5.0)
        assert np.allclose(out["a"], 2.0)

    def test_normalize(self):
        out = normalize(np.array([-5.0, 0.0, 5.0, 15.0]), low=0.0, high=10.0)
        assert out.tolist() == [0.0, 0.0, 0.5, 1.0]


class TestOutliers:
    def test_zscore_removes_spike(self):
        values = np.ones(100)
        values[50] = 100.0
        cleaned = zscore_clean(values)
        assert np.isnan(cleaned[50])
        assert outlier_fraction(values, cleaned) == pytest.approx(0.01)

    def test_mad_robust_to_many_outliers(self):
        values = np.ones(100)
        values[:10] = 1000.0  # 10 % contamination breaks plain z-score
        assert not np.isnan(zscore_clean(values)[:10]).any()  # z-score misses
        cleaned = mad_clean(values)
        assert np.isnan(cleaned[:10]).all()

    def test_hampel_catches_local_spike_in_trend(self):
        values = np.arange(100.0)
        values[50] += 30.0
        cleaned = hampel_filter(values)
        assert np.isnan(cleaned[50])
        assert np.isfinite(cleaned[49])

    def test_hampel_even_window_rejected(self):
        with pytest.raises(ValueError):
            hampel_filter(np.ones(10), window=4)

    def test_constant_series_untouched(self):
        values = np.full(50, 7.0)
        assert not np.isnan(zscore_clean(values)).any()
        assert not np.isnan(mad_clean(values)).any()


class TestPCA:
    def test_recovers_dominant_direction(self):
        rng = np.random.default_rng(0)
        t = rng.normal(0, 5, 500)
        X = np.column_stack([t, 2 * t, 0.5 * t]) + rng.normal(0, 0.1, (500, 3))
        pca = PCA(1).fit(X)
        assert pca.explained_variance_ratio_[0] > 0.99

    def test_reconstruction_error_low_for_inliers(self):
        rng = np.random.default_rng(0)
        t = rng.normal(0, 5, 500)
        X = np.column_stack([t, 2 * t]) + rng.normal(0, 0.05, (500, 2))
        pca = PCA(1).fit(X)
        inlier_err = pca.reconstruction_error(X).mean()
        outlier = np.array([[10.0, -20.0]])  # off the principal axis
        assert pca.reconstruction_error(outlier)[0] > inlier_err * 10

    def test_transform_inverse_roundtrip_full_rank(self):
        rng = np.random.default_rng(1)
        X = rng.normal(0, 1, (50, 3))
        pca = PCA(3).fit(X)
        assert np.allclose(pca.inverse_transform(pca.transform(X)), X)

    def test_too_many_components(self):
        with pytest.raises(InsufficientDataError):
            PCA(5).fit(np.ones((10, 2)))


class TestCorrelationWiseSmoothing:
    def test_order_groups_correlated_columns(self):
        rng = np.random.default_rng(0)
        a = rng.normal(0, 1, 300)
        b = rng.normal(0, 1, 300)
        # Columns: [a, b, a+noise, b+noise]
        X = np.column_stack([a, b, a + rng.normal(0, 0.05, 300), b + rng.normal(0, 0.05, 300)])
        order = correlation_order(X)
        position = {col: i for i, col in enumerate(order)}
        assert abs(position[0] - position[2]) == 1  # a-pair adjacent
        assert abs(position[1] - position[3]) == 1  # b-pair adjacent

    def test_sketch_shape(self):
        X = np.random.default_rng(0).normal(0, 1, (100, 8))
        sketch, order = correlation_wise_smoothing(X, block=4)
        assert sketch.shape == (100, 2)
        assert sorted(order.tolist()) == list(range(8))

    def test_sketch_preserves_signal(self):
        rng = np.random.default_rng(0)
        signal = np.sin(np.linspace(0, 10, 500))
        X = np.column_stack([signal + rng.normal(0, 0.3, 500) for _ in range(8)])
        sketch, _ = correlation_wise_smoothing(X, block=8)
        # Averaging correlated noisy copies should denoise toward the signal.
        assert np.corrcoef(sketch[:, 0], signal)[0, 1] > 0.9


class TestDashboards:
    def test_sparkline_width_and_monotone(self):
        line = sparkline(np.linspace(0, 1, 200), width=40)
        assert len(line) == 40
        assert line[0] == " " and line[-1] == "█"

    def test_sparkline_constant(self):
        assert set(sparkline(np.ones(10), width=10)) == {"▁"}

    def test_heatmap_contains_labels_and_scale(self):
        out = heatmap(np.array([[0.0, 1.0], [1.0, 0.0]]), ["a", "b"], title="T")
        assert "T" in out and "a |" in out and "scale:" in out

    def test_table_alignment(self):
        out = table([("k", 1), ("longer", 2)], title="t")
        assert "k      : 1" in out

    def test_dashboard_render(self):
        store = power_store()
        dash = Dashboard(store, 0.0, 6000.0, width=30)
        dash.add_sparkline("site", "facility.power.site_power")
        dash.add_heatmap("power wall", "facility.power.*")
        dash.add_table("kpis", [("pue", 1.2)])
        out = dash.render()
        assert "site" in out and "power wall" in out and "pue" in out

    def test_dashboard_missing_metric(self):
        store = power_store()
        dash = Dashboard(store, 1e9, 2e9)
        dash.add_sparkline("x", "facility.power.site_power")
        assert "(no data)" in dash.render()


class TestRoofline:
    @pytest.fixture
    def model(self):
        return RooflineModel(peak_gflops=1000.0, peak_mem_bw_gbs=100.0)

    def test_ridge_point(self, model):
        assert model.ridge_intensity == 10.0

    def test_attainable_capped(self, model):
        assert model.attainable(1.0) == 100.0     # bandwidth roof
        assert model.attainable(100.0) == 1000.0  # compute roof

    def test_classify_catalog_regions(self, model):
        regions = profile_regions(default_catalog().get("graph_analytics"))
        points = model.analyze(regions)
        assert any(p.memory_bound for p in points)

    def test_bottleneck_report_strings(self, model):
        regions = profile_regions(default_catalog().get("cfd_solver"))
        report = model.bottleneck_report(regions)
        assert all("bound" in verdict for _, verdict in report)
