"""Tests for store export utilities."""

from __future__ import annotations

import json

import numpy as np

from repro.obs.trace import Tracer
from repro.telemetry import TimeSeriesStore
from repro.telemetry.export import (
    load_spans_jsonl,
    to_csv,
    to_json,
    to_rows,
    write_chrome_trace,
    write_csv,
    write_prometheus,
    write_spans_jsonl,
)


def make_store():
    store = TimeSeriesStore()
    store.append_many("a", np.arange(0.0, 100.0, 10.0), np.arange(10.0))
    store.append_many("b", np.arange(0.0, 100.0, 10.0), np.arange(10.0) * 2)
    return store


class TestExport:
    def test_to_rows_aligned(self):
        rows = to_rows(make_store(), ["a", "b"], 0.0, 100.0, 20.0)
        assert len(rows) == 5
        assert rows[0]["time"] == 0.0
        assert rows[0]["a"] == 0.5  # mean of samples 0, 1
        assert rows[0]["b"] == 1.0

    def test_to_csv_header_and_rows(self):
        csv_text = to_csv(make_store(), ["a", "b"], 0.0, 100.0, 20.0)
        lines = csv_text.strip().splitlines()
        assert lines[0] == "time,a,b"
        assert len(lines) == 6

    def test_write_csv(self, tmp_path):
        path = tmp_path / "out.csv"
        write_csv(str(path), make_store(), ["a"], 0.0, 100.0, 50.0)
        assert path.read_text().startswith("time,a")

    def test_to_json_roundtrip(self):
        payload = json.loads(to_json(make_store(), ["a"]))
        assert payload["a"]["times"] == list(np.arange(0.0, 100.0, 10.0))
        assert payload["a"]["values"][3] == 3.0

    def test_to_json_defaults_to_all_series(self):
        payload = json.loads(to_json(make_store()))
        assert sorted(payload) == ["a", "b"]


def make_tracer():
    tracer = Tracer()
    with tracer.span("outer", sim_time=60.0, topic="facility"):
        with tracer.span("inner"):
            pass
        with tracer.span("failing"):
            try:
                with tracer.span("deep"):
                    raise RuntimeError("x")
            except RuntimeError:
                pass
    return tracer


class TestObsArtifacts:
    def test_spans_jsonl_roundtrip(self, tmp_path):
        tracer = make_tracer()
        path = tmp_path / "spans.jsonl"
        count = write_spans_jsonl(str(path), tracer)
        assert count == 4
        loaded = load_spans_jsonl(str(path))
        original = [s.to_dict() for s in tracer.spans()]
        assert loaded == original
        # parent links survive the round trip
        by_id = {d["span_id"]: d for d in loaded}
        inner = next(d for d in loaded if d["name"] == "inner")
        assert by_id[inner["parent_id"]]["name"] == "outer"
        deep = next(d for d in loaded if d["name"] == "deep")
        assert deep["error"] == "RuntimeError"

    def test_spans_jsonl_accepts_span_list(self, tmp_path):
        tracer = make_tracer()
        path = tmp_path / "spans.jsonl"
        write_spans_jsonl(str(path), tracer.spans()[:2])
        assert len(load_spans_jsonl(str(path))) == 2

    def test_chrome_trace_is_valid(self, tmp_path):
        tracer = make_tracer()
        path = tmp_path / "trace.json"
        events_written = write_chrome_trace(str(path), tracer)
        doc = json.loads(path.read_text())  # well-formed JSON
        events = doc["traceEvents"]
        assert events_written == len(events) == 4
        # complete events only, microsecond ts/dur, monotonic stream
        assert all(e["ph"] == "X" for e in events)
        assert all(e["dur"] >= 0.0 for e in events)
        ts = [e["ts"] for e in events]
        assert ts == sorted(ts)
        assert ts[0] == 0.0
        # ids and sim time ride along in args
        outer = next(e for e in events if e["name"] == "outer")
        assert outer["args"]["sim_time"] == 60.0
        assert outer["args"]["topic"] == "facility"
        assert outer["args"]["parent_id"] is None

    def test_write_prometheus(self, tmp_path):
        path = tmp_path / "metrics.prom"
        write_prometheus(str(path), "# TYPE a counter\na 1.0\n")
        assert path.read_text().endswith("a 1.0\n")
