"""Tests for store export utilities."""

from __future__ import annotations

import json

import numpy as np

from repro.telemetry import TimeSeriesStore
from repro.telemetry.export import to_csv, to_json, to_rows, write_csv


def make_store():
    store = TimeSeriesStore()
    store.append_many("a", np.arange(0.0, 100.0, 10.0), np.arange(10.0))
    store.append_many("b", np.arange(0.0, 100.0, 10.0), np.arange(10.0) * 2)
    return store


class TestExport:
    def test_to_rows_aligned(self):
        rows = to_rows(make_store(), ["a", "b"], 0.0, 100.0, 20.0)
        assert len(rows) == 5
        assert rows[0]["time"] == 0.0
        assert rows[0]["a"] == 0.5  # mean of samples 0, 1
        assert rows[0]["b"] == 1.0

    def test_to_csv_header_and_rows(self):
        csv_text = to_csv(make_store(), ["a", "b"], 0.0, 100.0, 20.0)
        lines = csv_text.strip().splitlines()
        assert lines[0] == "time,a,b"
        assert len(lines) == 6

    def test_write_csv(self, tmp_path):
        path = tmp_path / "out.csv"
        write_csv(str(path), make_store(), ["a"], 0.0, 100.0, 50.0)
        assert path.read_text().startswith("time,a")

    def test_to_json_roundtrip(self):
        payload = json.loads(to_json(make_store(), ["a"]))
        assert payload["a"]["times"] == list(np.arange(0.0, 100.0, 10.0))
        assert payload["a"]["values"][3] == 3.0

    def test_to_json_defaults_to_all_series(self):
        payload = json.loads(to_json(make_store()))
        assert sorted(payload) == ["a", "b"]
