"""Tests for the threshold alert engine."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.telemetry import (
    AlertEngine,
    AlertRule,
    AlertSeverity,
    SampleBatch,
    StaleDataRule,
)


def feed(engine, samples):
    """Feed [(time, value)] into metric m.x; return all raised alerts."""
    raised = []
    for t, v in samples:
        raised.extend(engine.observe("topic", SampleBatch.from_mapping(t, {"m.x": v})))
    return raised


class TestAlertRules:
    def test_simple_threshold_raises(self):
        engine = AlertEngine()
        engine.add_rule(AlertRule("hot", "m.*", threshold=10.0))
        raised = feed(engine, [(0.0, 5.0), (1.0, 15.0)])
        assert len(raised) == 1
        assert raised[0].metric == "m.x"
        assert raised[0].raised_at == 1.0

    def test_below_direction(self):
        engine = AlertEngine()
        engine.add_rule(AlertRule("cold", "m.*", threshold=2.0, above=False))
        raised = feed(engine, [(0.0, 5.0), (1.0, 1.0)])
        assert len(raised) == 1

    def test_for_seconds_requires_sustained_breach(self):
        engine = AlertEngine()
        engine.add_rule(AlertRule("hot", "m.*", threshold=10.0, for_seconds=5.0))
        raised = feed(engine, [(0.0, 20.0), (2.0, 20.0), (4.0, 20.0)])
        assert raised == []  # not yet 5 s
        raised = feed(engine, [(6.0, 20.0)])
        assert len(raised) == 1

    def test_breach_interrupted_resets_timer(self):
        engine = AlertEngine()
        engine.add_rule(AlertRule("hot", "m.*", threshold=10.0, for_seconds=5.0))
        raised = feed(engine, [(0.0, 20.0), (3.0, 5.0), (4.0, 20.0), (8.0, 20.0)])
        assert raised == []  # breach restarted at t=4
        assert len(feed(engine, [(9.5, 20.0)])) == 1

    def test_alert_clears_with_hysteresis(self):
        engine = AlertEngine()
        engine.add_rule(AlertRule("hot", "m.*", threshold=10.0, clear_margin=2.0))
        feed(engine, [(0.0, 15.0)])
        feed(engine, [(1.0, 9.0)])  # within hysteresis band: still active
        assert len(engine.active_alerts()) == 1
        feed(engine, [(2.0, 7.9)])
        assert engine.active_alerts() == []
        alert = engine.history[0]
        assert alert.cleared_at == 2.0
        assert alert.duration == 2.0

    def test_no_duplicate_alert_while_active(self):
        engine = AlertEngine()
        engine.add_rule(AlertRule("hot", "m.*", threshold=10.0))
        raised = feed(engine, [(0.0, 15.0), (1.0, 16.0), (2.0, 17.0)])
        assert len(raised) == 1

    def test_per_metric_state_isolated(self):
        engine = AlertEngine()
        engine.add_rule(AlertRule("hot", "*", threshold=10.0))
        batch = SampleBatch.from_mapping(0.0, {"a": 20.0, "b": 5.0})
        raised = engine.observe("t", batch)
        assert [a.metric for a in raised] == ["a"]

    def test_severity_and_rule_metadata(self):
        rule = AlertRule("r", "m", threshold=0.0, severity=AlertSeverity.CRITICAL)
        assert rule.severity is AlertSeverity.CRITICAL

    def test_invalid_rule_params(self):
        with pytest.raises(ConfigurationError):
            AlertRule("r", "m", threshold=0.0, for_seconds=-1.0)

    def test_reraise_after_clear(self):
        engine = AlertEngine()
        engine.add_rule(AlertRule("hot", "m.*", threshold=10.0))
        feed(engine, [(0.0, 15.0), (1.0, 5.0), (2.0, 15.0)])
        assert len(engine.history) == 2
        assert len(engine.active_alerts()) == 1


class TestNaNHandling:
    def test_nan_does_not_clear_active_alert(self):
        """Regression: NaN used to clear an active alert via rule.clears."""
        engine = AlertEngine()
        engine.add_rule(AlertRule("hot", "m.*", threshold=10.0))
        feed(engine, [(0.0, 15.0)])
        assert len(engine.active_alerts()) == 1
        feed(engine, [(1.0, float("nan")), (2.0, float("nan"))])
        assert len(engine.active_alerts()) == 1  # still raised

    def test_nan_does_not_reset_breach_timer(self):
        engine = AlertEngine()
        engine.add_rule(AlertRule("hot", "m.*", threshold=10.0, for_seconds=5.0))
        raised = feed(
            engine, [(0.0, 20.0), (2.0, float("nan")), (5.0, 20.0)]
        )
        assert len(raised) == 1  # breach started at t=0 despite the NaN

    def test_nan_never_breaches(self):
        engine = AlertEngine()
        engine.add_rule(AlertRule("hot", "m.*", threshold=10.0))
        engine.add_rule(AlertRule("cold", "m.*", threshold=0.0, above=False))
        assert feed(engine, [(0.0, float("nan"))]) == []


class TestStaleDataRule:
    def test_silent_metric_raises_stale_alert(self):
        engine = AlertEngine()
        rule = engine.add_stale_rule(StaleDataRule("dead", "m.*", max_age=10.0))
        feed(engine, [(0.0, 1.0), (5.0, 1.0)])
        assert engine.active_alerts() == []
        raised = engine.check_staleness(20.0)
        assert len(raised) == 1
        assert raised[0].rule is rule
        assert raised[0].metric == "m.x"

    def test_stale_alert_clears_when_data_returns(self):
        engine = AlertEngine()
        engine.add_stale_rule(StaleDataRule("dead", "m.*", max_age=10.0))
        feed(engine, [(0.0, 1.0)])
        engine.check_staleness(20.0)
        assert len(engine.active_alerts()) == 1
        feed(engine, [(25.0, 1.0)])
        assert engine.active_alerts() == []
        assert engine.history[0].cleared_at == 25.0

    def test_staleness_checked_on_observe_of_other_metrics(self):
        """Traffic on any metric advances the staleness clock."""
        engine = AlertEngine()
        engine.add_stale_rule(StaleDataRule("dead", "m.x", max_age=10.0))
        feed(engine, [(0.0, 1.0)])
        raised = engine.observe(
            "t", SampleBatch.from_mapping(30.0, {"other": 1.0})
        )
        assert [a.metric for a in raised] == ["m.x"]

    def test_nan_only_sensor_goes_stale(self):
        """A sensor emitting only NaN is alertable as stale."""
        engine = AlertEngine()
        engine.add_stale_rule(StaleDataRule("dead", "m.*", max_age=10.0))
        feed(engine, [(0.0, float("nan")), (5.0, float("nan"))])
        raised = engine.check_staleness(15.0)
        assert len(raised) == 1

    def test_no_duplicate_stale_alert(self):
        engine = AlertEngine()
        engine.add_stale_rule(StaleDataRule("dead", "m.*", max_age=10.0))
        feed(engine, [(0.0, 1.0)])
        assert len(engine.check_staleness(20.0)) == 1
        assert engine.check_staleness(30.0) == []
        assert len(engine.history) == 1

    def test_invalid_max_age(self):
        with pytest.raises(ConfigurationError):
            StaleDataRule("r", "m", max_age=0.0)
