"""Tests for unified chaos campaigns and the resilience scorecard."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.errors import ConfigurationError, SupervisionError
from repro.facility.weather import DAY
from repro.oda import (
    ChaosCampaign,
    ChaosEngine,
    ChaosFault,
    DataCenter,
    MultiPillarOrchestrator,
    standard_campaign,
)
from repro.oda.supervision import BreakerState


def _chaos_site(seed=7, shards=2, health_period=300.0):
    dc = DataCenter(
        seed=seed, racks=1, nodes_per_rack=8, shards=shards,
        replication=1 if shards else 0, health_period=health_period,
    )
    dc.enable_supervision()
    orchestrator = MultiPillarOrchestrator(dc)
    orchestrator.attach()
    return dc, orchestrator


class TestChaosFaultValidation:
    def test_unknown_pillar_rejected(self):
        with pytest.raises(ConfigurationError):
            ChaosFault("network", "x", "raise", 0.0, 10.0)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            ChaosFault("controller", "x", "outage", 0.0, 10.0)

    def test_fault_outside_horizon_rejected(self):
        campaign = ChaosCampaign("c", seed=0, horizon_s=100.0)
        with pytest.raises(ConfigurationError):
            campaign.add(ChaosFault("controller", "x", "raise", 50.0, 100.0))

    def test_standard_campaign_within_horizon(self):
        campaign = standard_campaign(seed=1, horizon_s=43_200.0)
        assert all(f.end <= campaign.horizon_s for f in campaign.faults)
        assert {f.pillar for f in campaign.faults} == {
            "controller", "facility", "node", "shard"
        }

    def test_controller_fault_needs_supervisor(self):
        dc = DataCenter(seed=1, racks=1, nodes_per_rack=4)
        engine = ChaosEngine(dc)
        campaign = ChaosCampaign("c", seed=1, horizon_s=10_000.0)
        campaign.add(ChaosFault("controller", "orchestrator", "raise",
                                100.0, 1000.0))
        with pytest.raises(SupervisionError):
            engine.schedule(campaign)

    def test_unknown_facility_component_rejected(self):
        dc, _ = _chaos_site(shards=None, health_period=None)
        engine = ChaosEngine(dc)
        campaign = ChaosCampaign("c", seed=1, horizon_s=10_000.0)
        campaign.add(ChaosFault("facility", "loop9.pump", "outage",
                                100.0, 1000.0))
        with pytest.raises(ConfigurationError):
            engine.schedule(campaign)


class TestStandardCampaign:
    """One half-day acceptance-shaped run, scored end to end."""

    @pytest.fixture(scope="class")
    def run(self):
        dc, orchestrator = _chaos_site(seed=7)
        campaign = standard_campaign(seed=7, horizon_s=0.5 * DAY)
        engine = ChaosEngine(dc)
        engine.schedule(campaign)
        dc.generate_workload(days=0.5, jobs_per_day=40.0)
        dc.run(days=0.5)  # must complete without unhandled exceptions
        card = engine.scorecard(campaign)
        return dc, orchestrator, engine, campaign, card

    def test_all_faults_detected_with_finite_mttd(self, run):
        *_, card = run
        assert card["totals"]["detected"] == card["totals"]["faults"] == 5
        for row in card["faults"]:
            assert row["detected_at"] is not None
            assert np.isfinite(row["mttd_s"]) and row["mttd_s"] >= 0.0

    def test_all_faults_recovered_with_finite_mttr(self, run):
        *_, card = run
        assert card["totals"]["unrecovered"] == 0
        for row in card["faults"]:
            assert np.isfinite(row["mttr_s"]) and row["mttr_s"] >= row["mttd_s"]

    def test_safe_state_entered_and_breaker_recloses(self, run):
        dc, *_ , card = run
        supervised = dc.supervisor.loops["orchestrator"]
        assert supervised.safe_state_entries == 1
        assert supervised.breaker.state is BreakerState.CLOSED  # recovered
        assert card["totals"]["safe_state_entries"] == 1
        assert card["totals"]["breaker_closes"] >= 1

    def test_scorecard_json_roundtrip(self, run, tmp_path):
        _, _, engine, campaign, card = run
        path = tmp_path / "scorecard.json"
        engine.write_scorecard(campaign, str(path))
        loaded = json.loads(path.read_text())
        assert loaded["campaign"] == "standard"
        assert loaded["seed"] == 7
        assert len(loaded["faults"]) == 5
        assert loaded["totals"]["recovered"] == 5
        assert "oda.supervisor.decide_failures" in loaded["supervisor"]

    def test_chaos_metrics_registry(self, run):
        _, _, engine, *_ = run
        snap = engine.metrics_registry.snapshot()
        assert snap["oda.chaos.faults_injected"] == 5.0
        assert snap["oda.chaos.recovered"] == 5.0
        assert snap["oda.chaos.unrecovered"] == 0.0
        assert snap["oda.chaos.mean_mttr_s"] > 0.0

    def test_prometheus_includes_supervisor_metrics(self, run):
        dc, *_ = run
        text = dc.prometheus()
        assert "oda_supervisor_decide_failures" in text
        assert "telemetry_bus_published" in text  # pipeline still there

    def test_actions_counted_during_faults(self, run):
        *_, card = run
        by_pillar = {r["pillar"]: r for r in card["faults"]}
        # The orchestrator keeps acting (safe-state drives) during its own
        # fault window, and normal control continues during others'.
        assert by_pillar["controller"]["actions_during_fault"] >= 1


class TestScoringWithoutShards:
    def test_campaign_without_shards(self):
        dc, _ = _chaos_site(seed=3, shards=None)
        campaign = standard_campaign(seed=3, horizon_s=0.5 * DAY, shards=False)
        assert all(f.pillar != "shard" for f in campaign.faults)
        engine = ChaosEngine(dc)
        engine.schedule(campaign)
        dc.generate_workload(days=0.5, jobs_per_day=40.0)
        dc.run(days=0.5)
        card = engine.scorecard(campaign)
        assert card["totals"]["faults"] == 4
        assert card["totals"]["unrecovered"] == 0

    def test_same_seed_same_scorecard(self):
        cards = []
        for _ in range(2):
            dc, _ = _chaos_site(seed=5, shards=None)
            campaign = standard_campaign(seed=5, horizon_s=0.4 * DAY,
                                         shards=False)
            engine = ChaosEngine(dc)
            engine.schedule(campaign)
            dc.generate_workload(days=0.4, jobs_per_day=40.0)
            dc.run(days=0.4)
            cards.append(json.dumps(engine.scorecard(campaign), sort_keys=True))
        assert cards[0] == cards[1]


class TestChaosCli:
    def test_chaos_subcommand_writes_scorecard(self, tmp_path):
        from repro.cli import main

        out = tmp_path / "card.json"
        code = main([
            "chaos", "--seed", "7", "--racks", "1", "--nodes-per-rack", "4",
            "--days", "0.5", "--jobs-per-day", "24", "--out", str(out),
        ])
        assert code == 0
        card = json.loads(out.read_text())
        assert card["totals"]["unrecovered"] == 0
        assert card["totals"]["detected"] == card["totals"]["faults"]
