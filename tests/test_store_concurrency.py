"""Thread-safety regression tests for the storage tier.

The store's read path *mutates* (flush-on-read compaction, amortized
retention, rollup observation), so unsynchronized concurrent readers used
to race the ingest path.  These tests drive real thread pools against
every entry point the serving front door uses — single store, sharded
federation (including mid-read failover), and the worker-process runtime
(whose pipe RPCs must be atomic per shard) — and require bit-exact parity
with a sequentially-built reference afterwards.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.telemetry import SampleBatch, TimeSeriesStore
from repro.telemetry.distributed import ShardedStore

NAMES = tuple(f"s.rack{r}.node{n}.w" for r in range(2) for n in range(4))


def run_threads(targets):
    errors = []

    def wrap(fn):
        def inner():
            try:
                fn()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)
        return inner

    threads = [threading.Thread(target=wrap(t)) for t in targets]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]


class TestSingleStoreConcurrency:
    def test_ingest_and_reads_race_free(self):
        store = TimeSeriesStore(flush_threshold=8)
        n = 400
        done = threading.Event()
        for name in NAMES[:2]:  # readers may arrive before the writers
            store.append(name, -1.0, -0.5)

        def writer(name):
            def run():
                for t in range(n):
                    store.append(name, float(t), float(t) * 0.5)
            return run

        def reader():
            while not done.is_set():
                store.names()
                for name in NAMES[:2]:
                    times, values = store.query(name)
                    # A snapshot mid-ingest is some prefix of the final
                    # series — prefix-consistent, never interleaved junk.
                    assert np.array_equal(values, times * 0.5)
                store.resample(NAMES[0], 0.0, n, 25.0)

        writers = [writer(name) for name in NAMES[:2]]

        def readers_until_writers_done():
            run_threads(writers)
            done.set()

        run_threads([readers_until_writers_done] + [reader] * 4)
        for name in NAMES[:2]:
            times, values = store.query(name)
            assert np.array_equal(
                times, np.arange(-1, n, dtype=np.float64)
            )
            assert np.array_equal(values, times * 0.5)
        assert store.samples_ingested == 2 * (n + 1)

    def test_concurrent_readers_see_identical_staged_data(self):
        store = TimeSeriesStore(flush_threshold=10_000)
        rng = np.random.default_rng(0)
        for t in range(100):
            store.ingest("t", SampleBatch(
                float(t), NAMES, rng.random(len(NAMES)),
            ))
        assert store.staged_samples > 0  # flush happens on first read
        results = []
        lock = threading.Lock()

        def reader():
            times, values = store.query(NAMES[0])
            with lock:
                results.append((times.copy(), values.copy()))

        run_threads([reader] * 8)
        ref_t, ref_v = results[0]
        assert len(ref_t) == 100
        for times, values in results[1:]:
            assert np.array_equal(times, ref_t)
            assert np.array_equal(values, ref_v)

    def test_version_stamp_tracks_ingest(self):
        store = TimeSeriesStore()
        s0 = store.version_stamp()
        assert store.version_stamp() == s0  # no ingest, no movement
        store.append(NAMES[0], 1.0, 2.0)
        s1 = store.version_stamp()
        assert s1 != s0
        store.query(NAMES[0])  # reads alone never move the stamp
        assert store.version_stamp() == s1


class TestShardedConcurrency:
    def fill(self, **kwargs):
        store = ShardedStore(shards=2, replication=1, **kwargs)
        rng = np.random.default_rng(1)
        for t in range(120):
            store.ingest("t", SampleBatch(
                float(t), NAMES, rng.random(len(NAMES)),
            ))
        return store

    def test_federated_reads_race_ingest(self):
        store = self.fill()
        ref_grid, ref_matrix = store.align(list(NAMES), 0.0, 119.0, 10.0)
        stop = threading.Event()

        def ingest():
            t = 200.0
            while not stop.is_set():
                store.ingest("t", SampleBatch(
                    t, NAMES, np.full(len(NAMES), 1.0),
                ))
                t += 1.0

        def reader():
            for _ in range(30):
                # The queried window is frozen history: answers must be
                # bit-identical no matter how much ingest races them.
                grid, matrix = store.align(list(NAMES), 0.0, 119.0, 10.0)
                assert np.array_equal(grid, ref_grid)
                assert np.array_equal(matrix, ref_matrix, equal_nan=True)

        def readers_then_stop():
            run_threads([reader] * 4)
            stop.set()

        run_threads([readers_then_stop, ingest])

    def test_reads_survive_mid_flight_failover(self):
        store = self.fill()
        ref = store.resample(NAMES[0], 0.0, 119.0, 7.0)
        barrier = threading.Barrier(5)

        def reader():
            barrier.wait()
            for _ in range(50):
                grid, values = store.resample(NAMES[0], 0.0, 119.0, 7.0)
                assert np.array_equal(grid, ref[0])
                assert np.array_equal(values, ref[1], equal_nan=True)

        def failover():
            barrier.wait()
            victim = store.shard_of(NAMES[0])
            store.replica_sets[victim].mark_down(0)

        run_threads([reader] * 4 + [failover])


class TestParallelRuntimeConcurrency:
    @pytest.mark.parametrize("shards", [2])
    def test_rpc_pipes_are_atomic_under_thread_pool(self, shards):
        """Concurrent federated reads over worker-process shards: the
        send-then-recv RPC on each shard's pipe must never interleave."""
        par = ShardedStore(shards=shards, replication=1, parallel=True)
        ref = ShardedStore(shards=shards, replication=1)
        rng = np.random.default_rng(2)
        try:
            for t in range(60):
                batch = SampleBatch(float(t), NAMES, rng.random(len(NAMES)))
                par.ingest("t", batch)
                ref.ingest("t", batch)
            expect = {
                name: ref.resample(name, 0.0, 59.0, 5.0) for name in NAMES
            }
            expect_names = ref.names()

            def reader(offset):
                def run():
                    for i in range(20):
                        name = NAMES[(offset + i) % len(NAMES)]
                        grid, values = par.resample(name, 0.0, 59.0, 5.0)
                        assert np.array_equal(grid, expect[name][0])
                        assert np.array_equal(
                            values, expect[name][1], equal_nan=True,
                        )
                        assert par.names() == expect_names
                return run

            run_threads([reader(i) for i in range(6)])
            # The remote version stamps answer concurrently too: every
            # thread reads the same stamp for a given quiescent shard.
            stamps = [[] for _ in range(shards)]
            lock = threading.Lock()

            def stamp():
                for i, rs in enumerate(par.replica_sets):
                    s = rs.read_store().version_stamp()
                    with lock:
                        stamps[i].append(s)

            run_threads([stamp] * 4)
            for per_shard in stamps:
                assert len(per_shard) == 4
                assert len(set(per_shard)) == 1
                assert per_shard[0][0] > 0  # samples_ingested
        finally:
            par.close()
