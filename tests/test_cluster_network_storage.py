"""Tests for the fat-tree fabric and the parallel filesystem."""

from __future__ import annotations

import pytest

from repro.cluster import FatTreeFabric, ParallelFilesystem
from repro.errors import ConfigurationError


def make_fabric(n=8, per_leaf=4, capacity=100.0):
    return FatTreeFabric(
        [f"n{i}" for i in range(n)], nodes_per_leaf=per_leaf,
        spine_count=2, link_capacity=capacity,
    )


class TestTopology:
    def test_nodes_attached_to_leaves(self):
        fabric = make_fabric()
        assert fabric.leaf_of("n0") == "leaf0"
        assert fabric.leaf_of("n4") == "leaf1"

    def test_unknown_node_rejected(self):
        with pytest.raises(ConfigurationError):
            make_fabric().leaf_of("bogus")

    def test_same_leaf_route_avoids_spine(self):
        route = make_fabric().route("n0", "n1")
        assert len(route) == 2
        assert not any("spine" in a or "spine" in b for a, b in route)

    def test_cross_leaf_route_uses_spine(self):
        route = make_fabric().route("n0", "n5")
        assert len(route) == 4
        assert any("spine" in a or "spine" in b for a, b in route)

    def test_route_symmetric(self):
        """Same link set regardless of direction (order may differ)."""
        fabric = make_fabric()
        assert set(fabric.route("n0", "n5")) == set(fabric.route("n5", "n0"))


class TestContention:
    def test_no_flows_no_slowdown(self):
        fabric = make_fabric()
        fabric.begin_step()
        assert fabric.flow_slowdown("j") == 1.0

    def test_underloaded_flow_full_speed(self):
        fabric = make_fabric(capacity=1e9)
        fabric.begin_step()
        fabric.offer_flow("j", ["n0", "n1"], 100.0)
        assert fabric.flow_slowdown("j") == 1.0

    def test_oversubscribed_link_slows_flow(self):
        fabric = make_fabric(capacity=100.0)
        fabric.begin_step()
        fabric.offer_flow("j", ["n0", "n1"], 400.0)
        assert fabric.flow_slowdown("j") > 1.0

    def test_two_jobs_interfere_on_shared_links(self):
        fabric = make_fabric(capacity=150.0)
        fabric.begin_step()
        fabric.offer_flow("a", ["n0", "n4"], 100.0)
        solo = fabric.flow_slowdown("a")
        fabric.begin_step()
        fabric.offer_flow("a", ["n0", "n4"], 100.0)
        fabric.offer_flow("b", ["n1", "n5"], 100.0)
        shared = fabric.flow_slowdown("a")
        # Whether they share a spine is hash-dependent; at minimum the
        # contended case is never faster.
        assert shared >= solo

    def test_hot_links_sorted(self):
        fabric = make_fabric(capacity=10.0)
        fabric.begin_step()
        fabric.offer_flow("j", ["n0", "n1", "n4"], 100.0)
        hot = fabric.hot_links(threshold=0.5)
        assert hot
        utils = [u for _, u in hot]
        assert utils == sorted(utils, reverse=True)

    def test_sensors_shape(self):
        fabric = make_fabric()
        fabric.begin_step()
        fabric.offer_flow("j", ["n0", "n5"], 50.0)
        sensors = fabric.sensors()
        assert sensors["links_active"] > 0
        assert 0 <= sensors["mean_link_util"] <= sensors["max_link_util"]


class TestParallelFilesystem:
    def test_under_capacity_full_grant(self):
        pfs = ParallelFilesystem(bandwidth_bytes=100.0)
        pfs.begin_step()
        pfs.demand("a", 40.0)
        granted = pfs.resolve(1.0)
        assert granted["a"] == 40.0
        assert pfs.slowdown("a") == 1.0

    def test_over_capacity_proportional_share(self):
        pfs = ParallelFilesystem(bandwidth_bytes=100.0)
        pfs.begin_step()
        pfs.demand("a", 150.0)
        pfs.demand("b", 50.0)
        granted = pfs.resolve(1.0)
        assert granted["a"] == pytest.approx(75.0)
        assert granted["b"] == pytest.approx(25.0)
        assert pfs.slowdown("a") == pytest.approx(2.0)

    def test_bytes_moved_accumulates(self):
        pfs = ParallelFilesystem(bandwidth_bytes=100.0)
        pfs.begin_step()
        pfs.demand("a", 60.0)
        pfs.resolve(10.0)
        assert pfs.bytes_moved == pytest.approx(600.0)

    def test_utilization(self):
        pfs = ParallelFilesystem(bandwidth_bytes=100.0)
        pfs.begin_step()
        pfs.demand("a", 50.0)
        pfs.resolve(1.0)
        assert pfs.utilization == pytest.approx(0.5)

    def test_invalid_bandwidth(self):
        with pytest.raises(ConfigurationError):
            ParallelFilesystem(bandwidth_bytes=0.0)
