"""Tests for named seeded RNG streams."""

from __future__ import annotations

from repro.simulation import RngPool


class TestRngPool:
    def test_same_seed_same_stream(self):
        a = RngPool(42).stream("weather").random(10)
        b = RngPool(42).stream("weather").random(10)
        assert (a == b).all()

    def test_different_names_independent(self):
        pool = RngPool(42)
        a = pool.stream("weather").random(10)
        b = pool.stream("faults").random(10)
        assert not (a == b).all()

    def test_streams_cached_by_name(self):
        pool = RngPool(0)
        assert pool.stream("x") is pool.stream("x")

    def test_adding_stream_does_not_perturb_existing(self):
        """Stream isolation: draws depend only on (seed, name)."""
        pool1 = RngPool(7)
        first_draws = pool1.stream("a").random(5)

        pool2 = RngPool(7)
        pool2.stream("zzz")  # extra stream created first
        second_draws = pool2.stream("a").random(5)
        assert (first_draws == second_draws).all()

    def test_contains(self):
        pool = RngPool(0)
        assert "x" not in pool
        pool.stream("x")
        assert "x" in pool

    def test_spawn_children_differ_from_parent(self):
        pool = RngPool(3)
        child = pool.spawn("experiment1")
        a = pool.stream("s").random(5)
        b = child.stream("s").random(5)
        assert not (a == b).all()

    def test_spawn_deterministic(self):
        a = RngPool(3).spawn("e").stream("s").random(5)
        b = RngPool(3).spawn("e").stream("s").random(5)
        assert (a == b).all()
