"""Tests for the pub/sub message bus."""

from __future__ import annotations

from repro.telemetry import MessageBus, SampleBatch


def batch(t=0.0, **values):
    return SampleBatch.from_mapping(t, values or {"m": 1.0})


class TestMessageBus:
    def test_publish_delivers_to_matching_subscription(self):
        bus = MessageBus()
        seen = []
        bus.subscribe("cluster.*", lambda topic, b: seen.append(topic))
        bus.publish("cluster.rack0", batch())
        bus.publish("facility", batch())
        assert seen == ["cluster.rack0"]

    def test_match_all_pattern(self):
        bus = MessageBus()
        seen = []
        bus.subscribe("#", lambda topic, b: seen.append(topic))
        bus.publish("a", batch())
        bus.publish("b.c", batch())
        assert seen == ["a", "b.c"]

    def test_multiple_subscribers_all_delivered(self):
        bus = MessageBus()
        counts = [0, 0]
        bus.subscribe("#", lambda t, b: counts.__setitem__(0, counts[0] + 1))
        bus.subscribe("#", lambda t, b: counts.__setitem__(1, counts[1] + 1))
        assert bus.publish("x", batch()) == 2
        assert counts == [1, 1]

    def test_unmatched_publish_counts_dropped(self):
        bus = MessageBus()
        bus.subscribe("only.this", lambda t, b: None)
        bus.publish("other", batch())
        assert bus.dropped == 1

    def test_cancelled_subscription_stops_delivery(self):
        bus = MessageBus()
        seen = []
        sub = bus.subscribe("#", lambda t, b: seen.append(t))
        bus.publish("x", batch())
        sub.cancel()
        bus.publish("y", batch())
        assert seen == ["x"]
        assert bus.subscription_count == 0

    def test_delivery_accounting(self):
        bus = MessageBus()
        bus.subscribe("#", lambda t, b: None)
        for _ in range(3):
            bus.publish("x", batch())
        assert bus.published == 3
        assert bus.delivered == 3
        assert bus.topic_count("x") == 3
        assert bus.topics() == ["x"]

    def test_subscription_delivered_counter(self):
        bus = MessageBus()
        sub = bus.subscribe("a*", lambda t, b: None)
        bus.publish("abc", batch())
        bus.publish("xyz", batch())
        assert sub.delivered == 1
