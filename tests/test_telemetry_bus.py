"""Tests for the pub/sub message bus."""

from __future__ import annotations

from repro.telemetry import MessageBus, SampleBatch


def batch(t=0.0, **values):
    return SampleBatch.from_mapping(t, values or {"m": 1.0})


class TestMessageBus:
    def test_publish_delivers_to_matching_subscription(self):
        bus = MessageBus()
        seen = []
        bus.subscribe("cluster.*", lambda topic, b: seen.append(topic))
        bus.publish("cluster.rack0", batch())
        bus.publish("facility", batch())
        assert seen == ["cluster.rack0"]

    def test_match_all_pattern(self):
        bus = MessageBus()
        seen = []
        bus.subscribe("#", lambda topic, b: seen.append(topic))
        bus.publish("a", batch())
        bus.publish("b.c", batch())
        assert seen == ["a", "b.c"]

    def test_multiple_subscribers_all_delivered(self):
        bus = MessageBus()
        counts = [0, 0]
        bus.subscribe("#", lambda t, b: counts.__setitem__(0, counts[0] + 1))
        bus.subscribe("#", lambda t, b: counts.__setitem__(1, counts[1] + 1))
        assert bus.publish("x", batch()) == 2
        assert counts == [1, 1]

    def test_unmatched_publish_counts_dropped(self):
        bus = MessageBus()
        bus.subscribe("only.this", lambda t, b: None)
        bus.publish("other", batch())
        assert bus.dropped == 1

    def test_cancelled_subscription_stops_delivery(self):
        bus = MessageBus()
        seen = []
        sub = bus.subscribe("#", lambda t, b: seen.append(t))
        bus.publish("x", batch())
        sub.cancel()
        bus.publish("y", batch())
        assert seen == ["x"]
        assert bus.subscription_count == 0

    def test_delivery_accounting(self):
        bus = MessageBus()
        bus.subscribe("#", lambda t, b: None)
        for _ in range(3):
            bus.publish("x", batch())
        assert bus.published == 3
        assert bus.delivered == 3
        assert bus.topic_count("x") == 3
        assert bus.topics() == ["x"]

    def test_subscription_delivered_counter(self):
        bus = MessageBus()
        sub = bus.subscribe("a*", lambda t, b: None)
        bus.publish("abc", batch())
        bus.publish("xyz", batch())
        assert sub.delivered == 1

    def test_cancelled_subscriptions_compacted(self):
        """Regression: cancelled subs must not be scanned forever."""
        bus = MessageBus()
        subs = [bus.subscribe("#", lambda t, b: None) for _ in range(10)]
        for sub in subs[:9]:
            sub.cancel()
        assert bus.subscription_count == 1
        bus.publish("x", batch())  # opportunistic compaction
        assert len(bus._subscriptions) == 1
        assert bus.subscription_count == 1
        # Survivor still receives deliveries after compaction.
        assert bus.publish("x", batch()) == 1

    def test_compact_explicit(self):
        bus = MessageBus()
        sub = bus.subscribe("#", lambda t, b: None)
        bus.subscribe("#", lambda t, b: None)
        sub.cancel()
        assert bus.compact() == 1
        assert bus.subscription_count == 1


class TestErrorIsolation:
    def test_raising_subscriber_does_not_block_others(self):
        bus = MessageBus()
        seen = []

        def bad(topic, b):
            raise RuntimeError("sink down")

        bus.subscribe("#", bad)
        bus.subscribe("#", lambda t, b: seen.append(t))
        count = bus.publish("x", batch())
        assert count == 1  # only the healthy sink delivered
        assert seen == ["x"]
        assert bus.delivery_errors == 1

    def test_error_counters_and_dead_letters(self):
        bus = MessageBus()
        sub = bus.subscribe("#", lambda t, b: 1 / 0)
        bus.publish("x", batch())
        bus.publish("y", batch())
        assert sub.errors == 2
        assert sub.consecutive_errors == 2
        assert "ZeroDivisionError" in sub.last_error
        assert bus.dead_letter_count == 2
        assert [dl.topic for dl in bus.dead_letters] == ["x", "y"]

    def test_quarantine_after_consecutive_failures(self):
        bus = MessageBus(max_consecutive_errors=3)
        sub = bus.subscribe("#", lambda t, b: 1 / 0)
        for _ in range(5):
            bus.publish("x", batch())
        assert sub.quarantined
        assert bus.quarantines == 1
        assert bus.quarantined() == [sub]
        # Quarantined: skipped, so no further errors accumulate.
        assert sub.errors == 3
        assert bus.delivery_errors == 3

    def test_success_resets_consecutive_errors(self):
        bus = MessageBus(max_consecutive_errors=3)
        flaky = {"fail": True}

        def sink(topic, b):
            if flaky["fail"]:
                raise RuntimeError("flaky")

        sub = bus.subscribe("#", sink)
        bus.publish("x", batch())
        bus.publish("x", batch())
        flaky["fail"] = False
        bus.publish("x", batch())
        assert sub.consecutive_errors == 0
        assert not sub.quarantined
        assert sub.errors == 2

    def test_reset_revives_quarantined_subscription(self):
        bus = MessageBus(max_consecutive_errors=1)
        state = {"fail": True}

        def sink(topic, b):
            if state["fail"]:
                raise RuntimeError("down")

        sub = bus.subscribe("#", sink)
        bus.publish("x", batch())
        assert sub.quarantined
        state["fail"] = False
        sub.reset()
        assert bus.publish("x", batch()) == 1
        assert sub.delivered == 1

    def test_replay_dead_letters_after_recovery(self):
        bus = MessageBus(max_consecutive_errors=2)
        delivered = []
        state = {"fail": True}

        def sink(topic, b):
            if state["fail"]:
                raise RuntimeError("down")
            delivered.append((topic, b.time))

        sub = bus.subscribe("#", sink)
        bus.publish("x", batch(t=1.0))
        bus.publish("x", batch(t=2.0))
        assert sub.quarantined and bus.dead_letter_count == 2
        state["fail"] = False
        sub.reset()
        assert bus.replay_dead_letters() == 2
        assert delivered == [("x", 1.0), ("x", 2.0)]
        assert bus.dead_letter_count == 0

    def test_replay_failure_reparks_letter(self):
        bus = MessageBus()
        bus.subscribe("#", lambda t, b: 1 / 0)
        bus.publish("x", batch())
        assert bus.replay_dead_letters() == 0
        assert bus.dead_letter_count == 1

    def test_dead_letter_queue_is_bounded(self):
        bus = MessageBus(max_consecutive_errors=10**9, dead_letter_capacity=4)
        bus.subscribe("#", lambda t, b: 1 / 0)
        for i in range(10):
            bus.publish("x", batch(t=float(i)))
        assert bus.dead_letter_count == 4
        assert bus.dead_letters_evicted == 6
        # Oldest evicted first.
        assert [dl.time for dl in bus.dead_letters] == [6.0, 7.0, 8.0, 9.0]

    def test_health_metrics_snapshot(self):
        bus = MessageBus()
        bus.subscribe("#", lambda t, b: None)
        bus.publish("x", batch())
        metrics = bus.health_metrics()
        assert metrics["telemetry.bus.published"] == 1.0
        assert metrics["telemetry.bus.delivered"] == 1.0
        assert metrics["telemetry.bus.subscriptions"] == 1.0


class TestIndexedRouting:
    def test_repeat_publish_hits_route_cache(self):
        bus = MessageBus()
        bus.subscribe("cluster.*", lambda t, b: None)
        for _ in range(5):
            bus.publish("cluster.rack0", batch())
        assert bus.route_cache_misses == 1
        assert bus.route_cache_hits == 4

    def test_subscribe_invalidates_route_cache(self):
        bus = MessageBus()
        seen = []
        bus.subscribe("x*", lambda t, b: seen.append("first"))
        bus.publish("x", batch())
        bus.subscribe("x*", lambda t, b: seen.append("second"))
        bus.publish("x", batch())
        assert seen == ["first", "first", "second"]

    def test_cancel_respected_through_cached_route(self):
        bus = MessageBus()
        seen = []
        sub = bus.subscribe("x", lambda t, b: seen.append(1))
        bus.publish("x", batch())
        sub.cancel()
        bus.publish("x", batch())
        assert seen == [1]
        assert len(bus._subscriptions) == 0  # compacted opportunistically

    def test_quarantine_respected_through_cached_route(self):
        bus = MessageBus(max_consecutive_errors=1)
        sub = bus.subscribe("x", lambda t, b: 1 / 0)
        bus.publish("x", batch())  # builds cache + quarantines
        bus.publish("x", batch())
        assert sub.quarantined
        assert sub.errors == 1  # second publish skipped the quarantined sink

    def test_reset_revives_through_cached_route(self):
        bus = MessageBus(max_consecutive_errors=1)
        state = {"fail": True}
        seen = []

        def sink(topic, b):
            if state["fail"]:
                raise RuntimeError("down")
            seen.append(topic)

        sub = bus.subscribe("x", sink)
        bus.publish("x", batch())
        assert sub.quarantined
        state["fail"] = False
        sub.reset()
        assert bus.publish("x", batch()) == 1
        assert seen == ["x"]

    def test_route_cache_bounded(self):
        bus = MessageBus(route_cache_capacity=8)
        bus.subscribe("#", lambda t, b: None)
        for i in range(50):
            bus.publish(f"topic.{i}", batch())
        assert len(bus._route_cache) <= 8

    def test_delivery_order_is_subscription_order(self):
        bus = MessageBus()
        order = []
        bus.subscribe("#", lambda t, b: order.append("a"))
        bus.subscribe("x*", lambda t, b: order.append("b"))
        bus.subscribe("#", lambda t, b: order.append("c"))
        bus.publish("x", batch())
        assert order == ["a", "b", "c"]


class TestTopicCardinalityCap:
    def test_overflow_topics_folded(self):
        bus = MessageBus(topic_cardinality_cap=4)
        for i in range(10):
            bus.publish(f"t{i}", batch())
        assert len(bus.topics()) == 4
        assert bus.topic_overflow == 6
        assert bus.topic_count("t0") == 1
        assert bus.topic_count("t9") == 0  # folded, not tracked

    def test_tracked_topic_keeps_counting_past_cap(self):
        bus = MessageBus(topic_cardinality_cap=2)
        bus.publish("a", batch())
        bus.publish("b", batch())
        bus.publish("c", batch())  # overflow
        bus.publish("a", batch())  # still tracked
        assert bus.topic_count("a") == 2
        assert bus.topic_overflow == 1

    def test_cap_exposed_in_health_metrics(self):
        bus = MessageBus(topic_cardinality_cap=7)
        bus.publish("a", batch())
        metrics = bus.health_metrics()
        assert metrics["telemetry.bus.topic_cardinality_cap"] == 7.0
        assert metrics["telemetry.bus.topics_tracked"] == 1.0
        assert metrics["telemetry.bus.topic_overflow"] == 0.0
        assert metrics["telemetry.bus.route_cache_misses"] == 1.0
