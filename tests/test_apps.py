"""Tests for application profiles, the workload generator and instrumentation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import (
    AppClass,
    WorkloadGenerator,
    default_catalog,
    profile_regions,
)
from repro.errors import ConfigurationError
from repro.facility.weather import DAY


class TestProfiles:
    def test_catalog_covers_all_classes(self):
        catalog = default_catalog()
        present = {p.app_class for p in catalog}
        assert present == set(AppClass)

    def test_phase_cycle_wraps(self):
        profile = default_catalog().get("cfd_solver")
        cycle = profile.cycle_work_s
        assert profile.phase_at(0.0).name == "assemble"
        assert profile.phase_at(cycle + 1.0).name == profile.phase_at(1.0).name

    def test_phase_boundaries(self):
        profile = default_catalog().get("cfd_solver")
        assert profile.phase_at(119.9).name == "assemble"
        assert profile.phase_at(120.1).name == "solve"

    def test_mean_load_weighted(self):
        profile = default_catalog().get("cryptominer")
        mean = profile.mean_load()
        assert mean.cpu_util == pytest.approx(0.99)
        assert mean.io_bw_bytes == 0.0

    def test_miner_signature_is_distinct(self):
        """The miner's (cpu, io, net) signature separates from HPC codes."""
        catalog = default_catalog()
        miner = catalog.get("cryptominer").mean_load()
        for profile in catalog:
            if profile.name == "cryptominer":
                continue
            other = profile.mean_load()
            assert other.io_bw_bytes + other.net_bw_bytes > 0
        assert miner.io_bw_bytes + miner.net_bw_bytes == 0.0

    def test_unknown_profile(self):
        with pytest.raises(ConfigurationError):
            default_catalog().get("nope")


class TestWorkloadGenerator:
    @pytest.fixture
    def generator(self):
        return WorkloadGenerator(np.random.default_rng(42), jobs_per_day=100.0)

    def test_reproducible(self):
        a = WorkloadGenerator(np.random.default_rng(1)).generate(0.0, DAY)
        b = WorkloadGenerator(np.random.default_rng(1)).generate(0.0, DAY)
        assert [r.job_id for r in a] == [r.job_id for r in b]
        assert [r.submit_time for r in a] == [r.submit_time for r in b]

    def test_submissions_within_horizon_sorted(self, generator):
        requests = generator.generate(100.0, DAY)
        times = [r.submit_time for r in requests]
        assert times == sorted(times)
        assert all(100.0 <= t < 100.0 + DAY for t in times)

    def test_daily_rhythm(self, generator):
        requests = generator.generate(0.0, 10 * DAY)
        hours = np.array([(r.submit_time % DAY) / 3600 for r in requests])
        day_jobs = ((hours >= 9) & (hours < 17)).sum()
        night_jobs = ((hours < 5)).sum()
        assert day_jobs > night_jobs * 1.5

    def test_weekend_quieter(self, generator):
        requests = generator.generate(0.0, 28 * DAY)
        weekday = sum(1 for r in requests if (r.submit_time % (7 * DAY)) / DAY < 5)
        weekend = len(requests) - weekday
        assert weekday / 5 > (weekend / 2) * 1.5

    def test_walltime_overestimates_work(self, generator):
        requests = generator.generate(0.0, 2 * DAY)
        assert all(r.walltime_req_s >= r.work_s for r in requests)

    def test_user_repertoires_stable(self, generator):
        requests = generator.generate(0.0, 20 * DAY)
        by_user = {}
        for r in requests:
            by_user.setdefault(r.user, set()).add(r.profile.name)
        # Users stick to small repertoires (<= 4 apps).
        assert all(len(apps) <= 4 for apps in by_user.values())

    def test_miner_fraction(self):
        generator = WorkloadGenerator(
            np.random.default_rng(7), jobs_per_day=300.0, miner_fraction=0.3
        )
        requests = generator.generate(0.0, 5 * DAY)
        miners = sum(1 for r in requests if r.profile.name == "cryptominer")
        assert 0.15 < miners / len(requests) < 0.45

    def test_node_counts_capped(self):
        generator = WorkloadGenerator(
            np.random.default_rng(7), jobs_per_day=200.0, max_nodes=8
        )
        requests = generator.generate(0.0, 3 * DAY)
        assert all(1 <= r.nodes <= 8 for r in requests)


class TestInstrumentation:
    def test_time_shares_sum_to_one(self):
        for profile in default_catalog():
            regions = profile_regions(profile)
            assert sum(r.time_share for r in regions) == pytest.approx(1.0)

    def test_memory_bound_classification(self):
        regions = {r.region: r for r in profile_regions(default_catalog().get("graph_analytics"))}
        assert regions["traverse"].memory_bound

    def test_compute_bound_not_memory_bound(self):
        regions = {r.region: r for r in profile_regions(default_catalog().get("md_sim"))}
        assert not regions["force_calc"].memory_bound
