"""Tests for optional facility sensor noise."""

from __future__ import annotations

import numpy as np
import pytest

from repro.facility import Facility
from repro.facility.sizing import scaled_cooling_plant, scaled_distribution


def build(rng, **kwargs):
    return Facility(
        rng,
        plant=scaled_cooling_plant(1e5),
        distribution=scaled_distribution(1e5),
        it_power_source=lambda: 8e4,
        **kwargs,
    )


class TestSensorNoise:
    def test_default_noise_free(self, rng, sim, trace):
        facility = build(rng)
        facility.attach(sim, trace)
        sim.run(300)
        a = facility.sampler().scrape(sim.now).as_dict()
        b = facility.sampler().scrape(sim.now).as_dict()
        assert a == b  # deterministic without noise

    def test_noise_applies_to_power_sensors_only(self, rng, sim, trace):
        facility = build(rng, sensor_noise_floor_w=5.0)
        facility.attach(sim, trace)
        sim.run(300)
        a = facility.sampler().scrape(sim.now).as_dict()
        b = facility.sampler().scrape(sim.now).as_dict()
        assert a["facility.power.site_power"] != b["facility.power.site_power"]
        # Non-power sensors stay exact.
        assert a["facility.weather.drybulb"] == b["facility.weather.drybulb"]
        assert a["facility.loop0.setpoint"] == b["facility.loop0.setpoint"]

    def test_noise_magnitude_matches_floor(self, rng, sim, trace):
        facility = build(rng, sensor_noise_floor_w=10.0)
        facility.attach(sim, trace)
        sim.run(300)
        truth = facility.distribution.site_power_w
        samples = np.array([
            facility.sampler().scrape(sim.now).as_dict()["facility.power.site_power"]
            for _ in range(300)
        ])
        assert abs(samples.mean() - truth) < 3.0  # unbiased
        assert 7.0 < samples.std() < 13.0         # sigma ~ the floor

    def test_noise_free_weather_unchanged_by_noise_option(self, sim, trace):
        """Enabling noise must not perturb the physics trajectory."""
        results = []
        for floor in (0.0, 10.0):
            rng = np.random.default_rng(9)
            facility = build(rng, sensor_noise_floor_w=floor)
            local_sim = type(sim)()
            facility.attach(local_sim, trace)
            local_sim.run(3600)
            results.append(facility.current_weather.drybulb_c)
        assert results[0] == results[1]
