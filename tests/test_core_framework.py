"""Tests for the framework taxonomy: pillars, types, grid, survey, renderers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    PILLAR_ORDER,
    REFERENCES,
    TYPE_ORDER,
    AnalyticsType,
    FrameworkGrid,
    GridCell,
    Pillar,
    SystemProfile,
    UseCase,
    all_cells,
    analyze_survey,
    figure3_systems,
    gap_report,
    pillar_crossing_stats,
    plan_roadmap,
    rank_by_comprehensiveness,
    render_fig1,
    render_fig2,
    render_fig3,
    render_occupancy,
    render_table1,
    similarity_matrix,
    survey_grid,
    table1_use_cases,
)
from repro.errors import ClassificationError


class TestAxes:
    def test_four_pillars_ordered(self):
        assert len(PILLAR_ORDER) == 4
        assert PILLAR_ORDER[0] is Pillar.BUILDING_INFRASTRUCTURE
        assert [p.index for p in PILLAR_ORDER] == [0, 1, 2, 3]

    def test_four_types_staged(self):
        assert [t.stage for t in TYPE_ORDER] == [0, 1, 2, 3]
        assert TYPE_ORDER[0] is AnalyticsType.DESCRIPTIVE
        assert TYPE_ORDER[-1] is AnalyticsType.PRESCRIPTIVE

    def test_hindsight_foresight_split(self):
        assert AnalyticsType.DESCRIPTIVE.hindsight
        assert AnalyticsType.DIAGNOSTIC.hindsight
        assert AnalyticsType.PREDICTIVE.foresight
        assert AnalyticsType.PRESCRIPTIVE.foresight

    def test_each_type_has_question(self):
        assert AnalyticsType.DESCRIPTIVE.question == "What happened?"
        assert "best way" in AnalyticsType.PRESCRIPTIVE.question

    def test_pillar_substrate_modules_importable(self):
        import importlib

        for pillar in PILLAR_ORDER:
            assert importlib.import_module(pillar.substrate_module)

    def test_type_analytics_modules_importable(self):
        import importlib

        for analytics_type in TYPE_ORDER:
            assert importlib.import_module(analytics_type.analytics_module)


class TestGridCell:
    def test_sixteen_cells(self):
        cells = all_cells()
        assert len(cells) == 16
        assert len(set(cells)) == 16

    def test_ordering_by_stage_then_pillar(self):
        cells = sorted(all_cells())
        assert cells[0].analytics_type is AnalyticsType.DESCRIPTIVE
        assert cells[-1].analytics_type is AnalyticsType.PRESCRIPTIVE

    def test_equality_and_hash(self):
        a = GridCell(AnalyticsType.PREDICTIVE, Pillar.APPLICATIONS)
        b = GridCell(AnalyticsType.PREDICTIVE, Pillar.APPLICATIONS)
        assert a == b and hash(a) == hash(b)

    def test_label(self):
        cell = GridCell(AnalyticsType.DIAGNOSTIC, Pillar.SYSTEM_HARDWARE)
        assert cell.label == "Diagnostic x System Hardware"


class TestFrameworkGrid:
    def test_place_and_cell_lookup(self):
        grid = FrameworkGrid()
        uc = UseCase("x", GridCell(AnalyticsType.DESCRIPTIVE, Pillar.APPLICATIONS), (1,))
        grid.place(uc)
        assert grid.cell(AnalyticsType.DESCRIPTIVE, Pillar.APPLICATIONS) == [uc]
        assert grid.get("x") is uc

    def test_duplicate_rejected(self):
        grid = FrameworkGrid()
        uc = UseCase("x", GridCell(AnalyticsType.DESCRIPTIVE, Pillar.APPLICATIONS), ())
        grid.place(uc)
        with pytest.raises(ClassificationError):
            grid.place(uc)

    def test_occupancy_matrix(self):
        grid = survey_grid()
        occupancy = grid.occupancy()
        assert occupancy.shape == (4, 4)
        assert occupancy.sum() == len(grid)

    def test_footprint(self):
        grid = survey_grid()
        profile = grid.footprint(["PUE calculation", "CPU frequency tuning"], "mix")
        assert profile.multi_pillar and profile.multi_type
        assert len(profile.cells) == 2


class TestSurveyCorpus:
    def test_counts_match_table1(self):
        """Table I has 45 bullets over 16 non-empty cells."""
        grid = survey_grid()
        assert len(grid) == 45
        assert grid.empty_cells() == []

    def test_published_cell_counts_per_row(self):
        grid = survey_grid()
        per_type = {t: len(grid.by_type(t)) for t in TYPE_ORDER}
        assert per_type[AnalyticsType.PRESCRIPTIVE] == 11
        assert per_type[AnalyticsType.PREDICTIVE] == 11
        assert per_type[AnalyticsType.DIAGNOSTIC] == 12
        assert per_type[AnalyticsType.DESCRIPTIVE] == 11

    def test_published_cell_counts_per_pillar(self):
        grid = survey_grid()
        per_pillar = {p: len(grid.by_pillar(p)) for p in PILLAR_ORDER}
        assert per_pillar[Pillar.BUILDING_INFRASTRUCTURE] == 12
        assert per_pillar[Pillar.SYSTEM_HARDWARE] == 12
        assert per_pillar[Pillar.SYSTEM_SOFTWARE] == 10
        assert per_pillar[Pillar.APPLICATIONS] == 11

    def test_spot_check_published_placements(self):
        grid = survey_grid()
        checks = {
            "PUE calculation": (AnalyticsType.DESCRIPTIVE, Pillar.BUILDING_INFRASTRUCTURE, (4,)),
            "CPU frequency tuning": (AnalyticsType.PRESCRIPTIVE, Pillar.SYSTEM_HARDWARE, (11, 24, 40)),
            "Predicting job durations": (AnalyticsType.PREDICTIVE, Pillar.APPLICATIONS, (30, 34, 35)),
            "Identifying sources of OS noise": (AnalyticsType.DIAGNOSTIC, Pillar.SYSTEM_SOFTWARE, (57,)),
            "Application fingerprinting": (AnalyticsType.DIAGNOSTIC, Pillar.APPLICATIONS, (33, 36)),
        }
        for name, (analytics_type, pillar, refs) in checks.items():
            uc = grid.get(name)
            assert uc.analytics_type is analytics_type, name
            assert uc.pillar is pillar, name
            assert uc.references == refs, name

    def test_all_references_resolve(self):
        for uc in table1_use_cases():
            for number in uc.references:
                assert number in REFERENCES, f"{uc.name} cites unknown [{number}]"

    def test_every_use_case_has_implementation(self):
        for uc in table1_use_cases():
            assert uc.implemented_by, f"{uc.name} has no implementing module"

    def test_every_use_case_has_description(self):
        for uc in table1_use_cases():
            assert uc.description, f"{uc.name} lacks a description"

    def test_implementations_resolve_to_modules(self):
        """Every 'implemented_by' path must import (module or attribute)."""
        import importlib

        for uc in table1_use_cases():
            for path in uc.implemented_by:
                parts = path.split(".")
                # Try progressively shorter module prefixes, then getattr.
                module = None
                for cut in range(len(parts), 0, -1):
                    try:
                        module = importlib.import_module(".".join(parts[:cut]))
                        remainder = parts[cut:]
                        break
                    except ImportError:
                        continue
                assert module is not None, f"{uc.name}: cannot import {path}"
                obj = module
                for attr in remainder:
                    obj = getattr(obj, attr)  # raises if missing


class TestSystemProfiles:
    def test_figure3_systems_shape(self):
        systems = figure3_systems()
        names = {s.name for s in systems}
        assert "Bortot et al. (ENI)" in names
        assert "PowerStack" in names

    def test_eni_footprint_matches_section_va(self):
        eni = next(s for s in figure3_systems() if "ENI" in s.name)
        assert not eni.multi_pillar  # both cells in building infrastructure
        assert eni.multi_type       # diagnostic + prescriptive
        assert eni.pillars == frozenset({Pillar.BUILDING_INFRASTRUCTURE})

    def test_powerstack_is_multi_pillar(self):
        ps = next(s for s in figure3_systems() if s.name == "PowerStack")
        assert ps.multi_pillar
        assert AnalyticsType.PRESCRIPTIVE in ps.analytics_types
        assert AnalyticsType.PREDICTIVE in ps.analytics_types

    def test_similarity_identity_and_symmetry(self):
        systems = figure3_systems()
        matrix = similarity_matrix(systems)
        assert np.allclose(np.diag(matrix), 1.0)
        assert np.allclose(matrix, matrix.T)

    def test_geopm_powerstack_overlap(self):
        systems = {s.name: s for s in figure3_systems()}
        sim = systems["GEOPM"].similarity(systems["PowerStack"])
        assert 0.0 < sim < 1.0  # they share the hardware cells

    def test_comprehensiveness_ranking(self):
        ranked = rank_by_comprehensiveness(figure3_systems())
        assert ranked[0][0] == "PowerStack"  # widest footprint


class TestSurveyAnalysis:
    def test_visualization_dominates_claim(self):
        stats = analyze_survey(survey_grid())
        assert stats.visualization_dominates  # the [13] claim

    def test_control_exactly_prescriptive(self):
        grid = survey_grid()
        stats = analyze_survey(grid)
        assert stats.control_oriented == len(grid.by_type(AnalyticsType.PRESCRIPTIVE))

    def test_single_pillar_prevalence_claim(self):
        stats = pillar_crossing_stats(figure3_systems())
        assert stats["single_pillar"] > stats["multi_pillar"]

    def test_gap_report_empty_grid(self):
        report = gap_report(FrameworkGrid())
        assert len([l for l in report if l.startswith("EMPTY")]) == 16

    def test_stats_rows_renderable(self):
        rows = analyze_survey(survey_grid()).rows()
        assert any("use cases" in k for k, _ in rows)


class TestRenderers:
    def test_table1_contains_all_use_cases_and_refs(self):
        grid = survey_grid()
        text = render_table1(grid)
        for uc in grid:
            assert uc.name in text, uc.name
            for number in uc.references:
                assert f"[{number}]" in text

    def test_table1_row_order_matches_paper(self):
        text = render_table1(survey_grid())
        prescriptive = text.index("**Prescriptive**")
        descriptive = text.index("**Descriptive**")
        assert prescriptive < descriptive  # paper prints prescriptive first

    def test_fig1_mentions_all_pillars_and_substrates(self):
        text = render_fig1()
        for pillar in PILLAR_ORDER:
            assert pillar.title in text
            assert pillar.substrate_module in text

    def test_fig2_staged_order_and_questions(self):
        text = render_fig2()
        for analytics_type in TYPE_ORDER:
            assert analytics_type.title in text
        assert text.index("Descriptive") > text.index("Prescriptive")  # staircase top-down
        assert "hindsight" in text and "foresight" in text

    def test_fig3_marks_and_legend(self):
        text = render_fig3(figure3_systems())
        assert "A = Bortot" in text
        assert "multi-pillar" in text

    def test_occupancy_render(self):
        text = render_occupancy(survey_grid())
        assert "total use cases: 45" in text


class TestRoadmap:
    def test_greenfield_starts_descriptive(self):
        steps = plan_roadmap([], horizon=4)
        assert all(s.cell.analytics_type is AnalyticsType.DESCRIPTIVE for s in steps)

    def test_staged_progression_per_pillar(self):
        covered = [GridCell(AnalyticsType.DESCRIPTIVE, p) for p in PILLAR_ORDER]
        steps = plan_roadmap(covered, horizon=4)
        assert all(s.cell.analytics_type is AnalyticsType.DIAGNOSTIC for s in steps)

    def test_never_recommends_covered_cell(self):
        covered = all_cells()[:12]
        steps = plan_roadmap(covered, horizon=8)
        assert not (set(covered) & {s.cell for s in steps})

    def test_full_coverage_empty_roadmap(self):
        assert plan_roadmap(all_cells()) == []

    def test_priorities_sequential(self):
        steps = plan_roadmap([], horizon=6)
        assert [s.priority for s in steps] == list(range(1, 7))

    def test_rationales_present(self):
        assert all(s.rationale for s in plan_roadmap([], horizon=16))
