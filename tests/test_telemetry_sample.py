"""Tests for sample batches."""

from __future__ import annotations

import numpy as np
import pytest

from repro.telemetry import SampleBatch, merge_batches


class TestSampleBatch:
    def test_from_mapping_roundtrip(self):
        batch = SampleBatch.from_mapping(1.0, {"a": 1.0, "b": 2.0})
        assert batch.as_dict() == {"a": 1.0, "b": 2.0}
        assert len(batch) == 2

    def test_values_coerced_to_float64(self):
        batch = SampleBatch(0.0, ("a",), np.array([1], dtype=np.int32))
        assert batch.values.dtype == np.float64

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            SampleBatch(0.0, ("a", "b"), np.array([1.0]))

    def test_non_1d_rejected(self):
        with pytest.raises(ValueError):
            SampleBatch(0.0, ("a",), np.ones((1, 1)))

    def test_iteration_yields_pairs(self):
        batch = SampleBatch.from_mapping(0.0, {"a": 1.0, "b": 2.0})
        assert list(batch) == [("a", 1.0), ("b", 2.0)]

    def test_subset(self):
        batch = SampleBatch.from_mapping(0.0, {"a": 1.0, "b": 2.0, "c": 3.0})
        sub = batch.subset(["c", "a", "missing"])
        assert sub.as_dict() == {"c": 3.0, "a": 1.0}


class TestMergeBatches:
    def test_merge_combines_names(self):
        merged = merge_batches([
            SampleBatch.from_mapping(1.0, {"a": 1.0}),
            SampleBatch.from_mapping(1.0, {"b": 2.0}),
        ])
        assert merged.as_dict() == {"a": 1.0, "b": 2.0}

    def test_merge_last_writer_wins(self):
        merged = merge_batches([
            SampleBatch.from_mapping(1.0, {"a": 1.0}),
            SampleBatch.from_mapping(1.0, {"a": 9.0}),
        ])
        assert merged.as_dict() == {"a": 9.0}

    def test_merge_different_times_rejected(self):
        with pytest.raises(ValueError):
            merge_batches([
                SampleBatch.from_mapping(1.0, {"a": 1.0}),
                SampleBatch.from_mapping(2.0, {"b": 2.0}),
            ])

    def test_merge_empty_rejected(self):
        with pytest.raises(ValueError):
            merge_batches([])
