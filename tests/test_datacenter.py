"""Integration tests: the fully-wired DataCenter."""

from __future__ import annotations

import numpy as np
import pytest

from repro.oda import DataCenter
from repro.software import JobState


@pytest.fixture(scope="module")
def ran_dc():
    """One shared half-day simulation (module-scoped: simulation is costly)."""
    dc = DataCenter(seed=11, racks=2, nodes_per_rack=8)
    dc.generate_workload(days=0.5, jobs_per_day=60)
    dc.run(days=0.5)
    return dc


class TestDataCenterIntegration:
    def test_reproducible_trajectories(self):
        def trajectory(seed):
            dc = DataCenter(seed=seed, racks=1, nodes_per_rack=4)
            dc.generate_workload(days=0.1, jobs_per_day=50)
            dc.run(days=0.1)
            return dc.metric("facility.power.site_power")[1]

        a, b = trajectory(3), trajectory(3)
        assert (a == b).all()
        c = trajectory(4)
        assert not np.array_equal(a, c)

    def test_all_pillar_metrics_present(self, ran_dc):
        names = ran_dc.store.names()
        assert any(n.startswith("facility.") for n in names)
        assert any(n.startswith("cluster.") for n in names)
        assert any(n.startswith("scheduler.") for n in names)

    def test_jobs_flow_through_lifecycle(self, ran_dc):
        assert len(ran_dc.scheduler.jobs) > 10
        done = [j for j in ran_dc.scheduler.accounting if j.state is JobState.COMPLETED]
        assert done, "some jobs should complete in half a day"

    def test_pue_physical(self, ran_dc):
        _, pue = ran_dc.metric("facility.pue")
        loaded = pue[pue > 0]
        assert (loaded > 1.0).all()
        assert loaded.mean() < 2.0

    def test_energy_conservation(self, ran_dc):
        """Site power equals IT + cooling + losses at every sample."""
        _, site = ran_dc.metric("facility.power.site_power")
        _, it = ran_dc.metric("facility.power.it_power")
        _, cool = ran_dc.metric("facility.power.cooling_power")
        _, loss = ran_dc.metric("facility.power.loss_power")
        assert np.allclose(site, it + cool + loss)

    def test_cooling_coupling_reaches_nodes(self, ran_dc):
        """Node inlet temperatures track the loop supply temperature."""
        _, supply = ran_dc.metric("facility.loop0.supply_temp")
        _, inlet = ran_dc.metric("cluster.rack0.r0n0.inlet_temp")
        # Inlet = supply + rack offset; correlation must be near-perfect.
        n = min(supply.size, inlet.size)
        corr = np.corrcoef(supply[:n], inlet[:n])[0, 1]
        assert corr > 0.95

    def test_it_power_tracks_utilization(self, ran_dc):
        _, util = ran_dc.metric("scheduler.utilization")
        _, power = ran_dc.metric("cluster.it_power")
        n = min(util.size, power.size)
        assert np.corrcoef(util[:n], power[:n])[0, 1] > 0.5

    def test_peak_it_sizing(self, ran_dc):
        _, power = ran_dc.metric("cluster.it_power")
        assert power.max() <= ran_dc.peak_it_w

    def test_store_and_registry_consistent(self, ran_dc):
        registered = set(ran_dc.telemetry.registry.names())
        stored = set(ran_dc.store.names())
        assert stored <= registered
