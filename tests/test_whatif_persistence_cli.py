"""Tests for the what-if replay API, store persistence and the CLI."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import WorkloadGenerator, default_catalog
from repro.apps.generator import JobRequest
from repro.cli import main
from repro.errors import InsufficientDataError, StoreError
from repro.software import (
    EasyBackfillPolicy,
    FcfsPolicy,
    compare_policies,
    replay,
)
from repro.telemetry import SampleBatch, TimeSeriesStore, load_store, save_store


def trace(jobs_per_day=24.0, days=0.5, seed=7, max_nodes=16):
    generator = WorkloadGenerator(
        np.random.default_rng(seed), jobs_per_day=jobs_per_day, max_nodes=max_nodes
    )
    return generator.generate(0.0, days * 86_400.0)


class TestReplay:
    def test_replay_completes_trace(self):
        result = replay(trace(), FcfsPolicy())
        assert result.total == len(trace())
        assert result.completed > 0
        assert result.it_energy_kwh > 0
        assert result.makespan_s > 0

    def test_empty_trace_rejected(self):
        with pytest.raises(InsufficientDataError):
            replay([], FcfsPolicy())

    def test_backfill_no_worse_makespan(self):
        requests = trace(jobs_per_day=40.0)
        fcfs = replay(requests, FcfsPolicy())
        easy = replay(requests, EasyBackfillPolicy())
        assert easy.makespan_s <= fcfs.makespan_s * 1.05
        assert easy.completed >= fcfs.completed

    def test_compare_policies_sorted(self):
        requests = trace()
        results = compare_policies(
            requests,
            {"fcfs": FcfsPolicy(), "easy": EasyBackfillPolicy()},
        )
        assert [r.policy_name for r in results]
        spans = [r.makespan_s for r in results]
        assert spans == sorted(spans)

    def test_stall_detection_terminates(self):
        """A policy that never starts anything must not drain forever."""

        class NeverPolicy(FcfsPolicy):
            name = "never"

            def select(self, ctx):
                return []

        result = replay(trace(days=0.2), NeverPolicy(), max_days=5.0)
        assert result.completed == 0
        assert result.makespan_s == 0.0

    def test_replay_result_rows(self):
        result = replay(trace(), EasyBackfillPolicy())
        rows = dict(result.rows())
        assert rows["policy"] == "easy_backfill"
        assert "utilization" in rows


class TestPersistence:
    def make_store(self):
        store = TimeSeriesStore(retention=None)
        t = np.arange(0.0, 500.0, 5.0)
        store.append_many("a.power", t, np.sin(t))
        store.append_many("b.temp", t, np.cos(t))
        return store

    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "archive.npz")
        original = self.make_store()
        assert save_store(original, path) == 2
        loaded = load_store(path)
        assert loaded.names() == original.names()
        for name in original.names():
            t0, v0 = original.query(name)
            t1, v1 = loaded.query(name)
            assert (t0 == t1).all() and (v0 == v1).all()

    def test_subset_save(self, tmp_path):
        path = str(tmp_path / "subset.npz")
        save_store(self.make_store(), path, names=["a.power"])
        loaded = load_store(path)
        assert loaded.names() == ["a.power"]

    def test_load_rejects_foreign_npz(self, tmp_path):
        path = str(tmp_path / "foreign.npz")
        np.savez(path, x=np.ones(3))
        with pytest.raises(StoreError):
            load_store(path)

    def test_config_round_trips(self, tmp_path):
        """v2 archives persist retention/flush/slack and restore them."""
        path = str(tmp_path / "configured.npz")
        store = TimeSeriesStore(retention=3600.0, retention_slack=0.125,
                                flush_threshold=32)
        store.append_many("a.power", np.arange(10.0), np.ones(10))
        save_store(store, path)
        loaded = load_store(path)
        assert loaded.retention == 3600.0
        assert loaded.retention_slack == 0.125
        assert loaded.flush_threshold == 32

    def test_staged_only_store_round_trips(self, tmp_path):
        """Regression: un-flushed staged samples must reach the archive."""
        path = str(tmp_path / "staged.npz")
        store = TimeSeriesStore(flush_threshold=10_000)  # never auto-flushes
        batch_names = ("a.power", "b.temp")
        for t in range(5):
            store.ingest("t", SampleBatch(float(t), batch_names, np.ones(2) * t))
        assert store.staged_samples == 10
        save_store(store, path)
        loaded = load_store(path)
        for name in batch_names:
            times, values = loaded.query(name)
            np.testing.assert_array_equal(times, np.arange(5.0))
            np.testing.assert_array_equal(values, np.arange(5.0))

    def test_v1_archive_still_loads(self, tmp_path):
        """Forward compatibility: pre-config archives load with defaults."""
        import json

        path = str(tmp_path / "v1.npz")
        t = np.arange(4.0)
        meta = {"version": 1, "series": ["old.metric"], "retention": 60.0,
                "samples": 4}
        np.savez_compressed(
            path,
            **{
                "old.metric::t": t,
                "old.metric::v": t * 2,
                "__meta__": np.frombuffer(
                    json.dumps(meta).encode("utf-8"), dtype=np.uint8
                ),
            },
        )
        loaded = load_store(path)
        assert loaded.retention == 60.0
        assert loaded.retention_slack == 0.25  # constructor default
        times, values = loaded.query("old.metric")
        np.testing.assert_array_equal(values, times * 2)

    def test_unreadable_version_rejected(self, tmp_path):
        import json

        path = str(tmp_path / "future.npz")
        meta = {"version": 99, "series": []}
        np.savez_compressed(path, __meta__=np.frombuffer(
            json.dumps(meta).encode("utf-8"), dtype=np.uint8))
        with pytest.raises(StoreError):
            load_store(path)


class TestShardedPersistence:
    def make_sharded(self, replication=1):
        from repro.telemetry import SampleBatch, ShardedStore

        store = ShardedStore(shards=3, replication=replication,
                             retention_slack=0.125)
        names = tuple(f"rack{r}.node{n}.power" for r in range(2) for n in range(4))
        rng = np.random.default_rng(5)
        for t in range(20):
            store.ingest("t", SampleBatch(float(t), names, rng.random(len(names))))
        return store

    def test_sharded_round_trip(self, tmp_path):
        from repro.telemetry import ShardedStore

        path = str(tmp_path / "site.npz")
        original = self.make_sharded()
        count = save_store(original, path)
        assert count == len(original.names())
        # Manifest plus one archive per shard.
        files = sorted(p.name for p in tmp_path.iterdir())
        assert files == ["site.npz", "site.shard0.npz", "site.shard1.npz",
                         "site.shard2.npz"]
        loaded = load_store(path)
        assert isinstance(loaded, ShardedStore)
        assert loaded.shards == 3 and loaded.replication == 1
        assert loaded.retention_slack == 0.125
        assert loaded.names() == original.names()
        for name in original.names():
            t0, v0 = original.query(name)
            t1, v1 = loaded.query(name)
            np.testing.assert_array_equal(t0, t1)
            np.testing.assert_array_equal(v0, v1)

    def test_shard_archive_loads_standalone(self, tmp_path):
        path = str(tmp_path / "site.npz")
        original = self.make_sharded()
        save_store(original, path)
        shard0 = load_store(str(tmp_path / "site.shard0.npz"))
        assert isinstance(shard0, TimeSeriesStore)
        assert shard0.names() == original.replica_sets[0].primary.names()

    def test_sharded_subset_save(self, tmp_path):
        path = str(tmp_path / "subset.npz")
        original = self.make_sharded(replication=0)
        keep = original.names()[:3]
        save_store(original, path, names=keep)
        loaded = load_store(path)
        assert loaded.names() == sorted(keep)

    def test_sharded_save_survives_failover(self, tmp_path):
        """Archiving reads through failover: a dead primary does not lose
        the shard's series as long as a replica is up."""
        path = str(tmp_path / "failed.npz")
        original = self.make_sharded(replication=1)
        original.replica_sets[1].mark_down(0)
        save_store(original, path)
        loaded = load_store(path)
        assert loaded.names() == original.names()


class TestCli:
    def test_classify_command(self, capsys):
        assert main(["classify", "dashboards", "for", "facility", "cooling"]) == 0
        out = capsys.readouterr().out
        assert "Descriptive x Building Infrastructure" in out

    def test_classify_out_of_domain(self, capsys):
        assert main(["classify", "zzz", "qqq"]) == 1

    def test_roadmap_command(self, capsys):
        assert main(["roadmap", "--covered", "descriptive:applications",
                     "--horizon", "2"]) == 0
        out = capsys.readouterr().out
        assert "1." in out and "2." in out

    def test_roadmap_bad_cell(self, capsys):
        assert main(["roadmap", "--covered", "nonsense"]) == 1

    def test_survey_command(self, capsys):
        assert main(["survey"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "Figure 3" in out

    def test_simulate_command(self, capsys, tmp_path):
        path = str(tmp_path / "run.npz")
        assert main([
            "simulate", "--days", "0.05", "--jobs-per-day", "10",
            "--save-store", path,
        ]) == 0
        out = capsys.readouterr().out
        assert "Run KPIs" in out
        assert load_store(path).names()

    def test_simulate_sharded_command(self, capsys, tmp_path):
        from repro.telemetry import ShardedStore

        path = str(tmp_path / "sharded.npz")
        assert main([
            "simulate", "--days", "0.02", "--jobs-per-day", "5",
            "--shards", "4", "--replication", "1", "--save-store", path,
        ]) == 0
        out = capsys.readouterr().out
        assert "sharded store: 4 shards x 2 copies" in out
        loaded = load_store(path)
        assert isinstance(loaded, ShardedStore)
        assert loaded.shards == 4
        assert loaded.names()
