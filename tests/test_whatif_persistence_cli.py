"""Tests for the what-if replay API, store persistence and the CLI."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import WorkloadGenerator, default_catalog
from repro.apps.generator import JobRequest
from repro.cli import main
from repro.errors import InsufficientDataError, StoreError
from repro.software import (
    EasyBackfillPolicy,
    FcfsPolicy,
    compare_policies,
    replay,
)
from repro.telemetry import TimeSeriesStore, load_store, save_store


def trace(jobs_per_day=24.0, days=0.5, seed=7, max_nodes=16):
    generator = WorkloadGenerator(
        np.random.default_rng(seed), jobs_per_day=jobs_per_day, max_nodes=max_nodes
    )
    return generator.generate(0.0, days * 86_400.0)


class TestReplay:
    def test_replay_completes_trace(self):
        result = replay(trace(), FcfsPolicy())
        assert result.total == len(trace())
        assert result.completed > 0
        assert result.it_energy_kwh > 0
        assert result.makespan_s > 0

    def test_empty_trace_rejected(self):
        with pytest.raises(InsufficientDataError):
            replay([], FcfsPolicy())

    def test_backfill_no_worse_makespan(self):
        requests = trace(jobs_per_day=40.0)
        fcfs = replay(requests, FcfsPolicy())
        easy = replay(requests, EasyBackfillPolicy())
        assert easy.makespan_s <= fcfs.makespan_s * 1.05
        assert easy.completed >= fcfs.completed

    def test_compare_policies_sorted(self):
        requests = trace()
        results = compare_policies(
            requests,
            {"fcfs": FcfsPolicy(), "easy": EasyBackfillPolicy()},
        )
        assert [r.policy_name for r in results]
        spans = [r.makespan_s for r in results]
        assert spans == sorted(spans)

    def test_stall_detection_terminates(self):
        """A policy that never starts anything must not drain forever."""

        class NeverPolicy(FcfsPolicy):
            name = "never"

            def select(self, ctx):
                return []

        result = replay(trace(days=0.2), NeverPolicy(), max_days=5.0)
        assert result.completed == 0
        assert result.makespan_s == 0.0

    def test_replay_result_rows(self):
        result = replay(trace(), EasyBackfillPolicy())
        rows = dict(result.rows())
        assert rows["policy"] == "easy_backfill"
        assert "utilization" in rows


class TestPersistence:
    def make_store(self):
        store = TimeSeriesStore(retention=None)
        t = np.arange(0.0, 500.0, 5.0)
        store.append_many("a.power", t, np.sin(t))
        store.append_many("b.temp", t, np.cos(t))
        return store

    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "archive.npz")
        original = self.make_store()
        assert save_store(original, path) == 2
        loaded = load_store(path)
        assert loaded.names() == original.names()
        for name in original.names():
            t0, v0 = original.query(name)
            t1, v1 = loaded.query(name)
            assert (t0 == t1).all() and (v0 == v1).all()

    def test_subset_save(self, tmp_path):
        path = str(tmp_path / "subset.npz")
        save_store(self.make_store(), path, names=["a.power"])
        loaded = load_store(path)
        assert loaded.names() == ["a.power"]

    def test_load_rejects_foreign_npz(self, tmp_path):
        path = str(tmp_path / "foreign.npz")
        np.savez(path, x=np.ones(3))
        with pytest.raises(StoreError):
            load_store(path)


class TestCli:
    def test_classify_command(self, capsys):
        assert main(["classify", "dashboards", "for", "facility", "cooling"]) == 0
        out = capsys.readouterr().out
        assert "Descriptive x Building Infrastructure" in out

    def test_classify_out_of_domain(self, capsys):
        assert main(["classify", "zzz", "qqq"]) == 1

    def test_roadmap_command(self, capsys):
        assert main(["roadmap", "--covered", "descriptive:applications",
                     "--horizon", "2"]) == 0
        out = capsys.readouterr().out
        assert "1." in out and "2." in out

    def test_roadmap_bad_cell(self, capsys):
        assert main(["roadmap", "--covered", "nonsense"]) == 1

    def test_survey_command(self, capsys):
        assert main(["survey"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "Figure 3" in out

    def test_simulate_command(self, capsys, tmp_path):
        path = str(tmp_path / "run.npz")
        assert main([
            "simulate", "--days", "0.05", "--jobs-per-day", "10",
            "--save-store", path,
        ]) == 0
        out = capsys.readouterr().out
        assert "Run KPIs" in out
        assert load_store(path).names()
