"""Tests for cooling loops, technology switching and the plant."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, ControlError
from repro.facility import CoolingLoop, CoolingMode, CoolingPlant, WeatherSample

COLD = WeatherSample(drybulb_c=2.0, wetbulb_c=-1.0, humidity=0.6)
MILD = WeatherSample(drybulb_c=16.0, wetbulb_c=11.0, humidity=0.6)
HOT = WeatherSample(drybulb_c=33.0, wetbulb_c=24.0, humidity=0.6)


class TestCoolingModeSelection:
    def test_auto_avoids_chiller_when_cold(self):
        loop = CoolingLoop(name="l", supply_setpoint_c=18.0)
        loop.update(5e5, COLD, 60.0)
        # Both tower and free cooling are feasible; AUTO picks the cheapest
        # of the two, never the chiller.
        assert loop.active_mode in (CoolingMode.FREE, CoolingMode.TOWER)

    def test_auto_falls_back_to_chiller_when_hot(self):
        loop = CoolingLoop(name="l", supply_setpoint_c=16.0)
        loop.update(5e5, HOT, 60.0)
        assert loop.active_mode is CoolingMode.CHILLER

    def test_warm_setpoint_widens_free_cooling_window(self):
        cold_loop = CoolingLoop(name="a", supply_setpoint_c=16.0)
        warm_loop = CoolingLoop(name="b", supply_setpoint_c=45.0)
        cold_loop.update(5e5, HOT, 60.0)
        warm_loop.update(5e5, HOT, 60.0)
        assert cold_loop.active_mode is CoolingMode.CHILLER
        assert warm_loop.active_mode is not CoolingMode.CHILLER

    def test_forced_mode_respected_when_feasible(self):
        loop = CoolingLoop(name="l", supply_setpoint_c=18.0)
        loop.set_mode(CoolingMode.TOWER)
        loop.update(5e5, COLD, 60.0)
        assert loop.active_mode is CoolingMode.TOWER

    def test_forced_infeasible_mode_falls_back_to_chiller(self):
        loop = CoolingLoop(name="l", supply_setpoint_c=16.0)
        loop.set_mode(CoolingMode.FREE)
        loop.update(5e5, HOT, 60.0)
        assert loop.active_mode is CoolingMode.CHILLER

    def test_free_cooling_cheaper_than_chiller(self):
        free = CoolingLoop(name="a", supply_setpoint_c=18.0, mode=CoolingMode.FREE)
        chill = CoolingLoop(name="b", supply_setpoint_c=18.0, mode=CoolingMode.CHILLER)
        p_free = free.update(5e5, COLD, 60.0)
        p_chill = chill.update(5e5, COLD, 60.0)
        assert p_free < p_chill


class TestSetpointKnob:
    def test_setpoint_propagates_to_chiller(self):
        loop = CoolingLoop(name="l")
        loop.set_setpoint(30.0)
        assert loop.chiller.supply_setpoint_c == 30.0

    def test_setpoint_bounds_enforced(self):
        loop = CoolingLoop(name="l", min_setpoint_c=10.0, max_setpoint_c=50.0)
        with pytest.raises(ControlError):
            loop.set_setpoint(5.0)
        with pytest.raises(ControlError):
            loop.set_setpoint(55.0)

    def test_raising_setpoint_saves_chiller_power(self):
        cold = CoolingLoop(name="a", mode=CoolingMode.CHILLER)
        cold.set_setpoint(14.0)
        warm = CoolingLoop(name="b", mode=CoolingMode.CHILLER)
        warm.set_setpoint(40.0)
        assert warm.update(5e5, MILD, 60.0) < cold.update(5e5, MILD, 60.0)


class TestLoopAccounting:
    def test_pump_power_included(self):
        loop = CoolingLoop(name="l", mode=CoolingMode.CHILLER)
        total = loop.update(5e5, MILD, 60.0)
        assert total > 5e5 / loop.chiller.cop(MILD.drybulb_c)  # more than chiller alone

    def test_idle_technologies_read_zero(self):
        loop = CoolingLoop(name="l", supply_setpoint_c=18.0, mode=CoolingMode.FREE)
        loop.update(5e5, COLD, 60.0)
        assert loop.chiller.power_w == 0.0
        assert loop.tower.power_w == 0.0

    def test_sensors_mode_encoding(self):
        loop = CoolingLoop(name="l", supply_setpoint_c=18.0, mode=CoolingMode.FREE)
        loop.update(5e5, COLD, 60.0)
        assert loop.sensors()["mode"] == 2.0  # FREE


class TestCoolingPlant:
    def test_load_split_across_loops(self):
        plant = CoolingPlant([CoolingLoop(name="a"), CoolingLoop(name="b")])
        plant.update(1e6, MILD, 60.0)
        assert plant.loop("a").heat_load_w == pytest.approx(5e5)
        assert plant.loop("b").heat_load_w == pytest.approx(5e5)

    def test_duplicate_loop_names_rejected(self):
        with pytest.raises(ConfigurationError):
            CoolingPlant([CoolingLoop(name="a"), CoolingLoop(name="a")])

    def test_unknown_loop(self):
        with pytest.raises(ConfigurationError):
            CoolingPlant().loop("nope")
