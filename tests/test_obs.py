"""Tests for the observability layer: tracing, typed metrics, profiling.

Covers the instruments and tracer in isolation, the end-to-end span chain
through a real simulated pipeline (scrape → publish → deliver → stage →
shard → store ingest, plus federated queries), the Prometheus exposition
of the migrated ``telemetry.*`` self-metrics, and the ``repro obs`` CLI.

Every test that enables the global ``OBS`` singleton brackets it with
``reset()``/``disable()`` so state never leaks across tests.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.errors import ConfigurationError
from repro.obs import (
    DEFAULT_BUCKETS,
    OBS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Tracer,
    prometheus_text,
    spans_to_chrome,
)


@pytest.fixture
def obs():
    """The global observability singleton, enabled fresh and always torn
    back down."""
    OBS.reset()
    OBS.enable()
    try:
        yield OBS
    finally:
        OBS.disable()
        OBS.reset()


# ---------------------------------------------------------------------------
# Instruments
# ---------------------------------------------------------------------------
class TestInstruments:
    def test_counter_monotone(self):
        c = Counter("x")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ConfigurationError):
            c.inc(-1.0)

    def test_callback_backed_counter_reads_source(self):
        state = {"n": 0}
        c = Counter("x", fn=lambda: float(state["n"]))
        state["n"] = 7
        assert c.value == 7.0
        with pytest.raises(ConfigurationError):
            c.inc()

    def test_gauge_moves_freely(self):
        g = Gauge("x")
        g.set(5.0)
        g.set(2.0)
        assert g.value == 2.0

    def test_histogram_buckets_and_quantiles(self):
        h = Histogram("x", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 1.5, 3.0, 10.0):
            h.observe(v)
        assert h.count == 5
        assert h.sum == pytest.approx(16.5)
        assert h.min == 0.5 and h.max == 10.0
        # cumulative le semantics: le=1 -> 1, le=2 -> 3, le=4 -> 4, +Inf -> 5
        assert h.bucket_counts == [1, 2, 1, 1]
        assert 0.5 <= h.quantile(0.0) <= 1.0
        assert h.quantile(1.0) == pytest.approx(10.0)
        assert 1.0 <= h.quantile(0.5) <= 2.0

    def test_histogram_empty_quantile_is_nan(self):
        assert math.isnan(Histogram("x").quantile(0.5))

    def test_histogram_default_buckets_span_latencies(self):
        assert DEFAULT_BUCKETS[0] <= 1e-6
        assert DEFAULT_BUCKETS[-1] >= 1.0

    def test_quantiles_clamp_to_observed_range(self):
        # Every observation is 0.3, landing in the (0.25, 0.5] bucket.
        # Interpolating across the raw bucket would report p99 ~ 0.4975;
        # the observed min/max pin every quantile to exactly 0.3.
        h = Histogram("x", buckets=(0.25, 0.5, 1.0))
        for _ in range(100):
            h.observe(0.3)
        for q in (0.01, 0.5, 0.95, 0.99):
            assert h.quantile(q) == pytest.approx(0.3)

    def test_quantiles_clamped_in_overflow_bucket(self):
        # Observations beyond the last edge land in the +Inf bucket; the
        # estimate must not run away past the observed max.
        h = Histogram("x", buckets=(1.0,))
        for v in (5.0, 6.0, 7.0):
            h.observe(v)
        assert 5.0 <= h.quantile(0.5) <= 7.0
        assert h.quantile(0.99) <= 7.0

    def test_quantiles_clamped_in_underflow_bucket(self):
        h = Histogram("x", buckets=(10.0, 20.0))
        for v in (2.0, 3.0, 4.0):
            h.observe(v)
        assert 2.0 <= h.quantile(0.01) <= 4.0
        assert h.quantile(0.99) <= 4.0

    def test_quantiles_monotone_across_buckets(self):
        h = Histogram("x", buckets=(1.0, 2.0, 4.0, 8.0))
        for v in (0.5, 1.5, 1.5, 3.0, 5.0, 7.0, 10.0):
            h.observe(v)
        qs = [h.quantile(q) for q in (0.1, 0.25, 0.5, 0.75, 0.9, 0.99)]
        assert qs == sorted(qs)
        assert qs[0] >= 0.5 and qs[-1] <= 10.0

    def test_snapshot_and_prometheus_quantiles_clamped(self):
        r = MetricsRegistry()
        h = r.histogram("h", buckets=(0.25, 0.5))
        for _ in range(50):
            h.observe(0.3)
        snap = r.snapshot()
        for key in ("h.p50", "h.p95", "h.p99"):
            assert snap[key] == pytest.approx(0.3)
        text = r.to_prometheus()
        assert 'h_summary{quantile="0.99"} 0.3' in text

    def test_threadsafe_histogram_concurrent_observes(self):
        import threading

        h = Histogram("x", buckets=(1.0, 2.0), threadsafe=True)

        def observe():
            for _ in range(1000):
                h.observe(0.5)

        threads = [threading.Thread(target=observe) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert h.count == 4000
        assert h.sum == pytest.approx(2000.0)
        assert h.bucket_counts[0] == 4000

    def test_registry_histogram_threadsafe_passthrough(self):
        r = MetricsRegistry()
        h = r.histogram("h", threadsafe=True)
        h.observe(1.0)
        assert h.count == 1

    def test_registry_get_or_create_and_kind_mismatch(self):
        r = MetricsRegistry()
        c1 = r.counter("a")
        assert r.counter("a") is c1
        with pytest.raises(ConfigurationError):
            r.gauge("a")

    def test_registry_snapshot_expands_histograms(self):
        r = MetricsRegistry()
        r.counter("c").inc(2)
        h = r.histogram("h", buckets=(1.0,))
        h.observe(0.5)
        snap = r.snapshot()
        assert snap["c"] == 2.0
        assert snap["h.count"] == 1.0
        assert "h.p95" in snap

    def test_prometheus_text_shape(self):
        r = MetricsRegistry()
        r.counter("telemetry.bus.published", "batches").inc(3)
        r.gauge("telemetry.bus.depth").set(1)
        h = r.histogram("obs.ingest.seconds", buckets=(1e-3, 1e-2))
        h.observe(5e-3)
        text = r.to_prometheus()
        assert "# TYPE telemetry_bus_published counter" in text
        assert "telemetry_bus_published 3.0" in text
        assert "# TYPE telemetry_bus_depth gauge" in text
        assert 'obs_ingest_seconds_bucket{le="0.01"} 1' in text
        assert 'obs_ingest_seconds_summary{quantile="0.95"}' in text
        # multiple registries merge into one exposition
        assert prometheus_text([r, MetricsRegistry()]).count("# TYPE") >= 3


# ---------------------------------------------------------------------------
# Tracer
# ---------------------------------------------------------------------------
class TestTracer:
    def test_nesting_assigns_parent_and_trace(self):
        t = Tracer()
        with t.span("outer") as outer:
            assert t.current is outer
            with t.span("inner") as inner:
                assert inner.parent_id == outer.span_id
                assert inner.trace_id == outer.trace_id
        assert t.current is None
        assert outer.parent_id is None

    def test_sibling_roots_get_distinct_traces(self):
        t = Tracer()
        with t.span("a") as a:
            pass
        with t.span("b") as b:
            pass
        assert a.trace_id != b.trace_id

    def test_error_marks_span_and_reraises(self):
        t = Tracer()
        with pytest.raises(ValueError):
            with t.span("boom"):
                raise ValueError("x")
        (span,) = t.spans()
        assert span.error == "ValueError"

    def test_ring_buffer_bounds_memory(self):
        t = Tracer(capacity=4)
        for _ in range(10):
            with t.span("s"):
                pass
        assert len(t.spans()) == 4
        assert t.dropped == 6
        assert t.finished == 10

    def test_spans_have_durations_and_sim_time(self):
        t = Tracer()
        with t.span("s", sim_time=42.0, k="v") as sp:
            pass
        assert sp.duration >= 0.0
        assert sp.sim_time == 42.0
        assert sp.attrs["k"] == "v"

    def test_chrome_export_monotonic_complete_events(self):
        t = Tracer()
        with t.span("outer"):
            with t.span("inner"):
                pass
        doc = spans_to_chrome(t.spans())
        events = doc["traceEvents"]
        assert len(events) == 2
        assert all(e["ph"] == "X" for e in events)
        assert all(e["dur"] >= 0 for e in events)
        ts = [e["ts"] for e in events]
        assert ts == sorted(ts)
        assert ts[0] == 0.0  # relative to earliest span

    def test_disabled_obs_emits_nothing(self):
        OBS.reset()
        assert not OBS.enabled
        with OBS.span("s"):
            pass
        assert OBS.tracer.finished == 0


# ---------------------------------------------------------------------------
# Profiling facade
# ---------------------------------------------------------------------------
class TestObservabilityFacade:
    def test_spans_feed_duration_histograms(self, obs):
        for _ in range(3):
            with obs.tracer.span("op"):
                pass
        report = obs.report()
        assert report["op"]["count"] == 3.0
        assert report["op"]["p95_s"] >= 0.0
        assert "obs.op.seconds" in obs.registry

    def test_reset_clears_everything(self, obs):
        with obs.tracer.span("op"):
            pass
        obs.reset()
        assert obs.tracer.finished == 0
        assert len(obs.registry) == 0


# ---------------------------------------------------------------------------
# End-to-end: the instrumented pipeline
# ---------------------------------------------------------------------------
def _ancestry(span, by_id):
    names = []
    pid = span.parent_id
    while pid is not None:
        parent = by_id[pid]
        names.append(parent.name)
        pid = parent.parent_id
    return names


class TestPipelineTracing:
    def test_span_chain_scrape_to_ingest_and_federation(self, obs):
        from repro.oda import DataCenter
        from repro.oda.pipeline import DerivedMetricStage

        dc = DataCenter(seed=3, racks=1, nodes_per_rack=2, shards=2,
                        health_period=600.0)
        DerivedMetricStage(
            dc.telemetry.bus, "facility", "derived.pue",
            inputs=("facility.power.site_power", "facility.power.it_power"),
            compute=lambda v: {
                "derived.pue": v["facility.power.site_power"]
                / max(v["facility.power.it_power"], 1.0)
            },
        )
        dc.run(seconds=1800.0)
        names = dc.store.select("cluster.*")[:4]
        assert names
        grid, matrix = dc.store.align(names, 0.0, 1800.0, 300.0)
        assert matrix.shape[1] == len(names)

        spans = obs.tracer.spans()
        by_id = {s.span_id: s for s in spans}
        seen = {s.name for s in spans}
        for expected in (
            "collector.collect", "collector.scrape", "bus.publish",
            "bus.deliver", "stage.process", "shard.ingest",
            "replica.write", "store.ingest", "federation.align",
            "scheduler.tick",
        ):
            assert expected in seen, f"missing span {expected}"

        # The acceptance chain: a store.ingest whose ancestry walks the
        # whole data path including a streaming-stage hop.
        chains = [
            _ancestry(s, by_id) for s in spans if s.name == "store.ingest"
        ]
        full = [
            c for c in chains
            if {"collector.scrape", "bus.publish", "stage.process",
                "shard.ingest", "replica.write"} <= set(c)
        ]
        assert full, "no ingest span traces back through the stage hop"
        # Direct (non-stage) deliveries also reach the store.
        assert any(
            {"collector.scrape", "bus.publish", "bus.deliver"} <= set(c)
            for c in chains
        )
        # Sim-time rides along on data-path spans.
        assert all(
            s.sim_time is not None for s in spans if s.name == "store.ingest"
        )

    def test_prometheus_snapshot_of_migrated_metrics(self, obs):
        from repro.oda import DataCenter

        dc = DataCenter(seed=4, racks=1, nodes_per_rack=2, shards=2,
                        health_period=600.0)
        dc.run(seconds=1200.0)
        text = dc.prometheus()
        assert "# TYPE telemetry_bus_published counter" in text
        assert "# TYPE telemetry_agent_site_scrapes counter" in text
        assert "telemetry_agent_site_scrape_seconds" in text
        assert "# TYPE telemetry_shard_batches counter" in text
        assert "# TYPE telemetry_health_probe_errors counter" in text
        # At least one histogram with quantile summaries (profiling spans).
        assert "_bucket{le=" in text
        assert 'quantile="0.99"' in text

    def test_overhead_switch_off_means_no_spans(self):
        from repro.oda import DataCenter

        OBS.reset()
        dc = DataCenter(seed=5, racks=1, nodes_per_rack=2)
        dc.run(seconds=600.0)
        assert OBS.tracer.finished == 0
        # health_metrics dict views keep working with OBS off
        health = dc.telemetry.bus.health_metrics()
        assert health["telemetry.bus.published"] > 0


# ---------------------------------------------------------------------------
# Health-monitor satellites
# ---------------------------------------------------------------------------
class TestHealthSatellites:
    def test_probe_errors_isolated_and_counted(self):
        from repro.simulation.engine import Simulator
        from repro.telemetry.bus import MessageBus
        from repro.telemetry.health import HealthMonitor

        bus = MessageBus()
        monitor = HealthMonitor(bus, period=60.0)
        monitor.add_probe(lambda: {"ok.metric": 1.0})

        def bad_probe():
            raise RuntimeError("probe exploded")

        monitor.add_probe(bad_probe)
        sim = Simulator()
        monitor.start(sim)
        sim.run(180.0)
        assert monitor.ticks == 3
        assert monitor.probe_errors == 3
        assert "probe exploded" in monitor.last_probe_error
        batch = monitor.collect(240.0)
        assert batch.get("ok.metric") == 1.0
        assert batch.get("telemetry.health.probe_errors") == 4.0

    def test_scrape_seconds_published(self):
        from repro.oda import DataCenter

        dc = DataCenter(seed=6, racks=1, nodes_per_rack=2, health_period=120.0)
        dc.run(seconds=600.0)
        health = dc.telemetry.agents[0].health_metrics()
        assert health["telemetry.agent.site.scrape_seconds"] > 0.0
        # and it flows through the health topic into the store
        times, values = dc.store.query("telemetry.agent.site.scrape_seconds")
        assert len(times) > 0
        assert values[-1] > 0.0


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
class TestObsCli:
    def test_obs_command_writes_artifacts(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "artifacts"
        rc = main([
            "obs", "--hours", "0.5", "--racks", "1", "--nodes-per-rack", "2",
            "--shards", "2", "--out", str(out),
        ])
        assert rc == 0
        captured = capsys.readouterr().out
        assert "store.ingest" in captured
        assert not OBS.enabled  # CLI tears the singleton back down

        doc = json.loads((out / "trace.json").read_text())
        events = doc["traceEvents"]
        assert events and all(e["ph"] == "X" for e in events)
        ts = [e["ts"] for e in events]
        assert ts == sorted(ts)
        names = {e["name"] for e in events}
        assert {"collector.scrape", "bus.publish", "store.ingest"} <= names

        lines = (out / "spans.jsonl").read_text().strip().splitlines()
        assert len(lines) == len(events)
        prom = (out / "metrics.prom").read_text()
        assert "telemetry_bus_published" in prom
