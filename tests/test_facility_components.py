"""Tests for infrastructure component physics."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.facility import Chiller, CoolingTower, DryCooler, HeatExchanger, PowerConversion, Pump


class TestChiller:
    def test_power_is_load_over_cop(self):
        chiller = Chiller(name="c", capacity_w=1e6, cop_nominal=5.0)
        power = chiller.update(5e5, ambient_c=15.0, dt=60.0)
        assert power == pytest.approx(5e5 / chiller.cop(15.0))

    def test_cop_degrades_with_ambient(self):
        chiller = Chiller(name="c")
        chiller.load_fraction = 0.8
        assert chiller.cop(35.0) < chiller.cop(15.0)

    def test_cop_improves_with_warm_setpoint(self):
        cold = Chiller(name="c", supply_setpoint_c=14.0)
        warm = Chiller(name="w", supply_setpoint_c=40.0)
        cold.load_fraction = warm.load_fraction = 0.8
        assert warm.cop(20.0) > cold.cop(20.0)

    def test_part_load_curve_peaks_near_80pct(self):
        chiller = Chiller(name="c")
        cops = {}
        for lf in (0.2, 0.8, 1.0):
            chiller.load_fraction = lf
            cops[lf] = chiller.cop(15.0)
        assert cops[0.8] > cops[0.2]
        assert cops[0.8] >= cops[1.0]

    def test_health_degradation_reduces_cop(self):
        chiller = Chiller(name="c")
        chiller.load_fraction = 0.8
        nominal = chiller.cop(15.0)
        chiller.degrade(0.5)
        assert chiller.cop(15.0) == pytest.approx(nominal * 0.5)
        chiller.repair()
        assert chiller.cop(15.0) == pytest.approx(nominal)

    def test_zero_load_zero_power(self):
        chiller = Chiller(name="c")
        assert chiller.update(0.0, 15.0, 60.0) == 0.0

    def test_energy_accounting(self):
        chiller = Chiller(name="c")
        power = chiller.update(1e6, 15.0, dt=100.0)
        assert chiller.energy_j == pytest.approx(power * 100.0)

    def test_invalid_degrade_factor(self):
        with pytest.raises(ConfigurationError):
            Chiller(name="c").degrade(0.0)
        with pytest.raises(ConfigurationError):
            Chiller(name="c").degrade(1.5)


class TestCoolingTower:
    def test_supply_temp_is_wetbulb_plus_approach(self):
        tower = CoolingTower(name="t", approach_c=4.0)
        assert tower.supply_temp_c(wetbulb_c=10.0) == 14.0

    def test_fouling_raises_approach(self):
        tower = CoolingTower(name="t", approach_c=4.0)
        tower.degrade(0.5)
        assert tower.supply_temp_c(10.0) == pytest.approx(18.0)

    def test_fan_cube_law(self):
        tower = CoolingTower(name="t", capacity_w=1e6, fan_power_max_w=1000.0)
        half = tower.update(5e5, 10.0, 1.0)
        full = tower.update(1e6, 10.0, 1.0)
        assert full == pytest.approx(half * 8.0)

    def test_disabled_draws_nothing(self):
        tower = CoolingTower(name="t")
        tower.enabled = False
        assert tower.update(1e5, 10.0, 1.0) == 0.0


class TestDryCooler:
    def test_can_serve_depends_on_drybulb(self):
        cooler = DryCooler(name="d", approach_c=6.0)
        assert cooler.can_serve(drybulb_c=10.0, required_supply_c=18.0)
        assert not cooler.can_serve(drybulb_c=15.0, required_supply_c=18.0)

    def test_cheaper_than_tower_at_same_load(self):
        cooler = DryCooler(name="d", capacity_w=1e6, fan_power_max_w=8_000.0)
        tower = CoolingTower(name="t", capacity_w=1e6, fan_power_max_w=15_000.0)
        assert cooler.update(8e5, 5.0, 1.0) < tower.update(8e5, 5.0, 1.0)


class TestPump:
    def test_cube_law_on_flow(self):
        pump = Pump(name="p", rated_flow_ls=100.0, rated_power_w=1000.0)
        assert pump.update(100.0, 1.0) == pytest.approx(1000.0)
        assert pump.update(50.0, 1.0) == pytest.approx(125.0)

    def test_worn_pump_draws_more(self):
        pump = Pump(name="p")
        nominal = pump.update(50.0, 1.0)
        pump.degrade(0.5)
        assert pump.update(50.0, 1.0) == pytest.approx(nominal * 2.0)

    def test_sensors_include_flow(self):
        pump = Pump(name="p")
        pump.update(42.0, 1.0)
        assert pump.sensors()["flow"] == 42.0


class TestHeatExchanger:
    def test_effectiveness_blends_temperatures(self):
        hx = HeatExchanger(name="h", effectiveness=0.9)
        out = hx.secondary_temp_c(primary_c=50.0, secondary_in_c=20.0)
        assert out == pytest.approx(20.0 + 0.9 * 30.0)

    def test_degraded_effectiveness(self):
        hx = HeatExchanger(name="h", effectiveness=1.0)
        hx.degrade(0.5)
        assert hx.secondary_temp_c(40.0, 20.0) == pytest.approx(30.0)


class TestPowerConversion:
    def test_loss_has_fixed_and_proportional_parts(self):
        stage = PowerConversion(name="s", efficiency_peak=0.95, fixed_loss_w=100.0)
        loss = stage.update(10_000.0, 1.0)
        assert loss == pytest.approx(100.0 + 10_000.0 * 0.05)

    def test_zero_load_still_fixed_loss(self):
        stage = PowerConversion(name="s", fixed_loss_w=100.0)
        assert stage.update(0.0, 1.0) == pytest.approx(100.0)

    def test_load_fraction(self):
        stage = PowerConversion(name="s", capacity_w=1000.0)
        stage.update(250.0, 1.0)
        assert stage.load_fraction == 0.25

    def test_disabled_no_loss(self):
        stage = PowerConversion(name="s")
        stage.enabled = False
        assert stage.update(1000.0, 1.0) == 0.0
