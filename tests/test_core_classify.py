"""Tests for the lexicon use-case classifier."""

from __future__ import annotations

import pytest

from repro.core import AnalyticsType, Pillar, UseCaseClassifier, survey_grid
from repro.errors import ClassificationError


@pytest.fixture(scope="module")
def classifier():
    return UseCaseClassifier()


class TestClassifier:
    def test_clear_descriptive_infrastructure(self, classifier):
        result = classifier.classify(
            "a dashboard visualizing cooling and power data of the facility"
        )
        assert result.cell.analytics_type is AnalyticsType.DESCRIPTIVE
        assert result.cell.pillar is Pillar.BUILDING_INFRASTRUCTURE

    def test_clear_prescriptive_hardware(self, classifier):
        result = classifier.classify(
            "tuning CPU frequency knobs with DVFS to optimize node energy"
        )
        assert result.cell.analytics_type is AnalyticsType.PRESCRIPTIVE
        assert result.cell.pillar is Pillar.SYSTEM_HARDWARE

    def test_clear_predictive_applications(self, classifier):
        result = classifier.classify(
            "predicting the runtime duration of user jobs from submission history"
        )
        assert result.cell.analytics_type is AnalyticsType.PREDICTIVE
        assert result.cell.pillar is Pillar.APPLICATIONS

    def test_clear_diagnostic_software(self, classifier):
        result = classifier.classify(
            "detecting anomalies such as memory leaks in the scheduling software"
        )
        assert result.cell.analytics_type is AnalyticsType.DIAGNOSTIC
        assert result.cell.pillar is Pillar.SYSTEM_SOFTWARE

    def test_out_of_domain_rejected(self, classifier):
        with pytest.raises(ClassificationError):
            classifier.classify("the quick brown fox jumps over the lazy dog")

    def test_confidence_in_unit_interval(self, classifier):
        result = classifier.classify("dashboards for facility cooling data")
        assert 0.0 <= result.confidence <= 1.0

    def test_explain_lists_terms(self, classifier):
        text = classifier.explain("forecasting chiller cooling demand")
        assert "forecast" in text and "chiller" in text

    def test_add_terms_extends_lexicon(self):
        clf = UseCaseClassifier()
        clf.add_terms(Pillar.SYSTEM_SOFTWARE, {"slurm": 5.0})
        clf.add_terms(AnalyticsType.DESCRIPTIVE, {"birdseye": 5.0})
        result = clf.classify("a birdseye view of slurm")
        assert result.cell.pillar is Pillar.SYSTEM_SOFTWARE
        assert result.cell.analytics_type is AnalyticsType.DESCRIPTIVE

    def test_add_terms_invalid_axis(self):
        with pytest.raises(ClassificationError):
            UseCaseClassifier().add_terms("bogus", {"x": 1.0})


class TestClassifierOnSurveyCorpus:
    """The headline validity check: re-classify every Table I entry."""

    @pytest.fixture(scope="class")
    def results(self):
        classifier = UseCaseClassifier()
        grid = survey_grid()
        out = []
        for uc in grid:
            result = classifier.classify(f"{uc.name}. {uc.description}")
            out.append((uc, result))
        return out

    def test_all_corpus_entries_classifiable(self, results):
        assert len(results) == 45

    def test_type_accuracy(self, results):
        correct = sum(
            1 for uc, r in results if r.cell.analytics_type is uc.analytics_type
        )
        assert correct / len(results) >= 0.85

    def test_pillar_accuracy(self, results):
        correct = sum(1 for uc, r in results if r.cell.pillar is uc.pillar)
        assert correct / len(results) >= 0.85

    def test_joint_accuracy(self, results):
        correct = sum(1 for uc, r in results if r.cell == uc.cell)
        assert correct / len(results) >= 0.80
