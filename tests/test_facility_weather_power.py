"""Tests for the weather model and the power-distribution chain."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.facility import DAY, YEAR, PowerDistribution, WeatherModel
from repro.facility.sizing import scaled_cooling_plant, scaled_distribution


class TestWeatherModel:
    def test_deterministic_reproducibility(self):
        a = WeatherModel(np.random.default_rng(1))
        b = WeatherModel(np.random.default_rng(1))
        for t in np.linspace(0, DAY, 10):
            sa, sb = a.sample(t), b.sample(t)
            assert sa.drybulb_c == sb.drybulb_c

    def test_seasonal_cycle(self):
        model = WeatherModel(np.random.default_rng(1), seasonal_amp_c=10.0)
        summer = model.deterministic_drybulb(YEAR / 2)
        winter = model.deterministic_drybulb(0.0)
        assert summer - winter > 10.0

    def test_diurnal_cycle(self):
        model = WeatherModel(np.random.default_rng(1), diurnal_amp_c=5.0)
        afternoon = model.deterministic_drybulb(13 * 3600.0)
        night = model.deterministic_drybulb(1 * 3600.0)
        assert afternoon > night

    def test_wetbulb_below_drybulb(self):
        model = WeatherModel(np.random.default_rng(1))
        for t in np.linspace(0, YEAR, 50):
            sample = model.sample(t)
            assert sample.wetbulb_c < sample.drybulb_c

    def test_humidity_in_physical_range(self):
        model = WeatherModel(np.random.default_rng(1))
        for t in np.linspace(0, YEAR, 50):
            assert 0.15 <= model.sample(t).humidity <= 0.98

    def test_front_autocorrelation_decays(self):
        """The AR(1) front decorrelates over timescales >> tau."""
        model = WeatherModel(np.random.default_rng(1), front_tau_s=1000.0)
        model.sample(0.0)
        front0 = model._front
        model.sample(100.0)   # dt << tau: front barely moves
        near = abs(model._front - front0)
        model.sample(1e6)     # dt >> tau: fully decorrelated
        assert near < 3.0  # small move over 0.1 tau


class TestPowerDistribution:
    def test_site_power_exceeds_loads_by_losses(self):
        chain = PowerDistribution()
        site = chain.update(1e6, 2e5, 60.0)
        assert site > 1.2e6
        assert site == pytest.approx(1e6 + 2e5 + chain.loss_w)

    def test_losses_grow_with_load(self):
        chain = PowerDistribution()
        chain.update(5e5, 1e5, 1.0)
        low_loss = chain.loss_w
        chain.update(2e6, 4e5, 1.0)
        assert chain.loss_w > low_loss

    def test_negative_load_rejected(self):
        with pytest.raises(ConfigurationError):
            PowerDistribution().update(-1.0, 0.0, 1.0)

    def test_sensors_consistent(self):
        chain = PowerDistribution()
        chain.update(1e6, 2e5, 1.0)
        sensors = chain.sensors()
        assert sensors["site_power"] == pytest.approx(
            sensors["it_power"] + sensors["cooling_power"] + sensors["loss_power"]
        )


class TestSizing:
    def test_scaled_plant_capacity_has_headroom(self):
        plant = scaled_cooling_plant(1e5, loops=2, headroom=1.3)
        total_capacity = sum(l.chiller.capacity_w for l in plant.loops)
        assert total_capacity == pytest.approx(1.3e5)

    def test_scaled_distribution_fixed_losses_proportional(self):
        small = scaled_distribution(1e4)
        large = scaled_distribution(1e6)
        assert large.transformer.fixed_loss_w == pytest.approx(
            small.transformer.fixed_loss_w * 100
        )

    def test_scaled_plant_reasonable_pue_overhead(self):
        """Cooling power stays a sane fraction of IT power at design load."""
        from repro.facility import WeatherSample

        plant = scaled_cooling_plant(1e5)
        cooling = plant.update(1e5, WeatherSample(25.0, 18.0, 0.6), 60.0)
        assert cooling < 0.5 * 1e5
