"""Tests for prescriptive analytics: control, cooling, DVFS, scheduling, tuning."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analytics.predictive.cooling import CoolingPerformanceModel
from repro.analytics.prescriptive import (
    AnnealingTuner,
    CodeAdvisor,
    ControlAction,
    ControlLoop,
    CoolingAwarePolicy,
    EnergyBudgetPolicy,
    GridSearchTuner,
    HillClimbTuner,
    ModeSwitcher,
    PhasePredictor,
    PidController,
    PlanBasedPolicy,
    PowerAwarePolicy,
    PowerCapGovernor,
    ProactiveEnergyGovernor,
    RandomSearchTuner,
    ReactiveEnergyGovernor,
    SetpointManager,
    SetpointOptimizer,
    TopologyAwarePolicy,
    TuningSpace,
    build_plan,
)
from repro.apps import default_catalog, profile_regions
from repro.apps.generator import JobRequest
from repro.cluster import ComputeNode, build_system
from repro.errors import ControlError
from repro.software import Job, NodeRuntime, Scheduler, SchedulingContext
from repro.software.jobs import JobState


class TestPid:
    def test_proportional_only(self):
        pid = PidController(kp=2.0)
        assert pid.update(error=3.0, dt=1.0) == 6.0

    def test_integral_accumulates(self):
        pid = PidController(kp=0.0, ki=1.0)
        pid.update(1.0, dt=1.0)
        assert pid.update(1.0, dt=1.0) == pytest.approx(2.0)

    def test_output_clamped_with_antiwindup(self):
        pid = PidController(kp=0.0, ki=1.0, out_max=2.0)
        for _ in range(100):
            out = pid.update(10.0, dt=1.0)
        assert out == 2.0
        # After the error flips, recovery is immediate (no windup debt).
        assert pid.update(-10.0, dt=1.0) < 2.0

    def test_derivative_term(self):
        pid = PidController(kp=0.0, kd=1.0)
        pid.update(0.0, dt=1.0)
        assert pid.update(2.0, dt=1.0) == pytest.approx(2.0)

    def test_invalid_bounds(self):
        with pytest.raises(ControlError):
            PidController(kp=1.0, out_min=1.0, out_max=0.0)


class TestSetpointManager:
    def test_rate_limited(self):
        applied = []
        manager = SetpointManager(applied.append, initial=20.0, lo=10.0, hi=40.0, max_step=2.0)
        assert manager.request(30.0) == 22.0
        assert manager.request(30.0) == 24.0
        assert applied == [22.0, 24.0]

    def test_range_clamped(self):
        manager = SetpointManager(lambda v: None, initial=20.0, lo=10.0, hi=25.0, max_step=100.0)
        assert manager.request(99.0) == 25.0

    def test_noop_request_not_counted(self):
        manager = SetpointManager(lambda v: None, initial=20.0, lo=10.0, hi=40.0, max_step=2.0)
        manager.request(20.0)
        assert manager.actuations == 0

    def test_transactional_on_actuator_failure(self):
        calls = []

        def actuator(value):
            calls.append(value)
            if len(calls) == 2:
                raise ControlError("plant refused")

        manager = SetpointManager(actuator, initial=20.0, lo=10.0, hi=40.0, max_step=2.0)
        assert manager.request(30.0) == 22.0
        with pytest.raises(ControlError):
            manager.request(30.0)
        # Failed actuation commits nothing: state still matches the plant.
        assert manager.current == 22.0
        assert manager.actuations == 1
        assert manager.request(30.0) == 24.0


class TestControlLoop:
    def test_periodic_decisions_recorded(self, sim, trace):
        def decide(now, recommend_only):
            return [ControlAction(now, "c", "knob", 1.0, "test")]

        loop = ControlLoop("c", decide, period=100.0)
        loop.attach(sim, trace)
        sim.run(350)
        assert len(loop.actions) == 3
        assert len(trace.select(kind="control_action")) == 3

    def test_recommend_only_flag_passed(self, sim, trace):
        seen = []
        loop = ControlLoop("c", lambda now, ro: seen.append(ro) or [], period=50.0,
                           recommend_only=True)
        loop.attach(sim, trace)
        sim.run(60)
        assert seen == [True]

    def test_partial_actuations_logged_on_midway_failure(self, sim, trace):
        def decide(now, recommend_only):
            loop.record_applied(ControlAction(now, "c", "first", 1.0))
            raise RuntimeError("second actuation failed")

        loop = ControlLoop("c", decide, period=50.0)
        loop.attach(sim, trace)
        with pytest.raises(RuntimeError):
            sim.run(60)
        # The applied-before-failure action reaches the audit log and trace.
        assert [a.knob for a in loop.actions] == ["first"]
        events = trace.select(source="control.c", kind="control_action")
        assert len(events) == 1 and events[0].detail["partial"] is True


class TestDvfsGovernors:
    def _node(self, compute_fraction, util=0.9):
        from repro.cluster.node import NodeLoad

        node = ComputeNode("n")
        node.assign("job1", NodeLoad(cpu_util=util, compute_fraction=compute_fraction))
        node.update(30.0)
        return node

    def test_reactive_clocks_down_memory_bound(self):
        node = self._node(compute_fraction=0.1)
        governor = ReactiveEnergyGovernor()
        assert governor.decide(node, node.counters(), 0.0) == governor.low_ghz

    def test_reactive_full_speed_compute_bound(self):
        node = self._node(compute_fraction=0.95)
        governor = ReactiveEnergyGovernor()
        assert governor.decide(node, node.counters(), 0.0) == node.cpu.nominal_ghz

    def test_reactive_parks_idle_nodes(self):
        node = ComputeNode("n")
        node.update(30.0)
        governor = ReactiveEnergyGovernor()
        assert governor.decide(node, node.counters(), 0.0) == governor.low_ghz

    def test_phase_predictor_learns_transition(self):
        predictor = PhasePredictor()
        # Phase A (compute) for 100 s, then phase B (memory), repeated.
        for cycle in range(3):
            base = cycle * 160.0
            for t in (0.0, 50.0):
                predictor.observe("n", "app", "A", compute_fraction=0.1, now=base + t)
            for t in (100.0, 150.0):
                predictor.observe("n", "app", "B", compute_fraction=0.9, now=base + t)
        # Near the end of an A phase, the predictor anticipates B's fraction.
        predictor.observe("n", "app", "A", compute_fraction=0.1, now=500.0)
        prediction = predictor.predict_next("n", now=590.0, lookahead=30.0)
        assert prediction is not None

    def test_power_cap_governor_steps_down_over_cap(self, sim, trace, rng):
        system = build_system(racks=1, nodes_per_rack=4)
        system.attach(sim, trace, rng)
        from repro.cluster.node import NodeLoad

        system.apply_loads({
            f"r0n{i}": ("j", NodeLoad(cpu_util=0.95, compute_fraction=0.9))
            for i in range(4)
        })
        sim.run(120)
        governor = PowerCapGovernor(system, cap_w=system.it_power_w * 0.5)
        runtime = NodeRuntime(system, governor, period=60.0)
        runtime.attach(sim, trace)
        before = [n.frequency_ghz for n in system.nodes]
        sim.run(120)
        after = [n.frequency_ghz for n in system.nodes]
        assert all(a <= b for a, b in zip(after, before))
        assert any(a < b for a, b in zip(after, before))


class TestSchedulingPolicies:
    def _ctx(self, pending, running=(), racks=1, nodes=8):
        system = build_system(racks=racks, nodes_per_rack=nodes)
        free = [n.name for n in system.nodes]
        busy = {name for job in running for name in job.assigned_nodes}
        return SchedulingContext(
            now=0.0, system=system,
            free_nodes=[n for n in free if n not in busy],
            pending=list(pending), running=list(running),
        )

    def _job(self, job_id, nodes=2, wall=3600.0, profile="cfd_solver"):
        return Job(JobRequest(
            job_id=job_id, submit_time=0.0, user="u",
            profile=default_catalog().get(profile),
            nodes=nodes, work_s=wall / 2, walltime_req_s=wall,
        ))

    def test_power_aware_denies_over_budget(self):
        ctx = self._ctx([self._job("a", 4), self._job("b", 4)])
        # Budget above current draw fits roughly one 4-node job.
        per_job = 4 * 420.0
        policy = PowerAwarePolicy(power_cap_w=ctx.system.it_power_w + per_job)
        allocations = policy.select(ctx)
        assert len(allocations) == 1
        assert policy.denied_for_power >= 1

    def test_power_aware_unconstrained_equals_backfill(self):
        jobs = [self._job("a", 2), self._job("b", 2)]
        generous = PowerAwarePolicy(power_cap_w=1e9).select(self._ctx(jobs))
        assert [a.job.job_id for a in generous] == ["a", "b"]

    def test_energy_budget_policy_gates(self):
        meter = {"v": 0.0}
        policy = EnergyBudgetPolicy(
            budget_j=1.0, window_s=3600.0, energy_meter=lambda: meter["v"]
        )
        allocations = policy.select(self._ctx([self._job("a", 2)]))
        assert allocations == []  # ~0 W ceiling blocks everything
        assert policy.denied_for_energy == 1

    def test_cooling_aware_picks_coolest(self):
        ctx = self._ctx([self._job("a", 2)])
        for i, node in enumerate(ctx.system.nodes):
            node.inlet_temp_c = 18.0 + i
        allocations = CoolingAwarePolicy().select(ctx)
        assert set(allocations[0].node_names) == {"r0n0", "r0n1"}

    def test_topology_aware_packs_one_leaf(self):
        ctx = self._ctx([self._job("a", 4)], racks=2, nodes=8)
        allocations = TopologyAwarePolicy().select(ctx)
        leaves = {ctx.system.fabric.leaf_of(n) for n in allocations[0].node_names}
        assert len(leaves) == 1

    def test_plan_based_builds_and_executes(self):
        jobs = [self._job("a", 4), self._job("b", 4), self._job("c", 4)]
        ctx = self._ctx(jobs)
        policy = PlanBasedPolicy(predictor=lambda job: job.request.walltime_req_s / 2)
        allocations = policy.select(ctx)
        # 8 free nodes: a and b start now; c is planned for later.
        assert {a.job.job_id for a in allocations} == {"a", "b"}
        assert policy.plan is not None
        planned = {s.job_id for s in policy.plan.starts}
        assert planned == {"a", "b", "c"}
        assert policy.plan.makespan > 0

    def test_plan_utilization_and_due(self):
        jobs = [self._job("a", 8), self._job("b", 8)]
        ctx = self._ctx(jobs)
        plan = build_plan(ctx, predictor=lambda job: 100.0)
        assert plan.predicted_utilization(8) == pytest.approx(1.0)
        due_now = plan.starts_due(0.0, {"a", "b"})
        assert [s.job_id for s in due_now] == ["a"]


class TestSetpointOptimizerAndSwitcher:
    def test_optimizer_prefers_warm_when_model_says_so(self, rng, sim, trace):
        from repro.facility import Facility
        from repro.facility.sizing import scaled_cooling_plant, scaled_distribution

        facility = Facility(
            rng, plant=scaled_cooling_plant(1e5),
            distribution=scaled_distribution(1e5),
            it_power_source=lambda: 8e4,
        )
        facility.attach(sim, trace)
        sim.run(600)
        # Synthetic model: warmer is cheaper (chiller physics).
        n = 200
        rng2 = np.random.default_rng(0)
        heat = rng2.uniform(4e4, 9e4, n)
        dry = rng2.uniform(10, 30, n)
        setpoint = rng2.uniform(14, 38, n)
        power = heat / (3 + 0.2 * (setpoint - 14)) + rng2.normal(0, 100, n)
        model = CoolingPerformanceModel().fit(
            np.column_stack([heat, dry, dry - 5, setpoint]), power
        )
        optimizer = SetpointOptimizer(
            facility, facility.plant.loops[0], model, max_inlet_c=45.0
        )
        assert optimizer.best_setpoint() >= 30.0

    def test_optimizer_respects_inlet_ceiling(self, rng, sim, trace):
        from repro.facility import Facility

        facility = Facility(rng, it_power_source=lambda: 5e5)
        facility.attach(sim, trace)
        sim.run(300)
        model = CoolingPerformanceModel().fit(
            np.column_stack([
                np.full(50, 5e5), np.full(50, 20.0), np.full(50, 15.0),
                np.linspace(14, 38, 50),
            ]),
            -np.linspace(14, 38, 50),  # warmer always "cheaper"
        )
        optimizer = SetpointOptimizer(
            facility, facility.plant.loops[0], model,
            max_inlet_c=25.0, rack_offset_c=2.0,
        )
        assert optimizer.best_setpoint() <= 23.0

    def test_mode_switcher_switches_with_weather(self, rng, sim, trace):
        from repro.facility import CoolingMode, Facility

        facility = Facility(rng, it_power_source=lambda: 5e5)
        facility.plant.loops[0].set_mode(CoolingMode.CHILLER)
        facility.plant.loops[0].set_setpoint(30.0)  # warm-water loop
        facility.attach(sim, trace)
        switcher = ModeSwitcher(facility, facility.plant.loops[0], period=300.0)
        switcher.control_loop.attach(sim, trace)
        sim.run(3600)
        # With a 30 C setpoint and ~winter weather, economized cooling wins.
        assert facility.plant.loops[0].mode in (CoolingMode.FREE, CoolingMode.TOWER)
        assert switcher.control_loop.actions


class TestAutotuners:
    @pytest.fixture
    def space(self):
        return TuningSpace({
            "freq": (1.2, 1.6, 2.0, 2.4),
            "block": (16, 32, 64, 128),
            "threads": (1, 2, 4, 8),
        })

    @staticmethod
    def objective(config):
        # Smooth bowl with optimum at (2.0, 64, 4).
        return (
            (config["freq"] - 2.0) ** 2
            + (np.log2(config["block"]) - 6.0) ** 2 * 0.1
            + (np.log2(config["threads"]) - 2.0) ** 2 * 0.1
        )

    def test_space_size_and_grid(self, space):
        assert space.size == 64
        assert len(list(space.grid())) == 64

    def test_grid_finds_optimum(self, space):
        result = GridSearchTuner(space, budget=64).tune(self.objective)
        assert result.best_config["freq"] == 2.0
        assert result.best_config["block"] == 64

    @pytest.mark.parametrize("tuner_cls", [RandomSearchTuner, HillClimbTuner, AnnealingTuner])
    def test_heuristics_close_to_optimum(self, space, tuner_cls):
        result = tuner_cls(space, budget=40, seed=3).tune(self.objective)
        optimum = GridSearchTuner(space, budget=64).tune(self.objective).best_score
        assert result.best_score <= optimum + 0.5
        assert result.evaluations <= 40

    def test_neighbors_differ_by_one_step(self, space):
        config = {"freq": 1.6, "block": 32, "threads": 2}
        for neighbor in space.neighbors(config):
            diffs = [k for k in config if neighbor[k] != config[k]]
            assert len(diffs) == 1


class TestCodeAdvisor:
    def test_memory_bound_app_gets_locality_advice(self):
        regions = profile_regions(default_catalog().get("graph_analytics"))
        recommendations = CodeAdvisor().advise(regions)
        assert any("locality" in r.title for r in recommendations)

    def test_io_heavy_app_gets_io_advice(self):
        regions = profile_regions(default_catalog().get("genomics_pipeline"))
        recommendations = CodeAdvisor().advise(regions)
        assert any("I/O" in r.title for r in recommendations)

    def test_priorities_sorted(self):
        regions = profile_regions(default_catalog().get("climate_model"))
        recommendations = CodeAdvisor().advise(regions)
        priorities = [r.priority for r in recommendations]
        assert priorities == sorted(priorities, reverse=True)

    def test_report_format(self):
        regions = profile_regions(default_catalog().get("graph_analytics"))
        report = CodeAdvisor().report(regions)
        assert "1." in report

    def test_custom_rule(self):
        advisor = CodeAdvisor()
        from repro.analytics.prescriptive.recommend import Recommendation

        advisor.add_rule(lambda region, roofline: Recommendation(
            region=region.region, priority=1.0, title="always", detail="x"
        ))
        regions = profile_regions(default_catalog().get("md_sim"))
        assert any(r.title == "always" for r in advisor.advise(regions))
