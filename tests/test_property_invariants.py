"""Hypothesis property tests on substrate and scheduling invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import default_catalog
from repro.apps.generator import JobRequest
from repro.cluster import ComputeNode, NodeLoad, build_system
from repro.facility import CoolingLoop, CoolingMode, WeatherSample
from repro.facility.sizing import scaled_cooling_plant, scaled_distribution
from repro.simulation import Simulator, TraceLog
from repro.software import EasyBackfillPolicy, FcfsPolicy, PriorityPolicy, Scheduler


# ----------------------------------------------------------------------
# Cooling physics
# ----------------------------------------------------------------------
class TestCoolingPhysicsProperties:
    @given(
        heat=st.floats(min_value=0.0, max_value=2e6),
        drybulb=st.floats(min_value=-20.0, max_value=45.0),
        humidity=st.floats(min_value=0.15, max_value=0.98),
        setpoint=st.floats(min_value=10.0, max_value=50.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_cooling_power_nonnegative_any_conditions(self, heat, drybulb, humidity, setpoint):
        wetbulb = drybulb - (1.0 - humidity) * 8.0
        loop = CoolingLoop(name="l")
        loop.set_setpoint(setpoint)
        weather = WeatherSample(drybulb, wetbulb, humidity)
        power = loop.update(heat, weather, 60.0)
        assert power >= 0.0
        assert np.isfinite(power)

    @given(
        heat=st.floats(min_value=1e4, max_value=1.5e6),
        drybulb=st.floats(min_value=-10.0, max_value=40.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_auto_never_costs_more_than_chiller(self, heat, drybulb):
        """AUTO picks the cheapest feasible mode, so it can never exceed a
        forced chiller at the same conditions."""
        weather = WeatherSample(drybulb, drybulb - 4.0, 0.6)
        auto = CoolingLoop(name="a", supply_setpoint_c=20.0)
        chiller = CoolingLoop(name="c", supply_setpoint_c=20.0, mode=CoolingMode.CHILLER)
        assert auto.update(heat, weather, 60.0) <= chiller.update(heat, weather, 60.0) + 1e-9

    @given(it_power=st.floats(min_value=1e3, max_value=5e5))
    @settings(max_examples=50, deadline=None)
    def test_distribution_conserves_power(self, it_power):
        chain = scaled_distribution(5e5)
        site = chain.update(it_power, it_power * 0.2, 60.0)
        assert site == pytest.approx(it_power + it_power * 0.2 + chain.loss_w)
        assert chain.loss_w > 0


# ----------------------------------------------------------------------
# Node physics
# ----------------------------------------------------------------------
class TestNodeProperties:
    @given(
        cpu=st.floats(min_value=0.0, max_value=1.0),
        mem=st.floats(min_value=0.0, max_value=1.0),
        compute_fraction=st.floats(min_value=0.0, max_value=1.0),
        freq_idx=st.integers(min_value=0, max_value=4),
        inlet=st.floats(min_value=10.0, max_value=45.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_power_and_progress_bounded(self, cpu, mem, compute_fraction, freq_idx, inlet):
        node = ComputeNode("n")
        node.inlet_temp_c = inlet
        node.set_frequency(node.cpu.freq_levels_ghz[freq_idx])
        node.assign("j", NodeLoad(cpu_util=cpu, mem_bw_util=mem,
                                  compute_fraction=compute_fraction))
        for _ in range(50):
            power = node.update(60.0)
        assert node.idle_power_w <= power <= 1000.0
        assert 0.0 <= node.progress_rate <= 1.5
        assert inlet <= node.temp_c <= 120.0

    @given(freq_idx=st.integers(min_value=0, max_value=3))
    @settings(max_examples=20, deadline=None)
    def test_lower_frequency_never_draws_more(self, freq_idx):
        ladder = ComputeNode("x").cpu.freq_levels_ghz
        lo, hi = ComputeNode("a"), ComputeNode("b")
        load = NodeLoad(cpu_util=0.9, compute_fraction=0.8)
        lo.assign("j", load)
        hi.assign("j", load)
        lo.set_frequency(ladder[freq_idx])
        hi.set_frequency(ladder[freq_idx + 1])
        for _ in range(60):
            lo.update(60.0)
            hi.update(60.0)
        assert lo.power_w <= hi.power_w + 1e-9


# ----------------------------------------------------------------------
# Scheduler invariants under random traces and policies
# ----------------------------------------------------------------------
def random_requests(draw_sizes, draw_works, submit_spacing=120.0):
    catalog = default_catalog()
    profiles = [p for p in catalog]
    requests = []
    for i, (nodes, work) in enumerate(zip(draw_sizes, draw_works)):
        requests.append(JobRequest(
            job_id=f"j{i:03d}",
            submit_time=i * submit_spacing,
            user=f"u{i % 3}",
            profile=profiles[i % len(profiles)],
            nodes=nodes,
            work_s=work,
            walltime_req_s=work * 3.0,
        ))
    return requests


class TestSchedulerInvariants:
    @given(
        sizes=st.lists(st.integers(min_value=1, max_value=8), min_size=1, max_size=12),
        policy_idx=st.integers(min_value=0, max_value=2),
        data=st.data(),
    )
    @settings(max_examples=25, deadline=None)
    def test_no_node_double_allocated_ever(self, sizes, policy_idx, data):
        works = [
            data.draw(st.floats(min_value=300.0, max_value=7200.0))
            for _ in sizes
        ]
        policy = [FcfsPolicy(), EasyBackfillPolicy(), PriorityPolicy()][policy_idx]
        sim = Simulator()
        trace = TraceLog()
        system = build_system(racks=1, nodes_per_rack=8)
        system.attach(sim, trace, np.random.default_rng(0))
        scheduler = Scheduler(system, policy=policy, tick=60.0)
        scheduler.attach(sim, trace)
        scheduler.load_trace(sim, random_requests(sizes, works))

        horizon = len(sizes) * 120.0 + 4 * 3600.0
        step = 300.0
        t = 0.0
        while t < horizon:
            sim.run(step)
            t += step
            allocated = [n for job in scheduler.running for n in job.assigned_nodes]
            # Invariant 1: no node serves two jobs.
            assert len(allocated) == len(set(allocated))
            # Invariant 2: running jobs hold exactly their requested size.
            for job in scheduler.running:
                assert len(job.assigned_nodes) == job.request.nodes
            # Invariant 3: work never regresses or exceeds the requirement
            # by more than one tick's progress.
            for job in scheduler.jobs.values():
                assert job.work_done_s >= 0.0

    @given(sizes=st.lists(st.integers(min_value=1, max_value=4), min_size=2, max_size=8))
    @settings(max_examples=15, deadline=None)
    def test_every_job_reaches_terminal_state(self, sizes):
        works = [600.0] * len(sizes)
        sim = Simulator()
        trace = TraceLog()
        system = build_system(racks=1, nodes_per_rack=8)
        system.attach(sim, trace, np.random.default_rng(0))
        scheduler = Scheduler(system, policy=EasyBackfillPolicy(), tick=60.0)
        scheduler.attach(sim, trace)
        scheduler.load_trace(sim, random_requests(sizes, works))
        sim.run(len(sizes) * 120.0 + 12 * 3600.0)
        assert all(j.terminal for j in scheduler.jobs.values())
        # Accounting and job registry agree.
        assert len(scheduler.accounting) == len(scheduler.jobs)
