"""Tests for the compute-node power/thermal/DVFS model."""

from __future__ import annotations

import pytest

from repro.cluster import ComputeNode, CpuSpec, NodeLoad, IDLE_LOAD
from repro.errors import ConfigurationError, ControlError


def busy_load(compute_fraction=0.8):
    return NodeLoad(
        cpu_util=0.95, mem_bw_util=0.3, mem_occupancy=0.5,
        compute_fraction=compute_fraction, flops_per_second=0.5,
    )


def settle(node, seconds=3600.0, dt=30.0):
    for _ in range(int(seconds / dt)):
        node.update(dt)


class TestPowerModel:
    def test_idle_power_floor(self):
        node = ComputeNode("n")
        node.update(30.0)
        assert node.power_w >= node.idle_power_w

    def test_busy_draws_more_than_idle(self):
        idle = ComputeNode("a")
        busy = ComputeNode("b")
        busy.assign("j", busy_load())
        settle(idle); settle(busy)
        assert busy.power_w > idle.power_w + 150.0

    def test_dvfs_cube_law_on_dynamic_power(self):
        hi = ComputeNode("a")
        lo = ComputeNode("b")
        for node in (hi, lo):
            node.assign("j", busy_load())
        lo.set_frequency(1.2)
        settle(hi); settle(lo)
        assert lo.power_w < hi.power_w

    def test_energy_integrates_power(self):
        node = ComputeNode("n")
        node.update(100.0)
        assert node.energy_j == pytest.approx(node.power_w * 100.0)

    def test_leakage_rises_with_temperature(self):
        cool = ComputeNode("a"); cool.inlet_temp_c = 15.0
        hot = ComputeNode("b"); hot.inlet_temp_c = 45.0
        for node in (cool, hot):
            node.assign("j", busy_load())
            settle(node)
        assert hot.power_w > cool.power_w


class TestThermalModel:
    def test_steady_state_tracks_inlet_plus_rth_power(self):
        node = ComputeNode("n")
        node.assign("j", busy_load())
        settle(node, seconds=7200.0)
        expected = node.inlet_temp_c + node.thermal_resistance * node.power_w
        assert node.temp_c == pytest.approx(expected, abs=1.0)

    def test_first_order_relaxation(self):
        node = ComputeNode("n")
        node.assign("j", busy_load())
        node.update(30.0)
        early = node.temp_c
        settle(node)
        assert node.temp_c > early

    def test_throttling_above_threshold(self):
        node = ComputeNode("n", throttle_temp_c=50.0)
        node.inlet_temp_c = 48.0
        node.assign("j", busy_load(compute_fraction=1.0))
        settle(node)
        assert node.temp_c >= 50.0
        assert node.progress_rate < 0.75


class TestProgressModel:
    def test_nominal_progress_is_one(self):
        node = ComputeNode("n")
        node.assign("j", busy_load())
        node.update(30.0)
        assert node.progress_rate == pytest.approx(1.0)

    def test_compute_bound_slows_with_frequency(self):
        node = ComputeNode("n")
        node.assign("j", busy_load(compute_fraction=1.0))
        node.set_frequency(1.2)
        node.update(30.0)
        assert node.progress_rate == pytest.approx(1.2 / 2.4)

    def test_memory_bound_insensitive_to_frequency(self):
        node = ComputeNode("n")
        node.assign("j", busy_load(compute_fraction=0.0))
        node.set_frequency(1.2)
        node.update(30.0)
        assert node.progress_rate == pytest.approx(1.0)

    def test_contention_divides_progress(self):
        node = ComputeNode("n")
        node.assign("j", busy_load())
        node.set_contention(2.0)
        node.update(30.0)
        assert node.progress_rate == pytest.approx(0.5)

    def test_os_noise_reduces_progress(self):
        node = ComputeNode("n")
        node.assign("j", busy_load())
        node.os_noise = 0.1
        node.update(30.0)
        assert node.progress_rate == pytest.approx(0.9)

    def test_idle_node_no_progress(self):
        node = ComputeNode("n")
        node.update(30.0)
        assert node.progress_rate == 0.0


class TestDvfsKnob:
    def test_only_ladder_levels_allowed(self):
        node = ComputeNode("n")
        with pytest.raises(ControlError):
            node.set_frequency(3.14)

    def test_nominal_must_be_on_ladder(self):
        with pytest.raises(ConfigurationError):
            CpuSpec(freq_levels_ghz=(1.0, 2.0), nominal_ghz=1.5)


class TestFailure:
    def test_fail_drops_job_and_power(self):
        node = ComputeNode("n")
        node.assign("j", busy_load())
        node.update(30.0)
        node.fail()
        node.update(30.0)
        assert not node.up
        assert node.job_id is None
        assert node.power_w == 0.0
        assert node.counters()["up"] == 0.0

    def test_restore_resets_health(self):
        node = ComputeNode("n")
        node.cpu_health = 0.5
        node.ecc_errors = 42
        node.fail()
        node.restore()
        assert node.up and node.cpu_health == 1.0 and node.ecc_errors == 0

    def test_failed_node_cools_to_inlet(self):
        node = ComputeNode("n")
        node.assign("j", busy_load())
        settle(node)
        node.fail()
        settle(node, seconds=7200.0)
        assert node.temp_c == pytest.approx(node.inlet_temp_c, abs=0.5)


class TestCounters:
    def test_counters_complete(self):
        node = ComputeNode("n")
        node.update(30.0)
        counters = node.counters()
        for key in ("power", "temp", "freq", "cpu_util", "flops", "ipc",
                    "ecc_errors", "ctx_switches", "up"):
            assert key in counters

    def test_invalid_load_fractions_rejected(self):
        with pytest.raises(ConfigurationError):
            NodeLoad(cpu_util=1.5)

    def test_noise_visible_in_ctx_switches(self):
        quiet = ComputeNode("a")
        noisy = ComputeNode("b")
        noisy.os_noise = 0.05
        assert noisy.counters()["ctx_switches"] > quiet.counters()["ctx_switches"] * 5
