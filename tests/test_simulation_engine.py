"""Tests for the discrete-event simulation engine."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.simulation import Simulator


class TestScheduling:
    def test_schedule_and_run(self, sim):
        fired = []
        sim.schedule(5.0, lambda s: fired.append(s.now))
        sim.run_until(10.0)
        assert fired == [5.0]
        assert sim.now == 10.0

    def test_schedule_at_absolute_time(self, sim):
        fired = []
        sim.schedule_at(7.5, lambda s: fired.append(s.now))
        sim.run_until(8.0)
        assert fired == [7.5]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda s: None)

    def test_cancelled_event_does_not_fire(self, sim):
        fired = []
        event = sim.schedule(1.0, lambda s: fired.append(1))
        event.cancel()
        sim.run_until(2.0)
        assert fired == []

    def test_events_fire_in_time_order(self, sim):
        order = []
        for delay in (3.0, 1.0, 2.0):
            sim.schedule(delay, lambda s, d=delay: order.append(d))
        sim.run_until(5.0)
        assert order == [1.0, 2.0, 3.0]

    def test_simultaneous_events_priority_order(self, sim):
        order = []
        sim.schedule(1.0, lambda s: order.append("low"), priority=5)
        sim.schedule(1.0, lambda s: order.append("high"), priority=0)
        sim.run_until(2.0)
        assert order == ["high", "low"]

    def test_simultaneous_same_priority_insertion_order(self, sim):
        order = []
        sim.schedule(1.0, lambda s: order.append("first"))
        sim.schedule(1.0, lambda s: order.append("second"))
        sim.run_until(2.0)
        assert order == ["first", "second"]

    def test_handler_can_schedule_more_events(self, sim):
        fired = []

        def chain(s):
            fired.append(s.now)
            if len(fired) < 3:
                s.schedule(1.0, chain)

        sim.schedule(1.0, chain)
        sim.run_until(10.0)
        assert fired == [1.0, 2.0, 3.0]


class TestRunSemantics:
    def test_run_until_lands_exactly_on_end(self, sim):
        sim.run_until(42.0)
        assert sim.now == 42.0

    def test_run_until_composes(self, sim):
        fired = []
        sim.schedule(5.0, lambda s: fired.append(s.now))
        sim.run_until(3.0)
        assert fired == []
        sim.run_until(6.0)
        assert fired == [5.0]

    def test_run_backwards_rejected(self, sim):
        sim.run_until(10.0)
        with pytest.raises(SimulationError):
            sim.run_until(5.0)

    def test_run_duration(self, sim):
        sim.run(100.0)
        sim.run(50.0)
        assert sim.now == 150.0

    def test_drain_runs_all_events(self, sim):
        fired = []
        for i in range(5):
            sim.schedule(float(i + 1), lambda s: fired.append(s.now))
        assert sim.drain() == 5
        assert len(fired) == 5

    def test_drain_guards_against_runaway(self, sim):
        def perpetual(s):
            s.schedule(1.0, perpetual)

        sim.schedule(1.0, perpetual)
        with pytest.raises(SimulationError):
            sim.drain(max_events=100)

    def test_events_executed_counter(self, sim):
        sim.schedule(1.0, lambda s: None)
        sim.schedule(2.0, lambda s: None)
        sim.run_until(5.0)
        assert sim.events_executed == 2

    def test_start_time(self):
        sim = Simulator(start_time=1000.0)
        assert sim.now == 1000.0
        fired = []
        sim.schedule(5.0, lambda s: fired.append(s.now))
        sim.run_until(1010.0)
        assert fired == [1005.0]


class TestPeriodic:
    def test_periodic_fires_every_period(self, sim):
        fired = []
        sim.schedule_periodic(10.0, lambda s: fired.append(s.now))
        sim.run_until(35.0)
        assert fired == [10.0, 20.0, 30.0]

    def test_periodic_start_delay_zero_fires_immediately(self, sim):
        fired = []
        sim.schedule_periodic(10.0, lambda s: fired.append(s.now), start_delay=0.0)
        sim.run_until(25.0)
        assert fired == [0.0, 10.0, 20.0]

    def test_periodic_cancel_stops_firing(self, sim):
        fired = []
        handle = sim.schedule_periodic(10.0, lambda s: fired.append(s.now))
        sim.run_until(25.0)
        handle.cancel()
        sim.run_until(100.0)
        assert fired == [10.0, 20.0]
        assert not handle.active

    def test_periodic_invalid_period(self, sim):
        with pytest.raises(ValueError):
            sim.schedule_periodic(0.0, lambda s: None)


class TestPropertyBased:
    @given(delays=st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_events_always_fire_in_sorted_order(self, delays):
        sim = Simulator()
        fired = []
        for delay in delays:
            sim.schedule(delay, lambda s: fired.append(s.now))
        sim.run_until(2e6)
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @given(
        delays=st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=20),
        split=st.floats(min_value=0.0, max_value=200.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_split_runs_equal_single_run(self, delays, split):
        """run_until(a); run_until(b) fires the same events as run_until(b)."""
        fired_split, fired_single = [], []
        sim1 = Simulator()
        sim2 = Simulator()
        for delay in delays:
            sim1.schedule(delay, lambda s: fired_split.append(s.now))
            sim2.schedule(delay, lambda s: fired_single.append(s.now))
        sim1.run_until(split)
        sim1.run_until(200.0)
        sim2.run_until(200.0)
        assert fired_split == fired_single
