"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulation import RngPool, Simulator, TraceLog


@pytest.fixture
def sim() -> Simulator:
    return Simulator()

@pytest.fixture
def trace() -> TraceLog:
    return TraceLog()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def rng_pool() -> RngPool:
    return RngPool(seed=12345)
