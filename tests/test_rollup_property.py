"""Property tests: tiered storage is bit-exact.

Two families of invariants, both required by the tiered-storage design:

* **Codec exactness** — the cold-tier codecs (delta-of-delta timestamp
  packing, XOR float packing) are lossless for *arbitrary* float64
  payloads: NaN, ±inf, -0.0, subnormals, mixed magnitudes; and for any
  monotonically increasing timestamp vector, regular cadence or not.
* **Tier-served ≡ raw-reduce** — a query answered (fully or partially)
  from materialized rollup tiers returns the same bits as the same query
  reduced from raw samples, across shard counts, with and without cold
  demotion, in-process and with worker-process shards.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.telemetry import SERVABLE_AGGREGATIONS, TimeSeriesStore
from repro.telemetry.archive import (
    ColdChunk,
    decode_timestamps,
    decode_values,
    encode_timestamps,
    encode_values,
)
from repro.telemetry.distributed import ShardedStore


def _bits(a: np.ndarray) -> np.ndarray:
    return np.asarray(a, dtype=np.float64).view(np.uint64)


# ---------------------------------------------------------------------------
# Codec exactness
# ---------------------------------------------------------------------------
any_float64 = st.floats(
    allow_nan=True, allow_infinity=True, allow_subnormal=True, width=64
)
finite_float64 = st.floats(
    allow_nan=False, allow_infinity=False, allow_subnormal=True, width=64
)


class TestCodecExactness:
    @given(vals=st.lists(any_float64, min_size=0, max_size=300))
    @settings(max_examples=200, deadline=None)
    def test_value_codec_round_trips_any_float64(self, vals):
        values = np.array(vals, dtype=np.float64)
        params, bitmap, payload = encode_values(values)
        out = decode_values(params, bitmap, payload)
        assert np.array_equal(_bits(values), _bits(out))

    @given(ticks=st.lists(finite_float64, min_size=0, max_size=300))
    @settings(max_examples=200, deadline=None)
    def test_timestamp_codec_round_trips_any_monotonic(self, ticks):
        times = np.unique(np.array(ticks, dtype=np.float64))
        params, payload = encode_timestamps(times)
        out = decode_timestamps(params, payload)
        assert np.array_equal(_bits(times), _bits(out))

    @given(
        start=st.floats(min_value=0.0, max_value=1e9),
        period=st.sampled_from([0.2, 1.0, 5.0, 10.0, 60.0]),
        n=st.integers(min_value=1, max_value=2000),
    )
    @settings(max_examples=100, deadline=None)
    def test_regular_cadence_round_trips(self, start, period, n):
        times = start + np.arange(n) * period
        params, payload = encode_timestamps(times)
        assert np.array_equal(_bits(times), _bits(decode_timestamps(
            params, payload)))

    @given(
        vals=st.lists(any_float64, min_size=1, max_size=200),
        deltas=st.lists(
            st.floats(min_value=1e-3, max_value=1e4,
                      allow_nan=False, allow_infinity=False),
            min_size=1, max_size=200,
        ),
    )
    @settings(max_examples=100, deadline=None)
    def test_cold_chunk_round_trips(self, vals, deltas):
        n = min(len(vals), len(deltas))
        times = np.cumsum(np.array(deltas[:n], dtype=np.float64))
        values = np.array(vals[:n], dtype=np.float64)
        chunk = ColdChunk.encode(times, values)
        t, v = chunk.decode()
        assert np.array_equal(_bits(times), _bits(t))
        assert np.array_equal(_bits(values), _bits(v))


# ---------------------------------------------------------------------------
# Tier-served queries match raw reduction, bit for bit
# ---------------------------------------------------------------------------
def _make_series(seed: int, period: float, hours: float, gap: bool):
    rng = np.random.default_rng(seed)
    times = np.arange(0.0, hours * 3600.0, period)
    if gap and times.size > 40:
        # Knock a contiguous window out of the middle: exercises NaN
        # (not 0) semantics for count/sum through the tiers.
        lo = times.size // 3
        hi = 2 * times.size // 3
        times = np.concatenate([times[:lo], times[hi:]])
    values = np.round(rng.normal(220.0, 8.0, times.size) * 4) / 4
    return times, values


query_params = st.tuples(
    st.sampled_from(sorted(SERVABLE_AGGREGATIONS)),
    st.sampled_from([60.0, 600.0, 3600.0]),
    st.sampled_from([5.0, 10.0, 30.0]),       # ingest period
    st.booleans(),                            # gap in the middle
    st.integers(min_value=0, max_value=2**31),
)


class TestTierServedIdentity:
    @pytest.mark.parametrize("shards", [1, 2, 8])
    @given(params=query_params)
    @settings(max_examples=25, deadline=None)
    def test_sharded_tier_query_equals_raw(self, shards, params):
        agg, step, period, gap, seed = params
        hours = 8.0
        names = ["n0.p", "n1.p", "n2.p"]
        tiered = ShardedStore(shards=shards, rollups=True)
        raw = TimeSeriesStore()
        for i, name in enumerate(names):
            t, v = _make_series(seed + i, period, hours, gap)
            tiered.append_many(name, t, v)
            raw.append_many(name, t, v)
        until = hours * 3600.0
        g1, r1 = tiered.resample(names[0], 0.0, until, step, agg)
        g2, r2 = raw.resample(names[0], 0.0, until, step, agg)
        assert np.array_equal(_bits(g1), _bits(g2))
        assert np.array_equal(_bits(r1), _bits(r2))
        a1, m1 = tiered.align(names, 0.0, until, step, agg, fill="nan")
        a2, m2 = raw.align(names, 0.0, until, step, agg, fill="nan")
        assert np.array_equal(_bits(m1), _bits(m2))

    @given(params=query_params)
    @settings(max_examples=25, deadline=None)
    def test_demoted_tier_query_equals_raw(self, params):
        """Retention demotes most history to cold chunks; queries must
        still match an untiered store holding everything hot."""
        agg, step, period, gap, seed = params
        t, v = _make_series(seed, period, 8.0, gap)
        tiered = TimeSeriesStore(rollups=True, archive=True,
                                 retention=3600.0)
        raw = TimeSeriesStore()
        tiered.append_many("m", t, v)
        raw.append_many("m", t, v)
        g1, r1 = tiered.resample("m", 0.0, 8 * 3600.0, step, agg)
        g2, r2 = raw.resample("m", 0.0, 8 * 3600.0, step, agg)
        assert np.array_equal(_bits(r1), _bits(r2))
        t1, v1 = tiered.query("m")
        assert np.array_equal(_bits(v), _bits(v1))

    @given(params=query_params)
    @settings(max_examples=5, deadline=None)
    def test_parallel_tier_query_equals_raw(self, params):
        """Worker-process shards (rollups maintained worker-side) answer
        identically to a single in-process raw store."""
        agg, step, period, gap, seed = params
        names = ["a.p", "b.p"]
        raw = TimeSeriesStore()
        tiered = ShardedStore(shards=2, parallel=True, rollups=True)
        try:
            for i, name in enumerate(names):
                t, v = _make_series(seed + i, period, 2.0, gap)
                tiered.append_many(name, t, v)
                raw.append_many(name, t, v)
            until = 2 * 3600.0
            g1, r1 = tiered.resample(names[0], 0.0, until, step, agg)
            g2, r2 = raw.resample(names[0], 0.0, until, step, agg)
            assert np.array_equal(_bits(r1), _bits(r2))
            a1, m1 = tiered.align(names, 0.0, until, step, agg, fill="nan")
            a2, m2 = raw.align(names, 0.0, until, step, agg, fill="nan")
            assert np.array_equal(_bits(m1), _bits(m2))
        finally:
            tiered.close()
