"""Tests for the job lifecycle and the pending queue."""

from __future__ import annotations

import pytest

from repro.apps import default_catalog
from repro.apps.generator import JobRequest
from repro.errors import SchedulingError
from repro.software import Job, JobQueue, JobState


def request(job_id="j1", nodes=2, submit=0.0, work=1000.0, wall=2000.0, user="u"):
    return JobRequest(
        job_id=job_id, submit_time=submit, user=user,
        profile=default_catalog().get("cfd_solver"),
        nodes=nodes, work_s=work, walltime_req_s=wall,
    )


class TestJobLifecycle:
    def test_start_transitions(self):
        job = Job(request())
        job.start(10.0, ["a", "b"])
        assert job.state is JobState.RUNNING
        assert job.wait_time == 10.0

    def test_start_wrong_node_count(self):
        with pytest.raises(SchedulingError):
            Job(request(nodes=2)).start(0.0, ["a"])

    def test_double_start_rejected(self):
        job = Job(request())
        job.start(0.0, ["a", "b"])
        with pytest.raises(SchedulingError):
            job.start(1.0, ["a", "b"])

    def test_finish_completed(self):
        job = Job(request())
        job.start(10.0, ["a", "b"])
        job.finish(100.0, JobState.COMPLETED)
        assert job.terminal
        assert job.runtime == 90.0
        assert job.turnaround == 100.0

    def test_finish_requires_terminal_state(self):
        job = Job(request())
        job.start(0.0, ["a", "b"])
        with pytest.raises(SchedulingError):
            job.finish(1.0, JobState.RUNNING)

    def test_cancel_from_pending(self):
        job = Job(request())
        job.finish(5.0, JobState.CANCELLED)
        assert job.state is JobState.CANCELLED

    def test_slowdown_bounded(self):
        job = Job(request(submit=0.0))
        job.start(100.0, ["a", "b"])
        job.finish(105.0, JobState.COMPLETED)  # 5 s runtime, 100 s wait
        # Bounded: divide by max(runtime, 10)
        assert job.slowdown() == pytest.approx(105.0 / 10.0)

    def test_slowdown_long_job(self):
        job = Job(request())
        job.start(50.0, ["a", "b"])
        job.finish(1050.0, JobState.COMPLETED)
        assert job.slowdown() == pytest.approx(1050.0 / 1000.0)

    def test_remaining_walltime(self):
        job = Job(request(wall=100.0))
        assert job.remaining_walltime(5.0) == 100.0
        job.start(10.0, ["a", "b"])
        assert job.remaining_walltime(60.0) == 50.0

    def test_node_seconds(self):
        job = Job(request(nodes=2))
        job.start(0.0, ["a", "b"])
        job.finish(100.0, JobState.COMPLETED)
        assert job.node_seconds == 200.0

    def test_invalid_request_params(self):
        with pytest.raises(Exception):
            request(nodes=0)
        with pytest.raises(Exception):
            request(work=-1.0)


class TestJobQueue:
    def test_fifo_order(self):
        queue = JobQueue()
        jobs = [Job(request(job_id=f"j{i}")) for i in range(3)]
        for job in jobs:
            queue.push(job)
        assert queue.snapshot() == jobs
        assert queue.head() is jobs[0]

    def test_push_non_pending_rejected(self):
        job = Job(request())
        job.start(0.0, ["a", "b"])
        with pytest.raises(SchedulingError):
            JobQueue().push(job)

    def test_remove(self):
        queue = JobQueue()
        job = Job(request())
        queue.push(job)
        queue.remove(job)
        assert len(queue) == 0
        with pytest.raises(SchedulingError):
            queue.remove(job)

    def test_reorder_stable(self):
        queue = JobQueue()
        for i, nodes in enumerate((4, 2, 2)):
            queue.push(Job(request(job_id=f"j{i}", nodes=nodes)))
        queue.reorder(lambda j: j.request.nodes)
        ids = [j.job_id for j in queue]
        assert ids == ["j1", "j2", "j0"]  # stable among equals

    def test_total_requested_nodes(self):
        queue = JobQueue()
        queue.push(Job(request(job_id="a", nodes=2)))
        queue.push(Job(request(job_id="b", nodes=3)))
        assert queue.total_requested_nodes() == 5

    def test_empty_head_none(self):
        assert JobQueue().head() is None
