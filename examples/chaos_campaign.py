#!/usr/bin/env python
"""Supervised control plane under a unified chaos campaign.

Prescriptive ODA *acts* on the machine, so a wedged or malfunctioning
controller is itself a failure mode.  This example enables the control-plane
supervisor (circuit breakers, watchdog, safe-state fallback), schedules the
standard chaos campaign — controller raise, facility pump outage, node
crashes, shard kill — against a half-day simulation, and prints the
resilience scorecard: per-fault MTTD/MTTR plus breaker and safe-state
activity, all scored from observable telemetry alone.

Run:  python examples/chaos_campaign.py
"""

from __future__ import annotations

from repro.facility.weather import DAY
from repro.oda import (
    ChaosEngine,
    DataCenter,
    MultiPillarOrchestrator,
    standard_campaign,
)


def main() -> None:
    print("=== 1. A supervised multi-pillar site ===")
    dc = DataCenter(
        seed=7, racks=1, nodes_per_rack=8,
        shards=2, replication=1, health_period=300.0,
    )
    supervisor = dc.enable_supervision()
    orchestrator = MultiPillarOrchestrator(dc)
    orchestrator.attach()  # auto-wrapped: errors isolated, breaker armed
    print(f"supervised loops:  {sorted(supervisor.loops)}")
    print(f"supervised stages: {sorted(supervisor.stages)}")

    print("\n=== 2. The standard campaign (seeded, declarative) ===")
    campaign = standard_campaign(seed=7, horizon_s=0.5 * DAY)
    for fault in campaign.faults:
        print(f"  t={fault.start:>8.0f}s  {fault.pillar:<10} "
              f"{fault.target:<12} {fault.mode:<8} for {fault.duration:.0f}s")
    engine = ChaosEngine(dc)
    engine.schedule(campaign)

    print("\n=== 3. Run through all five faults ===")
    dc.generate_workload(days=0.5, jobs_per_day=40.0)
    dc.run(days=0.5)
    breaker = supervisor.loops["orchestrator"].breaker
    print(f"breaker: opens={breaker.opens} closes={breaker.closes} "
          f"final state={breaker.state.name}")
    for tr in breaker.transitions:
        print(f"  t={tr.time:>8.0f}s  {tr.from_state.name:>9} -> "
              f"{tr.to_state.name:<9} ({tr.reason})")

    print("\n=== 4. Resilience scorecard ===")
    card = engine.scorecard(campaign)
    for row in card["faults"]:
        print(f"  {row['pillar']:<10} {row['target']:<12} "
              f"mttd={row['mttd_s']:>7.0f}s  mttr={row['mttr_s']:>7.0f}s  "
              f"actions_during={row['actions_during_fault']}")
    totals = card["totals"]
    print(f"detected {totals['detected']}/{totals['faults']}, "
          f"recovered {totals['recovered']}, "
          f"safe-state entries {totals['safe_state_entries']}, "
          f"mean MTTR {totals['mean_mttr_s']:.0f}s")
    assert totals["unrecovered"] == 0


if __name__ == "__main__":
    main()
