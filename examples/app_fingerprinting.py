#!/usr/bin/env python
"""Application fingerprinting: catch the cryptominer (Table I, [33][36]).

Runs a workload where a few submissions are rogue cryptominer jobs hiding
among legitimate HPC applications.  Per-job feature vectors are extracted
from node telemetry over each job's execution window (Taxonomist-style
statistical summaries), a random forest is trained on labelled history,
and new jobs are identified — miners flagged for cancellation.

Run:  python examples/app_fingerprinting.py
"""

from __future__ import annotations

import numpy as np

from repro.analytics.diagnostic import (
    JOB_COUNTERS,
    ApplicationFingerprinter,
    job_feature_vector,
)
from repro.oda import DataCenter
from repro.software import JobState


def job_features(dc, job):
    paths = {
        counter: dc.system.node_metric(job.assigned_nodes[0], counter)
        for counter in JOB_COUNTERS
    }
    return job_feature_vector(dc.store, paths, job.start_time, job.end_time)


def main() -> None:
    print("simulating 7 days with 20% rogue cryptominer submissions...")
    dc = DataCenter(seed=77, racks=2, nodes_per_rack=8)
    # ~16 effective jobs/day keeps the 16-node machine balanced so most
    # jobs actually complete and leave a full telemetry window behind.
    dc.generate_workload(days=7.0, jobs_per_day=30, miner_fraction=0.2)
    dc.run(days=7.0)

    completed = [
        j for j in dc.scheduler.accounting
        if j.state is JobState.COMPLETED and j.runtime and j.runtime > 600.0
    ]
    print(f"{len(completed)} jobs completed with enough telemetry\n")

    X, labels = [], []
    for job in completed:
        try:
            X.append(job_features(dc, job))
            labels.append(job.profile_name)
        except Exception:
            continue
    X = np.vstack(X)
    miners_total = sum(1 for l in labels if l == "cryptominer")
    print(f"feature matrix: {X.shape}; classes: {sorted(set(labels))}")
    print(f"ground truth: {miners_total} miner jobs in the log\n")

    split = int(len(labels) * 0.6)
    fingerprinter = ApplicationFingerprinter(n_trees=30, seed=1)
    fingerprinter.fit(X[:split], labels[:split])

    predictions = fingerprinter.predict(X[split:])
    truth = labels[split:]
    accuracy = np.mean([p == t for p, t in zip(predictions, truth)])
    print(f"=== identification on held-out jobs ===")
    print(f"  accuracy: {accuracy:.0%} over {len(truth)} jobs")

    rogue_flags = fingerprinter.flag_rogue(X[split:])
    tp = sum(1 for f, t in zip(rogue_flags, truth) if f and t == "cryptominer")
    fp = sum(1 for f, t in zip(rogue_flags, truth) if f and t != "cryptominer")
    fn = sum(1 for f, t in zip(rogue_flags, truth) if not f and t == "cryptominer")
    print(f"  miner detection: {tp} caught, {fp} false alarms, {fn} missed")

    print("\n=== why miners stand out (mean feature per class) ===")
    by_class = {}
    for row, label in zip(X, labels):
        by_class.setdefault(label, []).append(row)
    print(f"  {'class':>18} | {'cpu mean':>8} | {'io mean':>10} | {'net mean':>10}")
    for label, rows in sorted(by_class.items()):
        mean = np.vstack(rows).mean(axis=0)
        # Feature layout: 10 stats per counter in JOB_COUNTERS order.
        cpu, io, net = mean[0], mean[20], mean[30]
        print(f"  {label:>18} | {cpu:8.2f} | {io:10.2e} | {net:10.2e}")

    print("\nprescriptive follow-up: cancelling flagged running jobs would be")
    print("dc.scheduler.cancel(job_id, dc.sim.now) — closing the ODA loop.")


if __name__ == "__main__":
    main()
