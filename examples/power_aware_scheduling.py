#!/usr/bin/env python
"""Prescriptive scheduling comparison: baseline vs ODA-informed policies.

Runs the same workload trace under four schedulers — FCFS, EASY backfill,
power-aware backfill under an IT power cap (Table I: "power and KPI-aware
scheduling" [21]-[23]) and cooling-aware placement [22] — and compares
QoS, power and thermal KPIs.

Run:  python examples/power_aware_scheduling.py
"""

from __future__ import annotations

import numpy as np

from repro.analytics.descriptive import scheduling_report
from repro.analytics.prescriptive import CoolingAwarePolicy, PowerAwarePolicy
from repro.oda import DataCenter, collect_kpis
from repro.software import EasyBackfillPolicy, FcfsPolicy, JobState

POWER_CAP_W = 4_800.0  # binding for a 16-node fleet (idle ~2.1 kW, busy ~6.5 kW)


def run_policy(policy, days=2.0, seed=33):
    dc = DataCenter(seed=seed, racks=2, nodes_per_rack=8, policy=policy)
    dc.generate_workload(days=days, jobs_per_day=26)
    dc.run(days=days)
    kpis = collect_kpis(dc)
    finished = [j for j in dc.scheduler.accounting if j.terminal]
    qos = scheduling_report(finished) if finished else None
    _, it_power = dc.metric("cluster.it_power")
    max_temps = [
        dc.metric(dc.system.node_metric(node.name, "temp"))[1].max()
        for node in dc.system.nodes
    ]
    return {
        "kpis": kpis,
        "qos": qos,
        "peak_it_kw": float(it_power.max()) / 1e3,
        "hottest_node_c": float(max(max_temps)),
        "total_jobs": len(dc.scheduler.jobs),
    }


def main() -> None:
    runs = {}
    for name, policy in [
        ("FCFS", FcfsPolicy()),
        ("EASY backfill", EasyBackfillPolicy()),
        ("power-aware", PowerAwarePolicy(power_cap_w=POWER_CAP_W)),
        ("cooling-aware", CoolingAwarePolicy()),
    ]:
        print(f"running policy: {name} ...")
        runs[name] = run_policy(policy)
    print()

    header = (f"{'policy':>14} | {'done':>4} | {'slowdown':>8} | {'util':>5} | "
              f"{'peak IT kW':>10} | {'hottest C':>9} | {'PUE':>5}")
    print(header)
    print("-" * len(header))
    for name, result in runs.items():
        qos = result["qos"]
        slowdown = f"{qos.mean_slowdown:8.2f}" if qos else "     n/a"
        kpis = result["kpis"]
        print(f"{name:>14} | {kpis.completed_jobs:4d} | {slowdown} | "
              f"{kpis.utilization:5.2f} | {result['peak_it_kw']:10.2f} | "
              f"{result['hottest_node_c']:9.1f} | {kpis.pue:5.3f}")

    print("\nobservations (the paper's qualitative claims):")
    print(f"  - EASY backfill lifts utilization over FCFS: "
          f"{runs['FCFS']['kpis'].utilization:.2f} -> "
          f"{runs['EASY backfill']['kpis'].utilization:.2f}")
    print(f"  - the power-aware policy respects the {POWER_CAP_W/1e3:.1f} kW cap: "
          f"peak {runs['power-aware']['peak_it_kw']:.2f} kW vs unconstrained "
          f"{runs['EASY backfill']['peak_it_kw']:.2f} kW "
          f"(traded for throughput: {runs['power-aware']['kpis'].completed_jobs} vs "
          f"{runs['EASY backfill']['kpis'].completed_jobs} jobs)")
    print(f"  - cooling-aware placement keeps the hottest node at "
          f"{runs['cooling-aware']['hottest_node_c']:.1f} C vs "
          f"{runs['EASY backfill']['hottest_node_c']:.1f} C under EASY")


if __name__ == "__main__":
    main()
