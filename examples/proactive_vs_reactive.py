#!/usr/bin/env python
"""Proactive vs reactive ODA (Section V-A's central claim).

"Enhancing a prescriptive ODA system with predictive capabilities allows
it to optimize system knobs in a proactive manner, thus anticipating
state transitions and preventing adverse effects, rather than in a
reactive way.  In almost all cases, this has a positive effect on the
KPIs."

Demonstrated on reliability (the proactive-autonomics use case [48]):
nodes emit a rising ECC-error ramp before crashing.  The *reactive*
configuration lets crashes kill jobs, which restart from scratch; the
*proactive* configuration runs a failure predictor on the ECC telemetry
and evacuates + drains doomed nodes ahead of the crash.

Both runs use identical seeds, workloads and fault processes.

Run:  python examples/proactive_vs_reactive.py
"""

from __future__ import annotations

import numpy as np

from repro.analytics.prescriptive import ProactiveMaintenance
from repro.oda import DataCenter
from repro.software import JobState


def run(proactive: bool, seed: int = 42, days: float = 3.0):
    dc = DataCenter(seed=seed, racks=2, nodes_per_rack=8, enable_faults=True)
    dc.system.fault_model.base_rate = 0.3  # stressed fleet: ~5 crashes/day
    dc.scheduler.resubmit_failed = True    # reactive recovery: restart lost jobs
    dc.generate_workload(days=days, jobs_per_day=20)
    maintenance = None
    if proactive:
        maintenance = ProactiveMaintenance(dc.scheduler, dc.store, period=600.0)
        maintenance.attach(dc.sim, dc.trace)
    dc.run(days=days)

    jobs = list(dc.scheduler.jobs.values())
    done = [j for j in jobs if j.state is JobState.COMPLETED]
    restarts = len(dc.trace.select(kind="job_restart"))
    crashes = len(dc.trace.select(kind="node_crash"))
    # Surviving work across *all* jobs: a reactive restart zeroes the lost
    # job's progress, a proactive checkpoint-requeue preserves it.
    work_h = sum(j.work_done_s * j.nodes for j in jobs) / 3600.0
    times, it = dc.metric("cluster.it_power")
    energy_kwh = float(np.trapezoid(it, times)) / 3.6e6
    return {
        "completed": len(done),
        "jobs": len(jobs),
        "node crashes": crashes,
        "jobs lost to crashes": restarts + sum(1 for j in jobs if j.state is JobState.FAILED),
        "surviving work [node-h]": round(work_h, 1),
        "IT energy [kWh]": round(energy_kwh, 1),
        "work per energy [node-h/kWh]": round(work_h / energy_kwh, 3),
        "drains": maintenance.drains if maintenance else 0,
        "evacuations": maintenance.evacuations if maintenance else 0,
    }


def main() -> None:
    print("running reactive configuration (crash -> restart from scratch)...")
    reactive = run(proactive=False)
    print("running proactive configuration (predict -> evacuate -> drain)...\n")
    proactive = run(proactive=True)

    width = max(len(k) for k in reactive)
    print(f"{'KPI':<{width}} | {'reactive':>10} | {'proactive':>10}")
    print("-" * (width + 27))
    for key in reactive:
        print(f"{key:<{width}} | {reactive[key]:>10} | {proactive[key]:>10}")

    gain = (
        proactive["work per energy [node-h/kWh]"]
        / reactive["work per energy [node-h/kWh]"]
        - 1.0
    )
    print(f"\nproactive work-per-energy gain: {gain:+.1%}")
    print("the Section V-A shape: prediction turns the same prescriptive")
    print("machinery proactive, and the KPI improves.")


if __name__ == "__main__":
    main()
