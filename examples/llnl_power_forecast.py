#!/usr/bin/env python
"""The LLNL utility-notification use case (Section V-C, [72]).

LLNL must notify its utility whenever site power moves by more than
750 kW within a 15-minute window.  Using Fourier transforms on historical
monitoring data, they identified recurring power-spike patterns and used
them to forecast consumption and meet the contract.

Substitution note (see DESIGN.md): LLNL's historic ~30 MW trace is
proprietary, and a laptop-scale node-granular simulation cannot produce
a 30 MW aggregate — so the trace comes from
:class:`repro.facility.SitePowerTraceGenerator`, which reproduces its
statistical structure: smooth diurnal/weekly load, OU noise, and
*recurring* large-job spike patterns (nightly batch window, morning rise).
The code path exercised — FFT fit, harmonic extrapolation, 750 kW/15 min
ramp detection — is exactly the published method.

Run:  python examples/llnl_power_forecast.py
"""

from __future__ import annotations

import numpy as np

from repro.analytics.predictive import FourierForecaster, detect_ramps, mae
from repro.facility import SitePowerTraceGenerator

DAY = 86_400.0
THRESHOLD_W = 750e3   # the contractual limit
WINDOW_S = 900.0      # ... per 15 minutes


def main() -> None:
    print("generating 28 days of LLNL-scale site power (22-29 MW)...")
    generator = SitePowerTraceGenerator(np.random.default_rng(5))
    times, watts, events = generator.generate(days=28.0, step_s=300.0)
    print(f"trace range: {watts.min()/1e6:.1f}-{watts.max()/1e6:.1f} MW, "
          f"{len(events)} ground-truth spike events\n")

    train = times < 21 * DAY
    test = ~train
    print("fitting Fourier model on weeks 1-3, forecasting week 4...")
    forecaster = FourierForecaster(n_harmonics=320).fit(times[train], watts[train])
    predicted = forecaster.predict(times[test])
    persistence = np.full(int(test.sum()), watts[train][-1])

    print("\n=== forecast quality (week 4) ===")
    print(f"  Fourier MAE:      {mae(watts[test], predicted)/1e6:6.3f} MW")
    print(f"  persistence MAE:  {mae(watts[test], persistence)/1e6:6.3f} MW")

    print(f"\n=== {THRESHOLD_W/1e3:.0f} kW / {WINDOW_S/60:.0f} min notifications ===")
    actual = detect_ramps(times[test], watts[test], THRESHOLD_W, WINDOW_S)
    forecast = detect_ramps(times[test], predicted, THRESHOLD_W, WINDOW_S)
    naive = detect_ramps(times[test], persistence, THRESHOLD_W, WINDOW_S)
    print(f"  actual ramp events:          {len(actual)}")
    print(f"  FFT forecast notifications:  {len(forecast)}")
    print(f"  persistence notifications:   {len(naive)} (flat forecasts never ramp)")

    hits = sum(1 for f in forecast if any(abs(f.time - a.time) <= 3600.0 for a in actual))
    covered = sum(1 for a in actual if any(abs(a.time - f.time) <= 3600.0 for f in forecast))
    print(f"  notification precision: {hits / max(len(forecast), 1):.0%}")
    print(f"  notification recall:    {covered / max(len(actual), 1):.0%}")

    print("\n  first forecast notifications (what the operator sends the utility):")
    for event in forecast[:6]:
        day, hour = divmod(event.time, DAY)
        print(f"    day {day:4.0f} {hour/3600:5.2f} h: ramp {event.direction}, "
              f"|delta| {abs(event.delta_w)/1e3:6.0f} kW / 15 min")


if __name__ == "__main__":
    main()
