#!/usr/bin/env python
"""Quickstart: simulate a small HPC site, monitor it, and apply the framework.

Builds a 2-rack data center with a synthetic workload, runs half a
simulated day, then walks the four analytics types on the collected
telemetry — descriptive KPIs and dashboards, a diagnostic peer check,
a predictive forecast, and a prescriptive scheduling comparison — and
finally classifies each step on the paper's 4x4 grid.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.analytics.descriptive import Dashboard, compute_kpi_report, scheduling_report
from repro.analytics.diagnostic import PeerDeviationDetector
from repro.analytics.predictive import HoltWinters
from repro.core import UseCaseClassifier, render_occupancy, survey_grid
from repro.oda import DataCenter, collect_kpis


def main() -> None:
    print("=== 1. Build and run the synthetic data center ===")
    dc = DataCenter(seed=42, racks=2, nodes_per_rack=8, enable_faults=True)
    requests = dc.generate_workload(days=0.5, jobs_per_day=80)
    print(f"generated {len(requests)} job submissions; running 0.5 simulated days...")
    dc.run(days=0.5)
    print(f"executed {dc.sim.events_executed} events; "
          f"{dc.store.samples_ingested} telemetry samples in "
          f"{len(dc.store)} series\n")

    print("=== 2. Descriptive: what happened? ===")
    kpis = compute_kpi_report(dc.store, 0.0, dc.sim.now)
    for key, value in kpis.rows():
        print(f"  {key}: {value}")
    dash = Dashboard(dc.store, 0.0, dc.sim.now, width=64)
    dash.add_sparkline("site power [W]", "facility.power.site_power")
    dash.add_sparkline("scheduler utilization", "scheduler.utilization")
    print(dash.render())
    finished = [j for j in dc.scheduler.accounting if j.terminal]
    if finished:
        report = scheduling_report(finished)
        print(f"\n  jobs finished: {report.jobs}, mean bounded slowdown: "
              f"{report.mean_slowdown:.2f}\n")

    print("=== 3. Diagnostic: why? (peer deviation across nodes) ===")
    metrics = [dc.system.node_metric(n.name, "temp") for n in dc.system.nodes]
    grid_t, matrix = dc.store.align(metrics, dc.sim.now - 6 * 3600, dc.sim.now, 300.0)
    finite = np.isfinite(matrix).all(axis=1)
    detector = PeerDeviationDetector(threshold=4.0)
    detections = detector.detect(matrix[finite].T, metrics)
    print(f"  nodes deviating from the fleet: "
          f"{[d.entity.split('.')[-2] for d in detections] or 'none'}\n")

    print("=== 4. Predictive: what will happen? (site power, next 2 h) ===")
    _, power = dc.store.resample("facility.power.site_power", 0.0, dc.sim.now, 600.0)
    power = power[np.isfinite(power)]
    try:
        model = HoltWinters(period=min(144, power.size // 2)).fit(power)
        forecast = model.forecast(12)
        print(f"  forecast mean {forecast.mean()/1e3:.1f} kW "
              f"(last observed {power[-1]/1e3:.1f} kW)\n")
    except Exception as exc:  # short runs may lack two full seasons
        print(f"  (forecast skipped: {exc})\n")

    print("=== 5. Prescriptive: what should we do? ===")
    summary = collect_kpis(dc)
    print(f"  energy per completed work: {summary.energy_per_work_kwh:.6f} kWh/s")
    print("  (see examples/power_aware_scheduling.py for a full policy comparison)\n")

    print("=== 6. The framework applied to what we just did ===")
    classifier = UseCaseClassifier()
    for step in (
        "dashboards visualizing facility power and scheduler utilization",
        "detecting anomalous node hardware behavior from sensor data",
        "forecasting facility site power demand",
        "scheduling jobs under a power budget to optimize energy KPIs",
    ):
        print(f"  {classifier.explain(step).splitlines()[0]}")
    print()
    print(render_occupancy(survey_grid()))


if __name__ == "__main__":
    main()
