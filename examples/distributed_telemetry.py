#!/usr/bin/env python
"""Distributed telemetry storage: sharding, replication, mid-run failover.

Production monitoring stacks (DCDB, LDMS) are *distributed*: telemetry is
hash-partitioned across storage backends, each partition replicated, and a
federated front-end answers queries without callers knowing where data
lives.  This example runs a simulated HPC site on exactly that tier:

* the site archives telemetry in 4 hash-partitioned shards x 2 copies,
* one shard's primary is killed mid-run — collection continues, writes
  keep landing on the replica, reads fail over transparently,
* the dead primary is revived and resynced from its replica,
* federated queries (``query``/``align``/``select``) return bit-for-bit
  what one monolithic store would, throughout,
* the whole deployment round-trips to disk (manifest + per-shard files).

Run:  python examples/distributed_telemetry.py
"""

from __future__ import annotations

import os
import tempfile

from repro.oda import DataCenter
from repro.telemetry import ShardedStore, load_store, save_store

SHARDS = 4
KILL_AT = 3 * 3600.0      # primary of one shard dies 3 h in
REVIVE_AT = 6 * 3600.0    # and is revived (resynced) at 6 h
RUN_HOURS = 9.0


def main() -> None:
    print("=== 1. A site archiving telemetry in "
          f"{SHARDS} shards x 2 copies ===")
    dc = DataCenter(seed=42, racks=2, nodes_per_rack=8,
                    shards=SHARDS, replication=1, health_period=300.0)
    dc.generate_workload(days=RUN_HOURS / 24.0, jobs_per_day=48)

    victim = dc.store.shard_of("facility.pue")
    fault = dc.shard_fault()
    fault.schedule_kill(dc.sim, at=KILL_AT, shard=victim)
    fault.schedule_revive(dc.sim, at=REVIVE_AT, shard=victim)
    print(f"  facility.pue lives on shard {victim}; its primary dies at "
          f"t={KILL_AT / 3600.0:.0f}h and returns at t={REVIVE_AT / 3600.0:.0f}h\n")

    print("=== 2. Run through the failure ===")
    dc.run(seconds=RUN_HOURS * 3600.0)
    times, pue = dc.store.query("facility.pue")
    covered = times[-1] - times[0]
    print(f"  {len(dc.store.names())} series collected; facility.pue has "
          f"{times.size} samples spanning {covered / 3600.0:.1f}h —")
    print("  no gap across the kill window: reads failed over to the "
          "replica, which kept every write\n")

    print("=== 3. What the shard tier absorbed ===")
    rs = dc.store.replica_sets[victim]
    health = dc.store.health_metrics()
    print(f"  fault events: {[(e.time, e.kind.value) for e in fault.events]}")
    print(f"  shard {victim} writes missed by the dead primary: "
          f"{int(health[f'telemetry.shard.{victim}.missed_writes'])} "
          "(zeroed by resync)" if not rs.missed_writes[0] else "")
    print(f"  failover reads served by replicas: "
          f"{int(health['telemetry.shard.failover_reads'])}")
    per_shard = [int(health[f"telemetry.shard.{i}.series"])
                 for i in range(SHARDS)]
    print(f"  series per shard (hash balance): {per_shard}\n")

    print("=== 4. Federated queries, unchanged API ===")
    rack_metrics = dc.store.select("cluster.rack0.*")[:4]
    grid, matrix = dc.store.align(rack_metrics, 0.0, dc.sim.now, 300.0)
    print(f"  align({len(rack_metrics)} series across {SHARDS} shards) -> "
          f"matrix {matrix.shape}, one shared bucket grid")
    _, shard_down = dc.store.query("telemetry.shard.down_members")
    print(f"  self-metrics saw the outage: max down_members = "
          f"{int(shard_down.max())}\n")

    print("=== 5. Persist and reload the whole deployment ===")
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "site.npz")
        count = save_store(dc.store, path)
        files = sorted(os.listdir(tmp))
        loaded = load_store(path)
        assert isinstance(loaded, ShardedStore)
        t2, _ = loaded.query("facility.pue")
        print(f"  archived {count} series as {files}")
        print(f"  reloaded: {loaded.shards} shards, replication "
              f"{loaded.replication}, facility.pue intact "
              f"({t2.size} samples)")


if __name__ == "__main__":
    main()
