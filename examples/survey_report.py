#!/usr/bin/env python
"""Regenerate the paper's artifacts: Table I, Figures 1-3 and the analysis.

This is the reproduction of the paper's actual contribution — the survey
classified on the 4x4 framework grid — plus the quantitative versions of
the qualitative claims of Sections II, IV and V.

Run:  python examples/survey_report.py
"""

from __future__ import annotations

from repro.analytics.descriptive import table
from repro.core import (
    analyze_survey,
    figure3_systems,
    gap_report,
    pillar_crossing_stats,
    plan_roadmap,
    rank_by_comprehensiveness,
    render_fig1,
    render_fig2,
    render_fig3,
    render_occupancy,
    render_table1,
    similarity_matrix,
    survey_grid,
)


def main() -> None:
    grid = survey_grid()
    systems = figure3_systems()

    print(render_fig1())
    print()
    print(render_fig2())
    print()
    print(render_table1(grid))
    print()
    print("Occupancy (use cases per cell):")
    print(render_occupancy(grid))
    print()
    print(render_fig3(systems))
    print()

    stats = analyze_survey(grid)
    print(table(stats.rows(), title="Survey statistics (Sections II/IV claims)"))
    print()
    print(f"  -> visualization-oriented ODA dominates control: "
          f"{stats.visualization_dominates} "
          f"({stats.visualization_oriented} vs {stats.control_oriented}) — "
          f"matches the survey of Ott et al. [13]")
    print()

    crossing = pillar_crossing_stats(systems)
    print(table(sorted(crossing.items()), title="Single- vs multi-pillar systems (Section V-B)"))
    print(f"  -> single-pillar systems prevail: "
          f"{crossing['single_pillar']:.0f} of {crossing['systems']:.0f}")
    print()

    print("Comprehensiveness ranking (grid coverage):")
    for name, coverage in rank_by_comprehensiveness(systems):
        print(f"  {coverage:5.1%}  {name}")
    print()

    print("Footprint similarity (Jaccard):")
    matrix = similarity_matrix(systems)
    names = [s.name for s in systems]
    for i, name in enumerate(names):
        row = "  ".join(f"{matrix[i, j]:.2f}" for j in range(len(names)))
        print(f"  {name:>28}  {row}")
    print()

    gaps = gap_report(grid)
    print("Gap analysis of the survey corpus:")
    for line in gaps or ["  (no gaps: every cell is populated)"]:
        print(f"  {line}")
    print()

    print("Staged roadmap for a greenfield site (first 8 steps):")
    for step in plan_roadmap([], horizon=8):
        print(f"  {step.priority}. {step.cell.label}")
        print(f"     {step.rationale}")


if __name__ == "__main__":
    main()
