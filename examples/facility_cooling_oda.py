#!/usr/bin/env python
"""Infrastructure ODA end-to-end: the Bortot et al. (ENI) scenario [39].

Section V-A's worked example: a diagnostic component identifies anomalies
in infrastructure machinery — aided by periodic stress testing — and a
prescriptive component determines optimal cooling setpoints.  We inject a
pump degradation and a chiller fouling fault, run stress tests, detect
both from telemetry, trace the root cause, then learn a cooling
performance model and let the setpoint optimizer drive the loop.

Run:  python examples/facility_cooling_oda.py
"""

from __future__ import annotations

import numpy as np

from repro.analytics.diagnostic import RootCauseAnalyzer, ZScoreDetector
from repro.analytics.predictive import CoolingPerformanceModel
from repro.analytics.prescriptive import SetpointOptimizer
from repro.facility import CoolingMode, FaultKind
from repro.oda import DataCenter, build_eni_like

DAY = 86_400.0


def main() -> None:
    print("=== Setup: mid-summer site on chilled water (chillers engaged) ===")
    dc = DataCenter(seed=21, racks=2, nodes_per_rack=8, start_time=170 * DAY)
    loop = dc.facility.plant.loops[0]
    loop.set_mode(CoolingMode.CHILLER)
    dc.generate_workload(days=2.0, jobs_per_day=60)
    eni = build_eni_like(dc)

    t0 = dc.sim.now
    pump = loop.pump
    chiller = loop.chiller
    injector_ready = dc.facility.fault_injector is not None
    assert injector_ready
    # Ground truth: pump wear after 8 h, chiller fouling after 20 h.
    dc.facility.fault_injector.inject(
        pump, FaultKind.DEGRADATION, start=t0 + 8 * 3600, duration=30 * 3600, severity=0.55,
    )
    dc.facility.fault_injector.inject(
        chiller, FaultKind.DEGRADATION, start=t0 + 20 * 3600, duration=20 * 3600, severity=0.6,
    )
    # Periodic stress tests (the [39] detection aid).
    for hour in (6, 18, 30, 42):
        dc.sim.schedule_at(
            t0 + hour * 3600,
            lambda sim: dc.facility.stress_test(sim, duration=900.0),
            label="stress",
        )

    dc.run(days=2.0)
    print(f"ran 2 days; injected faults: "
          f"{[(f.component, f.kind.value) for f in dc.facility.fault_injector.injected]}\n")

    print("=== Diagnostic: detect degraded machinery from telemetry ===")
    detector = ZScoreDetector(window=60, threshold=5.0)
    for metric, label in [
        (f"facility.{loop.name}.pump.power", "pump power"),
        (f"facility.{loop.name}.chiller.power", "chiller power"),
    ]:
        times, values = dc.store.query(metric, t0, dc.sim.now)
        finite = np.isfinite(values)
        scores = detector.score(values[finite])
        flagged = times[finite][scores > detector.threshold]
        if flagged.size:
            first = (flagged[0] - t0) / 3600.0
            print(f"  {label}: anomaly first flagged {first:.1f} h into the run "
                  f"({flagged.size} anomalous samples)")
        else:
            print(f"  {label}: no anomaly flagged")

    print("\n=== Root cause: what moved first? ===")
    rca = RootCauseAnalyzer(dc.store, baseline_s=6 * 3600.0)
    symptom = f"facility.{loop.name}.cooling_power"
    candidates = [
        f"facility.{loop.name}.pump.power",
        f"facility.{loop.name}.chiller.power",
        f"facility.{loop.name}.chiller.cop",
        "facility.weather.drybulb",
    ]
    for cause in rca.rank_causes(symptom, t0 + 9 * 3600, t0 + 16 * 3600, candidates, top=3):
        print(f"  {cause.metric}: score {cause.score:.1f}, "
              f"deviation {cause.deviation:.1f} sigma, lead {cause.lead_s/60:.0f} min")

    print("\n=== Trace correlation: events preceding the symptom ===")
    for record in rca.preceding_events(dc.trace, t0 + 9 * 3600, lookback_s=2 * 3600.0,
                                       kinds=("fault_onset", "stress_test_start"))[:3]:
        print(f"  t+{(record.time - t0)/3600:.1f}h  {record.source}: {record.kind}")

    print("\n=== Prescriptive: learn the plant, optimize the setpoint ===")
    model = CoolingPerformanceModel().fit_from_store(dc.store, t0, dc.sim.now, loop=loop.name)
    optimizer = SetpointOptimizer(dc.facility, loop, model, max_inlet_c=30.0)
    best = optimizer.best_setpoint()
    weather = dc.facility.current_weather
    sweep = model.setpoint_sensitivity(
        loop.heat_load_w, weather.drybulb_c, weather.wetbulb_c,
        np.array([14.0, 18.0, 24.0, 30.0, 36.0]),
    )
    print(f"  current setpoint: {loop.supply_setpoint_c:.1f} C, model-optimal: {best:.1f} C")
    for sp, power in zip((14, 18, 24, 30, 36), sweep):
        marker = " <- optimal region" if abs(sp - best) <= 3 else ""
        print(f"    setpoint {sp:>2} C -> predicted cooling power {power/1e3:7.2f} kW{marker}")

    print("\n=== The deployed system, framed ===")
    print(eni.describe())


if __name__ == "__main__":
    main()
