#!/usr/bin/env python
"""Fault-tolerant telemetry: dirty sensors, broken sinks, and self-metrics.

Production ODA runs against imperfect monitoring stacks: sensors drop out,
stick, spike and drift; downstream consumers crash.  This example builds a
small telemetry pipeline, injects the classic sensor pathologies with
:class:`FaultySource`, breaks one bus subscriber on purpose, and shows how
the pipeline degrades gracefully instead of dying:

* the raising sink is quarantined and its failed deliveries parked in the
  dead-letter queue (then replayed after "fixing" it),
* the flaky sensor is retried with backoff and its errors counted,
* the pipeline publishes its own health metrics (``telemetry.*``),
* a stale-data alert fires for a sensor that goes completely silent.

Run:  python examples/telemetry_resilience.py
"""

from __future__ import annotations

import numpy as np

from repro.simulation import Simulator
from repro.telemetry import (
    FaultySource,
    Sampler,
    SensorFaultKind,
    StaleDataRule,
    TelemetrySystem,
)


def main() -> None:
    sim = Simulator()
    telemetry = TelemetrySystem(health_period=60.0)

    print("=== 1. A pipeline with injected sensor pathologies ===")
    rng = np.random.default_rng(7)

    def power_source(now):
        return {"rack0.power": 12_000.0 + 500.0 * np.sin(now / 600.0)}

    faulty = FaultySource(power_source, rng, dropout_prob=0.10)
    faulty.inject(SensorFaultKind.STUCK, start=600.0, duration=300.0)
    faulty.inject(SensorFaultKind.SPIKE, start=1500.0, duration=60.0,
                  magnitude=8.0)

    agent = telemetry.new_agent("site", period=30.0)
    agent.add_sampler(Sampler("rack0", faulty))
    dead_sensor = agent.add_sampler(
        Sampler("rack1", lambda now: {"rack1.power": 11_500.0})
    )

    print("=== 2. A broken subscriber (crashes on every delivery) ===")

    def broken_sink(topic, batch):
        raise RuntimeError("downstream analytics service is down")

    broken = telemetry.bus.subscribe("rack*", broken_sink)

    telemetry.alerts.add_stale_rule(
        StaleDataRule("no-data", "rack*.power", max_age=120.0)
    )

    telemetry.start_all(sim)
    sim.run_until(1800.0)

    print("=== 3. Kill rack1's sensor entirely; keep running ===")

    def dead(now):
        raise RuntimeError("sensor hardware failure")

    dead_sensor.source = dead
    sim.run_until(3600.0)
    print(f"simulation completed: {sim.events_executed} events, no crash\n")

    print("=== 4. What the pipeline absorbed ===")
    kinds = {k.value: v for k, v in faulty.counts.items() if v}
    print(f"  injected sensor faults: {kinds}")
    print(f"  rack0 scrape errors (dropouts): {agent.samplers[0].errors}")
    print(f"  rack1 scrape errors (dead sensor): {dead_sensor.errors}")
    print(f"  broken sink quarantined: {broken.quarantined} "
          f"after {broken.errors} failures")
    print(f"  dead-letter queue depth: {telemetry.bus.dead_letter_count}\n")

    print("=== 5. Pipeline self-metrics, straight from the store ===")
    for name in (
        "telemetry.bus.delivered",
        "telemetry.bus.delivery_errors",
        "telemetry.bus.dead_letters",
        "telemetry.agent.site.scrape_errors",
        "telemetry.store.samples",
    ):
        _, value = telemetry.store.latest(name)
        print(f"  {name}: {value:.0f}")
    print()

    print("=== 6. Alerts raised ===")
    for alert in telemetry.alerts.history:
        state = "ACTIVE" if alert.active else f"cleared at {alert.cleared_at:.0f}s"
        print(f"  [{alert.rule.name}] {alert.metric} "
              f"raised at t={alert.raised_at:.0f}s ({state})")
    print()

    print("=== 7. Fix the sink and replay the dead letters ===")
    delivered = []
    broken.callback = lambda topic, batch: delivered.append(topic)
    broken.reset()
    replayed = telemetry.bus.replay_dead_letters(broken)
    print(f"  replayed {replayed} parked batches into the repaired sink; "
          f"queue depth now {telemetry.bus.dead_letter_count}")


if __name__ == "__main__":
    main()
