"""Discrete-event simulation engine.

The engine is the heartbeat of the synthetic data center: every physical
model (cooling loops, compute nodes, schedulers, telemetry samplers) advances
by scheduling events on a shared :class:`Simulator`.

Design notes
------------
* Time is a ``float`` number of seconds since simulation start.  All
  substrate models use SI units throughout (watts, kelvin offsets in celsius,
  bytes, seconds) so analytics code never unit-juggles.
* The event queue is a binary heap keyed on ``(time, priority, seq)``.  The
  monotonically increasing sequence number makes ordering deterministic for
  simultaneous events, which keeps whole-simulation runs reproducible
  bit-for-bit given a seed.
* Handlers are plain callables ``handler(sim) -> None``.  Periodic activities
  use :meth:`Simulator.schedule_periodic`, which reschedules itself until
  cancelled; this is how telemetry samplers and physics ticks are driven.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

from repro.errors import SimulationError

__all__ = ["Event", "Simulator", "PeriodicHandle"]

Handler = Callable[["Simulator"], None]


@dataclass(order=True)
class Event:
    """A single scheduled occurrence in the simulation.

    Events sort by ``(time, priority, seq)``; lower priority values run
    first among simultaneous events.  ``seq`` breaks remaining ties in
    insertion order so execution is fully deterministic.
    """

    time: float
    priority: int
    seq: int
    handler: Handler = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event so the simulator skips it when popped."""
        self.cancelled = True


class PeriodicHandle:
    """Handle returned by :meth:`Simulator.schedule_periodic`.

    Allows cancelling the recurring activity and inspecting its period.
    """

    def __init__(self, period: float, label: str):
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self.period = period
        self.label = label
        self._active = True
        self._current: Optional[Event] = None

    @property
    def active(self) -> bool:
        """Whether the periodic activity is still scheduled."""
        return self._active

    def cancel(self) -> None:
        """Stop the periodic activity after the currently pending firing."""
        self._active = False
        if self._current is not None:
            self._current.cancel()


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    start_time:
        Initial simulation clock value in seconds.  Non-zero starts are
        useful when replaying from a checkpointed trace.

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(5.0, lambda s: fired.append(s.now))
    >>> sim.run_until(10.0)
    >>> fired
    [5.0]
    """

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        self._queue: list[Event] = []
        self._seq = itertools.count()
        self._running = False
        self._events_executed = 0

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Number of events executed so far (cancelled events excluded)."""
        return self._events_executed

    @property
    def pending(self) -> int:
        """Number of events currently in the queue (including cancelled)."""
        return len(self._queue)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        handler: Handler,
        *,
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule ``handler`` to run ``delay`` seconds from now.

        Returns the :class:`Event`, which may be cancelled before it fires.
        """
        if delay < 0:
            raise SimulationError(
                f"cannot schedule event in the past: delay={delay}"
            )
        event = Event(self._now + delay, priority, next(self._seq), handler, label)
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(
        self,
        time: float,
        handler: Handler,
        *,
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule ``handler`` at an absolute simulation time."""
        return self.schedule(time - self._now, handler, priority=priority, label=label)

    def schedule_periodic(
        self,
        period: float,
        handler: Handler,
        *,
        start_delay: float | None = None,
        priority: int = 0,
        label: str = "",
    ) -> PeriodicHandle:
        """Schedule ``handler`` every ``period`` seconds until cancelled.

        ``start_delay`` defaults to one full period (i.e. the first firing is
        at ``now + period``); pass ``0.0`` to fire immediately.
        """
        handle = PeriodicHandle(period, label)
        first = period if start_delay is None else start_delay

        def tick(sim: "Simulator") -> None:
            if not handle.active:
                return
            handler(sim)
            if handle.active:
                handle._current = sim.schedule(
                    handle.period, tick, priority=priority, label=label
                )

        handle._current = self.schedule(first, tick, priority=priority, label=label)
        return handle

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next non-cancelled event.

        Returns ``True`` if an event ran, ``False`` if the queue is empty.
        """
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            if event.time < self._now:
                raise SimulationError(
                    f"event {event.label!r} scheduled at {event.time} "
                    f"before current time {self._now}"
                )
            self._now = event.time
            event.handler(self)
            self._events_executed += 1
            return True
        return False

    def run_until(self, end_time: float) -> None:
        """Run all events with ``time <= end_time``, then set ``now``.

        The clock always lands exactly on ``end_time`` so back-to-back calls
        compose: ``run_until(t1); run_until(t2)`` is equivalent to
        ``run_until(t2)`` for ``t1 <= t2``.
        """
        if end_time < self._now:
            raise SimulationError(
                f"cannot run backwards: now={self._now}, end={end_time}"
            )
        if self._running:
            raise SimulationError("simulator is already running (reentrant call)")
        self._running = True
        try:
            while self._queue:
                head = self._queue[0]
                if head.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if head.time > end_time:
                    break
                self.step()
            self._now = end_time
        finally:
            self._running = False

    def run(self, duration: float) -> None:
        """Run for ``duration`` seconds of simulated time from ``now``."""
        self.run_until(self._now + duration)

    def drain(self, max_events: int = 1_000_000) -> int:
        """Run until the queue is empty; returns the number of events run.

        ``max_events`` guards against self-perpetuating periodic activities.
        """
        ran = 0
        while self.step():
            ran += 1
            if ran >= max_events:
                raise SimulationError(
                    f"drain exceeded max_events={max_events}; "
                    "cancel periodic activities before draining"
                )
        return ran

    def iter_labels(self) -> Iterator[str]:
        """Yield labels of pending (non-cancelled) events, soonest first."""
        for event in sorted(e for e in self._queue if not e.cancelled):
            yield event.label
