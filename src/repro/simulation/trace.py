"""Event tracing: a structured record of everything notable a simulation did.

The trace is the simulation-side analogue of a site's operational log
stream: job events, fault injections, control actions and alerts all land
here.  Diagnostic analytics (root-cause analysis, crisis fingerprinting)
consume it alongside numeric telemetry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, List, Mapping, Optional

__all__ = ["TraceRecord", "TraceLog"]


@dataclass(frozen=True)
class TraceRecord:
    """One structured log line.

    Attributes
    ----------
    time:
        Simulation time in seconds.
    source:
        Hierarchical component id, e.g. ``"facility.chiller0"`` or
        ``"scheduler"``.
    kind:
        Event category, e.g. ``"job_start"``, ``"fault"``, ``"control"``.
    detail:
        Free-form payload; keys depend on ``kind`` but are stable per kind.
    """

    time: float
    source: str
    kind: str
    detail: Mapping[str, Any] = field(default_factory=dict)

    def matches(self, *, source: Optional[str] = None, kind: Optional[str] = None) -> bool:
        """Whether the record matches the given source prefix and/or kind."""
        if kind is not None and self.kind != kind:
            return False
        if source is not None and not self.source.startswith(source):
            return False
        return True


class TraceLog:
    """Append-only in-memory log of :class:`TraceRecord` entries.

    The log preserves insertion order, which for a deterministic simulator
    equals time order.  Filtering helpers return lists (cheap at the scales
    involved) so analytics code can index freely.
    """

    def __init__(self, capacity: Optional[int] = None):
        self._records: List[TraceRecord] = []
        self._capacity = capacity
        self._subscribers: List[Callable[[TraceRecord], None]] = []

    def emit(self, time: float, source: str, kind: str, **detail: Any) -> TraceRecord:
        """Append a record and notify subscribers; returns the record."""
        record = TraceRecord(time=time, source=source, kind=kind, detail=detail)
        self._records.append(record)
        if self._capacity is not None and len(self._records) > self._capacity:
            # Drop the oldest half in one slice to amortise the cost.
            del self._records[: len(self._records) // 2]
        for callback in self._subscribers:
            callback(record)
        return record

    def subscribe(self, callback: Callable[[TraceRecord], None]) -> None:
        """Register a callback invoked synchronously on every new record."""
        self._subscribers.append(callback)

    def select(
        self,
        *,
        source: Optional[str] = None,
        kind: Optional[str] = None,
        since: float = float("-inf"),
        until: float = float("inf"),
    ) -> List[TraceRecord]:
        """Return records matching the filters, in time order."""
        return [
            r
            for r in self._records
            if since <= r.time <= until and r.matches(source=source, kind=kind)
        ]

    def kinds(self) -> List[str]:
        """Distinct record kinds present, sorted."""
        return sorted({r.kind for r in self._records})

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def __getitem__(self, index: int) -> TraceRecord:
        return self._records[index]
