"""Seeded, named random-number streams for reproducible simulations.

Every stochastic component in the substrate draws from its own named stream
derived from a single root seed.  This gives two properties the benchmarks
rely on:

* **Reproducibility** — the same root seed always produces the same
  simulation trajectory.
* **Isolation** — adding a new component (a new stream name) does not
  perturb the draws of existing components, because each stream is seeded
  from ``hash(root_seed, name)`` via :class:`numpy.random.SeedSequence`
  rather than by order of creation.
"""

from __future__ import annotations

import zlib
from typing import Dict

import numpy as np

__all__ = ["RngPool"]


class RngPool:
    """Factory of named, independently seeded NumPy generators.

    Examples
    --------
    >>> pool = RngPool(seed=42)
    >>> a = pool.stream("weather")
    >>> b = pool.stream("weather")
    >>> a is b  # streams are cached by name
    True
    >>> float(a.random()) == float(RngPool(42).stream("weather").random())
    True
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        gen = self._streams.get(name)
        if gen is None:
            # crc32 is stable across processes (unlike hash()) and spreads
            # short component names well enough for SeedSequence mixing.
            key = zlib.crc32(name.encode("utf-8"))
            seq = np.random.SeedSequence(entropy=self.seed, spawn_key=(key,))
            gen = np.random.default_rng(seq)
            self._streams[name] = gen
        return gen

    def spawn(self, name: str) -> "RngPool":
        """Derive a child pool whose streams are independent of the parent.

        Useful when an experiment runs several simulations from one seed.
        """
        key = zlib.crc32(name.encode("utf-8"))
        return RngPool(seed=(self.seed * 1_000_003 + key) % (2**63))

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def __repr__(self) -> str:
        return f"RngPool(seed={self.seed}, streams={sorted(self._streams)})"
