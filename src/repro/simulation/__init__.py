"""Discrete-event simulation substrate.

Provides the deterministic event engine (:class:`~repro.simulation.engine.Simulator`),
named seeded RNG streams (:class:`~repro.simulation.rng.RngPool`) and the
structured event trace (:class:`~repro.simulation.trace.TraceLog`) that every
other substrate package builds on.
"""

from repro.simulation.engine import Event, PeriodicHandle, Simulator
from repro.simulation.rng import RngPool
from repro.simulation.trace import TraceLog, TraceRecord

__all__ = [
    "Event",
    "PeriodicHandle",
    "Simulator",
    "RngPool",
    "TraceLog",
    "TraceRecord",
]
