"""Synthetic workload-trace generation.

Produces the stream of job submissions the software pillar schedules.  The
generator preserves the statistical structure job-level predictive ODA
depends on:

* **User communities** — each synthetic user has a small repertoire of
  applications and characteristic job sizes, and resubmits similar jobs
  (per-user history is the strongest predictor of runtime in the surveyed
  works [30][34][35]).
* **Submission rhythm** — a non-homogeneous Poisson process modulated by
  daily and weekly cycles (quiet nights and weekends).
* **Heavy-tailed runtimes** — lognormal work distributions per application.
* **Walltime over-estimation** — requested walltime is actual runtime times
  a user-specific overestimation factor, as observed in production traces.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.apps.profiles import AppProfile, ProfileCatalog, default_catalog
from repro.errors import ConfigurationError
from repro.facility.weather import DAY

__all__ = ["JobRequest", "SyntheticUser", "WorkloadGenerator"]

WEEK = 7 * DAY


@dataclass(frozen=True)
class JobRequest:
    """One job submission, before it enters the scheduler queue.

    Attributes
    ----------
    job_id:
        Unique identifier, e.g. ``"job0042"``.
    submit_time:
        Simulation time of submission (seconds).
    user:
        Submitting user id.
    profile:
        The application being run.
    nodes:
        Number of nodes requested.
    work_s:
        True total work in work-seconds (hidden from the scheduler).
    walltime_req_s:
        User-requested walltime limit (visible to the scheduler).
    """

    job_id: str
    submit_time: float
    user: str
    profile: AppProfile
    nodes: int
    work_s: float
    walltime_req_s: float

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ConfigurationError(f"{self.job_id}: nodes must be >= 1")
        if self.work_s <= 0 or self.walltime_req_s <= 0:
            raise ConfigurationError(f"{self.job_id}: work and walltime must be > 0")


@dataclass
class SyntheticUser:
    """A user with a stable application repertoire and habits."""

    name: str
    apps: List[AppProfile]
    app_weights: np.ndarray
    size_bias: float          # multiplies the app's typical node counts
    work_scale: float         # multiplies the app's typical work
    overestimate_mean: float  # mean walltime overestimation factor
    activity: float           # relative submission intensity


class WorkloadGenerator:
    """Generates reproducible synthetic job traces.

    Parameters
    ----------
    rng:
        Seeded generator; identical seeds give identical traces.
    catalog:
        Application profiles to draw from.
    users:
        Number of synthetic users in the community.
    jobs_per_day:
        Mean submission rate at peak hours.
    miner_fraction:
        Probability that a submission is a rogue cryptominer job regardless
        of the owning user's repertoire (kept small; fingerprinting
        benchmarks raise it).
    """

    def __init__(
        self,
        rng: np.random.Generator,
        catalog: Optional[ProfileCatalog] = None,
        users: int = 12,
        jobs_per_day: float = 120.0,
        miner_fraction: float = 0.0,
        max_nodes: int = 64,
    ):
        self.rng = rng
        self.catalog = catalog or default_catalog()
        self.jobs_per_day = jobs_per_day
        self.miner_fraction = miner_fraction
        self.max_nodes = max_nodes
        self.users = self._make_users(users)
        self._counter = 0

    def _make_users(self, count: int) -> List[SyntheticUser]:
        profiles = [p for p in self.catalog if p.name != "cryptominer"]
        users = []
        for i in range(count):
            repertoire_size = int(self.rng.integers(1, min(4, len(profiles)) + 1))
            idx = self.rng.choice(len(profiles), size=repertoire_size, replace=False)
            apps = [profiles[j] for j in idx]
            weights = self.rng.dirichlet(np.ones(repertoire_size) * 2.0)
            users.append(
                SyntheticUser(
                    name=f"user{i:02d}",
                    apps=apps,
                    app_weights=weights,
                    size_bias=float(self.rng.uniform(0.5, 2.0)),
                    work_scale=float(self.rng.lognormal(0.0, 0.3)),
                    overestimate_mean=float(self.rng.uniform(1.3, 3.5)),
                    activity=float(self.rng.lognormal(0.0, 0.6)),
                )
            )
        return users

    # ------------------------------------------------------------------
    def intensity(self, time: float) -> float:
        """Relative submission intensity at ``time`` (peak = 1.0).

        Daily cycle: submissions concentrate in working hours; weekly
        cycle: weekends at ~35 % of weekday intensity.
        """
        hour = (time % DAY) / 3600.0
        daily = 0.25 + 0.75 * max(math.sin(math.pi * (hour - 7.0) / 13.0), 0.0)
        weekday = (time % WEEK) / DAY
        weekly = 0.35 if weekday >= 5.0 else 1.0
        return daily * weekly

    # ------------------------------------------------------------------
    def _draw_job(self, submit_time: float) -> JobRequest:
        self._counter += 1
        job_id = f"job{self._counter:05d}"

        if self.miner_fraction > 0 and self.rng.random() < self.miner_fraction:
            user = self.users[int(self.rng.integers(len(self.users)))]
            profile = self.catalog.get("cryptominer")
        else:
            weights = np.array([u.activity for u in self.users])
            user = self.users[int(self.rng.choice(len(self.users), p=weights / weights.sum()))]
            profile = user.apps[int(self.rng.choice(len(user.apps), p=user.app_weights))]

        nodes_choices = np.array(profile.typical_nodes, dtype=float) * user.size_bias
        nodes = int(np.clip(round(float(self.rng.choice(nodes_choices))), 1, self.max_nodes))
        work = float(
            profile.typical_work_s
            * user.work_scale
            * self.rng.lognormal(0.0, 0.45)
        )
        work = float(np.clip(work, 300.0, 48 * 3600.0))
        over = max(float(self.rng.normal(user.overestimate_mean, 0.4)), 1.2)
        walltime = min(work * over, 72 * 3600.0)
        return JobRequest(
            job_id=job_id,
            submit_time=submit_time,
            user=user.name,
            profile=profile,
            nodes=nodes,
            work_s=work,
            walltime_req_s=walltime,
        )

    def generate(self, start: float, horizon: float) -> List[JobRequest]:
        """Generate all submissions in ``[start, start + horizon)``.

        Uses Poisson thinning of the non-homogeneous intensity so the trace
        is exact for the configured ``jobs_per_day`` at peak.
        """
        peak_rate = self.jobs_per_day / DAY  # jobs per second at intensity 1
        requests: List[JobRequest] = []
        t = start
        while t < start + horizon:
            t += float(self.rng.exponential(1.0 / peak_rate))
            if t >= start + horizon:
                break
            if self.rng.random() < self.intensity(t):
                requests.append(self._draw_job(t))
        return requests
