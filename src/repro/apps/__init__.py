"""Applications substrate (the fourth pillar).

Phase-structured application profiles with separable telemetry signatures,
a reproducible synthetic workload generator with user communities and
daily/weekly submission cycles, and per-region instrumentation for
profiling-based ODA.
"""

from repro.apps.generator import JobRequest, SyntheticUser, WorkloadGenerator
from repro.apps.instrumentation import RegionProfile, profile_regions
from repro.apps.profiles import (
    AppClass,
    AppPhase,
    AppProfile,
    ProfileCatalog,
    default_catalog,
)

__all__ = [
    "JobRequest",
    "SyntheticUser",
    "WorkloadGenerator",
    "RegionProfile",
    "profile_regions",
    "AppClass",
    "AppPhase",
    "AppProfile",
    "ProfileCatalog",
    "default_catalog",
]
