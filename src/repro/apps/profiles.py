"""Application profiles: phase-structured synthetic HPC workloads.

Each application is a cyclic sequence of phases (compute, memory, I/O,
communication, checkpoint...), every phase carrying the per-node resource
demands of :class:`~repro.cluster.node.NodeLoad`.  Distinct application
classes have distinct multi-dimensional telemetry signatures, which is what
application fingerprinting (Taxonomist [33], DeMasi et al. [36]) and
performance-pattern diagnosis (Imes et al. [20]) rely on — including the
paper's canonical rogue workload, the cryptocurrency miner.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.node import NodeLoad
from repro.errors import ConfigurationError

__all__ = ["AppClass", "AppPhase", "AppProfile", "ProfileCatalog", "default_catalog"]


class AppClass(Enum):
    """Coarse application families with separable telemetry signatures."""

    COMPUTE_BOUND = "compute_bound"
    MEMORY_BOUND = "memory_bound"
    IO_BOUND = "io_bound"
    NETWORK_BOUND = "network_bound"
    MIXED = "mixed"
    CRYPTOMINER = "cryptominer"


@dataclass(frozen=True)
class AppPhase:
    """One phase of an application's execution cycle.

    ``work_s`` is the phase length in *work seconds*: wall-clock time when
    the node progresses at rate 1.0 (nominal frequency, no contention).
    """

    name: str
    work_s: float
    load: NodeLoad

    def __post_init__(self) -> None:
        if self.work_s <= 0:
            raise ConfigurationError(f"phase {self.name}: work_s must be positive")


@dataclass(frozen=True)
class AppProfile:
    """A named application: class, phase cycle and sizing defaults.

    The phase cycle repeats until the job's total work is exhausted, so a
    long job shows the periodic telemetry pattern real iterative solvers
    produce (e.g. compute bursts punctuated by checkpoint I/O).
    """

    name: str
    app_class: AppClass
    phases: Tuple[AppPhase, ...]
    typical_nodes: Tuple[int, ...] = (1, 2, 4)
    typical_work_s: float = 3600.0

    def __post_init__(self) -> None:
        if not self.phases:
            raise ConfigurationError(f"profile {self.name} has no phases")

    @property
    def cycle_work_s(self) -> float:
        """Total work seconds of one full phase cycle."""
        return sum(p.work_s for p in self.phases)

    def phase_at(self, work_done_s: float) -> AppPhase:
        """The phase active after ``work_done_s`` seconds of completed work."""
        offset = work_done_s % self.cycle_work_s
        for phase in self.phases:
            if offset < phase.work_s:
                return phase
            offset -= phase.work_s
        return self.phases[-1]

    def mean_load(self) -> NodeLoad:
        """Work-weighted average load over one cycle (for quick estimates)."""
        total = self.cycle_work_s
        acc = {
            "cpu_util": 0.0, "mem_bw_util": 0.0, "mem_occupancy": 0.0,
            "io_bw_bytes": 0.0, "net_bw_bytes": 0.0, "compute_fraction": 0.0,
            "flops_per_second": 0.0,
        }
        for phase in self.phases:
            weight = phase.work_s / total
            for key in acc:
                acc[key] += weight * getattr(phase.load, key)
        return NodeLoad(**acc)


class ProfileCatalog:
    """Registry of application profiles keyed by name."""

    def __init__(self, profiles: Optional[Sequence[AppProfile]] = None):
        self._profiles: Dict[str, AppProfile] = {}
        for profile in profiles or ():
            self.add(profile)

    def add(self, profile: AppProfile) -> AppProfile:
        if profile.name in self._profiles:
            raise ConfigurationError(f"duplicate profile {profile.name!r}")
        self._profiles[profile.name] = profile
        return profile

    def get(self, name: str) -> AppProfile:
        try:
            return self._profiles[name]
        except KeyError:
            raise ConfigurationError(f"unknown application profile {name!r}") from None

    def names(self) -> List[str]:
        return sorted(self._profiles)

    def __len__(self) -> int:
        return len(self._profiles)

    def __iter__(self):
        return iter(self._profiles.values())

    def by_class(self, app_class: AppClass) -> List[AppProfile]:
        return [p for p in self._profiles.values() if p.app_class is app_class]


def _phase(name: str, work_s: float, **load_kwargs: float) -> AppPhase:
    return AppPhase(name=name, work_s=work_s, load=NodeLoad(**load_kwargs))


def default_catalog() -> ProfileCatalog:
    """The stock application mix used by examples and benchmarks.

    Classes are chosen so that (a) every boundedness family from the paper's
    diagnostic use cases is present, (b) signatures are separable but not
    trivially so (several share high CPU utilization and differ only in
    memory/network/IO dimensions), and (c) one profile is a cryptominer.
    """
    return ProfileCatalog(
        [
            AppProfile(
                name="cfd_solver",
                app_class=AppClass.COMPUTE_BOUND,
                phases=(
                    _phase("assemble", 120, cpu_util=0.95, mem_bw_util=0.35,
                           mem_occupancy=0.5, compute_fraction=0.85,
                           flops_per_second=0.55, net_bw_bytes=4e8),
                    _phase("solve", 600, cpu_util=0.98, mem_bw_util=0.3,
                           mem_occupancy=0.5, compute_fraction=0.9,
                           flops_per_second=0.7, net_bw_bytes=6e8),
                    _phase("checkpoint", 60, cpu_util=0.2, mem_bw_util=0.1,
                           mem_occupancy=0.5, compute_fraction=0.1,
                           io_bw_bytes=1.5e9),
                ),
                typical_nodes=(4, 8, 16),
                typical_work_s=4 * 3600.0,
            ),
            AppProfile(
                name="md_sim",
                app_class=AppClass.COMPUTE_BOUND,
                phases=(
                    _phase("force_calc", 300, cpu_util=0.97, mem_bw_util=0.25,
                           mem_occupancy=0.3, compute_fraction=0.92,
                           flops_per_second=0.75, net_bw_bytes=3e8),
                    _phase("neighbor_update", 45, cpu_util=0.8, mem_bw_util=0.6,
                           mem_occupancy=0.3, compute_fraction=0.5,
                           flops_per_second=0.2, net_bw_bytes=8e8),
                ),
                typical_nodes=(2, 4, 8),
                typical_work_s=6 * 3600.0,
            ),
            AppProfile(
                name="climate_model",
                app_class=AppClass.MEMORY_BOUND,
                phases=(
                    _phase("dynamics", 400, cpu_util=0.85, mem_bw_util=0.9,
                           mem_occupancy=0.75, compute_fraction=0.35,
                           flops_per_second=0.25, net_bw_bytes=1.2e9),
                    _phase("physics", 200, cpu_util=0.9, mem_bw_util=0.7,
                           mem_occupancy=0.75, compute_fraction=0.55,
                           flops_per_second=0.4, net_bw_bytes=5e8),
                    _phase("history_write", 80, cpu_util=0.15, mem_bw_util=0.2,
                           mem_occupancy=0.75, compute_fraction=0.05,
                           io_bw_bytes=2.5e9),
                ),
                typical_nodes=(8, 16, 32),
                typical_work_s=8 * 3600.0,
            ),
            AppProfile(
                name="graph_analytics",
                app_class=AppClass.MEMORY_BOUND,
                phases=(
                    _phase("traverse", 500, cpu_util=0.7, mem_bw_util=0.95,
                           mem_occupancy=0.9, compute_fraction=0.15,
                           flops_per_second=0.05, net_bw_bytes=1.5e9),
                    _phase("aggregate", 100, cpu_util=0.75, mem_bw_util=0.5,
                           mem_occupancy=0.9, compute_fraction=0.4,
                           flops_per_second=0.1, net_bw_bytes=2e9),
                ),
                typical_nodes=(2, 4),
                typical_work_s=2 * 3600.0,
            ),
            AppProfile(
                name="genomics_pipeline",
                app_class=AppClass.IO_BOUND,
                phases=(
                    _phase("ingest", 200, cpu_util=0.3, mem_bw_util=0.2,
                           mem_occupancy=0.4, compute_fraction=0.1,
                           io_bw_bytes=4e9),
                    _phase("align", 300, cpu_util=0.85, mem_bw_util=0.45,
                           mem_occupancy=0.4, compute_fraction=0.6,
                           flops_per_second=0.15, io_bw_bytes=1e9),
                    _phase("write_results", 120, cpu_util=0.2, mem_bw_util=0.15,
                           mem_occupancy=0.4, compute_fraction=0.05,
                           io_bw_bytes=3.5e9),
                ),
                typical_nodes=(1, 2, 4),
                typical_work_s=3 * 3600.0,
            ),
            AppProfile(
                name="spectral_fft",
                app_class=AppClass.NETWORK_BOUND,
                phases=(
                    _phase("local_fft", 150, cpu_util=0.9, mem_bw_util=0.6,
                           mem_occupancy=0.6, compute_fraction=0.7,
                           flops_per_second=0.5, net_bw_bytes=8e8),
                    _phase("transpose", 250, cpu_util=0.5, mem_bw_util=0.4,
                           mem_occupancy=0.6, compute_fraction=0.1,
                           flops_per_second=0.05, net_bw_bytes=6e9),
                ),
                typical_nodes=(4, 8, 16),
                typical_work_s=2 * 3600.0,
            ),
            AppProfile(
                name="data_assimilation",
                app_class=AppClass.MIXED,
                phases=(
                    _phase("read_obs", 90, cpu_util=0.25, mem_bw_util=0.2,
                           mem_occupancy=0.55, compute_fraction=0.1,
                           io_bw_bytes=2e9),
                    _phase("analysis", 400, cpu_util=0.92, mem_bw_util=0.65,
                           mem_occupancy=0.55, compute_fraction=0.6,
                           flops_per_second=0.45, net_bw_bytes=1.5e9),
                    _phase("broadcast", 60, cpu_util=0.4, mem_bw_util=0.3,
                           mem_occupancy=0.55, compute_fraction=0.1,
                           net_bw_bytes=4e9),
                ),
                typical_nodes=(4, 8),
                typical_work_s=3 * 3600.0,
            ),
            AppProfile(
                name="cryptominer",
                app_class=AppClass.CRYPTOMINER,
                phases=(
                    # The signature that gives miners away: pegged CPU,
                    # minimal memory traffic, no I/O, no communication,
                    # perfectly flat over time.
                    _phase("hash", 3600, cpu_util=0.99, mem_bw_util=0.05,
                           mem_occupancy=0.05, compute_fraction=0.98,
                           flops_per_second=0.1),
                ),
                typical_nodes=(1,),
                typical_work_s=12 * 3600.0,
            ),
        ]
    )
