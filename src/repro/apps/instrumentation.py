"""Per-region application instrumentation (profiling data).

Application-pillar descriptive ODA includes profiling dashboards
(HPCtoolkit [10], ClusterCockpit [5]) built on per-code-region performance
data.  Here we derive region records from an application's phase structure:
each phase corresponds to a code region with a time share, arithmetic
intensity and bandwidth demand — enough to drive the roofline model [63]
and code-region performance prediction [24].
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.apps.profiles import AppProfile

__all__ = ["RegionProfile", "profile_regions"]

#: Machine constants used to convert normalized loads into roofline coords.
PEAK_GFLOPS = 3000.0
PEAK_MEM_BW_GBS = 200.0


@dataclass(frozen=True)
class RegionProfile:
    """Profiling record for one code region (one application phase).

    Attributes
    ----------
    region:
        Region (phase) name.
    time_share:
        Fraction of one cycle spent in this region at nominal speed.
    gflops:
        Achieved GFLOP/s while in the region.
    mem_bw_gbs:
        Achieved memory bandwidth (GB/s) while in the region.
    arithmetic_intensity:
        FLOP per byte moved — the roofline x-coordinate.
    compute_fraction:
        Frequency sensitivity of the region (for DVFS prediction).
    """

    region: str
    time_share: float
    gflops: float
    mem_bw_gbs: float
    arithmetic_intensity: float
    compute_fraction: float

    @property
    def memory_bound(self) -> bool:
        """Whether the roofline classifies the region as bandwidth-bound."""
        machine_balance = PEAK_GFLOPS / PEAK_MEM_BW_GBS
        return self.arithmetic_intensity < machine_balance


def profile_regions(profile: AppProfile) -> List[RegionProfile]:
    """Instrument an application: one record per phase of its cycle."""
    total = profile.cycle_work_s
    records: List[RegionProfile] = []
    for phase in profile.phases:
        gflops = phase.load.flops_per_second * PEAK_GFLOPS
        mem_bw = phase.load.mem_bw_util * PEAK_MEM_BW_GBS
        bytes_per_s = max(mem_bw * 1e9, 1.0)
        intensity = (gflops * 1e9) / bytes_per_s
        records.append(
            RegionProfile(
                region=phase.name,
                time_share=phase.work_s / total,
                gflops=gflops,
                mem_bw_gbs=mem_bw,
                arithmetic_intensity=intensity,
                compute_fraction=phase.load.compute_fraction,
            )
        )
    return records
