"""Staged ODA roadmap planning.

The paper argues the type axis "helps establish staged roadmaps in
planning for HPC ODA systems" (Section I): analytics types are usually
implemented in stages, and prescriptive capabilities want diagnostic and
predictive support underneath.  The planner turns a site's current grid
coverage into an ordered list of recommended next capabilities.

Rules encoded:

1. Within each pillar, build types in staged order — do not recommend
   prescriptive ODA for a pillar with no descriptive foundation.
2. Prefer widening a pillar that already has momentum (one step up) over
   starting a new pillar from scratch, reflecting the observed
   single-pillar prevalence (Section V-B).
3. Once every pillar has hindsight coverage (descriptive + diagnostic),
   recommend the foresight upgrades that enable proactive ODA.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Set, Tuple

from repro.core.pillars import PILLAR_ORDER, Pillar
from repro.core.types import TYPE_ORDER, AnalyticsType
from repro.core.usecase import GridCell

__all__ = ["RoadmapStep", "plan_roadmap"]


@dataclass(frozen=True)
class RoadmapStep:
    """One recommended capability acquisition."""

    cell: GridCell
    rationale: str
    priority: int  # 1 = do first


def plan_roadmap(covered: Sequence[GridCell], horizon: int = 8) -> List[RoadmapStep]:
    """Recommend the next ``horizon`` cells to build, in order.

    ``covered`` is the set of cells the site already operates.
    """
    have: Set[GridCell] = set(covered)
    steps: List[RoadmapStep] = []

    def next_stage(pillar: Pillar) -> int:
        """First missing stage index for a pillar (4 = complete)."""
        for analytics_type in TYPE_ORDER:
            if GridCell(analytics_type, pillar) not in have:
                return analytics_type.stage
        return len(TYPE_ORDER)

    while len(steps) < horizon:
        # Candidate per pillar: its next missing stage.
        candidates: List[Tuple[int, int, Pillar, AnalyticsType]] = []
        for pillar in PILLAR_ORDER:
            stage = next_stage(pillar)
            if stage >= len(TYPE_ORDER):
                continue
            analytics_type = TYPE_ORDER[stage]
            # Momentum: pillars with some coverage but incomplete stages
            # rank before untouched pillars at the same stage; untouched
            # pillars rank before deep specialization of a finished one.
            momentum = 0 if stage > 0 else 1
            candidates.append((stage, momentum, pillar, analytics_type))
        if not candidates:
            break
        candidates.sort(key=lambda c: (c[0], c[1], c[2].index))
        stage, momentum, pillar, analytics_type = candidates[0]
        cell = GridCell(analytics_type, pillar)
        have.add(cell)
        if stage == 0:
            rationale = (
                f"establish the descriptive foundation for {pillar.title}: "
                "no higher type is meaningful without monitoring and dashboards"
            )
        elif analytics_type.hindsight:
            rationale = (
                f"complete hindsight for {pillar.title}: diagnostic ODA "
                "automates the analyses operators do by hand"
            )
        elif analytics_type is AnalyticsType.PREDICTIVE:
            rationale = (
                f"add foresight to {pillar.title}: prediction turns reactive "
                "operation proactive and feeds prescriptive control"
            )
        else:
            rationale = (
                f"close the loop for {pillar.title}: prescriptive ODA converts "
                "the accumulated insight into knob settings"
            )
        steps.append(RoadmapStep(cell=cell, rationale=rationale, priority=len(steps) + 1))
    return steps
