"""Use-case and reference records for the framework.

The survey's unit of analysis: a :class:`UseCase` is one decomposed ODA
capability (one bullet of Table I) sitting in exactly one grid cell, backed
by literature :class:`Reference` records.  A :class:`SystemProfile` groups
the cells one concrete ODA *system* covers (the footprints of Figure 3) —
the paper notes that real systems "may cover multiple framework categories
at the same time".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Tuple

from repro.core.pillars import Pillar
from repro.core.types import AnalyticsType

__all__ = ["GridCell", "Reference", "UseCase", "SystemProfile"]


@dataclass(frozen=True, order=True)
class GridCell:
    """One of the 16 cells of the 4x4 framework grid.

    Cells order by (analytics stage, pillar index) — enum members are not
    themselves orderable, so the comparable ``sort_index`` field carries
    the ordering and the enum fields are excluded from comparisons.
    """

    analytics_type: AnalyticsType = field(compare=False)
    pillar: Pillar = field(compare=False)
    sort_index: Tuple[int, int] = field(init=False, compare=True, repr=False)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "sort_index", (self.analytics_type.stage, self.pillar.index)
        )

    def __hash__(self) -> int:
        return hash((self.analytics_type, self.pillar))

    @property
    def label(self) -> str:
        return f"{self.analytics_type.title} x {self.pillar.title}"

    def __str__(self) -> str:
        return self.label


@dataclass(frozen=True)
class Reference:
    """One surveyed literature reference (a numbered paper citation)."""

    number: int          # the paper's bibliography number, e.g. 12 for [12]
    key: str             # short citation key, e.g. "jiang2019"
    title: str
    venue: str
    year: int

    def cite(self) -> str:
        return f"[{self.number}] {self.key}: {self.title} ({self.venue} {self.year})"


@dataclass(frozen=True)
class UseCase:
    """One decomposed ODA capability mapped to a single grid cell."""

    name: str
    cell: GridCell
    references: Tuple[int, ...]          # bibliography numbers
    description: str = ""
    #: Whether the capability's output is primarily visualization/reporting
    #: (vs automated control) — used for the Section II claim that
    #: visualization-oriented ODA dominates [13].
    control_oriented: bool = False
    #: The repro module(s) implementing this capability in the platform.
    implemented_by: Tuple[str, ...] = ()

    @property
    def pillar(self) -> Pillar:
        return self.cell.pillar

    @property
    def analytics_type(self) -> AnalyticsType:
        return self.cell.analytics_type


@dataclass(frozen=True)
class SystemProfile:
    """A concrete ODA system's footprint on the grid (Figure 3)."""

    name: str
    cells: FrozenSet[GridCell]
    references: Tuple[int, ...] = ()
    description: str = ""

    @property
    def pillars(self) -> FrozenSet[Pillar]:
        return frozenset(cell.pillar for cell in self.cells)

    @property
    def analytics_types(self) -> FrozenSet[AnalyticsType]:
        return frozenset(cell.analytics_type for cell in self.cells)

    @property
    def multi_pillar(self) -> bool:
        """Whether the system crosses pillar boundaries (Section V-B)."""
        return len(self.pillars) > 1

    @property
    def multi_type(self) -> bool:
        """Whether the system combines analytics types (Section V-A)."""
        return len(self.analytics_types) > 1

    @property
    def comprehensiveness(self) -> float:
        """Fraction of the 16 grid cells the system covers."""
        return len(self.cells) / 16.0

    def similarity(self, other: "SystemProfile") -> float:
        """Jaccard similarity of grid footprints — the paper's notion of
        comparing use cases 'based on their relative locations in the grid'."""
        union = self.cells | other.cells
        if not union:
            return 0.0
        return len(self.cells & other.cells) / len(union)
