"""The conceptual ODA framework as executable taxonomy (the paper's core).

Pillars and analytics types, the 4x4 grid, use-case and system records,
the full survey corpus (Table I), the lexicon classifier, survey analysis,
staged roadmap planning, and renderers for Table I and Figures 1-3.
"""

from repro.core.analysis import (
    SurveyStatistics,
    analyze_survey,
    gap_report,
    pillar_crossing_stats,
    rank_by_comprehensiveness,
    similarity_matrix,
)
from repro.core.classify import Classification, UseCaseClassifier
from repro.core.grid import FrameworkGrid, all_cells
from repro.core.pillars import PILLAR_ORDER, Pillar
from repro.core.render import (
    render_fig1,
    render_fig2,
    render_fig3,
    render_occupancy,
    render_table1,
)
from repro.core.roadmap import RoadmapStep, plan_roadmap
from repro.core.survey import REFERENCES, figure3_systems, survey_grid, table1_use_cases
from repro.core.types import TYPE_ORDER, TYPE_ORDER_TABLE1, AnalyticsType
from repro.core.usecase import GridCell, Reference, SystemProfile, UseCase

__all__ = [
    "SurveyStatistics",
    "analyze_survey",
    "gap_report",
    "pillar_crossing_stats",
    "rank_by_comprehensiveness",
    "similarity_matrix",
    "Classification",
    "UseCaseClassifier",
    "FrameworkGrid",
    "all_cells",
    "PILLAR_ORDER",
    "Pillar",
    "render_fig1",
    "render_fig2",
    "render_fig3",
    "render_occupancy",
    "render_table1",
    "RoadmapStep",
    "plan_roadmap",
    "REFERENCES",
    "figure3_systems",
    "survey_grid",
    "table1_use_cases",
    "TYPE_ORDER",
    "TYPE_ORDER_TABLE1",
    "AnalyticsType",
    "GridCell",
    "Reference",
    "SystemProfile",
    "UseCase",
]
