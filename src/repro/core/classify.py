"""Use-case classifier: map free-text ODA descriptions onto the grid.

The paper positions the framework as a tool practitioners apply by hand;
this module automates the mapping with a transparent lexicon-based scorer
so that sites can triage large capability inventories.  Each pillar and
each analytics type carries a keyword lexicon (with weights); a
description's cell is the (argmax type, argmax pillar) of its lexicon
scores.  The classifier is deliberately interpretable: ``explain()``
returns the matched terms, because a black-box taxonomy assistant would
defeat the framework's communication purpose.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.core.pillars import PILLAR_ORDER, Pillar
from repro.core.types import TYPE_ORDER, AnalyticsType
from repro.core.usecase import GridCell
from repro.errors import ClassificationError

__all__ = ["Classification", "UseCaseClassifier"]

# Weighted keyword lexicons.  Multi-word phrases are matched as substrings
# of the normalized text; single words on token boundaries.
_PILLAR_LEXICON: Dict[Pillar, Mapping[str, float]] = {
    Pillar.BUILDING_INFRASTRUCTURE: {
        "cooling": 2.0, "chiller": 3.0, "cooling tower": 3.0, "water": 1.5,
        "facility": 2.5, "data center": 1.5, "datacenter": 1.5, "pue": 3.0,
        "power distribution": 3.0, "ups": 2.0, "pump": 2.5, "infrastructure": 2.5,
        "building": 2.5, "utility": 2.0, "grid": 1.0, "weather": 2.0,
        "setpoint": 2.0, "inlet temperature": 2.0, "site power": 2.5,
    },
    Pillar.SYSTEM_HARDWARE: {
        "node": 1.5, "cpu": 2.0, "gpu": 2.0, "memory": 1.5, "sensor": 1.5,
        "frequency": 2.0, "dvfs": 3.0, "fan": 1.5, "temperature": 1.0,
        "hardware": 2.5, "network": 1.5, "interconnect": 2.5, "link": 1.5,
        "ecc": 3.0, "component failure": 2.5, "firmware": 2.5, "itue": 3.0,
        "instruction mix": 2.5, "fabric": 2.0,
    },
    Pillar.SYSTEM_SOFTWARE: {
        "schedul": 3.0, "queue": 2.0, "backfill": 3.0,
        "job placement": 2.0, "resource manager": 3.0, "operating system": 2.5,
        "os noise": 3.0, "kernel": 2.0, "runtime system": 2.0, "slowdown": 2.5,
        "workload management": 2.5, "software": 1.5, "allocation": 1.5,
        "dispatching": 2.5, "system software": 3.0,
    },
    Pillar.APPLICATIONS: {
        "application": 2.5, "job": 1.5, "code": 2.0, "user": 1.5,
        "auto-tuning": 2.0, "autotuning": 2.0, "roofline": 3.0, "loop": 1.5,
        "kernel performance": 2.0, "job duration": 2.5, "runtime prediction": 2.0,
        "profiling": 2.5, "instrumentation": 2.5, "region": 1.5,
        "workload": 1.0, "miner": 2.5, "fingerprint": 1.0,
    },
}

_TYPE_LEXICON: Dict[AnalyticsType, Mapping[str, float]] = {
    AnalyticsType.DESCRIPTIVE: {
        "dashboard": 3.0, "visualiz": 3.0, "monitor": 1.5, "display": 2.0,
        "report": 1.5, "calculation": 2.0, "indicator": 2.0, "metric": 1.5,
        "aggregation": 2.0, "heatmap": 2.5, "chart": 2.5, "plot": 2.0,
        "alert": 2.0, "threshold": 1.5, "collect": 1.5, "processing": 1.5,
    },
    AnalyticsType.DIAGNOSTIC: {
        "anomal": 3.0, "diagnos": 3.0, "root cause": 3.0, "detect": 2.5,
        "fingerprint": 2.5, "identify": 2.0, "classif": 2.0, "why": 2.0,
        "contention": 2.0, "fault analysis": 2.5, "noise": 1.5,
        "localization": 2.5, "stress test": 2.0, "pattern": 1.5,
    },
    AnalyticsType.PREDICTIVE: {
        "predict": 3.0, "forecast": 3.0, "anticipat": 2.5, "future": 2.0,
        "extrapolat": 2.5, "model": 1.0, "estimat": 1.5, "simulat": 2.0,
        "proactive": 2.0, "duration": 1.0, "failure prediction": 3.0,
        "demand": 1.5, "lstm": 2.0, "regression": 2.0,
    },
    AnalyticsType.PRESCRIPTIVE: {
        "optimiz": 2.5, "tuning": 2.5, "tune": 2.5, "control": 2.5,
        "actuate": 3.0, "knob": 3.0, "setpoint": 2.0, "recommend": 2.5,
        "schedul": 1.0, "placement": 2.0, "switch": 2.0, "cap": 1.5,
        "best course": 3.0, "decision": 1.5, "plan-based": 2.5, "respond": 3.5, "plan based": 3.0,
    },
}


@dataclass(frozen=True)
class Classification:
    """The classifier's verdict for one description."""

    cell: GridCell
    type_scores: Mapping[AnalyticsType, float]
    pillar_scores: Mapping[Pillar, float]
    matched_terms: Tuple[Tuple[str, float], ...]

    @property
    def confidence(self) -> float:
        """Margin-based confidence in [0, 1]: winner vs runner-up, averaged
        over the two axes."""
        def margin(scores: Mapping) -> float:
            ranked = sorted(scores.values(), reverse=True)
            if ranked[0] <= 0:
                return 0.0
            return (ranked[0] - ranked[1]) / ranked[0]

        return 0.5 * (margin(self.type_scores) + margin(self.pillar_scores))


class UseCaseClassifier:
    """Lexicon-based grid classifier with per-axis scores.

    Extend per site with :meth:`add_terms` — e.g. adding product names the
    lexicon does not know ("slurm" -> system software).
    """

    def __init__(self) -> None:
        self._pillar_lexicon = {p: dict(terms) for p, terms in _PILLAR_LEXICON.items()}
        self._type_lexicon = {t: dict(terms) for t, terms in _TYPE_LEXICON.items()}

    def add_terms(self, axis_value, terms: Mapping[str, float]) -> None:
        """Add weighted terms to one pillar's or one type's lexicon."""
        if isinstance(axis_value, Pillar):
            self._pillar_lexicon[axis_value].update(terms)
        elif isinstance(axis_value, AnalyticsType):
            self._type_lexicon[axis_value].update(terms)
        else:
            raise ClassificationError(f"unknown axis value {axis_value!r}")

    # ------------------------------------------------------------------
    @staticmethod
    def _normalize(text: str) -> str:
        return re.sub(r"[^a-z0-9 ]+", " ", text.lower())

    @staticmethod
    def _score(text: str, lexicon: Mapping[str, float]) -> Tuple[float, List[Tuple[str, float]]]:
        matched = []
        score = 0.0
        for term, weight in lexicon.items():
            if " " in term or term.endswith(("iz", "at", "os", "if")):
                hit = term in text  # phrase or stem match
            else:
                hit = re.search(rf"\b{re.escape(term)}", text) is not None
            if hit:
                matched.append((term, weight))
                score += weight
        return score, matched

    def classify(self, description: str) -> Classification:
        """Map a description onto its grid cell.

        Raises :class:`ClassificationError` when no lexicon term matches at
        all (the description is outside the ODA domain).
        """
        text = self._normalize(description)
        type_scores: Dict[AnalyticsType, float] = {}
        pillar_scores: Dict[Pillar, float] = {}
        matched: List[Tuple[str, float]] = []
        for analytics_type in TYPE_ORDER:
            score, terms = self._score(text, self._type_lexicon[analytics_type])
            type_scores[analytics_type] = score
            matched.extend(terms)
        for pillar in PILLAR_ORDER:
            score, terms = self._score(text, self._pillar_lexicon[pillar])
            pillar_scores[pillar] = score
            matched.extend(terms)

        if max(type_scores.values()) == 0 or max(pillar_scores.values()) == 0:
            raise ClassificationError(
                f"description matched no framework vocabulary: {description!r}"
            )
        best_type = max(TYPE_ORDER, key=lambda t: type_scores[t])
        best_pillar = max(PILLAR_ORDER, key=lambda p: pillar_scores[p])
        return Classification(
            cell=GridCell(best_type, best_pillar),
            type_scores=type_scores,
            pillar_scores=pillar_scores,
            matched_terms=tuple(matched),
        )

    def explain(self, description: str) -> str:
        """Human-readable classification rationale."""
        result = self.classify(description)
        terms = ", ".join(f"{t} (+{w:g})" for t, w in result.matched_terms)
        return (
            f"{result.cell.label} (confidence {result.confidence:.2f}); "
            f"matched: {terms}"
        )
