"""The four pillars of energy-efficient HPC (Wilde et al. [3]).

The columns of the ODA framework grid: the structural decomposition of an
HPC data center into building infrastructure, system hardware, system
software and applications (Figure 1 of the paper).  Each pillar carries
its definition, example components, and — unique to this executable
reproduction — the substrate package that simulates it.
"""

from __future__ import annotations

from enum import Enum
from typing import Dict, List, Tuple

__all__ = ["Pillar", "PILLAR_ORDER"]


class Pillar(Enum):
    """One column of the framework grid."""

    BUILDING_INFRASTRUCTURE = "building_infrastructure"
    SYSTEM_HARDWARE = "system_hardware"
    SYSTEM_SOFTWARE = "system_software"
    APPLICATIONS = "applications"

    @property
    def title(self) -> str:
        return {
            Pillar.BUILDING_INFRASTRUCTURE: "Building Infrastructure",
            Pillar.SYSTEM_HARDWARE: "System Hardware",
            Pillar.SYSTEM_SOFTWARE: "System Software",
            Pillar.APPLICATIONS: "Applications",
        }[self]

    @property
    def description(self) -> str:
        return {
            Pillar.BUILDING_INFRASTRUCTURE: (
                "Every support infrastructure (such as cooling and power "
                "distribution) needed to run the HPC systems and supporting "
                "the data center's operation as a whole."
            ),
            Pillar.SYSTEM_HARDWARE: (
                "The hardware components that constitute an HPC system, such "
                "as motherboards and firmwares, CPUs, GPUs, memory and "
                "system-internal cooling, as well as network equipment."
            ),
            Pillar.SYSTEM_SOFTWARE: (
                "The system-level software stack, including the system "
                "management software, the resource management and scheduler, "
                "the compute nodes' operating system, as well as all tools "
                "and libraries usable by users and their applications."
            ),
            Pillar.APPLICATIONS: (
                "Individual workloads as well as the workload mix executed "
                "on a system; an application is a unit of work, since the "
                "goal of an HPC system is new scientific insight through "
                "software applications."
            ),
        }[self]

    @property
    def example_components(self) -> Tuple[str, ...]:
        return {
            Pillar.BUILDING_INFRASTRUCTURE: (
                "chillers", "cooling towers", "dry coolers", "pumps",
                "power distribution", "UPS", "weather envelope",
            ),
            Pillar.SYSTEM_HARDWARE: (
                "compute nodes", "CPUs/GPUs", "memory", "node cooling/fans",
                "interconnect fabric", "storage systems",
            ),
            Pillar.SYSTEM_SOFTWARE: (
                "resource manager/scheduler", "operating system",
                "node runtimes", "monitoring agents", "system libraries",
            ),
            Pillar.APPLICATIONS: (
                "scientific workloads", "workload mix", "job submissions",
                "per-region instrumentation",
            ),
        }[self]

    @property
    def substrate_module(self) -> str:
        """The repro package simulating this pillar."""
        return {
            Pillar.BUILDING_INFRASTRUCTURE: "repro.facility",
            Pillar.SYSTEM_HARDWARE: "repro.cluster",
            Pillar.SYSTEM_SOFTWARE: "repro.software",
            Pillar.APPLICATIONS: "repro.apps",
        }[self]

    @property
    def index(self) -> int:
        """Column position in the grid (Table I order)."""
        return PILLAR_ORDER.index(self)


#: Canonical column order (matches Table I of the paper).
PILLAR_ORDER: Tuple[Pillar, ...] = (
    Pillar.BUILDING_INFRASTRUCTURE,
    Pillar.SYSTEM_HARDWARE,
    Pillar.SYSTEM_SOFTWARE,
    Pillar.APPLICATIONS,
)
