"""Renderers for the paper's artifacts: Table I and Figures 1-3.

Everything returns plain strings (markdown or ASCII art) so benchmarks can
diff content and examples can print to a terminal.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.grid import FrameworkGrid
from repro.core.pillars import PILLAR_ORDER, Pillar
from repro.core.types import TYPE_ORDER, TYPE_ORDER_TABLE1, AnalyticsType
from repro.core.usecase import GridCell, SystemProfile

__all__ = ["render_table1", "render_fig1", "render_fig2", "render_fig3", "render_occupancy"]


def _format_use_case(name: str, references: Sequence[int]) -> str:
    refs = "".join(f"[{n}]" for n in references)
    return f"{name} {refs}"


def render_table1(grid: FrameworkGrid) -> str:
    """Regenerate Table I as a markdown table.

    Rows follow the paper's order (prescriptive at the top); each cell
    lists its use cases with their bibliography numbers.
    """
    header = "| | " + " | ".join(p.title for p in PILLAR_ORDER) + " |"
    divider = "|---" * 5 + "|"
    lines = [
        "**Table I** — ODA examples categorized using the framework "
        "(regenerated from the survey corpus)",
        "",
        header,
        divider,
    ]
    for analytics_type in TYPE_ORDER_TABLE1:
        cells = []
        for pillar in PILLAR_ORDER:
            entries = grid.cell(analytics_type, pillar)
            cells.append(
                "<br>".join(
                    _format_use_case(uc.name, uc.references) for uc in entries
                )
                or "—"
            )
        lines.append(f"| **{analytics_type.title}** | " + " | ".join(cells) + " |")
    return "\n".join(lines)


def render_fig1() -> str:
    """Regenerate Figure 1: the four pillars of energy-efficient HPC."""
    width = 19
    lines = [
        "Figure 1 — The 4-Pillar Framework for Energy-Efficient HPC Data Centers",
        "",
        "+" + "-" * (4 * (width + 1) + 1) + "+",
        "|" + "HPC Data Center".center(4 * (width + 1) + 1) + "|",
        "+" + ("-" * width + "+") * 4 + "-+",
    ]
    titles = [p.title for p in PILLAR_ORDER]
    lines.append("|" + "|".join(t.center(width) for t in titles) + "| |")
    lines.append("|" + ("-" * width + "|") * 4 + " |")
    max_components = max(len(p.example_components) for p in PILLAR_ORDER)
    for i in range(max_components):
        row = []
        for pillar in PILLAR_ORDER:
            components = pillar.example_components
            row.append((components[i] if i < len(components) else "").center(width))
        lines.append("|" + "|".join(row) + "| |")
    lines.append("+" + ("-" * width + "+") * 4 + "-+")
    lines.append("")
    for pillar in PILLAR_ORDER:
        lines.append(f"  {pillar.title}: simulated by {pillar.substrate_module}")
    return "\n".join(lines)


def render_fig2() -> str:
    """Regenerate Figure 2: the staged model of the four analytics types.

    The staircase encodes the model's defining property: value and
    difficulty grow together from descriptive to prescriptive; hindsight
    types on the left, foresight on the right.
    """
    lines = [
        "Figure 2 — The four types of data analytics (staged model)",
        "",
        "value ^",
    ]
    stages = list(TYPE_ORDER)
    for level in range(len(stages) - 1, -1, -1):
        analytics_type = stages[level]
        indent = " " * (6 + level * 14)
        lines.append(
            f"      |{indent}+-- {analytics_type.title}: {analytics_type.question!r}"
        )
    lines.append("      +" + "-" * 62 + "> difficulty")
    lines.append("")
    hindsight = ", ".join(t.title for t in TYPE_ORDER if t.hindsight)
    foresight = ", ".join(t.title for t in TYPE_ORDER if t.foresight)
    lines.append(f"  hindsight (reactive ODA):  {hindsight}")
    lines.append(f"  foresight (proactive ODA): {foresight}")
    return "\n".join(lines)


_FIG3_MARKS = "ABCDEFGHIJKLMNOP"


def render_fig3(systems: Sequence[SystemProfile]) -> str:
    """Regenerate Figure 3: complex ODA systems as footprints on the grid.

    Each system gets a letter mark; a cell shows every mark whose system
    covers it.  The legend lists references and single/multi-pillar status.
    """
    marks = {system.name: _FIG3_MARKS[i] for i, system in enumerate(systems)}
    width = max(len(p.title) for p in PILLAR_ORDER) + 2
    label_width = max(len(t.title) for t in TYPE_ORDER) + 2
    lines = [
        "Figure 3 — Examples of complex ODA systems categorized with the framework",
        "",
        " " * label_width + "".join(p.title.center(width) for p in PILLAR_ORDER),
    ]
    for analytics_type in reversed(TYPE_ORDER):
        row = [analytics_type.title.ljust(label_width)]
        for pillar in PILLAR_ORDER:
            cell = GridCell(analytics_type, pillar)
            cell_marks = "".join(
                marks[s.name] for s in systems if cell in s.cells
            )
            row.append((cell_marks or ".").center(width))
        lines.append("".join(row))
    lines.append("")
    lines.append("Legend:")
    for system in systems:
        refs = "".join(f"[{n}]" for n in system.references)
        span = "multi-pillar" if system.multi_pillar else "single-pillar"
        kind = "multi-type" if system.multi_type else "single-type"
        lines.append(
            f"  {marks[system.name]} = {system.name} {refs} ({span}, {kind}, "
            f"{len(system.cells)}/16 cells)"
        )
    return "\n".join(lines)


def render_occupancy(grid: FrameworkGrid) -> str:
    """Cell-count view of the populated grid (the gap-analysis companion)."""
    occupancy = grid.occupancy()
    width = max(len(p.title) for p in PILLAR_ORDER) + 2
    label_width = max(len(t.title) for t in TYPE_ORDER) + 2
    lines = [
        " " * label_width + "".join(p.title.center(width) for p in PILLAR_ORDER),
    ]
    for analytics_type in reversed(TYPE_ORDER):
        row = [analytics_type.title.ljust(label_width)]
        for pillar in PILLAR_ORDER:
            count = occupancy[analytics_type.stage, pillar.index]
            row.append(str(count).center(width))
        lines.append("".join(row))
    lines.append("")
    lines.append(f"total use cases: {len(grid)}, empty cells: {len(grid.empty_cells())}")
    return "\n".join(lines)
