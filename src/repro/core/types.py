"""The four types of data analytics (Gartner staged model [2][70]).

The rows of the ODA framework grid.  Types form a staged progression of
value and difficulty (Figure 2 of the paper): descriptive and diagnostic
look backward (*hindsight* — reactive ODA), predictive and prescriptive
look forward (*foresight* — proactive ODA).  No type is "better"; each
answers a different operational question.
"""

from __future__ import annotations

from enum import Enum
from typing import Tuple

__all__ = ["AnalyticsType", "TYPE_ORDER", "TYPE_ORDER_TABLE1"]


class AnalyticsType(Enum):
    """One row of the framework grid."""

    DESCRIPTIVE = "descriptive"
    DIAGNOSTIC = "diagnostic"
    PREDICTIVE = "predictive"
    PRESCRIPTIVE = "prescriptive"

    @property
    def question(self) -> str:
        """The operational question this type answers."""
        return {
            AnalyticsType.DESCRIPTIVE: "What happened?",
            AnalyticsType.DIAGNOSTIC: "Why did it happen?",
            AnalyticsType.PREDICTIVE: "What will happen?",
            AnalyticsType.PRESCRIPTIVE: "What is the best way to manage my resources?",
        }[self]

    @property
    def title(self) -> str:
        return self.value.capitalize()

    @property
    def description(self) -> str:
        return {
            AnalyticsType.DESCRIPTIVE: (
                "First-degree examination of data: visualizations, "
                "dashboards and threshold alerts; may include normalization, "
                "aggregation, outlier removal and dimensionality reduction, "
                "but no complex knowledge extraction."
            ),
            AnalyticsType.DIAGNOSTIC: (
                "Systematic automation of diagnoses: models that ingest "
                "multi-dimensional monitoring or log data and extract "
                "high-level knowledge — pinpointing why or where a "
                "phenomenon happened."
            ),
            AnalyticsType.PREDICTIVE: (
                "Forecasting a system's near-future state from current and "
                "prior data, enabling proactive rather than reactive "
                "operation."
            ),
            AnalyticsType.PRESCRIPTIVE: (
                "Suggesting or automating the best course of action toward "
                "an efficiency goal: converting system state into settings "
                "for system knobs, via optimization models or even simple "
                "mappings."
            ),
        }[self]

    @property
    def stage(self) -> int:
        """Position in the staged model (0 = descriptive ... 3 = prescriptive).

        Acts as both the difficulty rank and the value rank — the staged
        model's defining property (Figure 2's diagonal).
        """
        return TYPE_ORDER.index(self)

    @property
    def hindsight(self) -> bool:
        """Whether the type explains the past (vs anticipating the future)."""
        return self in (AnalyticsType.DESCRIPTIVE, AnalyticsType.DIAGNOSTIC)

    @property
    def foresight(self) -> bool:
        return not self.hindsight

    @property
    def proactive(self) -> bool:
        """Foresight types enable proactive ODA (Section III-B)."""
        return self.foresight

    @property
    def analytics_module(self) -> str:
        """The repro subpackage implementing this type."""
        return f"repro.analytics.{self.value}"


#: Staged order: increasing value and difficulty (Figure 2).
TYPE_ORDER: Tuple[AnalyticsType, ...] = (
    AnalyticsType.DESCRIPTIVE,
    AnalyticsType.DIAGNOSTIC,
    AnalyticsType.PREDICTIVE,
    AnalyticsType.PRESCRIPTIVE,
)

#: Row order as printed in Table I (prescriptive at the top).
TYPE_ORDER_TABLE1: Tuple[AnalyticsType, ...] = tuple(reversed(TYPE_ORDER))
