"""The 4x4 framework grid container.

Combines the four pillars (columns) with the four analytics types (rows)
into the bi-dimensional framework of Section III, and holds placed
use cases.  All Table I / Figure 3 renderers and the survey analysis
operate on this structure.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.pillars import PILLAR_ORDER, Pillar
from repro.core.types import TYPE_ORDER, AnalyticsType
from repro.core.usecase import GridCell, SystemProfile, UseCase
from repro.errors import ClassificationError

__all__ = ["all_cells", "FrameworkGrid"]


def all_cells() -> List[GridCell]:
    """All 16 cells in (type-stage, pillar) order."""
    return [
        GridCell(analytics_type, pillar)
        for analytics_type in TYPE_ORDER
        for pillar in PILLAR_ORDER
    ]


class FrameworkGrid:
    """A populated instance of the conceptual framework.

    Holds :class:`UseCase` records placed on cells; supports occupancy
    queries, footprint extraction and the gap analysis of Section IV.
    """

    def __init__(self) -> None:
        self._cells: Dict[GridCell, List[UseCase]] = {cell: [] for cell in all_cells()}
        self._by_name: Dict[str, UseCase] = {}

    # ------------------------------------------------------------------
    # Population
    # ------------------------------------------------------------------
    def place(self, use_case: UseCase) -> UseCase:
        """Place a use case on its cell."""
        if use_case.name in self._by_name:
            raise ClassificationError(f"duplicate use case {use_case.name!r}")
        self._cells[use_case.cell].append(use_case)
        self._by_name[use_case.name] = use_case
        return use_case

    def place_all(self, use_cases: Sequence[UseCase]) -> None:
        for use_case in use_cases:
            self.place(use_case)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def cell(self, analytics_type: AnalyticsType, pillar: Pillar) -> List[UseCase]:
        return list(self._cells[GridCell(analytics_type, pillar)])

    def get(self, name: str) -> UseCase:
        try:
            return self._by_name[name]
        except KeyError:
            raise ClassificationError(f"unknown use case {name!r}") from None

    def __len__(self) -> int:
        return len(self._by_name)

    def __iter__(self) -> Iterator[UseCase]:
        for cell in all_cells():
            yield from self._cells[cell]

    def use_cases(self) -> List[UseCase]:
        return list(self)

    # ------------------------------------------------------------------
    # Analysis views
    # ------------------------------------------------------------------
    def occupancy(self) -> np.ndarray:
        """4x4 matrix of use-case counts; rows follow TYPE_ORDER, columns
        PILLAR_ORDER."""
        matrix = np.zeros((4, 4), dtype=np.int64)
        for cell, cases in self._cells.items():
            matrix[cell.analytics_type.stage, cell.pillar.index] = len(cases)
        return matrix

    def empty_cells(self) -> List[GridCell]:
        """The gaps the paper says the framework exposes."""
        return [cell for cell in all_cells() if not self._cells[cell]]

    def covered_cells(self) -> List[GridCell]:
        return [cell for cell in all_cells() if self._cells[cell]]

    def by_pillar(self, pillar: Pillar) -> List[UseCase]:
        return [uc for uc in self if uc.pillar is pillar]

    def by_type(self, analytics_type: AnalyticsType) -> List[UseCase]:
        return [uc for uc in self if uc.analytics_type is analytics_type]

    def references_in_cell(self, cell: GridCell) -> List[int]:
        """Distinct reference numbers cited in a cell, sorted."""
        numbers = set()
        for use_case in self._cells[cell]:
            numbers.update(use_case.references)
        return sorted(numbers)

    def footprint(self, names: Sequence[str], system_name: str = "system") -> SystemProfile:
        """Build a :class:`SystemProfile` from named use cases (Figure 3)."""
        cells = frozenset(self.get(name).cell for name in names)
        references: List[int] = []
        for name in names:
            references.extend(self.get(name).references)
        return SystemProfile(
            name=system_name, cells=cells, references=tuple(sorted(set(references)))
        )
