"""Survey analysis: the quantitative claims of Sections II, IV and V.

Computes, over a populated grid and a set of system profiles, the
statistics the paper states qualitatively:

* per-cell/per-row/per-column occupancy and gap analysis (Section IV),
* single- vs multi-pillar prevalence (Section V-B),
* visualization- vs control-orientation (the [13] claim in Section II),
* similarity and comprehensiveness comparisons between systems,
* reactive vs proactive (hindsight/foresight) composition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro.core.grid import FrameworkGrid
from repro.core.pillars import PILLAR_ORDER, Pillar
from repro.core.types import TYPE_ORDER, AnalyticsType
from repro.core.usecase import SystemProfile, UseCase

__all__ = ["SurveyStatistics", "analyze_survey", "similarity_matrix", "rank_by_comprehensiveness"]


@dataclass(frozen=True)
class SurveyStatistics:
    """Aggregate statistics over the survey corpus."""

    use_cases: int
    distinct_references: int
    per_type: Mapping[AnalyticsType, int]
    per_pillar: Mapping[Pillar, int]
    empty_cells: int
    control_oriented: int
    visualization_oriented: int
    hindsight_cases: int
    foresight_cases: int

    @property
    def control_fraction(self) -> float:
        return self.control_oriented / self.use_cases if self.use_cases else 0.0

    @property
    def visualization_dominates(self) -> bool:
        """The [13] claim: visualization-oriented ODA outnumbers control."""
        return self.visualization_oriented > self.control_oriented

    def rows(self) -> List[Tuple[str, object]]:
        out: List[Tuple[str, object]] = [
            ("use cases", self.use_cases),
            ("distinct references", self.distinct_references),
            ("empty grid cells", self.empty_cells),
            ("control-oriented", self.control_oriented),
            ("visualization/reporting-oriented", self.visualization_oriented),
            ("hindsight (descriptive+diagnostic)", self.hindsight_cases),
            ("foresight (predictive+prescriptive)", self.foresight_cases),
        ]
        for analytics_type in TYPE_ORDER:
            out.append((f"type: {analytics_type.title}", self.per_type[analytics_type]))
        for pillar in PILLAR_ORDER:
            out.append((f"pillar: {pillar.title}", self.per_pillar[pillar]))
        return out


def analyze_survey(grid: FrameworkGrid) -> SurveyStatistics:
    """All corpus-level statistics in one pass."""
    cases = grid.use_cases()
    references = {n for uc in cases for n in uc.references}
    per_type = {t: len(grid.by_type(t)) for t in TYPE_ORDER}
    per_pillar = {p: len(grid.by_pillar(p)) for p in PILLAR_ORDER}
    control = sum(1 for uc in cases if uc.control_oriented)
    hindsight = sum(1 for uc in cases if uc.analytics_type.hindsight)
    return SurveyStatistics(
        use_cases=len(cases),
        distinct_references=len(references),
        per_type=per_type,
        per_pillar=per_pillar,
        empty_cells=len(grid.empty_cells()),
        control_oriented=control,
        visualization_oriented=len(cases) - control,
        hindsight_cases=hindsight,
        foresight_cases=len(cases) - hindsight,
    )


def pillar_crossing_stats(systems: Sequence[SystemProfile]) -> Dict[str, float]:
    """Single- vs multi-pillar prevalence over system profiles (Section V-B)."""
    single = sum(1 for s in systems if not s.multi_pillar)
    multi = len(systems) - single
    multi_type = sum(1 for s in systems if s.multi_type)
    return {
        "systems": float(len(systems)),
        "single_pillar": float(single),
        "multi_pillar": float(multi),
        "multi_type": float(multi_type),
        "single_pillar_fraction": single / len(systems) if systems else 0.0,
    }


def similarity_matrix(systems: Sequence[SystemProfile]) -> np.ndarray:
    """Pairwise Jaccard footprint similarity (the paper's comparison tool)."""
    n = len(systems)
    matrix = np.eye(n)
    for i in range(n):
        for j in range(i + 1, n):
            matrix[i, j] = matrix[j, i] = systems[i].similarity(systems[j])
    return matrix


def rank_by_comprehensiveness(
    systems: Sequence[SystemProfile],
) -> List[Tuple[str, float]]:
    """Systems sorted by grid coverage, the paper's comprehensiveness axis."""
    ranked = [(s.name, s.comprehensiveness) for s in systems]
    ranked.sort(key=lambda item: (-item[1], item[0]))
    return ranked


def gap_report(grid: FrameworkGrid) -> List[str]:
    """Readable list of under-populated areas (the 'gaps to explore')."""
    lines = []
    occupancy = grid.occupancy()
    for cell in grid.empty_cells():
        lines.append(f"EMPTY: {cell.label}")
    threshold = max(int(np.median(occupancy)), 1)
    for analytics_type in TYPE_ORDER:
        for pillar in PILLAR_ORDER:
            count = occupancy[analytics_type.stage, pillar.index]
            if 0 < count < threshold:
                lines.append(
                    f"SPARSE ({count} vs median {threshold}): "
                    f"{analytics_type.title} x {pillar.title}"
                )
    return lines
