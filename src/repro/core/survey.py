"""The survey corpus: every Table I use case as structured data.

This module is the data half of the paper's contribution — the
comprehensive literature survey of Section IV, encoded verbatim:

* :data:`REFERENCES` — the bibliography entries cited in Table I,
* :func:`table1_use_cases` — the 41 use-case bullets of Table I, each in
  its published cell with its published citations,
* :func:`survey_grid` — the populated :class:`FrameworkGrid`,
* :func:`figure3_systems` — the complex ODA systems of Figure 3 /
  Section V, as multi-cell footprints.

Regenerating Table I from this corpus (``repro.core.render.render_table1``)
is experiment T1; the statistics over it back experiments D2 and D4.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.pillars import Pillar
from repro.core.types import AnalyticsType
from repro.core.usecase import GridCell, Reference, SystemProfile, UseCase

__all__ = ["REFERENCES", "table1_use_cases", "survey_grid", "figure3_systems"]


def _ref(number: int, key: str, title: str, venue: str, year: int) -> Tuple[int, Reference]:
    return number, Reference(number=number, key=key, title=title, venue=venue, year=year)


#: Bibliography entries cited in Table I and the Figure 3 discussion.
REFERENCES: Dict[int, Reference] = dict(
    [
        _ref(1, "bourassa2019", "Operational data analytics: Optimizing the NERSC cooling systems", "ICPP Workshops", 2019),
        _ref(4, "yuventi2013", "A critical analysis of power usage effectiveness", "Energy and Buildings", 2013),
        _ref(5, "eitzinger2019", "ClusterCockpit - a web application for job-specific performance monitoring", "CLUSTER", 2019),
        _ref(6, "guillen2014", "The PerSyst monitoring tool", "Euro-Par Workshops", 2014),
        _ref(7, "bautista2019", "Collecting, monitoring, and analyzing facility and systems data at NERSC", "ICPP Workshops", 2019),
        _ref(8, "schwaller2020", "HPC system data pipeline to enable meaningful insights", "CLUSTER", 2020),
        _ref(9, "demirbaga2021", "AutoDiagn: An automated real-time diagnosis framework for big data systems", "IEEE TC", 2021),
        _ref(10, "adhianto2010", "HPCtoolkit: tools for performance analysis of optimized parallel programs", "CCPE", 2010),
        _ref(11, "eastep2017", "Global extensible open power manager (GEOPM)", "ISC", 2017),
        _ref(12, "jiang2019", "Fine-grained warm water cooling for improving datacenter economy", "ISCA", 2019),
        _ref(13, "ott2020", "Global experiences with HPC operational data measurement, collection and analysis", "CLUSTER", 2020),
        _ref(14, "hui2018", "A comprehensive informative metric for analyzing HPC system status (LogSCAN)", "FTXS", 2018),
        _ref(15, "laguna2013", "Automatic problem localization via multi-dimensional metric profiling", "SRDS", 2013),
        _ref(16, "tuncer2018", "Online diagnosis of performance variation in HPC systems using machine learning", "IEEE TPDS", 2018),
        _ref(17, "borghesi2019", "A semisupervised autoencoder-based approach for anomaly detection in HPC systems", "EAAI", 2019),
        _ref(18, "conficoni2015", "Energy-aware cooling for hot-water cooled supercomputers", "DATE", 2015),
        _ref(19, "grant2015", "Overtime: A tool for analyzing performance variation due to network interference", "ExaMPI", 2015),
        _ref(20, "imes2018", "Energy-efficient application resource scheduling using machine learning classifiers", "ICPP", 2018),
        _ref(21, "verma2008", "Power-aware dynamic placement of HPC applications", "ICS", 2008),
        _ref(22, "bash2007", "Cool job allocation: Measuring the power savings of placing jobs at cooling-efficient locations", "USENIX ATC", 2007),
        _ref(23, "fan2021", "DRAS-CQSim: A reinforcement learning based framework for HPC cluster scheduling", "Software Impacts", 2021),
        _ref(24, "corbalan2018", "EAR: Energy management framework for supercomputers", "IPDPS", 2018),
        _ref(25, "lin2016", "A reinforcement learning-based power management framework for green computing data centers", "IC2E", 2016),
        _ref(26, "guan2013", "Adaptive anomaly identification by exploring metric subspace in cloud computing infrastructures", "SRDS", 2013),
        _ref(27, "shaykhislamov2018", "An approach for dynamic detection of inefficient supercomputer applications", "Procedia CS", 2018),
        _ref(28, "miceli2012", "Autotune: A plugin-driven approach to the automatic tuning of parallel applications", "PARA", 2012),
        _ref(29, "tapus2002", "Active harmony: Towards automated performance tuning", "SC", 2002),
        _ref(30, "naghshnejad2018", "Adaptive online runtime prediction to improve HPC applications latency in cloud", "CLOUD", 2018),
        _ref(31, "emeras2015", "Evalix: Classification and prediction of job resource consumption on HPC platforms", "JSSPP", 2015),
        _ref(32, "xue2015", "PRACTISE: Robust prediction of data center time series", "CNSM", 2015),
        _ref(33, "ates2018", "Taxonomist: Application detection through rich monitoring data", "Euro-Par", 2018),
        _ref(34, "wyatt2018", "PRIONN: Predicting runtime and IO using neural networks", "ICPP", 2018),
        _ref(35, "mckenna2016", "Machine learning predictions of runtime and IO traffic on high-end clusters", "CLUSTER", 2016),
        _ref(36, "demasi2013", "Identifying HPC codes via performance logs and machine learning", "CLHS", 2013),
        _ref(37, "kjaergaard2016", "Demand response in commercial buildings with an assessable impact on occupant comfort", "SmartGridComm", 2016),
        _ref(38, "bodik2010", "Fingerprinting the datacenter: automated classification of performance crises", "EuroSys", 2010),
        _ref(39, "bortot2019", "Data centers are a software development challenge (ENI)", "ICPP", 2019),
        _ref(40, "auweter2014", "A case study of energy aware scheduling on SuperMUC", "ISC", 2014),
        _ref(41, "wu2020", "Toward an end-to-end auto-tuning framework in HPC PowerStack", "CLUSTER", 2020),
        _ref(42, "li2009", "Machine learning based online performance prediction for runtime parallelization and task scheduling", "ISPASS", 2009),
        _ref(43, "zheng2016", "Exploring plan-based scheduling for large-scale computing systems", "CLUSTER", 2016),
        _ref(44, "zhang2012", "HPC usage behavior analysis and performance estimation with machine learning techniques", "PDPTA", 2012),
        _ref(45, "shoukourian2020", "Forecasting power-efficiency related KPIs for modern data centers using LSTMs", "FGCS", 2020),
        _ref(46, "shoukourian2017", "Using machine learning for data center cooling infrastructure efficiency prediction", "IPDPS Workshops", 2017),
        _ref(47, "netti2021", "Correlation-wise smoothing: Lightweight knowledge extraction for HPC monitoring data", "IPDPS", 2021),
        _ref(48, "sirbu2016", "Towards operator-less data centers through data-driven, predictive, proactive autonomics", "Cluster Computing", 2016),
        _ref(49, "galleguillos2020", "AccaSim: a customizable workload management simulator for job dispatching research", "Cluster Computing", 2020),
        _ref(50, "dutot2015", "Batsim: a realistic language-independent resources and jobs management systems simulator", "JSSPP", 2015),
        _ref(51, "klusacek2019", "Alea - complex job scheduling simulator", "PPAM", 2019),
        _ref(52, "sirbu2016b", "Power consumption modeling and prediction in a hybrid CPU-GPU-MIC supercomputer", "Euro-Par", 2016),
        _ref(53, "matsunaga2010", "On the use of machine learning to predict the time and resources consumed by applications", "CCGrid", 2010),
        _ref(54, "todd2021", "Artificial intelligence for data center operations (AI ops)", "NREL/HPE TR", 2021),
        _ref(55, "jha2018", "Characterizing supercomputer traffic networks through link-level analysis", "CLUSTER", 2018),
        _ref(56, "gustafson2017", "The end of error: Unum computing", "CRC Press", 2017),
        _ref(57, "ferreira2008", "Characterizing application sensitivity to OS interference using kernel-level noise injection", "SC", 2008),
        _ref(58, "stewart2019", "Grid accommodation of dynamic HPC demand", "ICPP Workshops", 2019),
        _ref(59, "patterson2013", "TUE, a new energy-efficiency metric applied at ORNL's Jaguar", "ISC", 2013),
        _ref(60, "feitelson2001", "Metrics for parallel job scheduling and their convergence", "JSSPP", 2001),
        _ref(61, "chan2019", "A resource utilization analytics platform using Grafana and Telegraf for the Savio supercluster", "PEARC", 2019),
        _ref(62, "palmer2015", "Open XDMoD: A tool for the comprehensive management of HPC resources", "CiSE", 2015),
        _ref(63, "williams2009", "Roofline: an insightful visual performance model for multicore architectures", "CACM", 2009),
        _ref(72, "abdulla2018", "Forecasting extreme site power fluctuations using fast Fourier transformation (LLNL)", "EE HPC WG", 2018),
    ]
)


#: One-line descriptions of each Table I bullet, condensed from the prose
#: of Section IV.  They double as the classifier-benchmark inputs.
USE_CASE_DESCRIPTIONS: Dict[str, str] = {
    "Switching between types of cooling": "models that switch the facility between chiller, tower and free cooling technologies according to current demand and weather",
    "Tuning of cooling machinery": "determining optimal settings for infrastructure knobs such as the inlet water temperature setpoint of the cooling loops",
    "Responding to anomalies": "automated or recommendation-based response systems that act on detected data center infrastructure anomalies",
    "Cooling optimization at system level": "optimizing warm water cooling of the hardware at the system level to improve datacenter economy",
    "CPU frequency tuning": "runtime systems tuning CPU frequency (DVFS) dynamically according to hardware and application behavior",
    "Tuning of hardware knobs": "controlling hardware knobs such as fan speeds and power caps on compute nodes to trade efficiency against performance",
    "Intelligent placement of tasks and threads": "deciding the placement of tasks and threads of jobs onto nodes of the system under scheduling constraints",
    "Plan-based scheduling": "plan based scheduling that builds explicit execution plans for queued jobs instead of greedy queue decisions",
    "Power and KPI-aware scheduling": "scheduling policies deciding job starts under power budgets and cooling-efficiency objectives to optimize system KPIs",
    "Auto-tuning of HPC applications": "auto-tuning frameworks optimizing application-specific settings of user codes under performance objectives",
    "Code improvement recommendations": "recommendation systems suggesting code improvements of HPC applications to users and developers",
    "Predicting data center KPIs": "forecasting power-efficiency related key performance indicators of the facility using learned models",
    "Predicting cooling demand": "forecasting the energy and cooling demand of the building infrastructure",
    "Modelling cooling performance": "theoretical and learned models of cooling infrastructure performance to forecast the impact of configuration changes on the facility",
    "Forecasting hardware sensors": "robust prediction of hardware sensor time series such as compute node power and temperature",
    "Component failure prediction": "predicting catastrophic failures of hardware components from node telemetry for proactive autonomics",
    "Predicting CPU instruction mixes": "forecasting the CPU instruction mix of running phases to anticipate hardware frequency decisions",
    "Simulating HPC systems and schedulers": "simulating HPC systems and schedulers to estimate future behavior of scheduling software and policies",
    "Predicting HPC workloads": "forecasting the overall workload of the scheduling system in terms of future user jobs",
    "Predicting job durations": "predicting the runtime duration of user jobs from submission data and per-user history",
    "Predicting job resource usage": "predicting the resource consumption of user jobs such as power, memory and IO from submission data",
    "Predicting performance profiles of code regions": "predicting the duration and performance profile of specific application code regions at high granularity",
    "Fingerprinting data center crises": "fingerprinting and classifying facility-wide performance crises of the data center from infrastructure telemetry",
    "Infrastructure anomaly detection": "detecting classes of anomalies in infrastructure components such as water pumps and power supplies",
    "Infrastructure stress testing": "periodic stress testing of facility cooling machinery to reveal degraded infrastructure components and improve detection accuracy",
    "Node-level anomaly detection": "detection of anomalous compute node hardware behavior from multi-dimensional sensor monitoring data",
    "System-level root cause analysis": "automated root cause analysis diagnosing generic hardware behaviors across nodes of the system",
    "Diagnosing network contention issues": "diagnosing network contention between concurrent jobs through link-level analysis of the interconnect fabric",
    "Diagnosing data locality issues": "diagnosing data locality and migration issues in the distributed storage software of the system",
    "Detection of software anomalies": "detecting software anomalies such as CPU contention or memory leaks in the system software stack",
    "Identifying sources of OS noise": "identifying sources of operating system and kernel-level noise that interferes with scheduled applications",
    "Application fingerprinting": "fingerprinting entire applications from monitoring data to identify codes and detect rogue workloads such as cryptocurrency miners",
    "Identifying performance patterns": "identifying performance patterns in user codes such as compute or memory boundedness for application classification",
    "Diagnosing code-level issues": "diagnosing code-level issues of applications such as inefficient loops via metric profiling of user codes",
    "PUE calculation": "calculation of the power usage effectiveness energy-efficiency indicator of the facility",
    "Facility data processing": "basic processing and aggregation of facility-level infrastructure monitoring data for operator reporting",
    "Facility-level dashboards": "graphical dashboards visualizing cooling and power infrastructure monitoring data of the facility for operators",
    "ITUE calculation": "calculation of the IT power usage effectiveness indicator for hardware system-level energy efficiency",
    "System performance indicators": "informative indicator metrics such as the system information entropy characterizing hardware system state from node sensor data",
    "System-level dashboards": "dashboards visualizing hardware monitoring data of compute nodes and network equipment of the system",
    "Slowdown calculation": "calculation of job slowdown metrics estimating the quality of service delivered by the scheduling software",
    "Scheduler-level dashboards": "dashboards visualizing scheduler queue states and resource utilization of the workload management software",
    "Job performance models": "visual performance models such as the roofline model highlighting IO and memory bottlenecks in applications",
    "Job data processing": "processing of job-related application monitoring data to enable per-job analysis and reporting",
    "Job-level dashboards": "dashboards visualizing per-job application performance indicators including sensor and profiling instrumentation data",
}


def _uc(
    name: str,
    analytics_type: AnalyticsType,
    pillar: Pillar,
    references: Tuple[int, ...],
    control: bool,
    implemented_by: Tuple[str, ...],
    description: str = "",
) -> UseCase:
    return UseCase(
        name=name,
        cell=GridCell(analytics_type, pillar),
        references=references,
        control_oriented=control,
        implemented_by=implemented_by,
        description=description or USE_CASE_DESCRIPTIONS.get(name, ""),
    )


def table1_use_cases() -> List[UseCase]:
    """The 41 use-case bullets of Table I, row by row as published.

    ``control_oriented`` marks capabilities whose output drives knobs
    (automated or recommended actuation) rather than visualization/
    reporting — prescriptive entries are control, descriptive entries are
    visualization, and diagnostic/predictive entries are reporting unless
    their surveyed instances actuate.
    """
    D, G, P, S = (
        AnalyticsType.DESCRIPTIVE,
        AnalyticsType.DIAGNOSTIC,
        AnalyticsType.PREDICTIVE,
        AnalyticsType.PRESCRIPTIVE,
    )
    BI, HW, SW, AP = (
        Pillar.BUILDING_INFRASTRUCTURE,
        Pillar.SYSTEM_HARDWARE,
        Pillar.SYSTEM_SOFTWARE,
        Pillar.APPLICATIONS,
    )
    return [
        # --- Prescriptive row -------------------------------------------
        _uc("Switching between types of cooling", S, BI, (12,), True,
            ("repro.analytics.prescriptive.cooling_opt.ModeSwitcher",)),
        _uc("Tuning of cooling machinery", S, BI, (18, 37), True,
            ("repro.analytics.prescriptive.cooling_opt.SetpointOptimizer",)),
        _uc("Responding to anomalies", S, BI, (38, 39), True,
            ("repro.analytics.prescriptive.control.ControlLoop",)),
        _uc("Cooling optimization at system level", S, HW, (12,), True,
            ("repro.analytics.prescriptive.cooling_opt.SetpointOptimizer",)),
        _uc("CPU frequency tuning", S, HW, (11, 24, 40), True,
            ("repro.analytics.prescriptive.dvfs.ReactiveEnergyGovernor",
             "repro.analytics.prescriptive.dvfs.ProactiveEnergyGovernor")),
        _uc("Tuning of hardware knobs", S, HW, (20, 25, 41), True,
            ("repro.analytics.prescriptive.dvfs.PowerCapGovernor",)),
        _uc("Intelligent placement of tasks and threads", S, SW, (42,), True,
            ("repro.analytics.prescriptive.placement.TopologyAwarePolicy",)),
        _uc("Plan-based scheduling", S, SW, (43,), True,
            ("repro.analytics.prescriptive.planner.PlanBasedPolicy",)),
        _uc("Power and KPI-aware scheduling", S, SW, (21, 22, 23), True,
            ("repro.analytics.prescriptive.power_sched.PowerAwarePolicy",
             "repro.analytics.prescriptive.placement.CoolingAwarePolicy")),
        _uc("Auto-tuning of HPC applications", S, AP, (28, 29, 41), True,
            ("repro.analytics.prescriptive.autotune",)),
        _uc("Code improvement recommendations", S, AP, (44,), True,
            ("repro.analytics.prescriptive.recommend.CodeAdvisor",)),
        # --- Predictive row ---------------------------------------------
        _uc("Predicting data center KPIs", P, BI, (45,), False,
            ("repro.analytics.predictive.kpi_forecast.KpiForecaster",)),
        _uc("Predicting cooling demand", P, BI, (37,), False,
            ("repro.analytics.predictive.cooling.CoolingDemandForecaster",)),
        _uc("Modelling cooling performance", P, BI, (18, 46), False,
            ("repro.analytics.predictive.cooling.CoolingPerformanceModel",)),
        _uc("Forecasting hardware sensors", P, HW, (32, 47), False,
            ("repro.analytics.predictive.timeseries.PractiseEnsemble",)),
        _uc("Component failure prediction", P, HW, (48,), False,
            ("repro.analytics.predictive.failures.FailurePredictor",)),
        _uc("Predicting CPU instruction mixes", P, HW, (11,), False,
            ("repro.analytics.prescriptive.dvfs.PhasePredictor",)),
        _uc("Simulating HPC systems and schedulers", P, SW, (49, 50, 51), False,
            ("repro.oda.datacenter.DataCenter", "repro.software.scheduler.Scheduler")),
        _uc("Predicting HPC workloads", P, SW, (23,), False,
            ("repro.analytics.predictive.timeseries.HoltWinters",)),
        _uc("Predicting job durations", P, AP, (30, 34, 35), False,
            ("repro.analytics.predictive.jobs.JobDurationPredictor",)),
        _uc("Predicting job resource usage", P, AP, (31, 52, 53), False,
            ("repro.analytics.predictive.jobs.ResourceClassPredictor",)),
        _uc("Predicting performance profiles of code regions", P, AP, (24,), False,
            ("repro.apps.instrumentation.profile_regions",)),
        # --- Diagnostic row ---------------------------------------------
        _uc("Fingerprinting data center crises", G, BI, (38,), False,
            ("repro.analytics.diagnostic.fingerprint.CrisisLibrary",)),
        _uc("Infrastructure anomaly detection", G, BI, (54,), False,
            ("repro.analytics.diagnostic.anomaly.PcaReconstructionDetector",)),
        _uc("Infrastructure stress testing", G, BI, (39,), False,
            ("repro.facility.facility.Facility.stress_test",)),
        _uc("Node-level anomaly detection", G, HW, (17, 26, 47), False,
            ("repro.analytics.diagnostic.anomaly.SubspaceDetector",
             "repro.analytics.diagnostic.anomaly.PeerDeviationDetector")),
        _uc("System-level root cause analysis", G, HW, (9,), False,
            ("repro.analytics.diagnostic.rootcause.RootCauseAnalyzer",)),
        _uc("Diagnosing network contention issues", G, HW, (19, 55), False,
            ("repro.analytics.diagnostic.network_diag.NetworkDiagnostician",)),
        _uc("Diagnosing data locality issues", G, SW, (9,), False,
            ("repro.analytics.diagnostic.rootcause.RootCauseAnalyzer",)),
        _uc("Detection of software anomalies", G, SW, (16, 56), False,
            ("repro.analytics.diagnostic.software_anomaly.MemoryLeakDetector",
             "repro.analytics.diagnostic.software_anomaly.CpuContentionDetector")),
        _uc("Identifying sources of OS noise", G, SW, (57,), False,
            ("repro.analytics.diagnostic.noise.OsNoiseDetector",)),
        _uc("Application fingerprinting", G, AP, (33, 36), False,
            ("repro.analytics.diagnostic.fingerprint.ApplicationFingerprinter",)),
        _uc("Identifying performance patterns", G, AP, (20, 31, 44), False,
            ("repro.analytics.descriptive.roofline.RooflineModel",)),
        _uc("Diagnosing code-level issues", G, AP, (15, 27), False,
            ("repro.analytics.prescriptive.recommend.CodeAdvisor",)),
        # --- Descriptive row --------------------------------------------
        _uc("PUE calculation", D, BI, (4,), False,
            ("repro.analytics.descriptive.kpis.pue",)),
        _uc("Facility data processing", D, BI, (8, 58), False,
            ("repro.telemetry.store.TimeSeriesStore", "repro.analytics.descriptive.aggregate")),
        _uc("Facility-level dashboards", D, BI, (1, 7), False,
            ("repro.analytics.descriptive.dashboard.Dashboard",)),
        _uc("ITUE calculation", D, HW, (59,), False,
            ("repro.analytics.descriptive.kpis.itue",)),
        _uc("System performance indicators", D, HW, (14,), False,
            ("repro.analytics.descriptive.entropy.entropy_series",)),
        _uc("System-level dashboards", D, HW, (7, 8), False,
            ("repro.analytics.descriptive.dashboard.Dashboard",)),
        _uc("Slowdown calculation", D, SW, (60,), False,
            ("repro.analytics.descriptive.scheduling_metrics.scheduling_report",)),
        _uc("Scheduler-level dashboards", D, SW, (61, 62), False,
            ("repro.analytics.descriptive.dashboard.Dashboard",)),
        _uc("Job performance models", D, AP, (63,), False,
            ("repro.analytics.descriptive.roofline.RooflineModel",)),
        _uc("Job data processing", D, AP, (8,), False,
            ("repro.telemetry.export",)),
        _uc("Job-level dashboards", D, AP, (5, 6, 10), False,
            ("repro.analytics.descriptive.dashboard.Dashboard",)),
    ]


def survey_grid():
    """The populated framework grid — the executable Table I."""
    from repro.core.grid import FrameworkGrid

    grid = FrameworkGrid()
    grid.place_all(table1_use_cases())
    return grid


def figure3_systems() -> List[SystemProfile]:
    """The complex ODA systems of Figure 3 / Section V as grid footprints.

    The figure itself is schematic; footprints below are reconstructed
    from the paper's Section V discussion (Bortot/ENI, PowerStack) plus
    representative single-pillar systems from the survey that the figure
    contrasts them with — documented as a reconstruction in EXPERIMENTS.md.
    """
    D, G, P, S = (
        AnalyticsType.DESCRIPTIVE,
        AnalyticsType.DIAGNOSTIC,
        AnalyticsType.PREDICTIVE,
        AnalyticsType.PRESCRIPTIVE,
    )
    BI, HW, SW, AP = (
        Pillar.BUILDING_INFRASTRUCTURE,
        Pillar.SYSTEM_HARDWARE,
        Pillar.SYSTEM_SOFTWARE,
        Pillar.APPLICATIONS,
    )
    return [
        SystemProfile(
            name="Bortot et al. (ENI)",
            cells=frozenset({GridCell(G, BI), GridCell(S, BI)}),
            references=(39,),
            description=(
                "Diagnostic component identifying infrastructure anomalies "
                "aided by periodic stress testing, plus a prescriptive "
                "component determining optimal cooling setpoints; both "
                "within the building-infrastructure pillar (Section V-A)."
            ),
        ),
        SystemProfile(
            name="PowerStack",
            cells=frozenset(
                {
                    GridCell(S, HW), GridCell(S, SW), GridCell(S, AP),
                    GridCell(P, HW), GridCell(P, SW),
                }
            ),
            references=(41,),
            description=(
                "Multi-year cross-pillar effort for HPC power management: "
                "prescriptive control of scheduler, hardware and application "
                "knobs, informed by predictive techniques (Section V-B)."
            ),
        ),
        SystemProfile(
            name="GEOPM",
            cells=frozenset({GridCell(P, HW), GridCell(S, HW)}),
            references=(11,),
            description=(
                "Node-level power management runtime: predicts CPU "
                "instruction mixes and prescriptively tunes frequencies."
            ),
        ),
        SystemProfile(
            name="ClusterCockpit",
            cells=frozenset({GridCell(D, AP)}),
            references=(5,),
            description="Job-specific performance-monitoring dashboards (single cell).",
        ),
        SystemProfile(
            name="LLNL power forecasting",
            cells=frozenset({GridCell(D, BI), GridCell(P, BI)}),
            references=(72,),
            description=(
                "Fourier analysis of historical site power to forecast "
                ">750 kW / 15 min fluctuations for utility notification "
                "(Section V-C)."
            ),
        ),
    ]
