"""Shared parallel-filesystem model.

A single bandwidth pool shared by all concurrently performing I/O phases
with proportional fairness: when aggregate demand exceeds capacity, every
stream is scaled by ``capacity / demand``.  This creates the cross-job I/O
interference that data-locality and I/O-bottleneck diagnostics (AutoDiagn
[9], roofline I/O analysis [63]) look for.
"""

from __future__ import annotations

from typing import Dict, Mapping

from repro.errors import ConfigurationError

__all__ = ["ParallelFilesystem"]


class ParallelFilesystem:
    """Proportional-share bandwidth pool.

    Parameters
    ----------
    name:
        Metric-path identifier.
    bandwidth_bytes:
        Aggregate deliverable bandwidth in bytes/s.
    """

    def __init__(self, name: str = "pfs", bandwidth_bytes: float = 200e9):
        if bandwidth_bytes <= 0:
            raise ConfigurationError("filesystem bandwidth must be positive")
        self.name = name
        self.bandwidth_bytes = bandwidth_bytes
        self._demand: Dict[str, float] = {}
        self._granted: Dict[str, float] = {}
        self.bytes_moved = 0.0

    def begin_step(self) -> None:
        """Clear per-step demand registrations."""
        self._demand.clear()
        self._granted.clear()

    def demand(self, flow_id: str, bytes_per_s: float) -> None:
        """Register a job's aggregate I/O demand for this step."""
        if bytes_per_s > 0:
            self._demand[flow_id] = self._demand.get(flow_id, 0.0) + bytes_per_s

    def resolve(self, dt: float) -> Mapping[str, float]:
        """Allocate bandwidth proportionally; returns granted bytes/s by flow."""
        total = sum(self._demand.values())
        scale = min(self.bandwidth_bytes / total, 1.0) if total > 0 else 1.0
        self._granted = {flow: rate * scale for flow, rate in self._demand.items()}
        self.bytes_moved += sum(self._granted.values()) * dt
        return dict(self._granted)

    def slowdown(self, flow_id: str) -> float:
        """I/O slowdown factor (>= 1) for a flow after :meth:`resolve`."""
        demanded = self._demand.get(flow_id, 0.0)
        granted = self._granted.get(flow_id, 0.0)
        if demanded <= 0 or granted <= 0:
            return 1.0
        return max(demanded / granted, 1.0)

    @property
    def utilization(self) -> float:
        """Granted bandwidth / capacity in the last resolved step."""
        return sum(self._granted.values()) / self.bandwidth_bytes

    def sensors(self) -> Dict[str, float]:
        return {
            "bandwidth_demand": sum(self._demand.values()),
            "bandwidth_granted": sum(self._granted.values()),
            "utilization": self.utilization,
            "bytes_moved": self.bytes_moved,
        }
