"""Racks: physical grouping of nodes with a shared cooling position.

Each rack receives coolant from a cooling loop with a position-dependent
temperature offset (racks further along the row run slightly warmer), which
gives the cooling-aware placement use case (Bash & Forman [22]) a real
gradient to exploit.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cluster.node import ComputeNode
from repro.errors import ConfigurationError

__all__ = ["Rack"]


class Rack:
    """A rack of compute nodes.

    Parameters
    ----------
    name:
        Rack identifier, e.g. ``"rack0"``.
    nodes:
        The nodes housed in this rack.
    cooling_offset_c:
        Temperature penalty of this rack's position relative to the loop
        supply temperature (0 = closest to the cooling distribution unit).
    loop_name:
        Name of the facility cooling loop serving this rack.
    """

    def __init__(
        self,
        name: str,
        nodes: List[ComputeNode],
        cooling_offset_c: float = 0.0,
        loop_name: str = "loop0",
    ):
        if not nodes:
            raise ConfigurationError(f"rack {name} must contain at least one node")
        self.name = name
        self.nodes = nodes
        self.cooling_offset_c = cooling_offset_c
        self.loop_name = loop_name

    def set_inlet_temp(self, supply_temp_c: float) -> None:
        """Propagate the loop supply temperature to every node's inlet."""
        inlet = supply_temp_c + self.cooling_offset_c
        for node in self.nodes:
            node.inlet_temp_c = inlet

    @property
    def power_w(self) -> float:
        """Total instantaneous rack power."""
        return sum(node.power_w for node in self.nodes)

    @property
    def up_nodes(self) -> List[ComputeNode]:
        return [node for node in self.nodes if node.up]

    def node(self, name: str) -> ComputeNode:
        for candidate in self.nodes:
            if candidate.name == name:
                return candidate
        raise ConfigurationError(f"rack {self.name} has no node {name!r}")

    def sensors(self) -> Dict[str, float]:
        """Rack-level aggregate sensors."""
        up = self.up_nodes
        return {
            "power": self.power_w,
            "nodes_up": float(len(up)),
            "max_temp": max((n.temp_c for n in up), default=0.0),
            "mean_temp": (sum(n.temp_c for n in up) / len(up)) if up else 0.0,
        }
