"""Interconnect fabric model.

A two-level fat-tree built on :mod:`networkx`: nodes attach to leaf (edge)
switches, leaves attach to spine switches.  Job traffic is routed over
shortest paths; when the offered load on a link exceeds its capacity every
flow crossing it is slowed proportionally.  This produces exactly the
inter-job network contention that diagnostic hardware ODA analyses at link
level (Jha et al. [55], Grant et al. [19]).
"""

from __future__ import annotations

import itertools
import zlib
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

import networkx as nx

from repro.errors import ConfigurationError

__all__ = ["FatTreeFabric"]

LinkKey = Tuple[str, str]


def _canonical(a: str, b: str) -> LinkKey:
    return (a, b) if a <= b else (b, a)


class FatTreeFabric:
    """Two-level fat-tree with proportional-share contention.

    Parameters
    ----------
    node_names:
        Compute-node identifiers to attach.
    nodes_per_leaf:
        Ports per leaf switch dedicated to compute nodes.
    spine_count:
        Number of spine switches (each leaf uplinks to all spines).
    link_capacity:
        Capacity of every link in bytes/s.
    """

    def __init__(
        self,
        node_names: Sequence[str],
        nodes_per_leaf: int = 16,
        spine_count: int = 2,
        link_capacity: float = 12.5e9,  # 100 Gb/s
    ):
        if not node_names:
            raise ConfigurationError("fabric needs at least one node")
        if nodes_per_leaf < 1 or spine_count < 1:
            raise ConfigurationError("nodes_per_leaf and spine_count must be >= 1")
        self.link_capacity = link_capacity
        self.graph = nx.Graph()
        self.leaves: List[str] = []
        self.spines = [f"spine{i}" for i in range(spine_count)]
        self._node_leaf: Dict[str, str] = {}

        for spine in self.spines:
            self.graph.add_node(spine, role="spine")
        for leaf_index, start in enumerate(range(0, len(node_names), nodes_per_leaf)):
            leaf = f"leaf{leaf_index}"
            self.leaves.append(leaf)
            self.graph.add_node(leaf, role="leaf")
            for spine in self.spines:
                self.graph.add_edge(leaf, spine)
            for name in node_names[start : start + nodes_per_leaf]:
                self.graph.add_node(name, role="node")
                self.graph.add_edge(name, leaf)
                self._node_leaf[name] = leaf

        # Offered load per link for the current step, bytes/s.
        self._offered: Dict[LinkKey, float] = {}
        # flow id -> links it crosses (so slowdowns can be attributed).
        self._flow_links: Dict[str, List[LinkKey]] = {}

    # ------------------------------------------------------------------
    def leaf_of(self, node_name: str) -> str:
        try:
            return self._node_leaf[node_name]
        except KeyError:
            raise ConfigurationError(f"unknown fabric node {node_name!r}") from None

    def route(self, src: str, dst: str) -> List[LinkKey]:
        """Deterministic shortest-path route between two compute nodes.

        Same-leaf pairs route through their leaf only; cross-leaf pairs use
        the spine chosen by a stable hash of the pair, modelling static
        (deterministic) routing.
        """
        leaf_src, leaf_dst = self.leaf_of(src), self.leaf_of(dst)
        if leaf_src == leaf_dst:
            return [_canonical(src, leaf_src), _canonical(leaf_src, dst)]
        # crc32 keeps spine selection stable across processes (unlike hash()).
        pair_key = zlib.crc32(f"{min(src, dst)}|{max(src, dst)}".encode())
        spine = self.spines[pair_key % len(self.spines)]
        return [
            _canonical(src, leaf_src),
            _canonical(leaf_src, spine),
            _canonical(spine, leaf_dst),
            _canonical(leaf_dst, dst),
        ]

    # ------------------------------------------------------------------
    def begin_step(self) -> None:
        """Reset offered loads before re-registering the current flows."""
        self._offered.clear()
        self._flow_links.clear()

    def offer_flow(self, flow_id: str, members: Sequence[str], bytes_per_s: float) -> None:
        """Register a job's aggregate traffic among its allocated nodes.

        ``bytes_per_s`` is the job's total transmit rate summed over
        members.  Traffic is a uniform all-to-all: each member transmits
        ``bytes_per_s / n`` split evenly across its ``n - 1`` peers, so a
        pair's bidirectional rate is ``2 * bytes_per_s / (n * (n - 1))``
        and a member's access link carries exactly ``2 * bytes_per_s / n``
        (tx + rx) when uncontended.
        """
        n = len(members)
        if bytes_per_s <= 0 or n < 2:
            return
        per_pair = 2.0 * bytes_per_s / (n * (n - 1))
        links: List[LinkKey] = []
        for src, dst in itertools.combinations(sorted(members), 2):
            for link in self.route(src, dst):
                self._offered[link] = self._offered.get(link, 0.0) + per_pair
                links.append(link)
        self._flow_links[flow_id] = links

    def link_utilization(self) -> Dict[LinkKey, float]:
        """Offered load / capacity per link (can exceed 1 when saturated)."""
        return {
            link: offered / self.link_capacity
            for link, offered in self._offered.items()
        }

    def flow_slowdown(self, flow_id: str) -> float:
        """Contention slowdown factor (>= 1) for a registered flow.

        The factor is the worst oversubscription among links the flow
        crosses — proportional-share sharing means a flow crossing a link
        offered at 2x capacity progresses at half speed.
        """
        links = self._flow_links.get(flow_id)
        if not links:
            return 1.0
        worst = max(
            self._offered.get(link, 0.0) / self.link_capacity for link in links
        )
        return max(worst, 1.0)

    def hot_links(self, threshold: float = 0.9) -> List[Tuple[LinkKey, float]]:
        """Links above a utilization threshold, most loaded first."""
        utilization = self.link_utilization()
        hot = [(link, u) for link, u in utilization.items() if u >= threshold]
        return sorted(hot, key=lambda item: -item[1])

    def sensors(self) -> Dict[str, float]:
        """Fabric-level aggregates for telemetry."""
        utilization = list(self.link_utilization().values())
        return {
            "links_active": float(len(utilization)),
            "max_link_util": max(utilization, default=0.0),
            "mean_link_util": (sum(utilization) / len(utilization)) if utilization else 0.0,
            "saturated_links": float(sum(1 for u in utilization if u > 1.0)),
        }
