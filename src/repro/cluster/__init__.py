"""System-hardware substrate (the second pillar).

Compute nodes with power/thermal/DVFS models, racks, a fat-tree fabric,
a shared parallel filesystem, stochastic hardware faults, and the
:class:`~repro.cluster.system.HPCSystem` aggregate that exports hardware
telemetry.
"""

from repro.cluster.faults import NodeFault, NodeFaultKind, NodeFaultModel
from repro.cluster.network import FatTreeFabric
from repro.cluster.node import IDLE_LOAD, ComputeNode, CpuSpec, NodeLoad
from repro.cluster.rack import Rack
from repro.cluster.storage import ParallelFilesystem
from repro.cluster.system import HPCSystem, build_system

__all__ = [
    "NodeFault",
    "NodeFaultKind",
    "NodeFaultModel",
    "FatTreeFabric",
    "IDLE_LOAD",
    "ComputeNode",
    "CpuSpec",
    "NodeLoad",
    "Rack",
    "ParallelFilesystem",
    "HPCSystem",
    "build_system",
]
