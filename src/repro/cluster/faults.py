"""Hardware failure and degradation model for compute nodes.

Two mechanisms feed hardware-pillar diagnostic and predictive ODA:

* **Hard failures** follow a temperature-accelerated hazard: each node's
  per-step failure probability rises with age (infant mortality excluded —
  a flat Weibull shape) and exponentially with operating temperature.
  Before a scheduled failure, the node emits a rising ECC-error count — the
  leading indicator component-failure prediction learns from (Sîrbu &
  Babaoglu [48]).
* **Soft degradations** silently reduce a node's memory bandwidth or CPU
  health, producing the "limping-but-alive" anomalies that node-level
  anomaly detection targets (Borghesi et al. [17], Tuncer et al. [16]).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import List, Optional

import numpy as np

from repro.cluster.node import ComputeNode
from repro.simulation.engine import Simulator
from repro.simulation.trace import TraceLog

__all__ = ["NodeFaultKind", "NodeFault", "NodeFaultModel"]


class NodeFaultKind(Enum):
    CRASH = "crash"                # hard down, repaired after MTTR
    MEM_DEGRADATION = "mem_degradation"   # reduced memory bandwidth
    CPU_DEGRADATION = "cpu_degradation"   # reduced effective CPU throughput
    THERMAL_RUNAWAY = "thermal_runaway"   # fan/paste issue: hotter at same power


@dataclass
class NodeFault:
    """Ground-truth record of one injected/evolved node fault."""

    node: str
    kind: NodeFaultKind
    start: float
    duration: float
    severity: float

    @property
    def end(self) -> float:
        return self.start + self.duration

    def active(self, time: float) -> bool:
        return self.start <= time <= self.end


class NodeFaultModel:
    """Drives stochastic node faults on a simulator.

    Parameters
    ----------
    base_rate_per_node_day:
        Expected hard-failure rate per node-day at reference temperature.
    temp_accel_per_c:
        Exponential acceleration of the hazard per Celsius above 60 C.
    mttr_s:
        Mean time to repair after a crash.
    degradation_rate_per_node_day:
        Expected soft-degradation rate per node-day.
    """

    def __init__(
        self,
        sim: Simulator,
        trace: TraceLog,
        rng: np.random.Generator,
        nodes: List[ComputeNode],
        base_rate_per_node_day: float = 0.02,
        temp_accel_per_c: float = 0.04,
        mttr_s: float = 6 * 3600.0,
        degradation_rate_per_node_day: float = 0.05,
        check_period: float = 300.0,
        ecc_leadtime_s: float = 3 * 3600.0,
    ):
        self.sim = sim
        self.trace = trace
        self.rng = rng
        self.nodes = nodes
        self.base_rate = base_rate_per_node_day
        self.temp_accel = temp_accel_per_c
        self.mttr_s = mttr_s
        self.degradation_rate = degradation_rate_per_node_day
        self.check_period = check_period
        self.ecc_leadtime_s = ecc_leadtime_s
        self.faults: List[NodeFault] = []
        self._pending_crash: dict[str, float] = {}  # node -> crash time

    def start(self) -> None:
        """Begin the periodic hazard evaluation."""
        self.sim.schedule_periodic(
            self.check_period, self._tick, label="node_faults", priority=5
        )

    # ------------------------------------------------------------------
    def _hazard(self, node: ComputeNode) -> float:
        """Instantaneous crash probability for one check interval."""
        day = 86_400.0
        accel = math.exp(self.temp_accel * max(node.temp_c - 60.0, 0.0))
        return self.base_rate * accel * self.check_period / day

    def _tick(self, sim: Simulator) -> None:
        for node in self.nodes:
            if not node.up:
                continue
            # ECC ramp for already-scheduled crashes (predictive signal).
            crash_at = self._pending_crash.get(node.name)
            if crash_at is not None:
                remaining = crash_at - sim.now
                if remaining <= 0:
                    self._crash(node, sim.now)
                else:
                    ramp = max(0.0, 1.0 - remaining / self.ecc_leadtime_s)
                    node.ecc_errors += int(self.rng.poisson(1 + 20 * ramp))
                continue
            if self.rng.random() < self._hazard(node):
                # Schedule the crash after the ECC lead time so the ramp is
                # observable, not instantaneous.
                self._pending_crash[node.name] = sim.now + self.ecc_leadtime_s
            elif self.rng.random() < self.degradation_rate * self.check_period / 86_400.0:
                self._degrade(node, sim.now)

    def _crash(self, node: ComputeNode, now: float) -> None:
        self._pending_crash.pop(node.name, None)
        job_id = node.job_id
        node.fail()
        duration = float(self.rng.exponential(self.mttr_s))
        fault = NodeFault(node.name, NodeFaultKind.CRASH, now, duration, 1.0)
        self.faults.append(fault)
        self.trace.emit(
            now, f"cluster.{node.name}", "node_crash",
            job_id=job_id, repair_eta=now + duration,
        )
        self.sim.schedule(
            duration,
            lambda s, n=node: self._repair(n, s.now),
            label=f"repair:{node.name}",
        )

    def _repair(self, node: ComputeNode, now: float) -> None:
        node.restore()
        self.trace.emit(now, f"cluster.{node.name}", "node_repair")

    def _degrade(self, node: ComputeNode, now: float) -> None:
        kind = [
            NodeFaultKind.MEM_DEGRADATION,
            NodeFaultKind.CPU_DEGRADATION,
            NodeFaultKind.THERMAL_RUNAWAY,
        ][int(self.rng.integers(3))]
        severity = float(self.rng.uniform(0.2, 0.6))
        duration = float(self.rng.exponential(8 * 3600.0))
        if kind is NodeFaultKind.MEM_DEGRADATION:
            node.mem_bw_health = 1.0 - severity
        elif kind is NodeFaultKind.CPU_DEGRADATION:
            node.cpu_health = 1.0 - severity
        else:
            node.thermal_resistance *= 1.0 + severity

        fault = NodeFault(node.name, kind, now, duration, severity)
        self.faults.append(fault)
        self.trace.emit(
            now, f"cluster.{node.name}", "node_degradation",
            fault_kind=kind.value, severity=severity,
        )

        def clear(sim: Simulator, n: ComputeNode = node, k: NodeFaultKind = kind, s: float = severity) -> None:
            if k is NodeFaultKind.MEM_DEGRADATION:
                n.mem_bw_health = 1.0
            elif k is NodeFaultKind.CPU_DEGRADATION:
                n.cpu_health = 1.0
            else:
                n.thermal_resistance /= 1.0 + s
            self.trace.emit(sim.now, f"cluster.{n.name}", "degradation_clear", fault_kind=k.value)

        self.sim.schedule(duration, clear, label=f"degrade_clear:{node.name}")

    # ------------------------------------------------------------------
    def inject(
        self,
        node: ComputeNode,
        kind: NodeFaultKind,
        start: float,
        duration: float,
        severity: float = 0.5,
    ) -> NodeFault:
        """Deterministically inject a fault (for benchmark ground truth)."""
        fault = NodeFault(node.name, kind, start, duration, severity)
        self.faults.append(fault)

        def onset(sim: Simulator) -> None:
            if kind is NodeFaultKind.CRASH:
                job_id = node.job_id
                node.fail()
                self.trace.emit(sim.now, f"cluster.{node.name}", "node_crash", job_id=job_id)
                self.sim.schedule(duration, lambda s: self._repair(node, s.now))
            elif kind is NodeFaultKind.MEM_DEGRADATION:
                node.mem_bw_health = 1.0 - severity
                self._emit_and_schedule_clear(node, kind, duration, severity)
            elif kind is NodeFaultKind.CPU_DEGRADATION:
                node.cpu_health = 1.0 - severity
                self._emit_and_schedule_clear(node, kind, duration, severity)
            else:
                node.thermal_resistance *= 1.0 + severity
                self._emit_and_schedule_clear(node, kind, duration, severity)

        self.sim.schedule_at(start, onset, label=f"inject:{node.name}")
        return fault

    def _emit_and_schedule_clear(
        self, node: ComputeNode, kind: NodeFaultKind, duration: float, severity: float
    ) -> None:
        self.trace.emit(
            self.sim.now, f"cluster.{node.name}", "node_degradation",
            fault_kind=kind.value, severity=severity,
        )

        def clear(sim: Simulator) -> None:
            if kind is NodeFaultKind.MEM_DEGRADATION:
                node.mem_bw_health = 1.0
            elif kind is NodeFaultKind.CPU_DEGRADATION:
                node.cpu_health = 1.0
            else:
                node.thermal_resistance /= 1.0 + severity
            self.trace.emit(sim.now, f"cluster.{node.name}", "degradation_clear", fault_kind=kind.value)

        self.sim.schedule(duration, clear, label=f"clear:{node.name}")
