"""Compute-node model: power, thermals, DVFS and performance counters.

The node is the unit of the system-hardware pillar.  Its models capture the
couplings hardware ODA exploits:

* **Power** splits into idle, dynamic (scaling with utilization and the cube
  of frequency) and temperature-dependent leakage — so DVFS tuning
  (GEOPM [11], EAR [24], SuperMUC EAS [40]) has a real energy/performance
  trade-off to optimize.
* **Thermals** are first-order: node temperature relaxes toward
  ``inlet + R_th * power`` with a time constant, so cooling setpoints
  (facility pillar) propagate into fan power and leakage (hardware pillar) —
  the cross-pillar coupling the paper emphasises.
* **Performance counters** (IPC proxy, memory bandwidth, FLOPS) are derived
  from the assigned workload phase, giving fingerprinting and anomaly
  detection realistic multi-dimensional signatures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ConfigurationError, ControlError

__all__ = ["NodeLoad", "CpuSpec", "ComputeNode", "IDLE_LOAD"]


@dataclass(frozen=True)
class NodeLoad:
    """Resource demands a running job phase places on one node.

    All utilizations are fractions in ``[0, 1]`` of the node's capacity.

    Attributes
    ----------
    cpu_util:
        Fraction of CPU cycles demanded.
    mem_bw_util:
        Fraction of memory bandwidth demanded (drives memory-boundedness).
    mem_occupancy:
        Fraction of DRAM capacity resident.
    io_bw_bytes:
        Filesystem bandwidth demanded, bytes/s (shared; see storage model).
    net_bw_bytes:
        Network bandwidth demanded toward job peers, bytes/s.
    compute_fraction:
        Sensitivity of progress to CPU frequency: 1.0 = perfectly
        compute-bound (progress scales with f), 0.0 = fully bound elsewhere.
    flops_per_second:
        Peak-normalized FLOP rate at nominal frequency and full progress.
    """

    cpu_util: float = 0.0
    mem_bw_util: float = 0.0
    mem_occupancy: float = 0.0
    io_bw_bytes: float = 0.0
    net_bw_bytes: float = 0.0
    compute_fraction: float = 1.0
    flops_per_second: float = 0.0

    def __post_init__(self) -> None:
        for name in ("cpu_util", "mem_bw_util", "mem_occupancy", "compute_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"NodeLoad.{name} must be in [0,1], got {value}")


#: The load of an idle node.
IDLE_LOAD = NodeLoad()


@dataclass(frozen=True)
class CpuSpec:
    """Static CPU description, including the DVFS ladder."""

    cores: int = 48
    freq_levels_ghz: tuple = (1.2, 1.6, 2.0, 2.4, 2.7)
    nominal_ghz: float = 2.4
    tdp_w: float = 205.0
    peak_gflops: float = 3000.0

    def __post_init__(self) -> None:
        if self.nominal_ghz not in self.freq_levels_ghz:
            raise ConfigurationError(
                f"nominal frequency {self.nominal_ghz} not in ladder {self.freq_levels_ghz}"
            )


class ComputeNode:
    """One compute node with power, thermal and counter models.

    Parameters
    ----------
    name:
        Metric-path identifier, e.g. ``"r0n3"``.
    cpu:
        CPU specification (two sockets assumed folded into one spec).
    idle_power_w / max_dynamic_w:
        Power at idle, and the additional dynamic power at full utilization
        and nominal frequency.
    thermal_resistance:
        Kelvin per watt from node power to steady-state temperature rise.
    thermal_tau_s:
        First-order thermal time constant.
    """

    def __init__(
        self,
        name: str,
        cpu: Optional[CpuSpec] = None,
        idle_power_w: float = 120.0,
        max_dynamic_w: float = 280.0,
        leakage_coeff: float = 0.0035,
        thermal_resistance: float = 0.06,
        thermal_tau_s: float = 120.0,
        fan_base_w: float = 10.0,
        fan_max_w: float = 45.0,
        throttle_temp_c: float = 85.0,
    ):
        self.name = name
        self.cpu = cpu or CpuSpec()
        self.idle_power_w = idle_power_w
        self.max_dynamic_w = max_dynamic_w
        self.leakage_coeff = leakage_coeff
        self.thermal_resistance = thermal_resistance
        self.thermal_tau_s = thermal_tau_s
        self.fan_base_w = fan_base_w
        self.fan_max_w = fan_max_w
        self.throttle_temp_c = throttle_temp_c

        # Dynamic state.
        self.frequency_ghz = self.cpu.nominal_ghz
        self.inlet_temp_c = 20.0
        self.temp_c = 30.0
        self.load: NodeLoad = IDLE_LOAD
        self.job_id: Optional[str] = None
        self.up = True
        self.energy_j = 0.0
        self.age_s = 0.0
        self.ecc_errors = 0
        # Health factors degraded by hardware faults (1.0 = nominal).
        self.mem_bw_health = 1.0
        self.cpu_health = 1.0
        # Fraction of cycles stolen by OS/kernel interference (software pillar).
        self.os_noise = 0.0

        self._power_w = idle_power_w
        self._progress_rate = 0.0
        self._contention = 1.0  # network/storage slowdown factor (>= 1)

    # ------------------------------------------------------------------
    # Knobs (prescriptive interfaces)
    # ------------------------------------------------------------------
    def set_frequency(self, ghz: float) -> None:
        """Actuate DVFS: set the core frequency to a ladder level."""
        if ghz not in self.cpu.freq_levels_ghz:
            raise ControlError(
                f"node {self.name}: {ghz} GHz not in ladder {self.cpu.freq_levels_ghz}"
            )
        self.frequency_ghz = ghz

    # ------------------------------------------------------------------
    # Workload interface (driven by the software pillar)
    # ------------------------------------------------------------------
    def assign(self, job_id: Optional[str], load: NodeLoad) -> None:
        """Install the demands of a running job phase (or idle the node)."""
        self.job_id = job_id
        self.load = load

    def set_contention(self, factor: float) -> None:
        """Install the shared-resource slowdown factor (>= 1) for this step."""
        if factor < 1.0:
            raise ConfigurationError(f"contention factor must be >= 1, got {factor}")
        self._contention = factor

    @property
    def progress_rate(self) -> float:
        """Fraction of nominal work completed per wall-clock second.

        1.0 means the phase advances in real time; DVFS below nominal slows
        compute-bound phases, and contention slows the rest.
        """
        return self._progress_rate

    # ------------------------------------------------------------------
    # Physics
    # ------------------------------------------------------------------
    def update(self, dt: float) -> float:
        """Advance power/thermal state by ``dt`` seconds; returns power (W)."""
        if not self.up:
            self._power_w = 0.0
            self._progress_rate = 0.0
            self.temp_c += (self.inlet_temp_c - self.temp_c) * min(
                dt / self.thermal_tau_s, 1.0
            )
            return 0.0

        freq_ratio = self.frequency_ghz / self.cpu.nominal_ghz
        thermal_throttle = 1.0 if self.temp_c < self.throttle_temp_c else 0.7
        effective_util = self.load.cpu_util * self.cpu_health * thermal_throttle

        # Progress: compute-bound share scales with frequency, the rest is
        # bounded by memory/IO/network and by the contention factor.
        compute_share = self.load.compute_fraction
        rate = compute_share * freq_ratio * thermal_throttle + (1.0 - compute_share)
        rate *= max(1.0 - self.os_noise, 0.0)
        self._progress_rate = rate / self._contention if self.load.cpu_util > 0 else 0.0

        dynamic = self.max_dynamic_w * effective_util * freq_ratio**3
        leakage = self.idle_power_w * self.leakage_coeff * max(self.temp_c - 30.0, 0.0)
        fan_fraction = min(max((self.temp_c - 40.0) / 45.0, 0.0), 1.0)
        fan = self.fan_base_w + (self.fan_max_w - self.fan_base_w) * fan_fraction**2
        power = self.idle_power_w + dynamic + leakage + fan

        # First-order thermal relaxation toward the steady state.
        steady = self.inlet_temp_c + self.thermal_resistance * power
        alpha = min(dt / self.thermal_tau_s, 1.0)
        self.temp_c += (steady - self.temp_c) * alpha

        self._power_w = power
        self.energy_j += power * dt
        self.age_s += dt
        return power

    # ------------------------------------------------------------------
    # Failure / fault hooks (driven by cluster.faults)
    # ------------------------------------------------------------------
    def fail(self) -> None:
        """Hard failure: node goes down, dropping its job."""
        self.up = False
        self.job_id = None
        self.load = IDLE_LOAD

    def restore(self) -> None:
        """Bring the node back after repair."""
        self.up = True
        self.cpu_health = 1.0
        self.mem_bw_health = 1.0
        self.ecc_errors = 0

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    @property
    def power_w(self) -> float:
        return self._power_w

    def counters(self) -> Dict[str, float]:
        """Instantaneous sensor/counter readings for this node."""
        freq_ratio = self.frequency_ghz / self.cpu.nominal_ghz
        flops = (
            self.load.flops_per_second
            * self._progress_rate
            * self.cpu.peak_gflops
            * 1e9
            if self.up
            else 0.0
        )
        return {
            "power": self._power_w,
            "temp": self.temp_c,
            "inlet_temp": self.inlet_temp_c,
            "freq": self.frequency_ghz,
            "cpu_util": self.load.cpu_util if self.up else 0.0,
            "mem_bw_util": self.load.mem_bw_util * self.mem_bw_health if self.up else 0.0,
            "mem_occupancy": self.load.mem_occupancy if self.up else 0.0,
            "io_bw": self.load.io_bw_bytes if self.up else 0.0,
            "net_bw": self.load.net_bw_bytes if self.up else 0.0,
            "flops": flops,
            "ipc": (self.load.compute_fraction * 1.6 + 0.4) * freq_ratio
            * self.cpu_health
            if (self.up and self.load.cpu_util > 0)
            else 0.0,
            "ecc_errors": float(self.ecc_errors),
            # Context-switch rate: baseline plus the noise contribution —
            # the observable OS-noise detectors work from (Ferreira [57]).
            "ctx_switches": 200.0 + 50_000.0 * self.os_noise,
            "up": 1.0 if self.up else 0.0,
        }
