"""HPCSystem: the system-hardware aggregate.

Owns racks/nodes, the interconnect fabric and the parallel filesystem,
advances node physics on a periodic tick, and exposes the hardware-pillar
telemetry sampler (per-node sensors and counters plus fabric/storage
aggregates).  The software pillar drives it through :meth:`apply_loads`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.faults import NodeFaultModel
from repro.cluster.network import FatTreeFabric
from repro.cluster.node import IDLE_LOAD, ComputeNode, CpuSpec, NodeLoad
from repro.cluster.rack import Rack
from repro.cluster.storage import ParallelFilesystem
from repro.errors import ConfigurationError
from repro.simulation.engine import PeriodicHandle, Simulator
from repro.simulation.trace import TraceLog
from repro.telemetry.collector import Sampler
from repro.telemetry.metric import MetricKind, MetricSpec, Unit

__all__ = ["HPCSystem", "build_system"]

#: Per-node counter names exported as telemetry (order fixed for specs).
_NODE_METRICS: Tuple[Tuple[str, Unit], ...] = (
    ("power", Unit.WATT),
    ("temp", Unit.CELSIUS),
    ("inlet_temp", Unit.CELSIUS),
    ("freq", Unit.HERTZ),
    ("cpu_util", Unit.FRACTION),
    ("mem_bw_util", Unit.FRACTION),
    ("mem_occupancy", Unit.FRACTION),
    ("io_bw", Unit.BYTES_PER_SECOND),
    ("net_bw", Unit.BYTES_PER_SECOND),
    ("flops", Unit.FLOPS),
    ("ipc", Unit.DIMENSIONLESS),
    ("ecc_errors", Unit.COUNT),
    ("ctx_switches", Unit.COUNT),
    ("up", Unit.DIMENSIONLESS),
)


class HPCSystem:
    """The simulated HPC machine (system-hardware pillar).

    Parameters
    ----------
    name:
        Root of hardware metric paths (default ``"cluster"``).
    racks:
        Rack list; node names must be globally unique.
    fabric / filesystem:
        Shared-resource models; defaults are sized from the node count.
    tick:
        Physics update period in seconds.
    """

    def __init__(
        self,
        racks: List[Rack],
        name: str = "cluster",
        fabric: Optional[FatTreeFabric] = None,
        filesystem: Optional[ParallelFilesystem] = None,
        tick: float = 30.0,
    ):
        if not racks:
            raise ConfigurationError("system needs at least one rack")
        self.name = name
        self.racks = racks
        self.tick = tick
        self.nodes: List[ComputeNode] = [n for rack in racks for n in rack.nodes]
        names = [n.name for n in self.nodes]
        if len(set(names)) != len(names):
            raise ConfigurationError("node names must be unique across racks")
        self._node_by_name = {n.name: n for n in self.nodes}
        self._rack_of = {
            n.name: rack for rack in racks for n in rack.nodes
        }
        self.fabric = fabric or FatTreeFabric(names)
        self.filesystem = filesystem or ParallelFilesystem(
            bandwidth_bytes=2e9 * len(self.nodes)
        )
        self.fault_model: Optional[NodeFaultModel] = None
        self.trace: Optional[TraceLog] = None
        # supply temperature per loop name, installed by the data center.
        self._loop_supply: Dict[str, float] = {}
        self._handle: Optional[PeriodicHandle] = None
        self._last_update: Optional[float] = None
        # job_id -> (node names, aggregate loads) registered this step.
        self._job_flows: Dict[str, Tuple[List[str], NodeLoad]] = {}

    # ------------------------------------------------------------------
    # Topology access
    # ------------------------------------------------------------------
    def node(self, name: str) -> ComputeNode:
        try:
            return self._node_by_name[name]
        except KeyError:
            raise ConfigurationError(f"unknown node {name!r}") from None

    def rack_of(self, node_name: str) -> Rack:
        return self._rack_of[self.node(node_name).name]

    def up_nodes(self) -> List[ComputeNode]:
        return [n for n in self.nodes if n.up]

    @property
    def node_count(self) -> int:
        return len(self.nodes)

    @property
    def it_power_w(self) -> float:
        """Total IT power — the quantity the facility pulls as heat load."""
        return sum(n.power_w for n in self.nodes)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def attach(
        self,
        sim: Simulator,
        trace: Optional[TraceLog] = None,
        rng: Optional[np.random.Generator] = None,
        enable_faults: bool = False,
    ) -> None:
        """Start the periodic physics tick (and optionally the fault model)."""
        self.trace = trace
        self._handle = sim.schedule_periodic(
            self.tick, lambda s: self.update(s.now), start_delay=0.0,
            label=f"{self.name}:tick", priority=1,
        )
        if enable_faults:
            if trace is None or rng is None:
                raise ConfigurationError("fault model needs trace and rng")
            self.fault_model = NodeFaultModel(sim, trace, rng, self.nodes)
            self.fault_model.start()

    def detach(self) -> None:
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    # ------------------------------------------------------------------
    # Software-pillar interface
    # ------------------------------------------------------------------
    def set_loop_supply(self, loop_name: str, supply_temp_c: float) -> None:
        """Install a cooling loop's supply temperature (facility coupling)."""
        self._loop_supply[loop_name] = supply_temp_c

    def apply_loads(self, assignments: Mapping[str, Tuple[str, NodeLoad]]) -> None:
        """Install per-node loads: ``{node_name: (job_id, load)}``.

        Nodes not mentioned are idled.  Shared-resource contention (fabric,
        filesystem) is resolved immediately so :attr:`ComputeNode.progress_rate`
        reflects this step's interference.
        """
        self.fabric.begin_step()
        self.filesystem.begin_step()
        self._job_flows.clear()

        job_members: Dict[str, List[str]] = {}
        for node in self.nodes:
            assignment = assignments.get(node.name)
            if assignment is None or not node.up:
                node.assign(None, IDLE_LOAD)
                node.set_contention(1.0)
                continue
            job_id, load = assignment
            node.assign(job_id, load)
            job_members.setdefault(job_id, []).append(node.name)

        for job_id, members in job_members.items():
            sample = assignments[members[0]][1]
            self.fabric.offer_flow(job_id, members, sample.net_bw_bytes * len(members))
            self.filesystem.demand(job_id, sample.io_bw_bytes * len(members))
        self.filesystem.resolve(self.tick)

        for job_id, members in job_members.items():
            contention = max(
                self.fabric.flow_slowdown(job_id), self.filesystem.slowdown(job_id)
            )
            for member in members:
                self._node_by_name[member].set_contention(contention)
            self._job_flows[job_id] = (members, assignments[members[0]][1])

    def job_progress_rate(self, job_id: str) -> float:
        """Mean progress rate across a job's nodes (0 if not running)."""
        flow = self._job_flows.get(job_id)
        if not flow:
            return 0.0
        members = [self._node_by_name[m] for m in flow[0]]
        live = [m for m in members if m.up]
        if not live:
            return 0.0
        return sum(m.progress_rate for m in live) / len(live)

    # ------------------------------------------------------------------
    # Physics
    # ------------------------------------------------------------------
    def update(self, now: float) -> float:
        """Advance all node physics to ``now``; returns IT power in watts."""
        dt = self.tick if self._last_update is None else now - self._last_update
        self._last_update = now
        for rack in self.racks:
            supply = self._loop_supply.get(rack.loop_name, 18.0)
            rack.set_inlet_temp(supply)
        total = 0.0
        for node in self.nodes:
            total += node.update(dt)
        return total

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def _read_sensors(self, now: float) -> Dict[str, float]:
        readings: Dict[str, float] = {}
        for rack in self.racks:
            rbase = f"{self.name}.{rack.name}"
            for key, value in rack.sensors().items():
                readings[f"{rbase}.{key}"] = value
            for node in rack.nodes:
                nbase = f"{rbase}.{node.name}"
                for key, value in node.counters().items():
                    readings[f"{nbase}.{key}"] = value
        for key, value in self.fabric.sensors().items():
            readings[f"{self.name}.fabric.{key}"] = value
        for key, value in self.filesystem.sensors().items():
            readings[f"{self.name}.pfs.{key}"] = value
        readings[f"{self.name}.it_power"] = self.it_power_w
        readings[f"{self.name}.nodes_up"] = float(len(self.up_nodes()))
        return readings

    def metric_specs(self) -> List[MetricSpec]:
        labels = {"pillar": "system_hardware"}
        specs: List[MetricSpec] = [
            MetricSpec(f"{self.name}.it_power", Unit.WATT, low=0, labels=labels),
            MetricSpec(f"{self.name}.nodes_up", Unit.COUNT, low=0, labels=labels),
        ]
        for key in ("links_active", "max_link_util", "mean_link_util", "saturated_links"):
            specs.append(MetricSpec(f"{self.name}.fabric.{key}", labels=labels))
        for key in ("bandwidth_demand", "bandwidth_granted", "utilization", "bytes_moved"):
            specs.append(MetricSpec(f"{self.name}.pfs.{key}", labels=labels))
        for rack in self.racks:
            rbase = f"{self.name}.{rack.name}"
            for key in ("power", "nodes_up", "max_temp", "mean_temp"):
                specs.append(MetricSpec(f"{rbase}.{key}", labels=labels))
            for node in rack.nodes:
                nbase = f"{rbase}.{node.name}"
                for key, unit in _NODE_METRICS:
                    kind = MetricKind.COUNTER if key == "ecc_errors" else MetricKind.GAUGE
                    specs.append(MetricSpec(f"{nbase}.{key}", unit, kind, labels=labels))
        return specs

    def sampler(self) -> Sampler:
        """Telemetry sampler covering all hardware sensors and counters."""
        return Sampler(name=self.name, source=self._read_sensors, specs=self.metric_specs())

    def node_metric(self, node_name: str, counter: str) -> str:
        """Fully-qualified metric path of one node counter."""
        rack = self.rack_of(node_name)
        return f"{self.name}.{rack.name}.{node_name}.{counter}"


def build_system(
    racks: int = 4,
    nodes_per_rack: int = 16,
    name: str = "cluster",
    cpu: Optional[CpuSpec] = None,
    loop_names: Sequence[str] = ("loop0",),
    tick: float = 30.0,
) -> HPCSystem:
    """Construct a uniform system: ``racks`` racks of ``nodes_per_rack`` nodes.

    Racks are assigned round-robin to the given cooling loops with a
    positional cooling offset, giving placement policies a thermal
    gradient.  Offsets are deliberately not monotone in rack index — a
    rack's position in the cooling row is unrelated to its name — so
    naive first-fit placement does not accidentally equal cooling-aware
    placement.
    """
    offsets = (1.0, 0.0, 2.0, 0.5)
    rack_objs: List[Rack] = []
    for r in range(racks):
        nodes = [
            ComputeNode(name=f"r{r}n{i}", cpu=cpu)
            for i in range(nodes_per_rack)
        ]
        rack_objs.append(
            Rack(
                name=f"rack{r}",
                nodes=nodes,
                cooling_offset_c=offsets[r % len(offsets)],
                loop_name=loop_names[r % len(loop_names)],
            )
        )
    return HPCSystem(rack_objs, name=name, tick=tick)
