"""Exception hierarchy for the :mod:`repro` package.

All library-specific errors derive from :class:`ReproError` so callers can
catch a single base class at API boundaries.  Subsystems raise the most
specific subclass that applies; generic built-ins (``ValueError``,
``TypeError``) are reserved for plain argument-validation failures where the
caller made a programming error rather than a domain error.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class SimulationError(ReproError):
    """Raised when the discrete-event simulation enters an invalid state."""


class ConfigurationError(ReproError):
    """Raised when a component is constructed or wired inconsistently."""


class TelemetryError(ReproError):
    """Base class for telemetry-pipeline errors."""


class UnknownMetricError(TelemetryError, KeyError):
    """Raised when a metric name is not present in a registry or store."""

    def __init__(self, name: str):
        super().__init__(name)
        self.name = name

    def __str__(self) -> str:  # KeyError quotes its repr; keep it readable.
        return f"unknown metric: {self.name!r}"


class StoreError(TelemetryError):
    """Raised on invalid time-series store operations (bad ranges, dtypes)."""


class ShardDownError(StoreError):
    """Raised when no healthy replica of a storage shard can serve a read."""


class PersistenceError(StoreError):
    """Raised when a persisted store artifact is damaged beyond safe loading.

    Carries enough context to locate the damage: ``path`` names the artifact
    and ``offset`` (when known) the byte position where decoding failed.
    Recoverable damage — a single corrupt chunk inside an otherwise intact
    archive, one bad member of a sharded save — is *not* raised; those
    degrade into partial loads counted by ``telemetry.durability.corrupt_artifacts``.
    """

    def __init__(self, message: str, *, path: str | None = None,
                 offset: int | None = None):
        super().__init__(message)
        self.path = path
        self.offset = offset

    def __str__(self) -> str:
        base = super().__str__()
        loc = []
        if self.path is not None:
            loc.append(f"path={self.path!r}")
        if self.offset is not None:
            loc.append(f"offset={self.offset}")
        return f"{base} ({', '.join(loc)})" if loc else base


class JournalError(StoreError):
    """Raised on invalid write-ahead journal configuration or use.

    Damage *inside* journal segments is never raised during recovery — torn
    tails and corrupt records degrade into counted drops so a crash-landed
    journal always replays its intact prefix.
    """


class ServingError(TelemetryError):
    """Raised on invalid serving front-door configuration or use.

    Note that *per-query* serving outcomes (rate limiting, shedding, open
    breakers, unknown metrics) are never raised — the front door returns
    typed ``RejectedQuery``/failed ``QueryResult`` values instead, so one
    misbehaving tenant cannot turn into an exception storm.
    """


class SamplerError(TelemetryError):
    """Raised when a telemetry source fails to produce a reading."""


class SensorDropoutError(SamplerError):
    """Raised by a (possibly injected) sensor that is offline for a scrape."""


class SamplerTimeoutError(SamplerError):
    """Raised when a source exceeds the collection agent's scrape budget."""


class SubscriberError(TelemetryError):
    """Raised when a bus sink cannot accept a delivery (e.g. failed replay)."""


class AnalyticsError(ReproError):
    """Base class for analytics-layer errors."""


class NotFittedError(AnalyticsError):
    """Raised when a model is used before :meth:`fit` was called."""


class InsufficientDataError(AnalyticsError):
    """Raised when an analytics routine receives too few samples to work."""


class SchedulingError(ReproError):
    """Raised on invalid scheduler or job-lifecycle operations."""


class ClassificationError(ReproError):
    """Raised when a use case cannot be mapped onto the ODA framework grid."""


class ControlError(ReproError):
    """Raised when a prescriptive controller receives an invalid actuation."""


class SupervisionError(ReproError):
    """Raised on invalid control-plane supervision configuration or use."""


class ChaosError(ReproError):
    """Raised by injected controller faults during a chaos campaign."""
