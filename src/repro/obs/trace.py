"""Distributed-style tracing for the in-process telemetry/ODA stack.

A :class:`Tracer` produces nested :class:`Span` objects carrying both
**wall time** (``time.perf_counter``, what profiling cares about) and
**sim time** (the discrete-event clock, what the data path cares about).
Because the whole pipeline is synchronous, context propagation is a plain
span stack: a span opened while another is active becomes its child, so a
sample's path — sampler scrape → bus publish → delivery → streaming stage →
store ingest → shard fan-out — nests into one trace without any explicit
context plumbing at the call sites.

Finished spans land in a bounded ring buffer (oldest evicted first, counted)
and can be exported as Chrome trace-event JSON — loadable directly in
``chrome://tracing`` or Perfetto — or as one-span-per-line JSONL via
:mod:`repro.telemetry.export`.
"""

from __future__ import annotations

from collections import deque
from time import perf_counter
from typing import Any, Callable, Deque, Dict, List, Optional

__all__ = ["Span", "Tracer", "spans_to_chrome", "spans_to_dicts"]


class Span:
    """One timed operation: name, ids, wall/sim time, free-form attributes.

    Used as a context manager; an exception escaping the body marks the
    span (``error`` holds the exception class name) and is re-raised, so
    error isolation at the call site is unchanged.
    """

    __slots__ = ("name", "span_id", "parent_id", "trace_id", "start", "end",
                 "sim_time", "attrs", "error", "_tracer")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        span_id: int,
        parent_id: Optional[int],
        trace_id: int,
        sim_time: Optional[float],
        attrs: Dict[str, Any],
    ):
        self._tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.trace_id = trace_id
        self.sim_time = sim_time
        self.attrs = attrs
        self.start = perf_counter()
        self.end: Optional[float] = None
        self.error: Optional[str] = None

    @property
    def duration(self) -> float:
        """Wall-clock seconds (0.0 while still open)."""
        return (self.end - self.start) if self.end is not None else 0.0

    def set_attr(self, key: str, value: Any) -> None:
        self.attrs[key] = value

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.error = exc_type.__name__
        self._tracer._finish(self)
        return False  # never swallow — call-site error handling is unchanged

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly representation (see JSONL export)."""
        out: Dict[str, Any] = {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "trace_id": self.trace_id,
            "start": self.start,
            "duration": self.duration,
        }
        if self.sim_time is not None:
            out["sim_time"] = self.sim_time
        if self.error is not None:
            out["error"] = self.error
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        return out

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, id={self.span_id}, "
            f"parent={self.parent_id}, dur={self.duration * 1e6:.1f}us)"
        )


class _NoopSpan:
    """Shared do-nothing span returned when observability is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set_attr(self, key: str, value: Any) -> None:
        pass


NOOP_SPAN = _NoopSpan()


class Tracer:
    """Span factory with stack-based context propagation and a ring buffer.

    Parameters
    ----------
    capacity:
        Bound on retained finished spans; the oldest are evicted first and
        counted in ``dropped`` so a long simulation cannot grow trace
        memory without bound.
    """

    def __init__(self, capacity: int = 65536):
        self.capacity = capacity
        self._ring: Deque[Span] = deque(maxlen=capacity)
        self._stack: List[Span] = []
        self._next_span_id = 1
        self._next_trace_id = 1
        self.started = 0
        self.finished = 0
        self.dropped = 0
        #: Epoch for relative timestamps in exports.
        self.epoch = perf_counter()
        #: Optional hook called with each finished span (the observability
        #: facade uses it to feed per-span-name duration histograms).
        self.on_finish: Optional[Callable[[Span], None]] = None

    # ------------------------------------------------------------------
    def span(self, name: str, sim_time: Optional[float] = None, **attrs) -> Span:
        """Open a span; the innermost open span becomes its parent."""
        if self._stack:
            parent = self._stack[-1]
            parent_id: Optional[int] = parent.span_id
            trace_id = parent.trace_id
        else:
            parent_id = None
            trace_id = self._next_trace_id
            self._next_trace_id += 1
        span = Span(
            self, name, self._next_span_id, parent_id, trace_id, sim_time, attrs
        )
        self._next_span_id += 1
        self.started += 1
        self._stack.append(span)
        return span

    def _finish(self, span: Span) -> None:
        span.end = perf_counter()
        # Normal exits pop the top; an abnormal unwind (caller re-entered
        # the tracer without closing) pops down to the finishing span so
        # the stack cannot grow stale entries.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
        self.finished += 1
        if len(self._ring) == self._ring.maxlen:
            self.dropped += 1
        self._ring.append(span)
        if self.on_finish is not None:
            self.on_finish(span)

    # ------------------------------------------------------------------
    @property
    def current(self) -> Optional[Span]:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    @property
    def depth(self) -> int:
        return len(self._stack)

    def spans(self) -> List[Span]:
        """Finished spans, oldest first."""
        return list(self._ring)

    def clear(self) -> None:
        self._ring.clear()
        self._stack.clear()

    def by_name(self) -> Dict[str, List[Span]]:
        """Finished spans grouped by span name."""
        out: Dict[str, List[Span]] = {}
        for span in self._ring:
            out.setdefault(span.name, []).append(span)
        return out


# ---------------------------------------------------------------------------
# Export shapes (file I/O lives in repro.telemetry.export)
# ---------------------------------------------------------------------------
def spans_to_dicts(spans: List[Span]) -> List[Dict[str, Any]]:
    """JSON-friendly dicts, one per span (the JSONL line shape)."""
    return [span.to_dict() for span in spans]


def spans_to_chrome(
    spans: List[Span], time_origin: Optional[float] = None
) -> Dict[str, Any]:
    """Chrome trace-event JSON (the ``chrome://tracing``/Perfetto format).

    Every span becomes one complete (``"ph": "X"``) event with microsecond
    ``ts``/``dur`` relative to ``time_origin`` (default: the earliest span
    start, so traces begin at t=0).  Events are sorted by ``ts`` so the
    stream is monotonic; span/parent/trace ids and sim time ride along in
    ``args`` for programmatic consumers.
    """
    if time_origin is None:
        time_origin = min((s.start for s in spans), default=0.0)
    events: List[Dict[str, Any]] = []
    for span in sorted(spans, key=lambda s: s.start):
        args: Dict[str, Any] = {
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "trace_id": span.trace_id,
        }
        if span.sim_time is not None:
            args["sim_time"] = span.sim_time
        if span.error is not None:
            args["error"] = span.error
        args.update(span.attrs)
        events.append(
            {
                "name": span.name,
                "cat": span.name.split(".", 1)[0],
                "ph": "X",
                "ts": (span.start - time_origin) * 1e6,
                "dur": span.duration * 1e6,
                "pid": 0,
                "tid": span.trace_id,
                "args": args,
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.obs"},
    }
