"""Typed metric instruments and the observability metrics registry.

The telemetry pipeline's self-metrics began life as ad-hoc
``health_metrics()`` dicts of floats.  This module gives them a type system
— :class:`Counter` (monotone), :class:`Gauge` (free-moving) and
:class:`Histogram` (fixed buckets plus p50/p95/p99 summaries) — collected in
a :class:`MetricsRegistry` that can render the Prometheus text exposition
format.  The dict snapshot API (:meth:`MetricsRegistry.snapshot`) is kept as
a thin view over the typed instruments so existing consumers (the
:class:`~repro.telemetry.health.HealthMonitor`, alert rules, tests) keep
working unchanged.

Instruments come in two flavors:

* **stateful** — ``counter.inc()`` / ``gauge.set()`` / ``hist.observe()``
  mutate the instrument directly (used by the profiling hooks), and
* **callback-backed** — constructed with ``fn=...``, the instrument reads
  its value from an existing component attribute at collection time.  This
  is how the pipeline's hot-path counters are migrated without adding any
  work to the hot paths themselves: ``bus.published`` stays a plain ``int``
  increment, and the typed counter wraps it for snapshots and export.
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_left
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import ConfigurationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "prometheus_text",
]

#: Default latency buckets (seconds), log-ish spaced from 1 µs to 10 s —
#: sized for the wall-clock of in-process pipeline operations.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1e-6, 2.5e-6, 5e-6,
    1e-5, 2.5e-5, 5e-5,
    1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2,
    0.1, 0.25, 0.5, 1.0, 2.5, 10.0,
)

ValueFn = Callable[[], float]


class Counter:
    """Monotonically non-decreasing value (events, samples, errors)."""

    kind = "counter"
    __slots__ = ("name", "description", "unit", "_value", "_fn")

    def __init__(
        self,
        name: str,
        description: str = "",
        unit: str = "",
        fn: Optional[ValueFn] = None,
    ):
        self.name = name
        self.description = description
        self.unit = unit
        self._value = 0.0
        self._fn = fn

    def inc(self, amount: float = 1.0) -> None:
        if self._fn is not None:
            raise ConfigurationError(
                f"counter {self.name} is callback-backed; mutate the source"
            )
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name}: increment must be >= 0, got {amount}"
            )
        self._value += amount

    @property
    def value(self) -> float:
        return float(self._fn()) if self._fn is not None else self._value

    def snapshot_items(self) -> Iterator[Tuple[str, float]]:
        yield self.name, self.value


class Gauge:
    """Free-moving instantaneous value (queue depth, cache size)."""

    kind = "gauge"
    __slots__ = ("name", "description", "unit", "_value", "_fn")

    def __init__(
        self,
        name: str,
        description: str = "",
        unit: str = "",
        fn: Optional[ValueFn] = None,
    ):
        self.name = name
        self.description = description
        self.unit = unit
        self._value = 0.0
        self._fn = fn

    def set(self, value: float) -> None:
        if self._fn is not None:
            raise ConfigurationError(
                f"gauge {self.name} is callback-backed; mutate the source"
            )
        self._value = float(value)

    @property
    def value(self) -> float:
        return float(self._fn()) if self._fn is not None else self._value

    def snapshot_items(self) -> Iterator[Tuple[str, float]]:
        yield self.name, self.value


class Histogram:
    """Fixed-bucket distribution with on-demand quantile estimates.

    Observations land in the first bucket whose upper edge is >= the value
    (cumulative ``le`` semantics, like Prometheus); values beyond the last
    edge go to the implicit +Inf bucket.  p50/p95/p99 are estimated by
    linear interpolation inside the owning bucket, with the interpolation
    range clamped to the tracked observed ``[min, max]`` — this keeps the
    first and overflow buckets finite *and* stops interior buckets from
    over-reporting the tail (a histogram whose every observation is 0.3 s
    reports p99 = 0.3 s, not the bucket's upper edge).

    Histograms observed from several threads at once (the serving worker
    pool) should be built with ``threadsafe=True``; the default stays
    lock-free for the single-threaded pipeline hot paths.
    """

    kind = "histogram"
    __slots__ = ("name", "description", "unit", "edges", "bucket_counts",
                 "count", "sum", "min", "max", "_lock")

    def __init__(
        self,
        name: str,
        buckets: Optional[Iterable[float]] = None,
        description: str = "",
        unit: str = "s",
        threadsafe: bool = False,
    ):
        self.name = name
        self.description = description
        self.unit = unit
        edges = tuple(sorted(buckets)) if buckets is not None else DEFAULT_BUCKETS
        if not edges:
            raise ConfigurationError(f"histogram {name}: needs >= 1 bucket edge")
        self.edges: Tuple[float, ...] = edges
        self.bucket_counts: List[int] = [0] * (len(edges) + 1)  # + overflow
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._lock: Optional[threading.Lock] = threading.Lock() if threadsafe else None

    def observe(self, value: float) -> None:
        if self._lock is not None:
            with self._lock:
                self._observe(value)
        else:
            self._observe(value)

    def _observe(self, value: float) -> None:
        self.bucket_counts[bisect_left(self.edges, value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else math.nan

    def quantile(self, q: float) -> float:
        """Bucket-interpolated quantile estimate in ``[0, 1]``."""
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
        if not self.count:
            return math.nan
        target = q * self.count
        cum = 0
        for i, n in enumerate(self.bucket_counts):
            if not n:
                continue
            if cum + n >= target:
                lo = -math.inf if i == 0 else self.edges[i - 1]
                hi = math.inf if i == len(self.edges) else self.edges[i]
                # Clamp the interpolation range to what was actually
                # observed: a non-empty bucket i holds at least one value in
                # (edges[i-1], edges[i]], so min <= hi and max > lo and the
                # clamped range stays well ordered.
                lo = max(lo, self.min)
                hi = min(hi, self.max)
                if lo > hi:
                    lo = hi
                frac = (target - cum) / n
                return lo + (hi - lo) * frac
            cum += n
        return self.max

    def quantiles(self, qs: Tuple[float, ...] = (0.5, 0.95, 0.99)) -> Dict[float, float]:
        return {q: self.quantile(q) for q in qs}

    def snapshot_items(self) -> Iterator[Tuple[str, float]]:
        """Flat dict view: count/sum/mean plus p50/p95/p99 estimates."""
        yield f"{self.name}.count", float(self.count)
        yield f"{self.name}.sum", self.sum
        yield f"{self.name}.mean", self.mean
        for q, label in ((0.5, "p50"), (0.95, "p95"), (0.99, "p99")):
            yield f"{self.name}.{label}", self.quantile(q)


Instrument = object  # Counter | Gauge | Histogram


class MetricsRegistry:
    """Name-indexed collection of typed instruments.

    ``counter()`` / ``gauge()`` / ``histogram()`` are get-or-create:
    requesting an existing name returns the existing instrument (and raises
    :class:`~repro.errors.ConfigurationError` if the kind differs), so
    independent call sites can share one instrument safely.
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, Instrument] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _get_or_create(self, cls, name: str, **kwargs):
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ConfigurationError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind}, not {cls.kind}"
                )
            return existing
        instrument = cls(name, **kwargs)
        self._instruments[name] = instrument
        return instrument

    def counter(
        self,
        name: str,
        description: str = "",
        unit: str = "",
        fn: Optional[ValueFn] = None,
    ) -> Counter:
        return self._get_or_create(
            Counter, name, description=description, unit=unit, fn=fn
        )

    def gauge(
        self,
        name: str,
        description: str = "",
        unit: str = "",
        fn: Optional[ValueFn] = None,
    ) -> Gauge:
        return self._get_or_create(
            Gauge, name, description=description, unit=unit, fn=fn
        )

    def histogram(
        self,
        name: str,
        buckets: Optional[Iterable[float]] = None,
        description: str = "",
        unit: str = "s",
        threadsafe: bool = False,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, buckets=buckets, description=description,
            unit=unit, threadsafe=threadsafe,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def get(self, name: str) -> Instrument:
        try:
            return self._instruments[name]
        except KeyError:
            from repro.errors import UnknownMetricError

            raise UnknownMetricError(name) from None

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __len__(self) -> int:
        return len(self._instruments)

    def __iter__(self) -> Iterator[Instrument]:
        return iter(self._instruments.values())

    def names(self) -> List[str]:
        return sorted(self._instruments)

    # ------------------------------------------------------------------
    # Views / export
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, float]:
        """Flat ``{name: value}`` view — the legacy ``health_metrics`` shape.

        Counters and gauges contribute one entry each (their own name);
        histograms expand to ``.count/.sum/.mean/.p50/.p95/.p99``.
        """
        out: Dict[str, float] = {}
        for instrument in self._instruments.values():
            out.update(instrument.snapshot_items())
        return out

    def to_prometheus(self) -> str:
        """Prometheus text exposition of this registry alone."""
        return prometheus_text([self])


_PROM_INVALID = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    """Sanitize a dotted metric name for Prometheus exposition."""
    sanitized = _PROM_INVALID.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _prom_value(value: float) -> str:
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def prometheus_text(registries: Iterable[MetricsRegistry]) -> str:
    """Render one text exposition across several registries.

    Duplicate instrument *names* across registries are aggregated by sum for
    counters/gauges (matching how per-shard registries fold into a site
    total would read) — in practice the pipeline keeps names disjoint, and
    the first registration's metadata wins.  Histograms additionally emit a
    ``<name>_summary`` block with p50/p95/p99 quantile lines so consumers
    that cannot aggregate buckets still see the tail behavior.
    """
    lines: List[str] = []
    seen: set = set()
    for registry in registries:
        for instrument in registry:
            pname = _prom_name(instrument.name)
            if pname in seen:
                pname = pname + "_dup"
                if pname in seen:
                    continue
            seen.add(pname)
            if instrument.description:
                lines.append(f"# HELP {pname} {instrument.description}")
            lines.append(f"# TYPE {pname} {instrument.kind}")
            if isinstance(instrument, Histogram):
                cum = 0
                for edge, n in zip(instrument.edges, instrument.bucket_counts):
                    cum += n
                    lines.append(
                        f'{pname}_bucket{{le="{edge:g}"}} {cum}'
                    )
                lines.append(f'{pname}_bucket{{le="+Inf"}} {instrument.count}')
                lines.append(f"{pname}_sum {_prom_value(instrument.sum)}")
                lines.append(f"{pname}_count {instrument.count}")
                lines.append(f"# TYPE {pname}_summary summary")
                for q in (0.5, 0.95, 0.99):
                    lines.append(
                        f'{pname}_summary{{quantile="{q}"}} '
                        f"{_prom_value(instrument.quantile(q))}"
                    )
                lines.append(f"{pname}_summary_sum {_prom_value(instrument.sum)}")
                lines.append(f"{pname}_summary_count {instrument.count}")
            else:
                lines.append(f"{pname} {_prom_value(instrument.value)}")
    return "\n".join(lines) + "\n"
