"""Cross-cutting observability: tracing, typed metrics, profiling hooks.

DCDB Wintermute's lesson is that an online ODA stack must be *holistically
instrumented* — the monitoring system itself needs monitoring.  This package
provides the three legs:

* :mod:`repro.obs.trace` — a :class:`~repro.obs.trace.Tracer` with nested
  spans carrying sim-time and wall-time, propagated along the real data
  path (scrape → publish → deliver → stage → ingest → shard fan-out →
  federated query), exportable as Chrome trace-event JSON and JSONL;
* :mod:`repro.obs.metrics` — typed :class:`~repro.obs.metrics.Counter` /
  :class:`~repro.obs.metrics.Gauge` / :class:`~repro.obs.metrics.Histogram`
  instruments in a :class:`~repro.obs.metrics.MetricsRegistry` with a
  Prometheus text exporter (the pipeline's ``health_metrics()`` dicts are
  thin views over these);
* **profiling hooks** — the hot paths (store ingest/flush/resample, bus
  routing, replica fan-out, federated queries, scheduler tick, orchestrator
  decide) open spans only when the single global switch is on, so a
  disabled pipeline pays one attribute check per operation and nothing
  else.

Usage::

    from repro.obs import OBS

    OBS.enable()
    dc = DataCenter(seed=1, shards=4)
    dc.run(days=0.1)
    spans = OBS.tracer.spans()                  # every traced operation
    text = OBS.registry.to_prometheus()         # profiling histograms
    OBS.disable()

Instrumented call sites follow one pattern, chosen so the *disabled* cost
is a single attribute load and branch::

    if OBS.enabled:
        with OBS.tracer.span("store.ingest", sim_time=batch.time):
            return self._ingest(topic, batch)
    return self._ingest(topic, batch)

``OBS`` is a process-wide singleton (like OpenTelemetry's global tracer
provider): deep pipeline internals reach it without threading an
observability handle through every constructor.  Tests and the ``repro
obs`` CLI bracket their runs with ``enable()``/``disable()`` + ``reset()``.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    prometheus_text,
)
from repro.obs.trace import (
    NOOP_SPAN,
    Span,
    Tracer,
    spans_to_chrome,
    spans_to_dicts,
)

__all__ = [
    "OBS",
    "Observability",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "prometheus_text",
    "Span",
    "Tracer",
    "NOOP_SPAN",
    "spans_to_chrome",
    "spans_to_dicts",
]


class Observability:
    """The switchable bundle of tracer + metrics registry.

    ``enabled`` is the single switch every instrumented call site checks;
    with it off, the tracer and registry are never touched.  Each finished
    span also feeds a per-span-name duration histogram
    (``obs.<name>.seconds``) in :attr:`registry`, so profiling summaries
    (p50/p95/p99 per operation) fall out of tracing for free.
    """

    def __init__(self, trace_capacity: int = 65536):
        self.enabled = False
        self.tracer = Tracer(capacity=trace_capacity)
        self.registry = MetricsRegistry()
        self._hist_cache: Dict[str, Histogram] = {}
        self.tracer.on_finish = self._observe_span

    # ------------------------------------------------------------------
    def enable(self, trace_capacity: Optional[int] = None) -> "Observability":
        """Turn instrumentation on (optionally resizing the span ring)."""
        if trace_capacity is not None and trace_capacity != self.tracer.capacity:
            self.reset(trace_capacity=trace_capacity)
        self.enabled = True
        return self

    def disable(self) -> None:
        """Turn instrumentation off; collected data stays readable."""
        self.enabled = False

    def reset(self, trace_capacity: Optional[int] = None) -> None:
        """Drop all collected spans and metrics (fresh tracer + registry)."""
        capacity = trace_capacity or self.tracer.capacity
        self.tracer = Tracer(capacity=capacity)
        self.tracer.on_finish = self._observe_span
        self.registry = MetricsRegistry()
        self._hist_cache = {}

    # ------------------------------------------------------------------
    def span(self, name: str, sim_time: Optional[float] = None, **attrs: Any):
        """Open a span when enabled; a shared no-op span otherwise.

        Convenience for cold call sites; hot paths guard on
        ``OBS.enabled`` explicitly and call ``OBS.tracer.span`` directly
        to avoid the keyword packing when disabled.
        """
        if not self.enabled:
            return NOOP_SPAN
        return self.tracer.span(name, sim_time=sim_time, **attrs)

    def _observe_span(self, span: Span) -> None:
        hist = self._hist_cache.get(span.name)
        if hist is None:
            hist = self.registry.histogram(
                f"obs.{span.name}.seconds",
                description=f"wall-clock duration of {span.name} spans",
            )
            self._hist_cache[span.name] = hist
        hist.observe(span.duration)

    # ------------------------------------------------------------------
    def report(self) -> Dict[str, Dict[str, float]]:
        """Per-span-name profile: count, total/mean seconds, p50/p95/p99."""
        out: Dict[str, Dict[str, float]] = {}
        for name, spans in sorted(self.tracer.by_name().items()):
            hist = self._hist_cache.get(name)
            row = {
                "count": float(len(spans)),
                "total_s": sum(s.duration for s in spans),
                "errors": float(sum(1 for s in spans if s.error)),
            }
            if hist is not None and hist.count:
                row["mean_s"] = hist.mean
                row["p50_s"] = hist.quantile(0.5)
                row["p95_s"] = hist.quantile(0.95)
                row["p99_s"] = hist.quantile(0.99)
            out[name] = row
        return out


#: Process-wide observability singleton; disabled by default.
OBS = Observability()
