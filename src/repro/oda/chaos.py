"""Unified chaos campaigns over every fault injector in the reproduction.

The ROADMAP's north star is an ODA site that "handles as many scenarios as
you can imagine".  PR 1 gave the telemetry pipeline sensor faults, PR 3
gave the storage tier shard faults, and the cluster/facility layers have
always had their own injectors — but nothing composed them.  This module
does: a :class:`ChaosCampaign` is a seeded, declarative list of
:class:`ChaosFault` episodes across the four pillars

* ``controller`` — raise / hang / garbage decisions on a supervised
  control loop (via :class:`~repro.oda.supervision.Supervisor`),
* ``facility``   — outage / degradation / sensor drift on infrastructure
  machinery (via :class:`~repro.facility.faults.FaultInjector`),
* ``node``       — crashes and degradations on compute nodes (via
  :class:`~repro.cluster.faults.NodeFaultModel`),
* ``shard``      — storage-shard member kills (via
  :class:`~repro.telemetry.distributed.faults.ShardFault`),
* ``durability`` — crash-consistency attacks on the storage tier: shard
  worker process kills, torn write-ahead-journal tails, and bit-flip /
  truncation damage to persisted archive artifacts (scored through the
  store's typed degraded-load counters),

and the :class:`ChaosEngine` schedules it on a wired
:class:`~repro.oda.datacenter.DataCenter` and scores the run afterwards.

Scoring is deliberately *observable-plane*: detection and recovery times
are read from what the site itself could see — supervisor trace events,
telemetry series (component power, ``cluster.nodes_up``), and storage
health metrics — not from the injectors' ground truth.  Ground truth
supplies only the fault start used as the MTTD/MTTR origin, which is
exactly how production resilience scorecards are computed from incident
timelines.
"""

from __future__ import annotations
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cluster.faults import NodeFaultKind, NodeFaultModel
from repro.errors import ConfigurationError, SupervisionError
from repro.facility.faults import FaultKind
from repro.obs.metrics import MetricsRegistry
from repro.oda.datacenter import DataCenter
from repro.oda.supervision import ControllerFaultKind, Supervisor

__all__ = [
    "ChaosFault",
    "ChaosCampaign",
    "ChaosEngine",
    "standard_campaign",
]

PILLARS = ("controller", "facility", "node", "shard", "durability")

_CONTROLLER_MODES = {k.value: k for k in ControllerFaultKind}
_FACILITY_MODES = {k.value: k for k in FaultKind}
_NODE_MODES = {k.value: k for k in NodeFaultKind}
_SHARD_MODES = ("kill",)
_DURABILITY_MODES = ("worker_kill", "torn_wal", "bitflip", "truncate")


@dataclass(frozen=True)
class ChaosFault:
    """One declarative fault episode.

    ``pillar`` selects the injector, ``target`` the victim (a supervised
    loop name, a ``loop0.pump``-style component path, a node name, or a
    shard index), ``mode`` the pillar-specific failure kind.
    """

    pillar: str
    target: str
    mode: str
    start: float
    duration: float
    severity: float = 0.5

    def __post_init__(self) -> None:
        if self.pillar not in PILLARS:
            raise ConfigurationError(
                f"unknown chaos pillar {self.pillar!r} (one of {PILLARS})"
            )
        modes = {
            "controller": _CONTROLLER_MODES,
            "facility": _FACILITY_MODES,
            "node": _NODE_MODES,
            "shard": _SHARD_MODES,
            "durability": _DURABILITY_MODES,
        }[self.pillar]
        if self.mode not in modes:
            raise ConfigurationError(
                f"pillar {self.pillar!r} has no mode {self.mode!r} "
                f"(one of {sorted(modes)})"
            )
        if self.duration <= 0:
            raise ConfigurationError("fault duration must be positive")

    @property
    def end(self) -> float:
        return self.start + self.duration

    def to_dict(self) -> Dict[str, object]:
        return {
            "pillar": self.pillar, "target": self.target, "mode": self.mode,
            "start": self.start, "duration": self.duration,
            "severity": self.severity,
        }


@dataclass
class ChaosCampaign:
    """A named, seeded set of fault episodes over a fixed horizon."""

    name: str
    seed: int
    horizon_s: float
    faults: List[ChaosFault] = field(default_factory=list)

    def add(self, fault: ChaosFault) -> "ChaosCampaign":
        if fault.start < 0 or fault.end > self.horizon_s:
            raise ConfigurationError(
                f"fault [{fault.start}, {fault.end}] outside campaign "
                f"horizon [0, {self.horizon_s}]"
            )
        self.faults.append(fault)
        return self


def standard_campaign(seed: int, horizon_s: float = 86_400.0,
                      shards: bool = True,
                      durability: bool = False) -> ChaosCampaign:
    """The acceptance-criteria mix: a controller crash episode, a facility
    (pump) outage, node crashes, and a storage-shard kill.

    Fault windows are fractions of the horizon, so the same campaign shape
    works for short test runs and full-day CLI runs; the controller episode
    spans several orchestrator periods so the breaker demonstrably opens,
    falls back to safe state, and re-closes after the window.

    ``durability=True`` adds the crash-consistency attacks: a shard worker
    process kill mid-ingest, a torn journal tail, and a bit-flipped
    persisted artifact (the first two need a ``parallel=True`` journaled
    store on the site).
    """
    campaign = ChaosCampaign(name="standard", seed=seed, horizon_s=horizon_s)
    h = horizon_s
    campaign.add(ChaosFault("controller", "orchestrator", "raise",
                            start=0.15 * h, duration=0.167 * h))
    campaign.add(ChaosFault("facility", "loop0.pump", "outage",
                            start=0.35 * h, duration=0.125 * h))
    campaign.add(ChaosFault("node", "r0n0", "crash",
                            start=0.50 * h, duration=0.0833 * h, severity=1.0))
    campaign.add(ChaosFault("node", "r0n1", "crash",
                            start=0.52 * h, duration=0.0833 * h, severity=1.0))
    if shards:
        campaign.add(ChaosFault("shard", "0", "kill",
                                start=0.65 * h, duration=0.10 * h))
    if durability:
        campaign.add(ChaosFault("durability", "0", "worker_kill",
                                start=0.78 * h, duration=0.05 * h))
        campaign.add(ChaosFault("durability", "1", "torn_wal",
                                start=0.85 * h, duration=0.05 * h))
        campaign.add(ChaosFault("durability", "archive", "bitflip",
                                start=0.92 * h, duration=0.03 * h))
    return campaign


class ChaosEngine:
    """Schedules a campaign on a site and scores the run afterwards.

    ::

        dc = DataCenter(seed=7, shards=2, replication=1, health_period=300.0)
        supervisor = dc.enable_supervision()
        orch = MultiPillarOrchestrator(dc)
        orch.attach()                      # auto-supervised
        engine = ChaosEngine(dc)
        campaign = standard_campaign(seed=7, horizon_s=DAY)
        engine.schedule(campaign)
        dc.generate_workload(days=1.0)
        dc.run(days=1.0)
        scorecard = engine.scorecard(campaign)
    """

    def __init__(self, dc: DataCenter, supervisor: Optional[Supervisor] = None):
        self.dc = dc
        self.supervisor = supervisor or getattr(dc, "supervisor", None)
        self._shard_fault = None
        self._node_model: Optional[NodeFaultModel] = None
        self._metrics: Optional[MetricsRegistry] = None
        self.scheduled: List[ChaosFault] = []
        self._last_totals: Dict[str, float] = {}
        self._artifact_probes: Dict[Tuple[float, str], Tuple[float, int]] = {}

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, campaign: ChaosCampaign) -> List[ChaosFault]:
        """Wire every fault of ``campaign`` into the site's injectors."""
        for fault in campaign.faults:
            getattr(self, f"_schedule_{fault.pillar}")(fault)
            self.scheduled.append(fault)
        if self.dc.trace is not None:
            self.dc.trace.emit(
                self.dc.sim.now, "chaos", "campaign_scheduled",
                campaign=campaign.name, seed=campaign.seed,
                faults=len(campaign.faults),
            )
        return self.scheduled

    def _require_supervisor(self) -> Supervisor:
        if self.supervisor is None:
            self.supervisor = getattr(self.dc, "supervisor", None)
        if self.supervisor is None:
            raise SupervisionError(
                "controller faults need supervision: call "
                "DataCenter.enable_supervision() before scheduling"
            )
        return self.supervisor

    def _schedule_controller(self, fault: ChaosFault) -> None:
        self._require_supervisor().inject_controller_fault(
            fault.target, _CONTROLLER_MODES[fault.mode],
            fault.start, fault.duration,
        )

    def _facility_component(self, target: str):
        facility = self.dc.facility
        paths = {}
        for loop in facility.plant.loops:
            for comp in (loop.chiller, loop.tower, loop.dry_cooler, loop.pump):
                paths[f"{loop.name}.{comp.name}"] = comp
        for comp in (facility.distribution.transformer, facility.distribution.ups,
                     *facility.distribution.pdus):
            paths[comp.name] = comp
        try:
            return paths[target]
        except KeyError:
            raise ConfigurationError(
                f"no facility component {target!r} (have {sorted(paths)})"
            ) from None

    def _schedule_facility(self, fault: ChaosFault) -> None:
        injector = self.dc.facility.fault_injector
        if injector is None:
            raise ConfigurationError(
                "facility has no fault injector (attach with a trace)"
            )
        injector.inject(
            self._facility_component(fault.target), _FACILITY_MODES[fault.mode],
            fault.start, fault.duration, fault.severity,
        )

    def _schedule_node(self, fault: ChaosFault) -> None:
        if self._node_model is None:
            model = self.dc.system.fault_model
            if model is None:
                # Deterministic injection only: the stochastic hazard is NOT
                # started, so a chaos campaign stays fully reproducible.
                model = NodeFaultModel(
                    self.dc.sim, self.dc.trace,
                    self.dc.rng_pool.stream("chaos_node_faults"),
                    self.dc.system.nodes,
                )
            self._node_model = model
        self._node_model.inject(
            self.dc.system.node(fault.target), _NODE_MODES[fault.mode],
            fault.start, fault.duration, fault.severity,
        )

    def _schedule_shard(self, fault: ChaosFault) -> None:
        if self._shard_fault is None:
            self._shard_fault = self.dc.shard_fault()
        shard = int(fault.target)
        self._shard_fault.schedule_kill(self.dc.sim, at=fault.start, shard=shard)
        self._shard_fault.schedule_revive(
            self.dc.sim, at=fault.end, shard=shard, resync=True,
        )

    def _schedule_durability(self, fault: ChaosFault) -> None:
        if fault.mode in ("worker_kill", "torn_wal"):
            if self._shard_fault is None:
                self._shard_fault = self.dc.shard_fault()
            shard = int(fault.target)
            if fault.mode == "worker_kill":
                self._shard_fault.schedule_crash_worker(
                    self.dc.sim, at=fault.start, shard=shard
                )
            else:
                self._shard_fault.schedule_tear_wal(
                    self.dc.sim, at=fault.start, shard=shard,
                    rng=self.dc.rng_pool.stream("chaos_durability"),
                )
            return
        # bitflip / truncate: a save -> corrupt -> reload probe against the
        # live store, scored by the loader's typed degraded-load counters.
        self.dc.sim.schedule_at(
            fault.start,
            lambda s: self._artifact_probe(fault, now=s.now),
            label=f"chaos:durability:{fault.mode}",
        )

    def _artifact_probe(self, fault: ChaosFault, now: float) -> None:
        """Persist the store, damage one artifact, reload, count degrades.

        The probe exercises the *restore* path the site would depend on
        after a real incident: every chunk and manifest is checksummed, so
        flipped bits or a truncated file must surface as counted degraded
        loads (``telemetry.durability.corrupt_artifacts``), never as
        silently-wrong series.
        """
        import glob
        import os
        import shutil
        import tempfile

        from repro.telemetry.durability import corrupt_artifact
        from repro.telemetry.persistence import load_store, save_store

        workdir = tempfile.mkdtemp(prefix="chaos-durability-")
        detected = 0
        error = None
        try:
            path = os.path.join(workdir, "probe.npz")
            save_store(self.dc.store, path)
            artifacts = sorted(glob.glob(os.path.join(workdir, "*.npz")))
            victim = artifacts[len(artifacts) // 2]
            corrupt_artifact(
                victim, mode=fault.mode,
                rng=self.dc.rng_pool.stream("chaos_durability"),
            )
            try:
                loaded = load_store(path)
            except Exception as exc:  # typed refusal is also detection
                detected = 1
                error = f"{type(exc).__name__}: {exc}"
            else:
                detected = int(getattr(loaded, "corrupt_artifacts", 0))
        finally:
            shutil.rmtree(workdir, ignore_errors=True)
        self._artifact_probes[(fault.start, fault.mode)] = (now, detected)
        if self.dc.trace is not None:
            self.dc.trace.emit(
                now, "chaos", "artifact_probe", mode=fault.mode,
                detected=detected, **({"error": error} if error else {}),
            )

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def scorecard(self, campaign: ChaosCampaign) -> Dict[str, object]:
        """Resilience scorecard for a completed campaign run (JSON-ready)."""
        rows = [self._score_fault(f) for f in campaign.faults]
        detected = [r for r in rows if r["detected_at"] is not None]
        recovered = [r for r in rows if r["recovered_at"] is not None]
        sup = self.supervisor
        totals: Dict[str, object] = {
            "faults": len(rows),
            "detected": len(detected),
            "recovered": len(recovered),
            "unrecovered": len(rows) - len(recovered),
            "mean_mttd_s": (
                float(np.mean([r["mttd_s"] for r in detected])) if detected else None
            ),
            "mean_mttr_s": (
                float(np.mean([r["mttr_s"] for r in recovered])) if recovered else None
            ),
            "actions_during_faults": int(
                sum(r["actions_during_fault"] for r in rows)
            ),
        }
        if sup is not None:
            totals.update(
                safe_state_entries=int(sup._sum("safe_state_entries")),
                breaker_opens=int(
                    sum(s.breaker.opens for s in sup.loops.values())
                    + sum(s.breaker.opens for s in sup.stages.values())
                ),
                breaker_closes=int(
                    sum(s.breaker.closes for s in sup.loops.values())
                    + sum(s.breaker.closes for s in sup.stages.values())
                ),
                missed_deadlines=int(sup._sum("missed_deadlines")),
                decide_failures=int(sup._sum("decide_failures")),
            )
        self._last_totals = {
            k: float(v) for k, v in totals.items()
            if isinstance(v, (int, float)) and v is not None
        }
        card = {
            "campaign": campaign.name,
            "seed": campaign.seed,
            "horizon_s": campaign.horizon_s,
            "faults": rows,
            "totals": totals,
        }
        if sup is not None:
            card["supervisor"] = sup.health_metrics()
        return card

    def write_scorecard(self, campaign: ChaosCampaign, path: str) -> Dict[str, object]:
        from repro.ioutil import atomic_write_json

        card = self.scorecard(campaign)
        atomic_write_json(path, card, indent=2, sort_keys=True)
        return card

    # -- per-pillar detection/recovery from observable signals ----------
    def _score_fault(self, fault: ChaosFault) -> Dict[str, object]:
        detected, recovered = getattr(self, f"_observe_{fault.pillar}")(fault)
        row = fault.to_dict()
        row["detected_at"] = detected
        row["recovered_at"] = recovered
        row["mttd_s"] = None if detected is None else detected - fault.start
        row["mttr_s"] = None if recovered is None else recovered - fault.start
        row["actions_during_fault"] = self._actions_during(fault)
        return row

    def _actions_during(self, fault: ChaosFault) -> int:
        if self.supervisor is None:
            return 0
        count = 0
        for supervised in self.supervisor.loops.values():
            count += sum(
                1 for a in supervised.loop.actions
                if fault.start <= a.time <= fault.end
            )
        return count

    def _observe_controller(self, fault: ChaosFault
                            ) -> Tuple[Optional[float], Optional[float]]:
        sup = self._require_supervisor()
        supervised = sup.loops.get(fault.target)
        trace = self.dc.trace
        if supervised is None or trace is None:
            return None, None
        symptoms = {"decide_error", "missed_deadline", "garbage_action",
                    "breaker_open"}
        events = trace.select(source=f"supervisor.{fault.target}",
                              since=fault.start)
        detected = next(
            (e.time for e in events if e.kind in symptoms), None
        )
        if detected is None:
            return None, None
        opened = next(
            (e.time for e in events if e.kind == "breaker_open"), None
        )
        if opened is None:
            # The supervisor absorbed every failure without opening the
            # breaker: service was never interrupted, so the controller is
            # recovered as soon as the symptoms stop.
            last_symptom = max(e.time for e in events if e.kind in symptoms)
            return detected, last_symptom
        recovered = next(
            (e.time for e in events
             if e.kind == "breaker_close" and e.time >= opened), None
        )
        return detected, recovered

    def _series(self, name: str) -> Tuple[np.ndarray, np.ndarray]:
        try:
            return self.dc.store.query(name)
        except Exception:
            return np.array([]), np.array([])

    def _observe_facility(self, fault: ChaosFault
                          ) -> Tuple[Optional[float], Optional[float]]:
        series = f"{self.dc.facility.name}.{fault.target}.power"
        times, power = self._series(series)
        if len(times) == 0:
            return None, None
        before = power[times < fault.start]
        if len(before) == 0:
            return None, None
        baseline = float(np.mean(before[-10:]))
        if baseline <= 0:
            return None, None
        low = (times >= fault.start) & (power < 0.1 * baseline)
        if not low.any():
            return None, None
        detected = float(times[low][0])
        back = (times >= detected) & (power >= 0.5 * baseline)
        recovered = float(times[back][0]) if back.any() else None
        return detected, recovered

    def _observe_node(self, fault: ChaosFault
                      ) -> Tuple[Optional[float], Optional[float]]:
        series = f"{self.dc.system.name}.nodes_up"
        times, up = self._series(series)
        if len(times) == 0:
            return None, None
        before = up[times < fault.start]
        if len(before) == 0:
            return None, None
        baseline = float(before[-1])
        down = (times >= fault.start) & (up < baseline)
        if not down.any():
            return None, None
        detected = float(times[down][0])
        back = (times >= fault.end) & (up >= baseline)
        recovered = float(times[back][0]) if back.any() else None
        return detected, recovered

    def _observe_shard(self, fault: ChaosFault
                       ) -> Tuple[Optional[float], Optional[float]]:
        series = f"telemetry.shard.{int(fault.target)}.down_members"
        times, down = self._series(series)
        if len(times) == 0:
            return None, None
        bad = (times >= fault.start) & (down > 0)
        if not bad.any():
            return None, None
        detected = float(times[bad][0])
        ok = (times >= fault.end) & (down == 0)
        recovered = float(times[ok][0]) if ok.any() else None
        return detected, recovered

    def _observe_durability(self, fault: ChaosFault
                            ) -> Tuple[Optional[float], Optional[float]]:
        if fault.mode in ("bitflip", "truncate"):
            probe = self._artifact_probes.get((fault.start, fault.mode))
            if probe is None:
                return None, None
            now, detected = probe
            # Detection and recovery coincide: the loader both *counted*
            # the damage and completed a degraded (or typed-refusal) load.
            return (now, now) if detected else (None, None)
        # worker_kill / torn_wal: read the runtime's own crash/restart
        # counters from the health-metric series the site records.
        times, crashes = self._series("telemetry.runtime.worker_crashes")
        if len(times) == 0:
            return None, None
        before = crashes[times < fault.start]
        base = float(before[-1]) if len(before) else 0.0
        seen = (times >= fault.start) & (crashes > base)
        if not seen.any():
            return None, None
        detected = float(times[seen][0])
        rt_times, restarts = self._series("telemetry.runtime.worker_restarts")
        if len(rt_times) == 0:
            return detected, None
        rbefore = restarts[rt_times < fault.start]
        rbase = float(rbefore[-1]) if len(rbefore) else 0.0
        back = (rt_times >= detected) & (restarts > rbase)
        recovered = float(rt_times[back][0]) if back.any() else None
        return detected, recovered

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    @property
    def metrics_registry(self) -> MetricsRegistry:
        """Typed instruments on the ``oda.chaos.*`` subtree."""
        if self._metrics is None:
            r = MetricsRegistry()
            r.counter("oda.chaos.faults_injected", "fault episodes scheduled",
                      fn=lambda: float(len(self.scheduled)))
            for key in ("detected", "recovered", "unrecovered",
                        "mean_mttd_s", "mean_mttr_s"):
                r.gauge(f"oda.chaos.{key}",
                        f"last scorecard: {key.replace('_', ' ')}",
                        fn=lambda k=key: self._last_totals.get(k, 0.0))
            self._metrics = r
        return self._metrics
