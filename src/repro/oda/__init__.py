"""ODA composition layer.

The fully-wired synthetic site (:class:`~repro.oda.datacenter.DataCenter`),
capability descriptors bound to framework cells, streaming pipeline
stages, the self-describing :class:`~repro.oda.system.ODASystem`,
multi-pillar orchestration, KPI collection/comparison, control-plane
supervision (circuit breakers, safe-state fallback), unified chaos
campaigns, and reference deployments mirroring Figure 3's systems.
"""

from repro.oda.capability import ODACapability, capability
from repro.oda.chaos import ChaosCampaign, ChaosEngine, ChaosFault, standard_campaign
from repro.oda.datacenter import DataCenter
from repro.oda.deployments import (
    build_clustercockpit_like,
    build_eni_like,
    build_geopm_like,
    build_llnl_like,
)
from repro.oda.kpi import RunKpis, collect_kpis, compare_kpis
from repro.oda.orchestrator import MultiPillarOrchestrator, OrchestratorConfig
from repro.oda.pipeline import DerivedMetricStage, StreamingDetectorStage, StreamingStage
from repro.oda.supervision import (
    CircuitBreaker,
    ControllerFaultKind,
    SupervisionPolicy,
    Supervisor,
)
from repro.oda.system import ODASystem

__all__ = [
    "ODACapability",
    "capability",
    "ChaosCampaign",
    "ChaosEngine",
    "ChaosFault",
    "standard_campaign",
    "CircuitBreaker",
    "ControllerFaultKind",
    "SupervisionPolicy",
    "Supervisor",
    "DataCenter",
    "build_clustercockpit_like",
    "build_eni_like",
    "build_geopm_like",
    "build_llnl_like",
    "RunKpis",
    "collect_kpis",
    "compare_kpis",
    "MultiPillarOrchestrator",
    "OrchestratorConfig",
    "DerivedMetricStage",
    "StreamingDetectorStage",
    "StreamingStage",
    "ODASystem",
]
