"""ODASystem: a deployed, self-describing ODA installation.

Bundles capabilities, streaming stages and control loops over one
:class:`~repro.oda.datacenter.DataCenter`, and — because every capability
carries its grid cell — reports its own framework footprint, coverage and
staged-roadmap recommendations.  This is the executable version of the
paper's premise: an ODA system that can be "analyzed, assessed and
categorized" by construction.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.analytics.prescriptive.control import ControlLoop
from repro.core.grid import FrameworkGrid, all_cells
from repro.core.render import render_fig3
from repro.core.roadmap import RoadmapStep, plan_roadmap
from repro.core.usecase import GridCell, SystemProfile
from repro.errors import ConfigurationError
from repro.oda.capability import ODACapability
from repro.oda.datacenter import DataCenter
from repro.oda.pipeline import StreamingStage

__all__ = ["ODASystem"]


class ODASystem:
    """A named ODA deployment over a data center."""

    def __init__(self, name: str, datacenter: DataCenter, description: str = ""):
        self.name = name
        self.datacenter = datacenter
        self.description = description
        self.capabilities: List[ODACapability] = []
        self.stages: List[StreamingStage] = []
        self.control_loops: List[ControlLoop] = []

    # ------------------------------------------------------------------
    # Composition
    # ------------------------------------------------------------------
    def add_capability(self, capability: ODACapability) -> ODACapability:
        if any(c.name == capability.name for c in self.capabilities):
            raise ConfigurationError(f"duplicate capability {capability.name!r}")
        self.capabilities.append(capability)
        return capability

    def add_stage(self, stage: StreamingStage) -> StreamingStage:
        self.stages.append(stage)
        if self.datacenter.supervisor is not None:
            self.datacenter.supervisor.supervise_stage(stage)
        return stage

    def add_control_loop(self, loop: ControlLoop, attach: bool = True) -> ControlLoop:
        self.control_loops.append(loop)
        if attach:
            loop.attach(self.datacenter.sim, self.datacenter.trace)
        if self.datacenter.supervisor is not None:
            self.datacenter.supervisor.supervise_loop(loop)
        return loop

    def get(self, name: str) -> ODACapability:
        for cap in self.capabilities:
            if cap.name == name:
                return cap
        raise ConfigurationError(f"no capability named {name!r}")

    def run_capability(self, name: str, *args: Any, **kwargs: Any) -> Any:
        return self.get(name)(*args, **kwargs)

    # ------------------------------------------------------------------
    # Self-description (the framework applied to itself)
    # ------------------------------------------------------------------
    def footprint(self) -> SystemProfile:
        """This deployment's footprint on the 4x4 grid."""
        return SystemProfile(
            name=self.name,
            cells=frozenset(c.cell for c in self.capabilities),
            description=self.description,
        )

    def covered_cells(self) -> List[GridCell]:
        return sorted({c.cell for c in self.capabilities})

    def coverage(self) -> float:
        """Fraction of the 16 grid cells this deployment occupies."""
        return len(set(self.covered_cells())) / 16.0

    def roadmap(self, horizon: int = 4) -> List[RoadmapStep]:
        """Staged-model recommendations for what to build next."""
        return plan_roadmap(self.covered_cells(), horizon=horizon)

    def describe(self) -> str:
        """Footprint diagram plus the capability inventory."""
        lines = [render_fig3([self.footprint()]), "", "Capabilities:"]
        for cap in sorted(self.capabilities, key=lambda c: c.cell):
            lines.append(f"  - {cap.name} [{cap.cell.label}] ({cap.invocations} runs)")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Execution passthrough
    # ------------------------------------------------------------------
    def run(self, days: float = 0.0, seconds: float = 0.0) -> None:
        self.datacenter.run(days=days, seconds=seconds)
