"""DataCenter: the fully-wired synthetic HPC site.

Composes the four pillars — building infrastructure (facility), system
hardware (cluster), system software (scheduler + runtime) and applications
(workload generator) — plus the telemetry pipeline, with the physical
couplings the paper's multi-pillar discussion hinges on:

* cluster IT power is the facility's heat load and the dominant term of
  site power (hardware -> infrastructure),
* cooling-loop supply temperature sets rack inlet temperatures, which feed
  node thermals, leakage and fan power (infrastructure -> hardware),
* scheduler decisions place loads that change both (software -> everything).

This is the standard entry point for examples and benchmarks::

    dc = DataCenter(seed=7, racks=4, nodes_per_rack=16)
    dc.generate_workload(days=2.0, jobs_per_day=150)
    dc.run(days=2.0)
    times, pue = dc.telemetry.store.query("facility.pue")
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.apps.generator import JobRequest, WorkloadGenerator
from repro.apps.profiles import ProfileCatalog, default_catalog
from repro.cluster.system import HPCSystem, build_system
from repro.facility.facility import Facility
from repro.facility.sizing import scaled_cooling_plant, scaled_distribution
from repro.errors import ConfigurationError
from repro.facility.weather import DAY
from repro.simulation.engine import Simulator
from repro.simulation.rng import RngPool
from repro.simulation.trace import TraceLog
from repro.software.policies import SchedulingPolicy
from repro.software.runtime import FrequencyGovernor, NodeRuntime
from repro.software.os_noise import OsNoiseInjector
from repro.software.scheduler import Scheduler
from repro.telemetry.collector import TelemetrySystem

__all__ = ["DataCenter"]


class DataCenter:
    """A complete simulated HPC data center with telemetry.

    Parameters
    ----------
    seed:
        Root seed; identical seeds give identical trajectories.
    racks / nodes_per_rack:
        Cluster size.
    policy:
        Scheduling policy (default FCFS).
    telemetry_period:
        Scrape period for all collection agents, seconds.
    enable_faults:
        Turn on stochastic hardware failures and degradations.
    noisy_node_fraction:
        Fraction of nodes with pathological OS noise.
    catalog:
        Application-profile catalog for workload generation.
    health_period:
        If given, publish pipeline self-metrics (``telemetry.*``) on this
        period and drive stale-data alert checks.
    shards / replication:
        If ``shards`` is given, telemetry is archived in a hash-partitioned
        :class:`~repro.telemetry.distributed.ShardedStore` with
        ``replication`` extra copies per shard (reads fail over when a
        shard member is down); every query API is unchanged.
    parallel:
        With ``shards``, run each shard's replica set in its own worker
        process fed by shared-memory ring buffers (the scale-out runtime,
        :mod:`repro.telemetry.runtime`).  Call :meth:`close` when done for
        a graceful drain; ``enable_supervision()`` automatically puts the
        workers under watchdog crash detection.
    rollups / archive:
        Enable the store's materialized downsample cascade and compressed
        columnar cold tier (bool/dict/config, same forms as
        :class:`~repro.telemetry.store.TimeSeriesStore`) — long queries
        are served from pre-aggregated tiers and expired raw samples are
        demoted to cold chunks instead of deleted.
    journal:
        Write-ahead journal base directory (or config dict) for the
        telemetry store; acked ingest survives a crash of the owning
        process and, with ``parallel``, of individual shard workers (see
        :mod:`repro.telemetry.durability`).
    """

    def __init__(
        self,
        seed: int = 0,
        racks: int = 4,
        nodes_per_rack: int = 16,
        policy: Optional[SchedulingPolicy] = None,
        telemetry_period: float = 60.0,
        scheduler_tick: float = 60.0,
        facility_tick: float = 60.0,
        cluster_tick: float = 30.0,
        enable_faults: bool = False,
        noisy_node_fraction: float = 0.0,
        catalog: Optional[ProfileCatalog] = None,
        store_retention: Optional[float] = None,
        cooling_loops: int = 1,
        start_time: float = 0.0,
        sensor_noise_floor_w: float = 0.0,
        health_period: Optional[float] = None,
        shards: Optional[int] = None,
        replication: int = 0,
        parallel: bool = False,
        parallel_config=None,
        rollups=None,
        archive=None,
        journal=None,
    ):
        self.rng_pool = RngPool(seed)
        self.sim = Simulator(start_time=start_time)
        self.trace = TraceLog()
        self.catalog = catalog or default_catalog()

        self.system: HPCSystem = build_system(
            racks=racks, nodes_per_rack=nodes_per_rack, tick=cluster_tick,
            loop_names=[f"loop{i}" for i in range(cooling_loops)],
        )
        # Size the plant for the cluster's worst-case draw (all nodes at
        # full dynamic power plus fans) so efficiency figures are realistic.
        peak_it = sum(
            n.idle_power_w + n.max_dynamic_w + n.fan_max_w + 30.0
            for n in self.system.nodes
        )
        self.peak_it_w = peak_it
        self.facility = Facility(
            self.rng_pool.stream("weather"),
            plant=scaled_cooling_plant(peak_it, loops=cooling_loops),
            distribution=scaled_distribution(peak_it),
            it_power_source=lambda: self.system.it_power_w,
            tick=facility_tick,
            sensor_noise_floor_w=sensor_noise_floor_w,
        )
        self.scheduler = Scheduler(self.system, policy=policy, tick=scheduler_tick)
        self.telemetry = TelemetrySystem(
            store_retention=store_retention, shards=shards,
            replication=replication, parallel=parallel,
            parallel_config=parallel_config,
            rollups=rollups, archive=archive, journal=journal,
        )
        self.runtime: Optional[NodeRuntime] = None
        self.noise: Optional[OsNoiseInjector] = None
        self.generator: Optional[WorkloadGenerator] = None
        self.supervisor = None  # created on demand by enable_supervision()

        # --- wiring -----------------------------------------------------
        self.system.attach(
            self.sim, self.trace, self.rng_pool.stream("hw_faults"),
            enable_faults=enable_faults,
        )
        self.facility.attach(self.sim, self.trace)
        self.scheduler.attach(self.sim, self.trace)
        if noisy_node_fraction > 0:
            self.noise = OsNoiseInjector(
                self.system, self.rng_pool.stream("os_noise"),
                noisy_fraction=noisy_node_fraction,
            )
            self.noise.attach(self.sim, self.trace)

        # Cooling coupling: after each facility tick, propagate loop supply
        # temperatures into the cluster's rack inlets.
        self.sim.schedule_periodic(
            facility_tick, lambda s: self._propagate_cooling(),
            start_delay=0.0, label="coupling:cooling", priority=1,
        )

        # Telemetry agents: one per pillar.
        agent = self.telemetry.new_agent("site", period=telemetry_period)
        agent.add_sampler(self.facility.sampler())
        agent.add_sampler(self.system.sampler())
        agent.add_sampler(self.scheduler.sampler())
        agent.start(self.sim, start_delay=telemetry_period)

        # Optional pipeline self-observability (telemetry.* meta-metrics).
        if health_period is not None:
            self.telemetry.enable_health(health_period)
            self.telemetry.health.start(self.sim)

    # ------------------------------------------------------------------
    def _propagate_cooling(self) -> None:
        for loop in self.facility.plant.loops:
            self.system.set_loop_supply(loop.name, loop.supply_temp_c)

    # ------------------------------------------------------------------
    # Optional subsystems
    # ------------------------------------------------------------------
    def install_runtime(self, governor: FrequencyGovernor, period: float = 120.0) -> NodeRuntime:
        """Attach a GEOPM-like DVFS runtime driven by ``governor``."""
        self.runtime = NodeRuntime(self.system, governor, period=period)
        self.runtime.attach(self.sim, self.trace)
        return self.runtime

    def generate_workload(
        self,
        days: float,
        jobs_per_day: float = 120.0,
        users: int = 12,
        miner_fraction: float = 0.0,
        start: Optional[float] = None,
    ) -> List[JobRequest]:
        """Generate and enqueue a synthetic submission trace."""
        self.generator = WorkloadGenerator(
            self.rng_pool.stream("workload"),
            catalog=self.catalog,
            users=users,
            jobs_per_day=jobs_per_day,
            miner_fraction=miner_fraction,
            max_nodes=self.system.node_count,
        )
        begin = self.sim.now if start is None else start
        requests = self.generator.generate(begin, days * DAY)
        self.scheduler.load_trace(self.sim, requests)
        return requests

    def submit(self, request: JobRequest) -> None:
        """Submit one job immediately."""
        self.scheduler.submit(request, self.sim.now)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, days: float = 0.0, seconds: float = 0.0) -> None:
        """Advance the simulation by the given amount of time."""
        self.sim.run(days * DAY + seconds)

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------
    @property
    def store(self):
        """The telemetry time-series store (sharded when ``shards`` set)."""
        return self.telemetry.store

    def shard_fault(self):
        """A :class:`~repro.telemetry.distributed.ShardFault` injector bound
        to this site's sharded store and bus (requires ``shards``)."""
        from repro.telemetry.distributed import ShardFault, ShardedStore

        if not isinstance(self.telemetry.store, ShardedStore):
            raise ConfigurationError(
                "shard_fault() requires a sharded store (pass shards=...)"
            )
        return ShardFault(self.telemetry.store, bus=self.telemetry.bus)

    def metric(self, name: str):
        """Shorthand range query over the full history."""
        return self.store.query(name)

    def frontend(self, **kwargs):
        """The multi-tenant query front door over this site's store.

        Created on first access (keyword arguments configure it then; see
        :class:`~repro.telemetry.serving.QueryFrontend`).  If supervision
        is enabled the frontend goes under the supervisor's watchdog: a
        saturated frontend trips its breaker and degrades to shed-first
        mode until the backlog clears.
        """
        frontend = self.telemetry.frontend(**kwargs)
        if self.supervisor is not None:
            self.supervisor.watch_frontend(frontend)
        return frontend

    def enable_supervision(self, policy=None):
        """Create (once) and start the control-plane
        :class:`~repro.oda.supervision.Supervisor` for this site.

        Control loops attached afterwards through
        :class:`~repro.oda.system.ODASystem` or
        :meth:`~repro.oda.orchestrator.MultiPillarOrchestrator.attach` are
        wrapped automatically; existing loops can be wrapped explicitly via
        ``dc.supervisor.supervise_loop(...)``.
        """
        from repro.oda.supervision import Supervisor

        if self.supervisor is None:
            self.supervisor = Supervisor(
                self.sim, trace=self.trace, store=self.store, policy=policy,
            )
        runtime = getattr(self.store, "runtime", None)
        if runtime is not None:
            # Parallel shard workers go under watchdog crash detection.
            self.supervisor.watch_runtime(runtime)
        if self.telemetry._frontend is not None:
            # An already-created front door goes under saturation watch.
            self.supervisor.watch_frontend(self.telemetry._frontend)
        self.supervisor.start()
        return self.supervisor

    def close(self) -> None:
        """Stop telemetry collection and drain/stop any shard workers.

        Required for a clean shutdown when ``parallel`` is set (workers
        apply and flush every pushed batch before exiting); harmless
        otherwise.
        """
        self.telemetry.close()

    def prometheus(self) -> str:
        """Prometheus text exposition of every pipeline metrics registry
        (bus, agents, store/shards, health, plus any profiling histograms
        collected while :data:`repro.obs.OBS` was enabled; supervisor
        instruments are included once supervision is enabled)."""
        if self.supervisor is None:
            return self.telemetry.prometheus()
        from repro.obs.metrics import prometheus_text

        registries = list(self.telemetry.metric_registries())
        registries.append(self.supervisor.metrics_registry)
        return prometheus_text(registries)
