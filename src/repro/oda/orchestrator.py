"""Multi-pillar orchestration (Section V-B made runnable).

Single-pillar ODA systems are *closed*: each optimizes its own knob with
"little concern for other system components".  The paper argues
multi-pillar use cases need "careful planning and holistic design, often
integrating multiple systems with one another and requiring orchestration
mechanisms" — this module is that mechanism.

:class:`MultiPillarOrchestrator` coordinates controllers across pillars
toward a global energy objective: it watches facility conditions and
scheduler pressure, then (a) widens the cooling setpoint when hardware
thermal headroom allows (infrastructure knob), (b) relaxes or tightens the
fleet DVFS bias with queue pressure (hardware knob via software-pillar
state), keeping the pillars consistent instead of letting two siloed
controllers fight (e.g. cooling saving power by running warm while the
node fleet burns leakage).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.analytics.prescriptive.control import ControlAction, ControlLoop, SetpointManager
from repro.facility.cooling import CoolingLoop
from repro.obs import OBS as _OBS
from repro.oda.datacenter import DataCenter

__all__ = ["OrchestratorConfig", "MultiPillarOrchestrator"]


@dataclass
class OrchestratorConfig:
    """Tunables of the cross-pillar coordination policy."""

    period_s: float = 1800.0
    max_node_temp_c: float = 70.0       # hardware-pillar thermal ceiling
    target_temp_margin_c: float = 8.0   # desired headroom below the ceiling
    setpoint_step_c: float = 2.0
    min_setpoint_c: float = 14.0
    max_setpoint_c: float = 38.0
    queue_pressure_high: float = 4.0    # queued node-demand / free nodes
    queue_pressure_low: float = 0.5
    low_freq_ghz: float = 1.6


class MultiPillarOrchestrator:
    """Coordinates infrastructure, hardware and software knobs globally.

    Decision logic per period:

    1. **Infrastructure <-> hardware**: read the fleet's hottest node; if
       the margin below the thermal ceiling exceeds the target, raise the
       cooling setpoint one step (cheaper cooling); if the margin is gone,
       lower it — the cross-pillar loop a siloed cooling controller cannot
       close because it never sees node temperatures.
    2. **Software <-> hardware**: read queue pressure; when the queue is
       deep, push node frequencies to nominal (finish work, drain queue);
       when the machine is under-subscribed, bias busy nodes' memory-bound
       phases down via the fleet default — trading slack capacity for
       energy.
    """

    def __init__(self, dc: DataCenter, loop: Optional[CoolingLoop] = None,
                 config: Optional[OrchestratorConfig] = None,
                 recommend_only: bool = False):
        self.dc = dc
        self.config = config or OrchestratorConfig()
        self.loop = loop or dc.facility.plant.loops[0]
        self.manager = SetpointManager(
            actuator=self.loop.set_setpoint,
            initial=self.loop.supply_setpoint_c,
            lo=self.config.min_setpoint_c,
            hi=self.config.max_setpoint_c,
            max_step=self.config.setpoint_step_c,
        )
        self.control_loop = ControlLoop(
            name="orchestrator", decide=self._decide, period=self.config.period_s,
            recommend_only=recommend_only,
        )
        self.frequency_bias = "nominal"  # or "efficient"

    def attach(
        self,
        supervise: Optional[bool] = None,
        safe_setpoint: Optional[float] = None,
        stale_inputs: Sequence[str] = (),
    ) -> None:
        """Attach the control loop; supervise it when the site has a
        :class:`~repro.oda.supervision.Supervisor` (or ``supervise=True``).

        ``safe_setpoint`` is the declared safe cooling setpoint the
        supervisor drives back to when this controller's breaker opens
        (default: the setpoint at attach time).  ``stale_inputs`` are
        telemetry series the supervisor's stale-data guard checks before
        allowing actuation.
        """
        self.control_loop.attach(self.dc.sim, self.dc.trace)
        supervisor = getattr(self.dc, "supervisor", None)
        if supervise or (supervise is None and supervisor is not None):
            if supervisor is None:
                supervisor = self.dc.enable_supervision()
            supervisor.supervise_loop(
                self.control_loop,
                manager=self.manager,
                safe_setpoint=(
                    self.manager.current if safe_setpoint is None else safe_setpoint
                ),
                inputs=tuple(stale_inputs),
            )

    # ------------------------------------------------------------------
    def _queue_pressure(self) -> float:
        scheduler = self.dc.scheduler
        free = len(scheduler.free_node_names())
        demand = scheduler.queue.total_requested_nodes()
        return demand / max(free, 1)

    def _decide(self, now: float, recommend_only: bool) -> List[ControlAction]:
        if _OBS.enabled:
            with _OBS.tracer.span("orchestrator.decide", sim_time=now) as sp:
                actions = self._decide_impl(now, recommend_only)
                sp.set_attr("actions", len(actions))
                return actions
        return self._decide_impl(now, recommend_only)

    def _decide_impl(
        self, now: float, recommend_only: bool
    ) -> List[ControlAction]:
        actions: List[ControlAction] = []
        cfg = self.config

        # --- cooling vs node thermals (infrastructure <-> hardware) -----
        up = self.dc.system.up_nodes()
        if up:
            hottest = max(node.temp_c for node in up)
            margin = cfg.max_node_temp_c - hottest
            if margin > cfg.target_temp_margin_c:
                target = self.manager.current + cfg.setpoint_step_c
                reason = f"thermal margin {margin:.1f}C > target; warmer water is cheaper"
            elif margin < cfg.target_temp_margin_c * 0.5:
                target = self.manager.current - cfg.setpoint_step_c
                reason = f"thermal margin {margin:.1f}C too small; cooling down"
            else:
                target = self.manager.current
                reason = ""
            if target != self.manager.current:
                if recommend_only:
                    # Human-in-the-loop mode: log the recommendation (the
                    # clamped target the loop *would* move toward) without
                    # touching the plant — same semantics as ControlLoop.
                    recommended = min(max(target, self.manager.lo), self.manager.hi)
                    actions.append(
                        ControlAction(
                            now, "orchestrator", "supply_setpoint", recommended, reason
                        )
                    )
                else:
                    applied = self.manager.request(target)
                    actions.append(self.control_loop.record_applied(
                        ControlAction(
                            now, "orchestrator", "supply_setpoint", applied, reason
                        )
                    ))

        # --- DVFS bias vs queue pressure (software <-> hardware) --------
        pressure = self._queue_pressure()
        if pressure > cfg.queue_pressure_high and self.frequency_bias != "nominal":
            self.frequency_bias = "nominal"
            action = ControlAction(
                now, "orchestrator", "frequency_bias", 1.0,
                f"queue pressure {pressure:.1f}: draining at nominal frequency",
            )
            if not recommend_only:
                for node in up:
                    node.set_frequency(node.cpu.nominal_ghz)
                self.control_loop.record_applied(action)
            actions.append(action)
        elif pressure < cfg.queue_pressure_low and self.frequency_bias != "efficient":
            self.frequency_bias = "efficient"
            action = ControlAction(
                now, "orchestrator", "frequency_bias", 0.0,
                f"queue pressure {pressure:.1f}: biasing memory-bound work down",
            )
            if not recommend_only:
                for node in up:
                    if node.load.compute_fraction < 0.5 and node.load.cpu_util > 0:
                        node.set_frequency(cfg.low_freq_ghz)
                self.control_loop.record_applied(action)
            actions.append(action)
        return actions

    @property
    def actions(self) -> List[ControlAction]:
        return self.control_loop.actions
