"""ODA capabilities: analytics bound to framework cells.

An :class:`ODACapability` is the unit of composition of an ODA system: a
named, runnable piece of analytics annotated with the grid cell it
occupies.  Systems built from capabilities can report their own framework
footprint (Figure 3) — the paper's "tools to analyze, assess and
categorize such systems" made literal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Tuple

from repro.core.classify import UseCaseClassifier
from repro.core.pillars import Pillar
from repro.core.types import AnalyticsType
from repro.core.usecase import GridCell

__all__ = ["ODACapability", "capability"]


@dataclass
class ODACapability:
    """One analytics capability of a deployed ODA system.

    Attributes
    ----------
    name:
        Human-readable capability name.
    cell:
        The framework cell the capability occupies.
    run:
        Callable executing the capability; signature is capability-specific
        (most take ``(since, until)`` windows and return a result object).
    description:
        One-liner shown in footprint reports.
    """

    name: str
    cell: GridCell
    run: Callable[..., Any]
    description: str = ""
    invocations: int = field(default=0, init=False)
    last_result: Any = field(default=None, init=False, repr=False)

    def __call__(self, *args: Any, **kwargs: Any) -> Any:
        self.invocations += 1
        self.last_result = self.run(*args, **kwargs)
        return self.last_result

    @property
    def pillar(self) -> Pillar:
        return self.cell.pillar

    @property
    def analytics_type(self) -> AnalyticsType:
        return self.cell.analytics_type


def capability(
    name: str,
    run: Callable[..., Any],
    cell: Optional[GridCell] = None,
    description: str = "",
    classifier: Optional[UseCaseClassifier] = None,
) -> ODACapability:
    """Build a capability, auto-classifying onto the grid when no cell given.

    Auto-classification uses the lexicon classifier on ``name`` +
    ``description`` — convenient when wrapping ad-hoc site scripts whose
    authors never thought in framework terms.
    """
    if cell is None:
        classifier = classifier or UseCaseClassifier()
        cell = classifier.classify(f"{name}. {description}").cell
    return ODACapability(name=name, cell=cell, run=run, description=description)
