"""Control-plane supervision: the ODA system must not be able to kill itself.

The paper's deployment-experience companion (Netti et al., "Operational
Data Analytics in Practice") stresses that production ODA runs its
analytics units under *isolation* — DCDB Wintermute executes operator
plugins so that one bad analytics unit cannot take down collection.  This
module is that discipline applied to the prescriptive control plane: every
:class:`~repro.analytics.prescriptive.control.ControlLoop` and
:class:`~repro.oda.pipeline.StreamingStage` registered with a supervised
site is wrapped in a :class:`Supervisor` that provides

* **error isolation** — a raising ``decide()``/``process()`` never reaches
  the simulator event loop, so one broken controller cannot abort the run;
* **retry** — a failed decide is retried in-tick up to a configured count;
* **circuit breaking** — per-controller :class:`CircuitBreaker` (closed →
  open after N consecutive failures → half-open probe → closed), with the
  open window growing exponentially while probes keep failing;
* **watchdog heartbeats** — a periodic deadline check that notices a hung
  (unresponsive, not raising) controller and feeds its breaker;
* **stale-telemetry guard** — actuation is refused when the inputs a
  controller declares are older than a configurable horizon;
* **safe-state fallback** — when a breaker opens, the controller's
  :class:`~repro.analytics.prescriptive.control.SetpointManager` is driven
  (rate-limited) back to a declared safe setpoint, recorded as ordinary
  :class:`~repro.analytics.prescriptive.control.ControlAction` audit
  entries plus ``supervisor.*`` trace events.

Everything the supervisor observes is exported as typed ``oda.supervisor.*``
metrics, and the chaos engine (:mod:`repro.oda.chaos`) uses the controller
fault hooks here (raise / hang / garbage decisions) to exercise the whole
stack end to end.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from math import isfinite as _isfinite
from enum import Enum
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analytics.prescriptive.control import ControlAction, ControlLoop, SetpointManager
from repro.errors import ChaosError, SupervisionError
from repro.obs.metrics import MetricsRegistry
from repro.oda.pipeline import StreamingStage
from repro.simulation.engine import PeriodicHandle, Simulator
from repro.simulation.trace import TraceLog

__all__ = [
    "BreakerState",
    "BreakerTransition",
    "CircuitBreaker",
    "ControllerFault",
    "ControllerFaultKind",
    "SupervisionPolicy",
    "SupervisedLoop",
    "SupervisedStage",
    "Supervisor",
]


class BreakerState(Enum):
    """Circuit-breaker states (the classic three-state machine)."""

    CLOSED = "closed"          # normal operation
    OPEN = "open"              # failing: calls short-circuit to safe state
    HALF_OPEN = "half_open"    # probing: one call allowed through


@dataclass(frozen=True)
class BreakerTransition:
    """One audited breaker state change."""

    time: float
    from_state: BreakerState
    to_state: BreakerState
    reason: str = ""


#: The only legal breaker transitions.
_LEGAL_TRANSITIONS = {
    (BreakerState.CLOSED, BreakerState.OPEN),
    (BreakerState.OPEN, BreakerState.HALF_OPEN),
    (BreakerState.HALF_OPEN, BreakerState.CLOSED),
    (BreakerState.HALF_OPEN, BreakerState.OPEN),
}


class CircuitBreaker:
    """Per-controller failure isolation with exponential open-window backoff.

    ``closed`` counts consecutive failures; at ``failure_threshold`` the
    breaker opens for ``open_timeout_s`` of simulation time.  The first
    :meth:`allow` at/after the probe time moves it to ``half_open`` and lets
    exactly that call through; a success closes it (resetting the window), a
    failure re-opens it with the window doubled (capped).
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        open_timeout_s: float = 3600.0,
        backoff_factor: float = 2.0,
        max_open_timeout_s: float = 12 * 3600.0,
        half_open_successes: int = 1,
    ):
        if failure_threshold < 1:
            raise SupervisionError("failure_threshold must be >= 1")
        if open_timeout_s <= 0:
            raise SupervisionError("open_timeout_s must be positive")
        self.failure_threshold = failure_threshold
        self.open_timeout_s = open_timeout_s
        self.backoff_factor = backoff_factor
        self.max_open_timeout_s = max_open_timeout_s
        self.half_open_successes = half_open_successes
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.failures = 0
        self.opens = 0
        self.closes = 0
        self.transitions: List[BreakerTransition] = []
        self._probe_at = math.inf
        self._probe_successes = 0
        self._current_timeout = open_timeout_s

    def _transition(self, now: float, to_state: BreakerState, reason: str) -> None:
        pair = (self.state, to_state)
        if pair not in _LEGAL_TRANSITIONS:
            raise SupervisionError(
                f"illegal breaker transition {self.state.value} -> {to_state.value}"
            )
        self.transitions.append(BreakerTransition(now, self.state, to_state, reason))
        self.state = to_state

    # ------------------------------------------------------------------
    def allow(self, now: float) -> bool:
        """Whether a call may proceed at ``now`` (moves open → half-open)."""
        if self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.OPEN:
            if now >= self._probe_at:
                self._probe_successes = 0
                self._transition(now, BreakerState.HALF_OPEN, "probe window reached")
                return True
            return False
        return True  # HALF_OPEN: the probe call

    def record_success(self, now: float) -> None:
        if self.state is BreakerState.HALF_OPEN:
            self._probe_successes += 1
            if self._probe_successes >= self.half_open_successes:
                self._transition(now, BreakerState.CLOSED, "probe succeeded")
                self.closes += 1
                self._current_timeout = self.open_timeout_s
                self.consecutive_failures = 0
        else:
            self.consecutive_failures = 0

    def record_failure(self, now: float, reason: str = "") -> bool:
        """Record a failure; returns ``True`` if this opened the breaker."""
        self.failures += 1
        if self.state is BreakerState.HALF_OPEN:
            self._open(now, reason or "probe failed", escalate=True)
            return True
        if self.state is BreakerState.CLOSED:
            self.consecutive_failures += 1
            if self.consecutive_failures >= self.failure_threshold:
                self._open(now, reason or "failure threshold reached", escalate=False)
                return True
        return False

    def _open(self, now: float, reason: str, escalate: bool) -> None:
        if escalate:
            self._current_timeout = min(
                self._current_timeout * self.backoff_factor, self.max_open_timeout_s
            )
        self._transition(now, BreakerState.OPEN, reason)
        self.opens += 1
        self._probe_at = now + self._current_timeout


class ControllerFaultKind(Enum):
    """Injected controller pathologies (the chaos engine's control-plane leg)."""

    RAISE = "raise"        # decide() raises every call
    HANG = "hang"          # decide() never returns (modelled as no heartbeat)
    GARBAGE = "garbage"    # decide() returns non-finite garbage decisions


@dataclass(frozen=True)
class ControllerFault:
    """One scheduled controller-fault episode (ground truth for scoring)."""

    loop: str
    kind: ControllerFaultKind
    start: float
    duration: float

    @property
    def end(self) -> float:
        return self.start + self.duration

    def active(self, now: float) -> bool:
        return self.start <= now <= self.end


@dataclass
class SupervisionPolicy:
    """Tunables of the supervision layer.

    ``stale_horizon_s`` is off (``None``) by default so an un-configured
    supervised run stays bit-identical to an unsupervised one (no store
    reads on the control path).
    """

    max_retries: int = 1                    # in-tick retries of a failed decide
    failure_threshold: int = 3              # consecutive failures to open
    open_timeout_s: float = 3600.0          # first open window (sim seconds)
    backoff_factor: float = 2.0             # open-window growth per failed probe
    max_open_timeout_s: float = 12 * 3600.0
    half_open_successes: int = 1            # probe successes to re-close
    watchdog_period_s: float = 300.0        # heartbeat check period
    watchdog_factor: float = 2.5            # missed deadline = factor * loop period
    stale_horizon_s: Optional[float] = None  # refuse actuation on older inputs
    validate_actions: bool = True           # reject non-finite decided values

    def build_breaker(self) -> CircuitBreaker:
        return CircuitBreaker(
            failure_threshold=self.failure_threshold,
            open_timeout_s=self.open_timeout_s,
            backoff_factor=self.backoff_factor,
            max_open_timeout_s=self.max_open_timeout_s,
            half_open_successes=self.half_open_successes,
        )


class SupervisedLoop:
    """A :class:`ControlLoop` wrapped with the full supervision contract.

    The wrapper replaces ``loop.decide`` in place, so the unchanged
    ``ControlLoop.step`` machinery (audit log, trace) keeps working; safe
    state drives are returned as ordinary actions and land in the same
    audit trail.
    """

    def __init__(
        self,
        supervisor: "Supervisor",
        loop: ControlLoop,
        policy: SupervisionPolicy,
        manager: Optional[SetpointManager] = None,
        safe_setpoint: Optional[float] = None,
        inputs: Sequence[str] = (),
    ):
        if manager is None and safe_setpoint is not None:
            raise SupervisionError(
                f"loop {loop.name!r}: a safe setpoint needs a SetpointManager"
            )
        self.supervisor = supervisor
        self.loop = loop
        self.policy = policy
        self.manager = manager
        self.safe_setpoint = safe_setpoint
        self.inputs = tuple(inputs)
        self.breaker = policy.build_breaker()
        self.inner: Callable[[float, bool], Optional[List[ControlAction]]] = loop.decide
        loop.decide = self._decide
        # Heartbeats / counters
        self.last_heartbeat = supervisor.sim.now
        self.decide_failures = 0
        self.retries = 0
        self.stale_skips = 0
        self.missed_deadlines = 0
        self.garbage_actions = 0
        self.hang_ticks = 0
        self.safe_state_entries = 0
        self.safe_state_exits = 0
        self.last_error = ""
        self._in_safe_state = False
        self.faults: List[ControllerFault] = []
        # Precomputed: whether the stale-telemetry guard is active (the
        # fast path skips the store probe entirely when it is not).
        self._guarded = (
            policy.stale_horizon_s is not None
            and bool(self.inputs)
            and supervisor.store is not None
        )

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self.loop.name

    def inject_fault(
        self, kind: ControllerFaultKind, start: float, duration: float
    ) -> ControllerFault:
        """Schedule a fault episode on this controller; returns ground truth."""
        fault = ControllerFault(self.loop.name, kind, start, duration)
        self.faults.append(fault)
        return fault

    def _active_fault(self, now: float) -> Optional[ControllerFault]:
        for fault in self.faults:
            if fault.active(now):
                return fault
        return None

    # ------------------------------------------------------------------
    def _emit(self, now: float, kind: str, **detail) -> None:
        self.supervisor.emit(now, f"supervisor.{self.loop.name}", kind, **detail)

    def _inputs_stale(self, now: float) -> Optional[str]:
        """Name of the first stale/missing input series, or ``None``."""
        horizon = self.policy.stale_horizon_s
        store = self.supervisor.store
        if horizon is None or not self.inputs or store is None:
            return None
        for name in self.inputs:
            if name not in store:
                return name
            t, _ = store.latest(name)
            if now - t > horizon:
                return name
        return None

    def _validated(self, now: float, actions: List[ControlAction]) -> Tuple[List[ControlAction], int]:
        """Drop non-finite decided values; returns (clean actions, dropped)."""
        if not actions or not self.policy.validate_actions:
            return actions, 0
        clean = [a for a in actions if math.isfinite(a.value)]
        dropped = len(actions) - len(clean)
        if dropped:
            self.garbage_actions += dropped
            self._emit(
                now, "garbage_action",
                dropped=dropped, knobs=[a.knob for a in actions if not math.isfinite(a.value)],
            )
        return clean, dropped

    # ------------------------------------------------------------------
    # Safe state
    # ------------------------------------------------------------------
    def _enter_safe_state(self, now: float) -> None:
        if self._in_safe_state:
            return
        self._in_safe_state = True
        self.safe_state_entries += 1
        self._emit(
            now, "safe_state_enter",
            safe_setpoint=self.safe_setpoint,
            breaker_timeout_s=self.breaker._current_timeout,
        )

    def _exit_safe_state(self, now: float) -> None:
        if not self._in_safe_state:
            return
        self._in_safe_state = False
        self.safe_state_exits += 1
        self._emit(now, "safe_state_exit")

    def _safe_drive(self, now: float, recommend_only: bool) -> List[ControlAction]:
        """One rate-limited step toward the declared safe setpoint."""
        self._enter_safe_state(now)
        if (
            self.manager is None
            or self.safe_setpoint is None
            or recommend_only
            or self.manager.current == self.safe_setpoint
        ):
            return []
        applied = self.manager.request(self.safe_setpoint)
        action = ControlAction(
            now, f"supervisor.{self.loop.name}", "safe_setpoint", applied,
            f"safe-state fallback toward {self.safe_setpoint:g}",
        )
        return [self.loop.record_applied(action)]

    # ------------------------------------------------------------------
    # The wrapped decide
    # ------------------------------------------------------------------
    def _decide(self, now: float, recommend_only: bool) -> List[ControlAction]:
        # Fast path — the steady state of a healthy controller: no fault
        # episodes scheduled, breaker closed, stale guard off.  Everything
        # the slow path would check is constant-false here, so the wrapper
        # cost reduces to a heartbeat store and the try/except (which the
        # benchmark holds under 5% of a production-shaped decide).
        breaker = self.breaker
        if (
            not self.faults
            and breaker.state is BreakerState.CLOSED
            and not self._guarded
        ):
            self.last_heartbeat = now
            try:
                actions = self.inner(now, recommend_only)
            except Exception as exc:  # noqa: BLE001 — isolation is the point
                return self._handle_failure(now, recommend_only, exc,
                                            fault=None, probing=False)
            if actions:
                for action in actions:
                    if not _isfinite(action.value):
                        return self._accept(now, recommend_only, actions)
                breaker.consecutive_failures = 0  # record_success, CLOSED
                return actions
            breaker.consecutive_failures = 0
            return []
        return self._decide_slow(now, recommend_only)

    def _decide_slow(self, now: float, recommend_only: bool) -> List[ControlAction]:
        fault = self._active_fault(now)
        hung = fault is not None and fault.kind is ControllerFaultKind.HANG
        if not hung:
            self.last_heartbeat = now
        if not self.breaker.allow(now):
            return self._safe_drive(now, recommend_only)
        if hung:
            # The controller is unresponsive: no result, no exception, no
            # heartbeat.  The watchdog detects the missed deadline.
            self.hang_ticks += 1
            return []

        probing = self.breaker.state is BreakerState.HALF_OPEN
        if probing:
            self._emit(now, "breaker_probe")

        stale = self._inputs_stale(now)
        if stale is not None:
            self.stale_skips += 1
            self._emit(now, "stale_skip", input=stale,
                       horizon_s=self.policy.stale_horizon_s)
            return []

        try:
            actions = self._attempt(now, recommend_only, fault)
        except Exception as exc:  # noqa: BLE001 — isolation is the point
            return self._handle_failure(now, recommend_only, exc, fault, probing)
        return self._accept(now, recommend_only, actions)

    def _attempt(self, now: float, recommend_only: bool,
                 fault: Optional[ControllerFault]) -> List[ControlAction]:
        """One raw decide attempt, with any active fault injection applied."""
        if fault is not None and fault.kind is ControllerFaultKind.RAISE:
            raise ChaosError(f"injected controller crash in {self.loop.name!r}")
        if fault is not None and fault.kind is ControllerFaultKind.GARBAGE:
            return [ControlAction(
                now, self.loop.name, "garbage", float("nan"),
                "injected garbage decision",
            )]
        return self.inner(now, recommend_only) or []

    def _handle_failure(
        self,
        now: float,
        recommend_only: bool,
        exc: Exception,
        fault: Optional[ControllerFault],
        probing: bool,
    ) -> List[ControlAction]:
        """Record a decide failure; retry in-tick, then feed the breaker."""
        attempts = 0
        while True:
            self.decide_failures += 1
            self.last_error = repr(exc)
            self._emit(now, "decide_error", error=repr(exc), attempt=attempts)
            if attempts >= self.policy.max_retries or probing:
                opened = self.breaker.record_failure(now, repr(exc))
                if opened:
                    self._emit(now, "breaker_open", error=repr(exc))
                    return self._safe_drive(now, recommend_only)
                return []
            attempts += 1
            self.retries += 1
            try:
                actions = self._attempt(now, recommend_only, fault)
            except Exception as retry_exc:  # noqa: BLE001
                exc = retry_exc
                continue
            return self._accept(now, recommend_only, actions)

    def _accept(self, now: float, recommend_only: bool,
                actions: List[ControlAction]) -> List[ControlAction]:
        """Validate a successful decide and feed the breaker."""
        actions, dropped = self._validated(now, actions)
        if dropped:
            # Garbage decisions are failures: a controller emitting
            # non-finite actuations is as broken as a raising one.
            opened = self.breaker.record_failure(now, "non-finite decision")
            if opened:
                self._emit(now, "breaker_open", error="non-finite decision")
                return actions + self._safe_drive(now, recommend_only)
            return actions
        was_half_open = self.breaker.state is BreakerState.HALF_OPEN
        self.breaker.record_success(now)
        if was_half_open and self.breaker.state is BreakerState.CLOSED:
            self._emit(now, "breaker_close")
            self._exit_safe_state(now)
        return actions

    # ------------------------------------------------------------------
    def check_deadline(self, now: float) -> bool:
        """Watchdog hook: ``True`` if the loop missed its heartbeat deadline."""
        handle = self.loop._handle
        if handle is None or not handle.active:
            return False  # not attached: nothing to watch
        deadline = self.policy.watchdog_factor * self.loop.period
        if now - self.last_heartbeat <= deadline:
            return False
        self.missed_deadlines += 1
        self._emit(now, "missed_deadline",
                   last_heartbeat=self.last_heartbeat, deadline_s=deadline)
        # A hung controller cannot report its own failure; the watchdog
        # feeds the breaker on its behalf.  Reset the heartbeat so one hang
        # episode produces one failure per watchdog deadline, not per tick.
        self.last_heartbeat = now
        if self.breaker.state is not BreakerState.OPEN:
            opened = self.breaker.record_failure(now, "missed heartbeat deadline")
            if opened:
                self._emit(now, "breaker_open", error="missed heartbeat deadline")
                self._enter_safe_state(now)
        return True


class SupervisedStage:
    """A :class:`StreamingStage` wrapped with a circuit breaker.

    The stage's own error isolation (PR 1) already keeps a raising
    ``process()`` off the bus delivery loop; the breaker adds *fast-fail*:
    a persistently-broken stage stops being called at all until its probe
    window, so it cannot burn the pipeline's time budget or emit garbage
    derived metrics while broken.
    """

    def __init__(
        self,
        supervisor: "Supervisor",
        stage: StreamingStage,
        policy: SupervisionPolicy,
    ):
        self.supervisor = supervisor
        self.stage = stage
        self.policy = policy
        self.breaker = policy.build_breaker()
        self.inner = stage.process
        stage.process = self._process  # instance attribute shadows the method
        self.skipped = 0
        self.failures = 0

    @property
    def name(self) -> str:
        return self.stage.output_topic

    def _process(self, topic: str, batch):
        now = batch.time
        if not self.breaker.allow(now):
            self.skipped += 1
            return None
        was_half_open = self.breaker.state is BreakerState.HALF_OPEN
        try:
            out = self.inner(topic, batch)
        except Exception as exc:
            self.failures += 1
            opened = self.breaker.record_failure(now, repr(exc))
            if opened:
                self.supervisor.emit(
                    now, f"supervisor.stage.{self.name}", "breaker_open",
                    error=repr(exc),
                )
            raise  # the stage's own counter/isolation still applies
        self.breaker.record_success(now)
        if was_half_open and self.breaker.state is BreakerState.CLOSED:
            self.supervisor.emit(
                now, f"supervisor.stage.{self.name}", "breaker_close"
            )
        return out


class Supervisor:
    """Supervision root for one site's control plane.

    Wraps control loops (:meth:`supervise_loop`) and streaming stages
    (:meth:`supervise_stage`), runs the watchdog, owns the
    ``oda.supervisor.*`` metrics registry and writes every supervision
    event into the site trace under ``supervisor.*`` sources.
    """

    def __init__(
        self,
        sim: Simulator,
        trace: Optional[TraceLog] = None,
        store=None,
        policy: Optional[SupervisionPolicy] = None,
    ):
        self.sim = sim
        self.trace = trace
        self.store = store
        self.policy = policy or SupervisionPolicy()
        self.loops: Dict[str, SupervisedLoop] = {}
        self.stages: Dict[str, SupervisedStage] = {}
        self.runtimes: List = []  # parallel shard runtimes under watch
        self.frontends: List = []  # query frontends under saturation watch
        self.replica_watches: List[dict] = []  # anti-entropy sweep targets
        self._watchdog: Optional[PeriodicHandle] = None
        self._metrics: Optional[MetricsRegistry] = None

    # ------------------------------------------------------------------
    def emit(self, now: float, source: str, kind: str, **detail) -> None:
        if self.trace is not None:
            self.trace.emit(now, source, kind, **detail)

    # ------------------------------------------------------------------
    def supervise_loop(
        self,
        loop: ControlLoop,
        manager: Optional[SetpointManager] = None,
        safe_setpoint: Optional[float] = None,
        inputs: Sequence[str] = (),
        policy: Optional[SupervisionPolicy] = None,
    ) -> SupervisedLoop:
        """Wrap a control loop; idempotent per loop name."""
        existing = self.loops.get(loop.name)
        if existing is not None:
            if existing.loop is not loop:
                raise SupervisionError(
                    f"another loop named {loop.name!r} is already supervised"
                )
            return existing
        supervised = SupervisedLoop(
            self, loop, policy or self.policy,
            manager=manager, safe_setpoint=safe_setpoint, inputs=inputs,
        )
        self.loops[loop.name] = supervised
        return supervised

    def supervise_stage(
        self,
        stage: StreamingStage,
        policy: Optional[SupervisionPolicy] = None,
    ) -> SupervisedStage:
        """Wrap a streaming stage; idempotent per output topic."""
        existing = self.stages.get(stage.output_topic)
        if existing is not None:
            if existing.stage is not stage:
                raise SupervisionError(
                    f"another stage publishing {stage.output_topic!r} is "
                    "already supervised"
                )
            return existing
        supervised = SupervisedStage(self, stage, policy or self.policy)
        self.stages[stage.output_topic] = supervised
        return supervised

    def watch_runtime(self, runtime) -> None:
        """Put a :class:`~repro.telemetry.runtime.ParallelShardRuntime`
        under watchdog supervision (idempotent).

        Every watchdog tick sweeps the runtime's worker processes; a dead
        worker is traced as a ``worker_crash`` event and — when the
        runtime's ``auto_restart`` is set — restarted with checkpoint
        recovery and ring replay.
        """
        if runtime not in self.runtimes:
            self.runtimes.append(runtime)

    def watch_frontend(self, frontend) -> None:
        """Put a :class:`~repro.telemetry.serving.QueryFrontend` under
        watchdog supervision (idempotent).

        Every watchdog tick calls the frontend's
        :meth:`~repro.telemetry.serving.QueryFrontend.watchdog_check`:
        sustained queue saturation is recorded as breaker failures — so a
        saturated frontend degrades to shed-first mode instead of queueing
        without bound — and saturation episodes plus breaker transitions
        are traced under ``supervisor.frontend``.
        """
        if frontend not in self.frontends:
            self.frontends.append(frontend)

    def watch_replicas(self, store, window_s: float = 3600.0) -> None:
        """Put a sharded store's replica sets under periodic anti-entropy
        repair (idempotent per store).

        Each watchdog tick sweeps *one* replica set, round-robin, so the
        checksum/repair cost is amortized across ticks instead of stalling
        a tick on every shard at once.  Sweeps that repair divergence are
        traced under ``supervisor.replica``; a sweep that cannot reach its
        shard (worker dead, every member down) is traced as
        ``anti_entropy_failed`` and retried on a later round.
        """
        for watch in self.replica_watches:
            if watch["store"] is store:
                return
        self.replica_watches.append(
            {"store": store, "window_s": float(window_s), "next": 0}
        )

    def inject_controller_fault(
        self,
        loop_name: str,
        kind: ControllerFaultKind,
        start: float,
        duration: float,
    ) -> ControllerFault:
        """Schedule a raise/hang/garbage fault on a supervised controller."""
        try:
            supervised = self.loops[loop_name]
        except KeyError:
            raise SupervisionError(
                f"no supervised loop named {loop_name!r} "
                f"(have {sorted(self.loops)})"
            ) from None
        return supervised.inject_fault(kind, start, duration)

    # ------------------------------------------------------------------
    # Watchdog
    # ------------------------------------------------------------------
    def start(self) -> "Supervisor":
        """Start the watchdog heartbeat checks (idempotent)."""
        if self._watchdog is None or not self._watchdog.active:
            self._watchdog = self.sim.schedule_periodic(
                self.policy.watchdog_period_s,
                lambda s: self._watchdog_tick(s.now),
                label="supervisor:watchdog", priority=7,
            )
        return self

    def stop(self) -> None:
        if self._watchdog is not None:
            self._watchdog.cancel()
            self._watchdog = None

    def _watchdog_tick(self, now: float) -> None:
        for supervised in self.loops.values():
            supervised.check_deadline(now)
        for runtime in self.runtimes:
            for shard in runtime.check_workers(now):
                self.emit(
                    now, "supervisor.runtime", "worker_crash",
                    shard=shard, restarted=runtime.config.auto_restart,
                )
        for frontend in self.frontends:
            for kind, detail in frontend.watchdog_check():
                self.emit(
                    now, "supervisor.frontend", kind,
                    frontend=frontend.name, **detail,
                )
        for watch in self.replica_watches:
            sets = getattr(watch["store"], "replica_sets", None)
            if not sets:
                continue
            idx = watch["next"] % len(sets)
            watch["next"] = idx + 1
            rs = sets[idx]
            try:
                summary = rs.anti_entropy(window_s=watch["window_s"], now=now)
            except Exception as exc:
                self.emit(
                    now, "supervisor.replica", "anti_entropy_failed",
                    shard=rs.shard_id, error=f"{exc}",
                )
                continue
            if summary.get("repaired_windows"):
                self.emit(
                    now, "supervisor.replica", "anti_entropy_repair",
                    shard=rs.shard_id, **summary,
                )

    # ------------------------------------------------------------------
    # Aggregates / metrics
    # ------------------------------------------------------------------
    def open_breakers(self) -> int:
        opens = sum(
            1 for s in self.loops.values() if s.breaker.state is not BreakerState.CLOSED
        )
        return opens + sum(
            1 for s in self.stages.values() if s.breaker.state is not BreakerState.CLOSED
        )

    def _sum(self, attr: str) -> float:
        return float(sum(getattr(s, attr) for s in self.loops.values()))

    @property
    def metrics_registry(self) -> MetricsRegistry:
        """Typed instruments on the ``oda.supervisor.*`` subtree."""
        if self._metrics is None:
            r = MetricsRegistry()
            r.gauge("oda.supervisor.loops", "supervised control loops",
                    fn=lambda: float(len(self.loops)))
            r.gauge("oda.supervisor.stages", "supervised streaming stages",
                    fn=lambda: float(len(self.stages)))
            r.gauge("oda.supervisor.replica_watches",
                    "stores under periodic anti-entropy repair",
                    fn=lambda: float(len(self.replica_watches)))
            r.gauge("oda.supervisor.open_breakers",
                    "breakers currently not closed",
                    fn=lambda: float(self.open_breakers()))
            r.counter("oda.supervisor.decide_failures",
                      "decide() calls that raised",
                      fn=lambda: self._sum("decide_failures"))
            r.counter("oda.supervisor.retries", "in-tick decide retries",
                      fn=lambda: self._sum("retries"))
            r.counter("oda.supervisor.stale_skips",
                      "actuations refused on stale telemetry",
                      fn=lambda: self._sum("stale_skips"))
            r.counter("oda.supervisor.missed_deadlines",
                      "watchdog heartbeat deadlines missed",
                      fn=lambda: self._sum("missed_deadlines"))
            r.counter("oda.supervisor.garbage_actions",
                      "non-finite decided values rejected",
                      fn=lambda: self._sum("garbage_actions"))
            r.counter("oda.supervisor.safe_state_entries",
                      "safe-state fallback episodes entered",
                      fn=lambda: self._sum("safe_state_entries"))
            r.counter("oda.supervisor.breaker_opens",
                      "loop+stage breaker open transitions",
                      fn=lambda: float(
                          sum(s.breaker.opens for s in self.loops.values())
                          + sum(s.breaker.opens for s in self.stages.values())
                      ))
            r.counter("oda.supervisor.breaker_closes",
                      "loop+stage breaker re-close transitions",
                      fn=lambda: float(
                          sum(s.breaker.closes for s in self.loops.values())
                          + sum(s.breaker.closes for s in self.stages.values())
                      ))
            r.counter("oda.supervisor.stage_failures",
                      "supervised stage process() failures",
                      fn=lambda: float(
                          sum(s.failures for s in self.stages.values())
                      ))
            r.counter("oda.supervisor.stage_skipped",
                      "stage batches short-circuited by an open breaker",
                      fn=lambda: float(
                          sum(s.skipped for s in self.stages.values())
                      ))
            r.counter("oda.supervisor.worker_crashes",
                      "shard worker processes found dead by the watchdog",
                      fn=lambda: float(
                          sum(r_.worker_crashes for r_ in self.runtimes)
                      ))
            r.counter("oda.supervisor.worker_restarts",
                      "shard worker processes restarted by the watchdog",
                      fn=lambda: float(
                          sum(r_.worker_restarts for r_ in self.runtimes)
                      ))
            r.gauge("oda.supervisor.frontends",
                    "query frontends under saturation watch",
                    fn=lambda: float(len(self.frontends)))
            r.gauge("oda.supervisor.frontends_shedding",
                    "watched frontends currently in shed-first mode",
                    fn=lambda: float(
                        sum(1 for f in self.frontends if f.shedding)
                    ))
            r.counter("oda.supervisor.frontend_breaker_opens",
                      "watched frontend breaker open transitions",
                      fn=lambda: float(
                          sum(f.breaker.opens for f in self.frontends)
                      ))
            self._metrics = r
        return self._metrics

    def health_metrics(self) -> Dict[str, float]:
        """Flat snapshot, registrable as a health-monitor probe."""
        return self.metrics_registry.snapshot()
