"""KPI tracking and A/B comparison of ODA configurations.

The paper's ODA definition centers on "improving KPIs"; benchmarks need a
uniform way to summarize a simulated run into the KPIs the paper names
(PUE, energy, slowdown, utilization) and compare two configurations — for
example reactive vs proactive DVFS (experiment D1) or siloed vs
orchestrated multi-pillar control (experiment D2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.analytics.descriptive.kpis import pue
from repro.analytics.descriptive.scheduling_metrics import scheduling_report
from repro.errors import InsufficientDataError
from repro.oda.datacenter import DataCenter
from repro.software.jobs import JobState

__all__ = ["RunKpis", "collect_kpis", "compare_kpis"]


@dataclass(frozen=True)
class RunKpis:
    """Headline KPIs of one simulated run over a window."""

    window_s: float
    pue: float
    it_energy_kwh: float
    site_energy_kwh: float
    completed_jobs: int
    mean_slowdown: float
    mean_wait_s: float
    utilization: float
    total_work_done_s: float

    @property
    def energy_per_job_kwh(self) -> float:
        if self.completed_jobs == 0:
            return float("inf")
        return self.site_energy_kwh / self.completed_jobs

    @property
    def energy_per_work_kwh(self) -> float:
        """Site energy per completed work-second — the efficiency KPI that
        stays comparable when two runs complete different job mixes."""
        if self.total_work_done_s <= 0:
            return float("inf")
        return self.site_energy_kwh / self.total_work_done_s

    def rows(self) -> List[tuple]:
        return [
            ("PUE", round(self.pue, 3)),
            ("IT energy [kWh]", round(self.it_energy_kwh, 2)),
            ("site energy [kWh]", round(self.site_energy_kwh, 2)),
            ("completed jobs", self.completed_jobs),
            ("mean slowdown", round(self.mean_slowdown, 2)),
            ("mean wait [s]", round(self.mean_wait_s, 1)),
            ("utilization", round(self.utilization, 3)),
            ("site energy / work [kWh/s]", round(self.energy_per_work_kwh, 6)),
        ]


def collect_kpis(
    dc: DataCenter, since: Optional[float] = None, until: Optional[float] = None
) -> RunKpis:
    """Summarize a finished (or paused) simulation into KPIs."""
    store = dc.store
    until = until if until is not None else dc.sim.now
    since = since if since is not None else max(until - 30 * 86_400.0, 0.0)

    from repro.errors import UnknownMetricError

    try:
        times, it = store.query("facility.power.it_power", since, until)
        _, site = store.query("facility.power.site_power", since, until)
    except UnknownMetricError as exc:
        raise InsufficientDataError(
            f"run produced no facility telemetry yet ({exc})"
        ) from exc
    if times.size < 2:
        raise InsufficientDataError("run too short for KPI collection")
    it_energy = float(np.trapezoid(it, times)) / 3.6e6
    site_energy = float(np.trapezoid(site, times)) / 3.6e6

    finished = [j for j in dc.scheduler.accounting if j.terminal]
    completed = [j for j in finished if j.state is JobState.COMPLETED]
    try:
        report = scheduling_report(finished, horizon_s=until - since)
        slowdown = report.mean_slowdown
        wait = report.mean_wait_s
    except InsufficientDataError:
        slowdown, wait = float("nan"), float("nan")

    _, util = store.query("scheduler.utilization", since, until)
    work_done = sum(j.work_done_s * j.nodes for j in completed)
    return RunKpis(
        window_s=until - since,
        pue=pue(store, since, until),
        it_energy_kwh=it_energy,
        site_energy_kwh=site_energy,
        completed_jobs=len(completed),
        mean_slowdown=slowdown,
        mean_wait_s=wait,
        utilization=float(util.mean()) if util.size else 0.0,
        total_work_done_s=work_done,
    )


def compare_kpis(baseline: RunKpis, candidate: RunKpis) -> Dict[str, float]:
    """Relative change of the candidate vs the baseline (negative = lower).

    Keys are KPI names; values are fractional changes, e.g. -0.12 means the
    candidate reduced the KPI by 12 %.
    """
    def rel(b: float, c: float) -> float:
        if not np.isfinite(b) or b == 0:
            return float("nan")
        return (c - b) / b

    return {
        "pue": rel(baseline.pue, candidate.pue),
        "site_energy": rel(baseline.site_energy_kwh, candidate.site_energy_kwh),
        "it_energy": rel(baseline.it_energy_kwh, candidate.it_energy_kwh),
        "energy_per_work": rel(baseline.energy_per_work_kwh, candidate.energy_per_work_kwh),
        "mean_slowdown": rel(baseline.mean_slowdown, candidate.mean_slowdown),
        "mean_wait": rel(baseline.mean_wait_s, candidate.mean_wait_s),
        "completed_jobs": rel(float(baseline.completed_jobs), float(candidate.completed_jobs)),
    }
