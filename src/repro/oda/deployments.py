"""Reference ODA deployments mirroring the systems of Figure 3.

Each builder wires a working :class:`~repro.oda.system.ODASystem` over a
provided :class:`~repro.oda.datacenter.DataCenter`, with capabilities
whose grid footprint matches the published system's — so the Fig. 3
regeneration bench runs *live* deployments, not static annotations.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.analytics.descriptive.dashboard import Dashboard
from repro.analytics.descriptive.kpis import compute_kpi_report
from repro.analytics.diagnostic.anomaly import PeerDeviationDetector
from repro.analytics.predictive.cooling import CoolingPerformanceModel
from repro.analytics.predictive.fourier import FourierForecaster, detect_ramps
from repro.analytics.prescriptive.cooling_opt import SetpointOptimizer
from repro.analytics.prescriptive.dvfs import PhasePredictor, ProactiveEnergyGovernor
from repro.core.pillars import Pillar
from repro.core.types import AnalyticsType
from repro.core.usecase import GridCell
from repro.oda.capability import ODACapability
from repro.oda.datacenter import DataCenter
from repro.oda.system import ODASystem

__all__ = [
    "build_eni_like",
    "build_llnl_like",
    "build_geopm_like",
    "build_clustercockpit_like",
]

_D = AnalyticsType.DESCRIPTIVE
_G = AnalyticsType.DIAGNOSTIC
_P = AnalyticsType.PREDICTIVE
_S = AnalyticsType.PRESCRIPTIVE
_BI = Pillar.BUILDING_INFRASTRUCTURE
_HW = Pillar.SYSTEM_HARDWARE
_AP = Pillar.APPLICATIONS


def build_eni_like(dc: DataCenter) -> ODASystem:
    """Bortot et al. [39] analogue: infrastructure diagnostics + setpoint
    optimization (diagnostic + prescriptive, building infrastructure)."""
    system = ODASystem(
        "Bortot et al. (ENI)", dc,
        description="stress-test-aided anomaly detection + cooling setpoint optimization",
    )

    def detect_anomalies(since: float, until: float):
        loop = dc.facility.plant.loops[0]
        metrics = [
            f"facility.{loop.name}.{component}.power"
            for component in ("chiller", "tower", "drycooler", "pump")
        ]
        grid, matrix = dc.store.align(metrics, since, until, step=300.0)
        finite = np.isfinite(matrix).all(axis=1)
        if finite.sum() < 3:
            return []
        detector = PeerDeviationDetector(threshold=3.0)
        return detector.detect(matrix[finite].T, metrics)

    system.add_capability(ODACapability(
        name="infrastructure anomaly detection",
        cell=GridCell(_G, _BI),
        run=detect_anomalies,
        description="peer-deviation detection over plant component power, aided by stress tests",
    ))

    def optimize_setpoint(since: float, until: float):
        model = CoolingPerformanceModel().fit_from_store(dc.store, since, until)
        optimizer = SetpointOptimizer(dc.facility, dc.facility.plant.loops[0], model)
        return optimizer.best_setpoint()

    system.add_capability(ODACapability(
        name="cooling setpoint optimization",
        cell=GridCell(_S, _BI),
        run=optimize_setpoint,
        description="model-driven optimal supply setpoint",
    ))
    return system


def build_llnl_like(dc: DataCenter) -> ODASystem:
    """LLNL power forecasting [72]: descriptive + predictive, infrastructure."""
    system = ODASystem(
        "LLNL power forecasting", dc,
        description="FFT forecasting of site-power ramps for utility notification",
    )

    def power_dashboard(since: float, until: float) -> str:
        dash = Dashboard(dc.store, since, until)
        dash.add_sparkline("site power [W]", "facility.power.site_power")
        return dash.render()

    system.add_capability(ODACapability(
        name="site power dashboard", cell=GridCell(_D, _BI), run=power_dashboard,
        description="site power visualization for operators",
    ))

    def forecast_ramps(since: float, until: float, horizon_s: float, threshold_w: float):
        step = 300.0
        times, watts = dc.store.resample(
            "facility.power.site_power", since, until, step
        )
        mask = np.isfinite(watts)
        forecaster = FourierForecaster(n_harmonics=12)
        forecaster.fit(times[mask], watts[mask])
        return forecaster.forecast_ramps(horizon_s, threshold_w=threshold_w)

    system.add_capability(ODACapability(
        name="power ramp forecasting", cell=GridCell(_P, _BI), run=forecast_ramps,
        description="Fourier extrapolation of site power; flags ramps beyond the utility threshold",
    ))
    return system


def build_geopm_like(dc: DataCenter) -> ODASystem:
    """GEOPM [11] analogue: phase prediction + DVFS (predictive +
    prescriptive, system hardware)."""
    system = ODASystem(
        "GEOPM-like runtime", dc,
        description="phase-predicting node power manager",
    )
    predictor = PhasePredictor()
    governor = ProactiveEnergyGovernor(predictor=predictor)
    runtime = dc.install_runtime(governor, period=120.0)

    system.add_capability(ODACapability(
        name="instruction mix prediction", cell=GridCell(_P, _HW),
        run=lambda: predictor,
        description="learned per-application phase transitions",
    ))
    system.add_capability(ODACapability(
        name="proactive frequency tuning", cell=GridCell(_S, _HW),
        run=lambda: runtime.changes,
        description="DVFS actuation ahead of predicted phase boundaries",
    ))
    return system


def build_clustercockpit_like(dc: DataCenter) -> ODASystem:
    """ClusterCockpit [5] analogue: job-level dashboards (descriptive,
    applications) — the paper's single-cell contrast system."""
    system = ODASystem(
        "ClusterCockpit-like", dc,
        description="per-job performance dashboards",
    )

    def job_dashboard(job_id: str) -> str:
        job = dc.scheduler.jobs[job_id]
        if job.start_time is None:
            return f"{job_id}: not started"
        until = job.end_time or dc.sim.now
        dash = Dashboard(dc.store, job.start_time, until)
        for node_name in (job.assigned_nodes or [])[:4]:
            metric = dc.system.node_metric(node_name, "cpu_util")
            dash.add_sparkline(f"{node_name} cpu", metric)
        return dash.render()

    system.add_capability(ODACapability(
        name="job-level dashboards", cell=GridCell(_D, _AP), run=job_dashboard,
        description="per-job utilization views",
    ))
    return system
