"""Streaming analytics pipelines over the message bus.

Production ODA runs much of its analytics *online*: stages subscribe to
telemetry topics, transform batches as they arrive, and republish derived
metrics that land in the store like any sensor (DCDB Wintermute's
operator plugins, ExaMon's consumers).  :class:`StreamingStage` is that
plugin shape; two stock stages cover the common cases.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from repro.obs import OBS as _OBS
from repro.obs.metrics import MetricsRegistry
from repro.telemetry.bus import MessageBus
from repro.telemetry.sample import SampleBatch

__all__ = ["StreamingStage", "DerivedMetricStage", "StreamingDetectorStage"]


class StreamingStage:
    """Base: subscribe to a topic pattern, transform, republish.

    Subclasses implement :meth:`process`, returning a mapping of derived
    metric names to values (or ``None`` to emit nothing for this batch).
    Derived batches are published on ``output_topic`` so downstream stages
    and the store pick them up transparently.
    """

    def __init__(self, bus: MessageBus, pattern: str, output_topic: str):
        self.bus = bus
        self.output_topic = output_topic
        self.processed = 0
        self.emitted = 0
        self.errors = 0
        self.last_error = ""
        self._metrics: Optional[MetricsRegistry] = None
        self._subscription = bus.subscribe(pattern, self._on_batch)

    def stop(self) -> None:
        self._subscription.cancel()

    def _on_batch(self, topic: str, batch: SampleBatch) -> None:
        if _OBS.enabled:
            with _OBS.tracer.span(
                "stage.process", sim_time=batch.time, stage=self.output_topic
            ):
                self._on_batch_impl(topic, batch)
            return
        self._on_batch_impl(topic, batch)

    def _on_batch_impl(self, topic: str, batch: SampleBatch) -> None:
        self.processed += 1
        try:
            derived = self.process(topic, batch)
        except Exception as exc:  # noqa: BLE001 — a buggy stage must not
            # poison the bus delivery loop or get itself quarantined; count
            # the failure and skip this batch.
            self.errors += 1
            self.last_error = repr(exc)
            return
        if derived:
            self.emitted += 1
            self.bus.publish(self.output_topic, SampleBatch.from_mapping(batch.time, derived))

    @property
    def metrics_registry(self) -> MetricsRegistry:
        """Typed instruments on the ``telemetry.stage.<topic>`` subtree."""
        if self._metrics is None:
            prefix = f"telemetry.stage.{self.output_topic}"
            r = MetricsRegistry()
            r.counter(f"{prefix}.processed", "batches seen by the stage",
                      fn=lambda: float(self.processed))
            r.counter(f"{prefix}.emitted", "derived batches republished",
                      fn=lambda: float(self.emitted))
            r.counter(f"{prefix}.errors", "process() calls that raised",
                      fn=lambda: float(self.errors))
            self._metrics = r
        return self._metrics

    def health_metrics(self) -> Dict[str, float]:
        """Self-metrics snapshot, registrable as a health-monitor probe."""
        return self.metrics_registry.snapshot()

    def process(self, topic: str, batch: SampleBatch) -> Optional[Dict[str, float]]:
        raise NotImplementedError


class DerivedMetricStage(StreamingStage):
    """Compute derived metrics from each batch with a plain function.

    ``compute(values: dict) -> dict`` receives the declared ``inputs`` as a
    mapping and returns derived name/value pairs; missing inputs skip the
    batch.  Only the declared inputs are materialized (via indexed batch
    lookups), so non-matching batches cost two dict probes, not a full
    batch-to-dict conversion.
    Example — streaming instantaneous PUE::

        DerivedMetricStage(
            bus, "facility", "derived.pue",
            inputs=("facility.power.site_power", "facility.power.it_power"),
            compute=lambda v: {"derived.pue": v["facility.power.site_power"]
                                              / max(v["facility.power.it_power"], 1.0)},
        )
    """

    def __init__(
        self,
        bus: MessageBus,
        pattern: str,
        output_topic: str,
        inputs: tuple,
        compute: Callable[[Dict[str, float]], Dict[str, float]],
    ):
        super().__init__(bus, pattern, output_topic)
        self.inputs = inputs
        self.compute = compute

    def process(self, topic: str, batch: SampleBatch) -> Optional[Dict[str, float]]:
        values: Dict[str, float] = {}
        for name in self.inputs:
            value = batch.get(name)
            if value is None:
                return None
            values[name] = value
        return self.compute(values)


class StreamingDetectorStage(StreamingStage):
    """Online EWMA anomaly scoring of selected metrics.

    Maintains per-metric EWMA mean/variance; publishes a ``<metric>.zscore``
    derived value per batch and counts threshold breaches — the streaming
    half of descriptive alerting and diagnostic detection.
    """

    def __init__(
        self,
        bus: MessageBus,
        pattern: str,
        output_topic: str,
        metrics: tuple,
        alpha: float = 0.1,
        threshold: float = 4.0,
    ):
        super().__init__(bus, pattern, output_topic)
        self.metrics = metrics
        self.alpha = alpha
        self.threshold = threshold
        self.breaches = 0
        self._state: Dict[str, tuple] = {}  # metric -> (ewma, ewvar)

    def process(self, topic: str, batch: SampleBatch) -> Optional[Dict[str, float]]:
        out: Dict[str, float] = {}
        for metric in self.metrics:
            value = batch.get(metric)
            if value is None:
                continue
            state = self._state.get(metric)
            if state is None:
                self._state[metric] = (value, 0.0)
                continue
            ewma, ewvar = state
            # Score against the previous state (control-chart order); a
            # deviation from a variance-free baseline is maximally surprising.
            std = np.sqrt(ewvar)
            if std > 0:
                z = abs(value - ewma) / std
            else:
                z = 0.0 if value == ewma else self.threshold * 10.0
            delta = value - ewma
            ewma += self.alpha * delta
            ewvar = (1 - self.alpha) * (ewvar + self.alpha * delta**2)
            self._state[metric] = (ewma, ewvar)
            out[f"{metric}.zscore"] = z
            if z > self.threshold:
                self.breaches += 1
        return out or None
