"""Compressed columnar cold tier: Gorilla-style chunks in pure NumPy.

Long-horizon ODA (the paper's month-scale LLNL MW trace use case, and the
"ODA in Practice" observation that production deployments live or die on
long-term storage cost) needs history that is cheap to hold and still
queryable.  This module implements the cold tier the retention sweep
demotes into instead of deleting:

* **Timestamps** — delta-of-delta coding.  Two exact modes, picked per
  chunk: ``int`` mode losslessly rescales the float64 timestamps by a
  power of two into int64 ticks (exact both ways — power-of-two scaling
  never rounds), then packs zigzagged delta-of-deltas at the chunk's
  worst-case bit width, so a regular scrape cadence costs ~0 bits per
  sample; ``raw`` mode (pathological floats) packs deltas of the
  order-preserving uint64 key of each float64, never worse than the raw
  64 bits.
* **Values** — XOR float packing ala Facebook Gorilla: consecutive bit
  patterns are XORed, a 1-bit-per-sample bitmap marks the zero XORs
  (repeated values cost one bit), and the non-zero XORs are packed at the
  chunk-wide significant window ``[leading-zeros, 64 - trailing-zeros)``.
  Quantized sensor channels (integer watts, half-degree temps) share
  exponents and trailing mantissa zeros, so the window is narrow.

Both codecs are **bit-exact for every float64** — NaN payloads, ±inf,
``-0.0``, subnormals — verified by the hypothesis property suite.  Chunks
are immutable once encoded; background compaction merges adjacent
undersized chunks (decode → re-encode) so a drip of tiny demotions
converges to full-size chunks.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import StoreError

__all__ = [
    "ArchiveConfig",
    "ColdChunk",
    "ArchiveTier",
    "encode_timestamps",
    "decode_timestamps",
    "encode_values",
    "decode_values",
]

_SIGN = np.uint64(1) << np.uint64(63)
_ONE = np.uint64(1)

#: Largest power-of-two scale tried when coercing timestamps to ticks.
_MAX_TICK_SHIFT = 40
#: Tick magnitudes must stay exactly representable in float64.
_MAX_TICKS = float(1 << 53)


# ---------------------------------------------------------------------------
# Bit-level helpers (vectorized; the per-chunk loops are over bit *width*,
# never over samples)
# ---------------------------------------------------------------------------
def _pack_width(vals: np.ndarray, width: int) -> np.ndarray:
    """Pack uint64 ``vals`` (< 2**width each) at ``width`` bits into bytes."""
    if width == 0 or vals.size == 0:
        return np.empty(0, dtype=np.uint8)
    shifts = np.arange(width - 1, -1, -1, dtype=np.uint64)
    bits = ((vals[:, None] >> shifts) & _ONE).astype(np.uint8)
    return np.packbits(bits.ravel())


def _unpack_width(packed: np.ndarray, n: int, width: int) -> np.ndarray:
    """Inverse of :func:`_pack_width`: recover ``n`` uint64 values."""
    out = np.zeros(n, dtype=np.uint64)
    if width == 0 or n == 0:
        return out
    bits = np.unpackbits(packed, count=n * width).reshape(n, width)
    bits = bits.astype(np.uint64)
    shifts = np.arange(width - 1, -1, -1, dtype=np.uint64)
    for j in range(width):
        out |= bits[:, j] << shifts[j]
    return out


def _width_of(vals: np.ndarray) -> int:
    """Bits needed for the widest value (0 when empty or all zero)."""
    if vals.size == 0:
        return 0
    return int(np.bitwise_or.reduce(vals)).bit_length()


def _zigzag(x: np.ndarray) -> np.ndarray:
    """Map int64 to uint64 with small magnitudes staying small."""
    return ((x << np.int64(1)) ^ (x >> np.int64(63))).view(np.uint64)


def _unzigzag(z: np.ndarray) -> np.ndarray:
    neg = (z & _ONE).astype(np.int64)
    return (z >> _ONE).view(np.int64) ^ np.negative(neg)


def _float_key(times: np.ndarray) -> np.ndarray:
    """Order-preserving uint64 key of float64 (monotone for non-NaN)."""
    bits = times.view(np.uint64)
    return np.where(bits & _SIGN == 0, bits | _SIGN, ~bits)


def _float_unkey(keys: np.ndarray) -> np.ndarray:
    bits = np.where(keys & _SIGN != 0, keys & ~_SIGN, ~keys)
    return bits.view(np.float64)


# ---------------------------------------------------------------------------
# Timestamp codec: delta-of-delta over int64 ticks (or uint64 float keys)
# ---------------------------------------------------------------------------
def _tick_shift(times: np.ndarray) -> Optional[int]:
    """Smallest power-of-two shift making every timestamp an exact int64
    tick (``None`` if no shift up to :data:`_MAX_TICK_SHIFT` works)."""
    if not np.all(np.isfinite(times)):
        return None
    if np.any((times == 0.0) & np.signbit(times)):
        # -0.0 == floor(-0.0) but int ticks cannot hold the sign bit.
        return None
    for shift in range(_MAX_TICK_SHIFT + 1):
        scaled = times * float(1 << shift)
        if np.any(np.abs(scaled) >= _MAX_TICKS):
            return None
        if np.all(scaled == np.floor(scaled)):
            return shift
    return None


def encode_timestamps(times: np.ndarray) -> Tuple[dict, np.ndarray]:
    """Encode non-decreasing float64 timestamps; returns (params, payload).

    The payload is a uint8 array; params is a small JSON-safe dict holding
    the mode, anchors and bit width needed to invert exactly.
    """
    times = np.ascontiguousarray(times, dtype=np.float64)
    n = times.size
    if n and np.any(np.diff(times) < 0):
        raise StoreError("cold chunk timestamps must be non-decreasing")
    shift = _tick_shift(times) if n else 0
    if shift is not None:
        seq = (times * float(1 << shift)).astype(np.int64)
        mode = "int"
    else:
        seq = _float_key(times).view(np.int64)
        mode = "key"
    if n < 2:
        first = int(seq[0]) if n else 0
        return (
            {"mode": mode, "shift": shift or 0, "n": n,
             "first": first, "d0": 0, "width": 0},
            np.empty(0, dtype=np.uint8),
        )
    deltas = seq[1:] - seq[:-1]  # int64; wraps are impossible for times
    dod = deltas[1:] - deltas[:-1]
    z = _zigzag(dod)
    width = _width_of(z)
    params = {
        "mode": mode,
        "shift": shift or 0,
        "n": n,
        "first": int(seq[0]),
        "d0": int(deltas[0]),
        "width": width,
    }
    return params, _pack_width(z, width)


def decode_timestamps(params: dict, payload: np.ndarray) -> np.ndarray:
    """Exact inverse of :func:`encode_timestamps`."""
    n = int(params["n"])
    if n == 0:
        return np.empty(0, dtype=np.float64)
    seq = np.empty(n, dtype=np.int64)
    seq[0] = params["first"]
    if n > 1:
        dod = _unzigzag(_unpack_width(payload, n - 2, int(params["width"])))
        deltas = np.empty(n - 1, dtype=np.int64)
        deltas[0] = params["d0"]
        if n > 2:
            deltas[1:] = params["d0"] + np.cumsum(dod)
        seq[1:] = seq[0] + np.cumsum(deltas)
    if params["mode"] == "int":
        return seq.astype(np.float64) / float(1 << int(params["shift"]))
    return _float_unkey(seq.view(np.uint64))


# ---------------------------------------------------------------------------
# Value codec: XOR packing with a zero-XOR bitmap
# ---------------------------------------------------------------------------
def encode_values(values: np.ndarray) -> Tuple[dict, np.ndarray, np.ndarray]:
    """Encode float64 values; returns (params, bitmap, payload)."""
    values = np.ascontiguousarray(values, dtype=np.float64)
    n = values.size
    if n == 0:
        return (
            {"n": 0, "first": 0, "nonzero": 0, "trail": 0, "width": 0},
            np.empty(0, dtype=np.uint8),
            np.empty(0, dtype=np.uint8),
        )
    bits = values.view(np.uint64)
    xors = bits[1:] ^ bits[:-1]
    nonzero = xors != 0
    xs = xors[nonzero]
    if xs.size:
        merged = int(np.bitwise_or.reduce(xs))
        trail = (merged & -merged).bit_length() - 1
        width = merged.bit_length() - trail
        payload = _pack_width(xs >> np.uint64(trail), width)
    else:
        trail = 0
        width = 0
        payload = np.empty(0, dtype=np.uint8)
    params = {
        "n": n,
        "first": int(bits[0]),
        "nonzero": int(xs.size),
        "trail": trail,
        "width": width,
    }
    return params, np.packbits(nonzero), payload


def decode_values(
    params: dict, bitmap: np.ndarray, payload: np.ndarray
) -> np.ndarray:
    """Exact inverse of :func:`encode_values`."""
    n = int(params["n"])
    if n == 0:
        return np.empty(0, dtype=np.float64)
    bits = np.empty(n, dtype=np.uint64)
    bits[0] = np.uint64(params["first"])
    if n > 1:
        nonzero = np.unpackbits(bitmap, count=n - 1).astype(bool)
        xors = np.zeros(n - 1, dtype=np.uint64)
        sig = _unpack_width(payload, int(params["nonzero"]), int(params["width"]))
        xors[nonzero] = sig << np.uint64(params["trail"])
        bits[1:] = xors
        np.bitwise_xor.accumulate(bits, out=bits)
    return bits.view(np.float64)


# ---------------------------------------------------------------------------
# Chunks
# ---------------------------------------------------------------------------
class ColdChunk:
    """One immutable compressed (times, values) block of a single series."""

    __slots__ = ("count", "t_first", "t_last", "t_params", "v_params",
                 "t_payload", "v_bitmap", "v_payload")

    def __init__(self, count, t_first, t_last, t_params, v_params,
                 t_payload, v_bitmap, v_payload):
        self.count = count
        self.t_first = t_first
        self.t_last = t_last
        self.t_params = t_params
        self.v_params = v_params
        self.t_payload = t_payload
        self.v_bitmap = v_bitmap
        self.v_payload = v_payload

    @classmethod
    def encode(cls, times: np.ndarray, values: np.ndarray) -> "ColdChunk":
        times = np.asarray(times, dtype=np.float64)
        values = np.asarray(values, dtype=np.float64)
        if times.size != values.size or times.ndim != 1:
            raise StoreError("cold chunk arrays must be 1-D and equal length")
        if times.size == 0:
            raise StoreError("cannot encode an empty cold chunk")
        t_params, t_payload = encode_timestamps(times)
        v_params, v_bitmap, v_payload = encode_values(values)
        return cls(
            count=int(times.size),
            t_first=float(times[0]),
            t_last=float(times[-1]),
            t_params=t_params,
            v_params=v_params,
            t_payload=t_payload,
            v_bitmap=v_bitmap,
            v_payload=v_payload,
        )

    def decode(self) -> Tuple[np.ndarray, np.ndarray]:
        """Recover the exact (times, values) float64 arrays."""
        return (
            decode_timestamps(self.t_params, self.t_payload),
            decode_values(self.v_params, self.v_bitmap, self.v_payload),
        )

    @property
    def nbytes(self) -> int:
        """Encoded payload size (bit-packed arrays; headers excluded)."""
        return (self.t_payload.nbytes + self.v_bitmap.nbytes
                + self.v_payload.nbytes)

    @property
    def raw_nbytes(self) -> int:
        """What the same samples cost in the hot columnar arrays."""
        return self.count * 16

    # -- persistence glue (format v3) ----------------------------------
    def meta(self) -> dict:
        """JSON-safe header describing the chunk (arrays live beside it)."""
        return {
            "count": self.count,
            "t_first": self.t_first,
            "t_last": self.t_last,
            "t_params": self.t_params,
            "v_params": self.v_params,
        }

    def arrays(self) -> Dict[str, np.ndarray]:
        return {
            "tp": self.t_payload,
            "vb": self.v_bitmap,
            "vp": self.v_payload,
        }

    @classmethod
    def from_meta(
        cls, meta: dict, arrays: Dict[str, np.ndarray]
    ) -> "ColdChunk":
        return cls(
            count=int(meta["count"]),
            t_first=float(meta["t_first"]),
            t_last=float(meta["t_last"]),
            t_params=dict(meta["t_params"]),
            v_params=dict(meta["v_params"]),
            t_payload=np.asarray(arrays["tp"], dtype=np.uint8),
            v_bitmap=np.asarray(arrays["vb"], dtype=np.uint8),
            v_payload=np.asarray(arrays["vp"], dtype=np.uint8),
        )


class ArchiveConfig:
    """Cold-tier tuning (picklable; ships to shard worker processes).

    Parameters
    ----------
    chunk_samples:
        Target samples per encoded chunk.  Demotions larger than this are
        split; compaction merges adjacent chunks back up toward it.
    compaction_trigger:
        Merge a series' chunk list opportunistically once it holds this
        many chunks below half the target size.
    """

    def __init__(self, chunk_samples: int = 8192, compaction_trigger: int = 8):
        if chunk_samples < 2:
            raise StoreError(
                f"chunk_samples must be >= 2, got {chunk_samples}"
            )
        if compaction_trigger < 2:
            raise StoreError(
                f"compaction_trigger must be >= 2, got {compaction_trigger}"
            )
        self.chunk_samples = chunk_samples
        self.compaction_trigger = compaction_trigger

    def to_dict(self) -> dict:
        return {
            "chunk_samples": self.chunk_samples,
            "compaction_trigger": self.compaction_trigger,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "ArchiveConfig":
        return cls(
            chunk_samples=int(d.get("chunk_samples", 8192)),
            compaction_trigger=int(d.get("compaction_trigger", 8)),
        )


class ArchiveTier:
    """Per-store cold tier: immutable compressed chunks per series.

    The retention sweep **demotes** expiring hot samples here instead of
    deleting them; reads that reach below the hot window decode the
    overlapping chunks straight into the shared resample kernels.  All
    counters surface as ``telemetry.archive.*`` metrics.
    """

    def __init__(self, config: Optional[ArchiveConfig] = None):
        self.config = config or ArchiveConfig()
        self._chunks: Dict[str, List[ColdChunk]] = {}
        self.demotions = 0
        self.demoted_samples = 0
        self.cold_scans = 0
        self.scanned_samples = 0
        self.compactions = 0
        self.missing_chunks = 0

    # -- introspection -------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._chunks

    def names(self) -> List[str]:
        return sorted(self._chunks)

    def chunks(self, name: str) -> List[ColdChunk]:
        return list(self._chunks.get(name, ()))

    def chunk_count(self, name: Optional[str] = None) -> int:
        if name is not None:
            return len(self._chunks.get(name, ()))
        return sum(len(c) for c in self._chunks.values())

    def samples(self, name: Optional[str] = None) -> int:
        if name is not None:
            return sum(c.count for c in self._chunks.get(name, ()))
        return sum(
            c.count for chunks in self._chunks.values() for c in chunks
        )

    def first_time(self, name: str) -> float:
        chunks = self._chunks.get(name)
        return chunks[0].t_first if chunks else float("inf")

    def last_time(self, name: str) -> float:
        chunks = self._chunks.get(name)
        return chunks[-1].t_last if chunks else float("-inf")

    @property
    def encoded_bytes(self) -> int:
        return sum(
            c.nbytes for chunks in self._chunks.values() for c in chunks
        )

    @property
    def raw_bytes(self) -> int:
        return sum(
            c.raw_nbytes for chunks in self._chunks.values() for c in chunks
        )

    @property
    def compression_ratio(self) -> float:
        encoded = self.encoded_bytes
        return self.raw_bytes / encoded if encoded else float("nan")

    # -- writes --------------------------------------------------------
    def demote(self, name: str, times: np.ndarray, values: np.ndarray) -> int:
        """Append expiring hot samples as compressed chunks (in order).

        The caller (the retention sweep) guarantees the samples are older
        than everything still hot and newer than everything already cold,
        so the chunk list stays time-sorted by construction.
        """
        times = np.asarray(times, dtype=np.float64)
        values = np.asarray(values, dtype=np.float64)
        if times.size == 0:
            return 0
        chunks = self._chunks.setdefault(name, [])
        if chunks and times[0] < chunks[-1].t_last:
            raise StoreError(
                f"series {name}: demotion at t={times[0]} precedes cold "
                f"tail t={chunks[-1].t_last}"
            )
        size = self.config.chunk_samples
        for lo in range(0, times.size, size):
            chunks.append(
                ColdChunk.encode(times[lo:lo + size], values[lo:lo + size])
            )
        self.demotions += 1
        self.demoted_samples += int(times.size)
        self._maybe_compact(name)
        return int(times.size)

    def adopt(self, name: str, chunks: List[ColdChunk]) -> None:
        """Install already-encoded chunks (persistence load, replica
        resync) without a decode/encode round trip."""
        if not chunks:
            return
        existing = self._chunks.setdefault(name, [])
        if existing and chunks[0].t_first < existing[-1].t_last:
            raise StoreError(
                f"series {name}: adopted chunks overlap the cold tail"
            )
        existing.extend(chunks)

    # -- reads ---------------------------------------------------------
    def scan(
        self,
        name: str,
        since: float = float("-inf"),
        until: float = float("inf"),
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Decode the chunks overlapping ``[since, until]`` and slice.

        Returns freshly-decoded float64 arrays (never views) feeding
        directly into the shared resample kernels.
        """
        chunks = self._chunks.get(name)
        if not chunks:
            return np.empty(0), np.empty(0)
        hits = [
            c for c in chunks if c.t_last >= since and c.t_first <= until
        ]
        if not hits:
            return np.empty(0), np.empty(0)
        self.cold_scans += 1
        parts_t: List[np.ndarray] = []
        parts_v: List[np.ndarray] = []
        for chunk in hits:
            t, v = chunk.decode()
            self.scanned_samples += chunk.count
            if chunk.t_first < since or chunk.t_last > until:
                lo = int(np.searchsorted(t, since, side="left"))
                hi = int(np.searchsorted(t, until, side="right"))
                t, v = t[lo:hi], v[lo:hi]
            parts_t.append(t)
            parts_v.append(v)
        if len(parts_t) == 1:
            return parts_t[0], parts_v[0]
        return np.concatenate(parts_t), np.concatenate(parts_v)

    def value_at(self, name: str, time: float) -> Optional[float]:
        """LOCF lookup inside the cold tier (``None`` when out of range)."""
        chunks = self._chunks.get(name)
        if not chunks or time < chunks[0].t_first:
            return None
        for chunk in reversed(chunks):
            if chunk.t_first <= time:
                t, v = chunk.decode()
                idx = int(np.searchsorted(t, time, side="right")) - 1
                return float(v[idx])
        return None

    # -- compaction ----------------------------------------------------
    def _maybe_compact(self, name: str) -> None:
        chunks = self._chunks.get(name, [])
        small = sum(
            1 for c in chunks if c.count < self.config.chunk_samples // 2
        )
        if small >= self.config.compaction_trigger:
            self.compact(name)

    def compact(self, name: Optional[str] = None) -> int:
        """Merge runs of undersized adjacent chunks; returns merges done.

        Chunks are immutable, so compaction decodes a run and re-encodes
        it as full-size chunks.  Called opportunistically by
        :meth:`demote` and explicitly by the store's background sweep.
        """
        names = [name] if name is not None else list(self._chunks)
        merges = 0
        target = self.config.chunk_samples
        for series in names:
            chunks = self._chunks.get(series)
            if not chunks or len(chunks) < 2:
                continue
            out: List[ColdChunk] = []
            run: List[ColdChunk] = []
            run_count = 0

            def flush_run():
                nonlocal merges, run_count
                if len(run) > 1:
                    t = np.concatenate([c.decode()[0] for c in run])
                    v = np.concatenate([c.decode()[1] for c in run])
                    for lo in range(0, t.size, target):
                        out.append(
                            ColdChunk.encode(t[lo:lo + target],
                                             v[lo:lo + target])
                        )
                    merges += 1
                else:
                    out.extend(run)
                run.clear()
                run_count = 0

            for chunk in chunks:
                if chunk.count >= target // 2:
                    flush_run()
                    out.append(chunk)
                    continue
                if run_count + chunk.count > target:
                    flush_run()
                run.append(chunk)
                run_count += chunk.count
            flush_run()
            self._chunks[series] = out
        self.compactions += merges
        return merges

    # -- health --------------------------------------------------------
    def health_counters(self) -> Dict[str, float]:
        encoded = self.encoded_bytes
        return {
            "telemetry.archive.chunks": float(self.chunk_count()),
            "telemetry.archive.samples": float(self.samples()),
            "telemetry.archive.encoded_bytes": float(encoded),
            "telemetry.archive.raw_bytes": float(self.raw_bytes),
            "telemetry.archive.demotions": float(self.demotions),
            "telemetry.archive.demoted_samples": float(self.demoted_samples),
            "telemetry.archive.cold_scans": float(self.cold_scans),
            "telemetry.archive.scanned_samples": float(self.scanned_samples),
            "telemetry.archive.compactions": float(self.compactions),
            "telemetry.archive.missing_chunks": float(self.missing_chunks),
        }
