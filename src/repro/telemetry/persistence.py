"""Store persistence: save/load the time-series archive to ``.npz``.

Production monitoring databases persist to disk; the substrate equivalent
lets long simulations be archived once and analyzed repeatedly (examples,
notebooks, regression baselines) without re-running the simulator.

Single-store format: one compressed ``.npz`` with two arrays per series
(``<name>::t``, ``<name>::v``) plus a small JSON header under ``__meta__``.
Format v2 also records the store configuration (``retention``,
``retention_slack``, ``flush_threshold``) so a reloaded store behaves like
the one that was saved; v1 archives (no config) still load with defaults.

Format v3 adds the tiered-storage state introduced with rollup cascades
and the compressed cold tier:

* the ``rollups`` / ``archive`` configuration dicts round-trip through the
  header, so a reloaded store keeps demoting and pre-aggregating exactly
  like the saved one,
* cold chunks are persisted **still encoded** (delta-of-delta timestamps,
  XOR-packed values) under ``__cold__::<name>::<i>::{tp,vb,vp}`` with
  their codec parameters in the header — saving and loading never pays a
  decode/re-encode round trip, and the on-disk size keeps the cold tier's
  compression ratio,
* materialized rollup tiers are persisted per series under
  ``__rollup__::<name>::<ti>::{idx,sum,min,max,cnt}`` with cursors in the
  header, so long-horizon rollup memory survives a reload even for ranges
  whose raw samples were only ever held by the saved process.

Format v4 makes archives *crash- and corruption-evident*:

* every payload array carries a CRC in the header (``checksums``) and the
  header itself is covered by a ``__metacrc__`` trailer, so a flipped bit
  anywhere is detected rather than silently served,
* every write goes through write-temp-then-rename (:mod:`repro.ioutil`),
  so a crash mid-save leaves the previous archive intact,
* sharded saves stamp the manifest and every shard file with one
  ``save_id``; a shard file from a different save generation (crash
  between shard writes and the manifest commit) is refused loudly instead
  of being mixed into the wrong topology,
* a store with a write-ahead journal gets its journal truncated
  (``mark_durable``) after a successful save — the archive now owns that
  data.

Damage handling is tiered like the rest of the pipeline: a v4 archive
with a damaged array **degrades** — the broken series/chunk/tier is
skipped with a warning and counted in the reloaded store's
``telemetry.durability.corrupt_artifacts`` (cold chunks also count in
``telemetry.archive.missing_chunks``) — while structural damage (an
unreadable file, a damaged header) and any damage in pre-checksum v1–v3
archives raises a typed :class:`~repro.errors.PersistenceError` carrying
the path and, when known, the byte offset of the damaged zip member.

Sharded format: a :class:`~repro.telemetry.distributed.ShardedStore`
deployment persists as one manifest ``.npz`` (header only: topology +
shard file names + config) plus one ordinary store archive per shard next
to it — ``run.npz`` → ``run.shard0.npz`` … ``run.shard<N-1>.npz``.  Each
shard archive is itself a valid single-store archive, so individual
shards can be inspected with :func:`load_store` directly.  On load,
series are routed through the reconstructed store's partitioner
(placement is re-derived from names, not trusted from the files) and
replicas are rebuilt by the normal write fan-out; cold chunks and rollup
state are installed on every member of the owning replica set.  A
damaged or missing shard file degrades that member's data only — the
remaining shards still load.

Parallel deployments (worker-process members) are saved through the
member proxies, which merge cold and hot samples into one raw stream per
series; the configuration still round-trips, so a reload re-demotes old
samples into fresh cold chunks as retention advances.  (Worker-side
checkpoints operate on the real member stores and keep full chunk/rollup
fidelity.)
"""

from __future__ import annotations

import json
import logging
import os
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.errors import PersistenceError, StoreError
from repro.ioutil import CRC_ALGO, atomic_open, crc32
from repro.telemetry.archive import ColdChunk
from repro.telemetry.store import TimeSeriesStore

__all__ = ["save_store", "load_store"]

log = logging.getLogger(__name__)

_META_KEY = "__meta__"
_META_CRC_KEY = "__metacrc__"
_FORMAT_VERSION = 4
_READABLE_VERSIONS = (1, 2, 3, 4)

#: Array keys making up one persisted cold chunk / rollup tier.
_COLD_FIELDS = ("tp", "vb", "vp")
_ROLLUP_FIELDS = ("idx", "sum", "min", "max", "cnt")


def _encode_meta(meta: dict) -> np.ndarray:
    return np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8)


def _array_crc(arr: np.ndarray) -> int:
    a = np.ascontiguousarray(arr)
    crc = crc32(f"{a.dtype.str}:{a.shape}".encode("ascii"))
    return crc32(a.tobytes(), crc)


def _member_offset(archive, key: str) -> Optional[int]:
    """Byte offset of a zip member inside the archive file, when known."""
    try:
        return int(archive.zip.getinfo(key + ".npy").header_offset)
    except Exception:
        return None


def _open_archive(path: str):
    try:
        return np.load(path)
    except FileNotFoundError:
        raise
    except Exception as exc:
        raise PersistenceError(
            f"{path}: unreadable archive: {exc}", path=path
        ) from exc


def _read_meta(archive, path: str) -> dict:
    if _META_KEY not in archive:
        raise PersistenceError(
            f"{path}: not a repro store archive (missing header)", path=path
        )
    try:
        raw = bytes(archive[_META_KEY])
        meta = json.loads(raw.decode("utf-8"))
    except Exception as exc:
        raise PersistenceError(
            f"{path}: damaged archive header: {exc}",
            path=path,
            offset=_member_offset(archive, _META_KEY),
        ) from exc
    if meta.get("version") not in _READABLE_VERSIONS:
        raise StoreError(
            f"{path}: unsupported archive version {meta.get('version')}"
        )
    if meta.get("version", 1) >= 4:
        try:
            stored = int(archive[_META_CRC_KEY][0])
        except Exception as exc:
            raise PersistenceError(
                f"{path}: archive header checksum is missing or unreadable",
                path=path,
                offset=_member_offset(archive, _META_CRC_KEY),
            ) from exc
        if crc32(raw) != stored:
            raise PersistenceError(
                f"{path}: archive header failed its checksum",
                path=path,
                offset=_member_offset(archive, _META_KEY),
            )
    return meta


def _tier_config_dict(store, attr: str) -> Optional[dict]:
    cfg = getattr(store, attr, None)
    return None if cfg is None else cfg.to_dict()


def _config_meta(store) -> dict:
    return {
        "retention": store.retention,
        "retention_slack": store.retention_slack,
        "flush_threshold": store.flush_threshold,
        "rollups": _tier_config_dict(store, "rollup_config"),
        "archive": _tier_config_dict(store, "archive_config"),
    }


def _npz_path(path: str) -> str:
    # np.savez_compressed(str_path) appends ".npz"; the atomic writer hands
    # it a file object, so normalize explicitly to keep the historical
    # destination names.
    path = os.fspath(path)
    return path if path.endswith(".npz") else path + ".npz"


def _shard_paths(path: str, shards: int) -> List[str]:
    base, ext = os.path.splitext(path)
    if ext != ".npz":
        base, ext = path, ".npz"
    return [f"{base}.shard{i}{ext}" for i in range(shards)]


def _write_archive(path: str, payload: dict, meta: dict) -> None:
    """Checksum and atomically write one ``.npz`` artifact."""
    meta["checksums"] = {k: _array_crc(v) for k, v in payload.items()}
    meta["crc_algo"] = CRC_ALGO
    blob = _encode_meta(meta)
    payload[_META_KEY] = blob
    payload[_META_CRC_KEY] = np.array([crc32(blob.tobytes())], dtype=np.uint64)
    with atomic_open(_npz_path(path), "wb") as fh:
        np.savez_compressed(fh, **payload)


def _save_single(
    store, path: str, names: Optional[Sequence[str]],
    save_id: Optional[str] = None,
) -> int:
    # Compact staged samples up front so the archive never misses in-flight
    # data (series() also flushes per read, but an explicit full flush keeps
    # the saved samples_ingested/flush counters consistent too).
    store.flush()
    journal = getattr(store, "journal", None)
    journal_seq = journal.flush() if journal is not None else 0
    tier = getattr(store, "archive", None)
    engine = getattr(store, "rollups", None)
    # A worker-process proxy exposes the tier *configuration* but not the
    # tier objects; its query() merges cold + hot, so the saved stream is
    # complete and a reload re-demotes as retention advances.
    merged_raw = tier is None and _tier_config_dict(store, "archive_config")
    if names is not None:
        selected = list(names)
    else:
        selected = store.names()
        if tier is not None:
            known = set(selected)
            selected = sorted(
                known.union(n for n in tier.names() if n not in known)
            )
    payload = {}
    cold_meta = {}
    rollup_meta = {}
    for name in selected:
        if merged_raw:
            times, values = store.query(name)
            payload[f"{name}::t"] = times
            payload[f"{name}::v"] = values
            continue
        if name in store:
            series = store.series(name)
            payload[f"{name}::t"] = series.times.copy()
            payload[f"{name}::v"] = series.values.copy()
        else:
            # Cold-only series (all samples demoted, hot buffer never
            # recreated after a load/resync): hot arrays are empty.
            payload[f"{name}::t"] = np.empty(0)
            payload[f"{name}::v"] = np.empty(0)
        if tier is not None and name in tier:
            metas = []
            for i, chunk in enumerate(tier.chunks(name)):
                metas.append(chunk.meta())
                for field, arr in chunk.arrays().items():
                    payload[f"__cold__::{name}::{i}::{field}"] = arr
            cold_meta[name] = metas
        if engine is not None:
            tiers = []
            for ti, (step, cursor, arrays) in enumerate(
                engine.tier_state(name)
            ):
                tiers.append({"step": step, "cursor": int(cursor)})
                for field, arr in arrays.items():
                    payload[f"__rollup__::{name}::{ti}::{field}"] = arr
            if tiers:
                rollup_meta[name] = tiers
    meta = {
        "version": _FORMAT_VERSION,
        "kind": "store",
        "series": selected,
        "samples": int(store.samples_ingested),
        **_config_meta(store),
    }
    if save_id is not None:
        meta["save_id"] = save_id
    if cold_meta:
        meta["cold"] = cold_meta
    if rollup_meta:
        meta["rollup_state"] = rollup_meta
    _write_archive(path, payload, meta)
    if journal is not None:
        # The archive now owns everything journaled up to the snapshot;
        # covered journal segments can be pruned.
        store.journal_mark_durable(journal_seq)
    return len(selected)


def _save_sharded(store, path: str, names: Optional[Sequence[str]]) -> int:
    store.flush()
    save_id = os.urandom(8).hex()
    shard_paths = _shard_paths(path, store.shards)
    total = 0
    # Shard archives first, the manifest last: the manifest is the commit
    # record, and its save_id refuses shard files from another generation.
    for rs, shard_path in zip(store.replica_sets, shard_paths):
        serving = rs.read_store()
        shard_names = (
            [n for n in names if n in serving] if names is not None else None
        )
        total += _save_single(serving, shard_path, shard_names, save_id=save_id)
    meta = {
        "version": _FORMAT_VERSION,
        "kind": "sharded",
        "shards": store.shards,
        "replication": store.replication,
        "partitioner": getattr(store.partitioner, "name", "custom"),
        "shard_files": [os.path.basename(p) for p in shard_paths],
        "series": total,
        "save_id": save_id,
        **_config_meta(store),
    }
    _write_archive(path, {}, meta)
    return total


def save_store(
    store, path: str, names: Optional[Sequence[str]] = None
) -> int:
    """Write the store (or a subset of series) to ``path``.

    Accepts a :class:`TimeSeriesStore` or a
    :class:`~repro.telemetry.distributed.ShardedStore` (saved as a manifest
    plus one archive per shard).  Staged samples are flushed first, so an
    archive always contains every ingested sample.  Cold chunks are saved
    still-encoded and rollup tiers are saved materialized, so tiered
    history survives the round trip.  Every file is checksummed and
    written atomically (temp + rename), so a crash mid-save leaves the
    previous archive intact.  Returns the number of series written.
    """
    from repro.telemetry.distributed.shard import ShardedStore

    if isinstance(store, ShardedStore):
        return _save_sharded(store, path, names)
    return _save_single(store, path, names)


def _store_kwargs(meta: dict) -> dict:
    # v1 archives carry only retention; config knobs default like the
    # TimeSeriesStore constructor.  v3 adds the tier configs (absent keys
    # — older archives — mean the tiers stay disabled).
    return {
        "retention": meta.get("retention"),
        "retention_slack": meta.get("retention_slack", 0.25),
        "flush_threshold": meta.get("flush_threshold", 256),
        "rollups": meta.get("rollups"),
        "archive": meta.get("archive"),
    }


def _member_stores(store, name: str):
    """Every member store that must hold ``name`` after the load.

    A plain store is its own single member; a sharded store fans cold
    chunks and rollup state out to every replica of the owning shard (hot
    samples take the ordinary ``append_many`` fan-out).
    """
    replica_sets = getattr(store, "replica_sets", None)
    if replica_sets is None:
        return (store,)
    return tuple(replica_sets[store.shard_of(name)].members)


class _ArchiveReader:
    """Checksum-verifying array access over one open ``.npz``.

    v4 damage (CRC mismatch, undecompressable member) returns ``None`` and
    is counted in :attr:`damaged`; the same damage in a pre-checksum v1–v3
    archive raises :class:`PersistenceError` (there is no checksum to tell
    benign from corrupt, so the only honest move is to fail loudly).
    """

    def __init__(self, archive, meta: dict, path: str):
        self.archive = archive
        self.meta = meta
        self.path = path
        self.checksums = meta.get("checksums") or {}
        self.version = int(meta.get("version", 1))
        self.damaged: List[str] = []

    def __contains__(self, key: str) -> bool:
        return key in self.archive

    def get(self, key: str) -> Optional[np.ndarray]:
        try:
            arr = self.archive[key]
        except KeyError:
            raise
        except Exception as exc:
            if self.version >= 4:
                self._degrade(key, f"undecodable ({exc})")
                return None
            raise PersistenceError(
                f"{self.path}: damaged array {key!r}: {exc}",
                path=self.path,
                offset=_member_offset(self.archive, key),
            ) from exc
        expected = self.checksums.get(key)
        if expected is not None and _array_crc(arr) != int(expected):
            self._degrade(key, "checksum mismatch")
            return None
        return arr

    def _degrade(self, key: str, why: str) -> None:
        self.damaged.append(key)
        log.warning(
            "%s: array %r is corrupt (%s); loading degraded",
            self.path, key, why,
        )


def _load_cold_chunks(reader: _ArchiveReader, name: str, metas):
    """Decode-free chunk reconstruction; damaged arrays degrade, not fail."""
    chunks, missing = [], 0
    for i, chunk_meta in enumerate(metas):
        keys = {f: f"__cold__::{name}::{i}::{f}" for f in _COLD_FIELDS}
        if any(key not in reader for key in keys.values()):
            missing += 1
            log.warning(
                "%s: cold chunk %d of series %r is missing from the "
                "archive; loading degraded (%d samples lost)",
                reader.path, i, name, int(chunk_meta.get("count", 0)),
            )
            continue
        arrays = {f: reader.get(key) for f, key in keys.items()}
        if any(a is None for a in arrays.values()):
            missing += 1
            continue
        chunks.append(ColdChunk.from_meta(chunk_meta, arrays))
    return chunks, missing


def _load_series_into(store, reader: _ArchiveReader, meta: dict) -> None:
    cold_meta = meta.get("cold") or {}
    rollup_meta = meta.get("rollup_state") or {}
    for name in meta["series"]:
        members = _member_stores(store, name)
        if name in cold_meta:
            chunks, missing = _load_cold_chunks(reader, name, cold_meta[name])
            for member in members:
                tier = getattr(member, "archive", None)
                if tier is None:
                    continue
                tier.missing_chunks += missing
                if chunks:
                    tier.adopt(name, chunks)
        if name in rollup_meta:
            arrays_per_tier = [
                {
                    f: reader.get(f"__rollup__::{name}::{ti}::{f}")
                    for f in _ROLLUP_FIELDS
                }
                for ti in range(len(rollup_meta[name]))
            ]
            if all(
                a is not None for tier_arrays in arrays_per_tier
                for a in tier_arrays.values()
            ):
                state = [
                    (float(entry["step"]), int(entry["cursor"]), tier_arrays)
                    for entry, tier_arrays in zip(
                        rollup_meta[name], arrays_per_tier
                    )
                ]
                for member in members:
                    engine = getattr(member, "rollups", None)
                    if engine is not None:
                        engine.restore(name, state)
            else:
                log.warning(
                    "%s: rollup state of series %r is corrupt; loading "
                    "degraded (tiers rebuild from raw)", reader.path, name,
                )
        # Hot tail last: append continues rollup maintenance from the
        # restored cursors over the adopted cold + appended hot range,
        # which reproduces the saved tiers bit-for-bit.
        times = reader.get(f"{name}::t")
        values = reader.get(f"{name}::v")
        if times is None or values is None:
            log.warning(
                "%s: hot samples of series %r are corrupt; series skipped",
                reader.path, name,
            )
            continue
        store.append_many(name, times, values)


def _count_damage(store, pieces: int) -> None:
    if pieces and hasattr(store, "corrupt_artifacts"):
        store.corrupt_artifacts += pieces


def _load_sharded(path: str, meta: dict):
    from repro.telemetry.distributed.shard import ShardedStore

    store = ShardedStore(
        shards=int(meta["shards"]),
        replication=int(meta.get("replication", 0)),
        **_store_kwargs(meta),
    )
    save_id = meta.get("save_id")
    directory = os.path.dirname(os.path.abspath(path))
    for shard_file in meta["shard_files"]:
        shard_path = os.path.join(directory, shard_file)
        # A damaged shard archive degrades that shard only, exactly like a
        # missing cold chunk: warn, count, keep loading the healthy shards.
        try:
            archive = _open_archive(shard_path)
        except (PersistenceError, FileNotFoundError) as exc:
            log.warning(
                "%s: shard archive is unreadable (%s); loading degraded",
                shard_path, exc,
            )
            _count_damage(store, 1)
            continue
        with archive:
            try:
                shard_meta = _read_meta(archive, shard_path)
            except (PersistenceError, StoreError) as exc:
                log.warning(
                    "%s: shard archive is damaged (%s); loading degraded",
                    shard_path, exc,
                )
                _count_damage(store, 1)
                continue
            if save_id is not None and shard_meta.get("save_id") != save_id:
                log.warning(
                    "%s: shard archive belongs to save generation %r, the "
                    "manifest to %r (crash between shard writes and the "
                    "manifest commit); shard skipped",
                    shard_path, shard_meta.get("save_id"), save_id,
                )
                _count_damage(store, 1)
                continue
            reader = _ArchiveReader(archive, shard_meta, shard_path)
            # Routed through the partitioner (append_many / per-name member
            # resolution), so placement is consistent even if the shard
            # files were produced under a different partitioner or shard
            # count.
            _load_series_into(store, reader, shard_meta)
            _count_damage(store, len(reader.damaged))
    return store


def load_store(path: str) -> Union[TimeSeriesStore, "object"]:
    """Load a store previously written by :func:`save_store`.

    Returns a :class:`TimeSeriesStore`, or a
    :class:`~repro.telemetry.distributed.ShardedStore` when ``path`` is a
    sharded-deployment manifest.  v1/v2 archives load with the tiers
    disabled; v3+ archives restore cold chunks (still encoded) and
    materialized rollup tiers.  Damage in a checksummed v4 archive
    degrades per series/chunk/shard (counted in
    ``telemetry.durability.corrupt_artifacts``); structural damage and
    damaged pre-v4 archives raise :class:`~repro.errors.PersistenceError`.
    """
    with _open_archive(path) as archive:
        meta = _read_meta(archive, path)
        if meta.get("kind") == "sharded":
            return _load_sharded(path, meta)
        store = TimeSeriesStore(**_store_kwargs(meta))
        reader = _ArchiveReader(archive, meta, path)
        _load_series_into(store, reader, meta)
        _count_damage(store, len(reader.damaged))
    return store
