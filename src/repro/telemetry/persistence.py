"""Store persistence: save/load the time-series archive to ``.npz``.

Production monitoring databases persist to disk; the substrate equivalent
lets long simulations be archived once and analyzed repeatedly (examples,
notebooks, regression baselines) without re-running the simulator.

Single-store format: one compressed ``.npz`` with two arrays per series
(``<name>::t``, ``<name>::v``) plus a small JSON header under ``__meta__``.
Format v2 also records the store configuration (``retention``,
``retention_slack``, ``flush_threshold``) so a reloaded store behaves like
the one that was saved; v1 archives (no config) still load with defaults.

Format v3 adds the tiered-storage state introduced with rollup cascades
and the compressed cold tier:

* the ``rollups`` / ``archive`` configuration dicts round-trip through the
  header, so a reloaded store keeps demoting and pre-aggregating exactly
  like the saved one,
* cold chunks are persisted **still encoded** (delta-of-delta timestamps,
  XOR-packed values) under ``__cold__::<name>::<i>::{tp,vb,vp}`` with
  their codec parameters in the header — saving and loading never pays a
  decode/re-encode round trip, and the on-disk size keeps the cold tier's
  compression ratio,
* materialized rollup tiers are persisted per series under
  ``__rollup__::<name>::<ti>::{idx,sum,min,max,cnt}`` with cursors in the
  header, so long-horizon rollup memory survives a reload even for ranges
  whose raw samples were only ever held by the saved process.

A v3 archive that references a cold chunk whose arrays are absent (a
truncated or hand-edited file) loads **degraded instead of failing**: the
chunk is skipped with a warning, counted in the reloaded store's
``telemetry.archive.missing_chunks``, and queries fall back to whatever
data remains.

Sharded format: a :class:`~repro.telemetry.distributed.ShardedStore`
deployment persists as one manifest ``.npz`` (header only: topology +
shard file names + config) plus one ordinary store archive per shard next
to it — ``run.npz`` → ``run.shard0.npz`` … ``run.shard<N-1>.npz``.  Each
shard archive is itself a valid single-store archive, so individual
shards can be inspected with :func:`load_store` directly.  On load,
series are routed through the reconstructed store's partitioner
(placement is re-derived from names, not trusted from the files) and
replicas are rebuilt by the normal write fan-out; cold chunks and rollup
state are installed on every member of the owning replica set.

Parallel deployments (worker-process members) are saved through the
member proxies, which merge cold and hot samples into one raw stream per
series; the configuration still round-trips, so a reload re-demotes old
samples into fresh cold chunks as retention advances.  (Worker-side
checkpoints operate on the real member stores and keep full chunk/rollup
fidelity.)
"""

from __future__ import annotations

import json
import logging
import os
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.errors import StoreError
from repro.telemetry.archive import ColdChunk
from repro.telemetry.store import TimeSeriesStore

__all__ = ["save_store", "load_store"]

log = logging.getLogger(__name__)

_META_KEY = "__meta__"
_FORMAT_VERSION = 3
_READABLE_VERSIONS = (1, 2, 3)

#: Array keys making up one persisted cold chunk / rollup tier.
_COLD_FIELDS = ("tp", "vb", "vp")
_ROLLUP_FIELDS = ("idx", "sum", "min", "max", "cnt")


def _encode_meta(meta: dict) -> np.ndarray:
    return np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8)


def _read_meta(archive, path: str) -> dict:
    if _META_KEY not in archive:
        raise StoreError(f"{path}: not a repro store archive (missing header)")
    meta = json.loads(bytes(archive[_META_KEY]).decode("utf-8"))
    if meta.get("version") not in _READABLE_VERSIONS:
        raise StoreError(
            f"{path}: unsupported archive version {meta.get('version')}"
        )
    return meta


def _tier_config_dict(store, attr: str) -> Optional[dict]:
    cfg = getattr(store, attr, None)
    return None if cfg is None else cfg.to_dict()


def _config_meta(store) -> dict:
    return {
        "retention": store.retention,
        "retention_slack": store.retention_slack,
        "flush_threshold": store.flush_threshold,
        "rollups": _tier_config_dict(store, "rollup_config"),
        "archive": _tier_config_dict(store, "archive_config"),
    }


def _shard_paths(path: str, shards: int) -> List[str]:
    base, ext = os.path.splitext(path)
    if ext != ".npz":
        base, ext = path, ".npz"
    return [f"{base}.shard{i}{ext}" for i in range(shards)]


def _save_single(
    store, path: str, names: Optional[Sequence[str]]
) -> int:
    # Compact staged samples up front so the archive never misses in-flight
    # data (series() also flushes per read, but an explicit full flush keeps
    # the saved samples_ingested/flush counters consistent too).
    store.flush()
    tier = getattr(store, "archive", None)
    engine = getattr(store, "rollups", None)
    # A worker-process proxy exposes the tier *configuration* but not the
    # tier objects; its query() merges cold + hot, so the saved stream is
    # complete and a reload re-demotes as retention advances.
    merged_raw = tier is None and _tier_config_dict(store, "archive_config")
    if names is not None:
        selected = list(names)
    else:
        selected = store.names()
        if tier is not None:
            known = set(selected)
            selected = sorted(
                known.union(n for n in tier.names() if n not in known)
            )
    payload = {}
    cold_meta = {}
    rollup_meta = {}
    for name in selected:
        if merged_raw:
            times, values = store.query(name)
            payload[f"{name}::t"] = times
            payload[f"{name}::v"] = values
            continue
        if name in store:
            series = store.series(name)
            payload[f"{name}::t"] = series.times.copy()
            payload[f"{name}::v"] = series.values.copy()
        else:
            # Cold-only series (all samples demoted, hot buffer never
            # recreated after a load/resync): hot arrays are empty.
            payload[f"{name}::t"] = np.empty(0)
            payload[f"{name}::v"] = np.empty(0)
        if tier is not None and name in tier:
            metas = []
            for i, chunk in enumerate(tier.chunks(name)):
                metas.append(chunk.meta())
                for field, arr in chunk.arrays().items():
                    payload[f"__cold__::{name}::{i}::{field}"] = arr
            cold_meta[name] = metas
        if engine is not None:
            tiers = []
            for ti, (step, cursor, arrays) in enumerate(
                engine.tier_state(name)
            ):
                tiers.append({"step": step, "cursor": int(cursor)})
                for field, arr in arrays.items():
                    payload[f"__rollup__::{name}::{ti}::{field}"] = arr
            if tiers:
                rollup_meta[name] = tiers
    meta = {
        "version": _FORMAT_VERSION,
        "kind": "store",
        "series": selected,
        "samples": int(store.samples_ingested),
        **_config_meta(store),
    }
    if cold_meta:
        meta["cold"] = cold_meta
    if rollup_meta:
        meta["rollup_state"] = rollup_meta
    payload[_META_KEY] = _encode_meta(meta)
    np.savez_compressed(path, **payload)
    return len(selected)


def _save_sharded(store, path: str, names: Optional[Sequence[str]]) -> int:
    store.flush()
    shard_paths = _shard_paths(path, store.shards)
    total = 0
    for rs, shard_path in zip(store.replica_sets, shard_paths):
        serving = rs.read_store()
        shard_names = (
            [n for n in names if n in serving] if names is not None else None
        )
        total += _save_single(serving, shard_path, shard_names)
    meta = {
        "version": _FORMAT_VERSION,
        "kind": "sharded",
        "shards": store.shards,
        "replication": store.replication,
        "partitioner": getattr(store.partitioner, "name", "custom"),
        "shard_files": [os.path.basename(p) for p in shard_paths],
        "series": total,
        **_config_meta(store),
    }
    np.savez_compressed(path, **{_META_KEY: _encode_meta(meta)})
    return total


def save_store(
    store, path: str, names: Optional[Sequence[str]] = None
) -> int:
    """Write the store (or a subset of series) to ``path``.

    Accepts a :class:`TimeSeriesStore` or a
    :class:`~repro.telemetry.distributed.ShardedStore` (saved as a manifest
    plus one archive per shard).  Staged samples are flushed first, so an
    archive always contains every ingested sample.  Cold chunks are saved
    still-encoded and rollup tiers are saved materialized, so tiered
    history survives the round trip.  Returns the number of series
    written.
    """
    from repro.telemetry.distributed.shard import ShardedStore

    if isinstance(store, ShardedStore):
        return _save_sharded(store, path, names)
    return _save_single(store, path, names)


def _store_kwargs(meta: dict) -> dict:
    # v1 archives carry only retention; config knobs default like the
    # TimeSeriesStore constructor.  v3 adds the tier configs (absent keys
    # — older archives — mean the tiers stay disabled).
    return {
        "retention": meta.get("retention"),
        "retention_slack": meta.get("retention_slack", 0.25),
        "flush_threshold": meta.get("flush_threshold", 256),
        "rollups": meta.get("rollups"),
        "archive": meta.get("archive"),
    }


def _member_stores(store, name: str):
    """Every member store that must hold ``name`` after the load.

    A plain store is its own single member; a sharded store fans cold
    chunks and rollup state out to every replica of the owning shard (hot
    samples take the ordinary ``append_many`` fan-out).
    """
    replica_sets = getattr(store, "replica_sets", None)
    if replica_sets is None:
        return (store,)
    return tuple(replica_sets[store.shard_of(name)].members)


def _load_cold_chunks(archive, name: str, metas, path: str):
    """Decode-free chunk reconstruction; missing arrays degrade, not fail."""
    chunks, missing = [], 0
    for i, chunk_meta in enumerate(metas):
        keys = {f: f"__cold__::{name}::{i}::{f}" for f in _COLD_FIELDS}
        if any(key not in archive for key in keys.values()):
            missing += 1
            log.warning(
                "%s: cold chunk %d of series %r is missing from the "
                "archive; loading degraded (%d samples lost)",
                path, i, name, int(chunk_meta.get("count", 0)),
            )
            continue
        chunks.append(
            ColdChunk.from_meta(
                chunk_meta, {f: archive[key] for f, key in keys.items()}
            )
        )
    return chunks, missing


def _load_series_into(store, archive, meta: dict, path: str) -> None:
    cold_meta = meta.get("cold") or {}
    rollup_meta = meta.get("rollup_state") or {}
    for name in meta["series"]:
        members = _member_stores(store, name)
        if name in cold_meta:
            chunks, missing = _load_cold_chunks(
                archive, name, cold_meta[name], path
            )
            for member in members:
                tier = getattr(member, "archive", None)
                if tier is None:
                    continue
                tier.missing_chunks += missing
                if chunks:
                    tier.adopt(name, chunks)
        if name in rollup_meta:
            state = [
                (
                    float(entry["step"]),
                    int(entry["cursor"]),
                    {
                        f: archive[f"__rollup__::{name}::{ti}::{f}"]
                        for f in _ROLLUP_FIELDS
                    },
                )
                for ti, entry in enumerate(rollup_meta[name])
            ]
            for member in members:
                engine = getattr(member, "rollups", None)
                if engine is not None:
                    engine.restore(name, state)
        # Hot tail last: append continues rollup maintenance from the
        # restored cursors over the adopted cold + appended hot range,
        # which reproduces the saved tiers bit-for-bit.
        store.append_many(name, archive[f"{name}::t"], archive[f"{name}::v"])


def _load_sharded(path: str, meta: dict):
    from repro.telemetry.distributed.shard import ShardedStore

    store = ShardedStore(
        shards=int(meta["shards"]),
        replication=int(meta.get("replication", 0)),
        **_store_kwargs(meta),
    )
    directory = os.path.dirname(os.path.abspath(path))
    for shard_file in meta["shard_files"]:
        shard_path = os.path.join(directory, shard_file)
        with np.load(shard_path) as archive:
            shard_meta = _read_meta(archive, shard_path)
            # Routed through the partitioner (append_many / per-name member
            # resolution), so placement is consistent even if the shard
            # files were produced under a different partitioner or shard
            # count.
            _load_series_into(store, archive, shard_meta, shard_path)
    return store


def load_store(path: str) -> Union[TimeSeriesStore, "object"]:
    """Load a store previously written by :func:`save_store`.

    Returns a :class:`TimeSeriesStore`, or a
    :class:`~repro.telemetry.distributed.ShardedStore` when ``path`` is a
    sharded-deployment manifest.  v1/v2 archives load with the tiers
    disabled; v3 archives restore cold chunks (still encoded) and
    materialized rollup tiers, tolerating individually missing chunks.
    """
    with np.load(path) as archive:
        meta = _read_meta(archive, path)
        if meta.get("kind") == "sharded":
            return _load_sharded(path, meta)
        store = TimeSeriesStore(**_store_kwargs(meta))
        _load_series_into(store, archive, meta, path)
    return store
