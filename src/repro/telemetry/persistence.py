"""Store persistence: save/load the time-series archive to ``.npz``.

Production monitoring databases persist to disk; the substrate equivalent
lets long simulations be archived once and analyzed repeatedly (examples,
notebooks, regression baselines) without re-running the simulator.

Single-store format: one compressed ``.npz`` with two arrays per series
(``<name>::t``, ``<name>::v``) plus a small JSON header under ``__meta__``.
Format v2 also records the store configuration (``retention``,
``retention_slack``, ``flush_threshold``) so a reloaded store behaves like
the one that was saved; v1 archives (no config) still load with defaults.

Sharded format: a :class:`~repro.telemetry.distributed.ShardedStore`
deployment persists as one manifest ``.npz`` (header only: topology +
shard file names) plus one ordinary store archive per shard next to it —
``run.npz`` → ``run.shard0.npz`` … ``run.shard<N-1>.npz``.  Each shard
archive is itself a valid single-store archive, so individual shards can
be inspected with :func:`load_store` directly.  On load, series are routed
through the reconstructed store's partitioner (placement is re-derived
from names, not trusted from the files) and replicas are rebuilt by the
normal write fan-out.
"""

from __future__ import annotations

import json
import os
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.errors import StoreError
from repro.telemetry.store import TimeSeriesStore

__all__ = ["save_store", "load_store"]

_META_KEY = "__meta__"
_FORMAT_VERSION = 2
_READABLE_VERSIONS = (1, 2)


def _encode_meta(meta: dict) -> np.ndarray:
    return np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8)


def _read_meta(archive, path: str) -> dict:
    if _META_KEY not in archive:
        raise StoreError(f"{path}: not a repro store archive (missing header)")
    meta = json.loads(bytes(archive[_META_KEY]).decode("utf-8"))
    if meta.get("version") not in _READABLE_VERSIONS:
        raise StoreError(
            f"{path}: unsupported archive version {meta.get('version')}"
        )
    return meta


def _config_meta(store) -> dict:
    return {
        "retention": store.retention,
        "retention_slack": store.retention_slack,
        "flush_threshold": store.flush_threshold,
    }


def _shard_paths(path: str, shards: int) -> List[str]:
    base, ext = os.path.splitext(path)
    if ext != ".npz":
        base, ext = path, ".npz"
    return [f"{base}.shard{i}{ext}" for i in range(shards)]


def _save_single(
    store: TimeSeriesStore, path: str, names: Optional[Sequence[str]]
) -> int:
    # Compact staged samples up front so the archive never misses in-flight
    # data (series() also flushes per read, but an explicit full flush keeps
    # the saved samples_ingested/flush counters consistent too).
    store.flush()
    selected = list(names) if names is not None else store.names()
    payload = {}
    for name in selected:
        series = store.series(name)
        payload[f"{name}::t"] = series.times.copy()
        payload[f"{name}::v"] = series.values.copy()
    meta = {
        "version": _FORMAT_VERSION,
        "kind": "store",
        "series": selected,
        "samples": int(store.samples_ingested),
        **_config_meta(store),
    }
    payload[_META_KEY] = _encode_meta(meta)
    np.savez_compressed(path, **payload)
    return len(selected)


def _save_sharded(store, path: str, names: Optional[Sequence[str]]) -> int:
    store.flush()
    shard_paths = _shard_paths(path, store.shards)
    total = 0
    for rs, shard_path in zip(store.replica_sets, shard_paths):
        serving = rs.read_store()
        shard_names = (
            [n for n in names if n in serving] if names is not None else None
        )
        total += _save_single(serving, shard_path, shard_names)
    meta = {
        "version": _FORMAT_VERSION,
        "kind": "sharded",
        "shards": store.shards,
        "replication": store.replication,
        "partitioner": getattr(store.partitioner, "name", "custom"),
        "shard_files": [os.path.basename(p) for p in shard_paths],
        "series": total,
        **_config_meta(store),
    }
    np.savez_compressed(path, **{_META_KEY: _encode_meta(meta)})
    return total


def save_store(
    store, path: str, names: Optional[Sequence[str]] = None
) -> int:
    """Write the store (or a subset of series) to ``path``.

    Accepts a :class:`TimeSeriesStore` or a
    :class:`~repro.telemetry.distributed.ShardedStore` (saved as a manifest
    plus one archive per shard).  Staged samples are flushed first, so an
    archive always contains every ingested sample.  Returns the number of
    series written.
    """
    from repro.telemetry.distributed.shard import ShardedStore

    if isinstance(store, ShardedStore):
        return _save_sharded(store, path, names)
    return _save_single(store, path, names)


def _store_kwargs(meta: dict) -> dict:
    # v1 archives carry only retention; config knobs default like the
    # TimeSeriesStore constructor.
    return {
        "retention": meta.get("retention"),
        "retention_slack": meta.get("retention_slack", 0.25),
        "flush_threshold": meta.get("flush_threshold", 256),
    }


def _load_series_into(store, archive, meta: dict) -> None:
    for name in meta["series"]:
        times = archive[f"{name}::t"]
        values = archive[f"{name}::v"]
        store.append_many(name, times, values)


def _load_sharded(path: str, meta: dict):
    from repro.telemetry.distributed.shard import ShardedStore

    store = ShardedStore(
        shards=int(meta["shards"]),
        replication=int(meta.get("replication", 0)),
        **_store_kwargs(meta),
    )
    directory = os.path.dirname(os.path.abspath(path))
    for shard_file in meta["shard_files"]:
        shard_path = os.path.join(directory, shard_file)
        with np.load(shard_path) as archive:
            shard_meta = _read_meta(archive, shard_path)
            # Routed through the partitioner (append_many), so placement is
            # consistent even if the shard files were produced under a
            # different partitioner or shard count.
            _load_series_into(store, archive, shard_meta)
    return store


def load_store(path: str) -> Union[TimeSeriesStore, "object"]:
    """Load a store previously written by :func:`save_store`.

    Returns a :class:`TimeSeriesStore`, or a
    :class:`~repro.telemetry.distributed.ShardedStore` when ``path`` is a
    sharded-deployment manifest.
    """
    with np.load(path) as archive:
        meta = _read_meta(archive, path)
        if meta.get("kind") == "sharded":
            return _load_sharded(path, meta)
        store = TimeSeriesStore(**_store_kwargs(meta))
        _load_series_into(store, archive, meta)
    return store
