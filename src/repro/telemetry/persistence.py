"""Store persistence: save/load the time-series archive to ``.npz``.

Production monitoring databases persist to disk; the substrate equivalent
lets long simulations be archived once and analyzed repeatedly (examples,
notebooks, regression baselines) without re-running the simulator.

Format: one compressed ``.npz`` with two arrays per series
(``<name>::t``, ``<name>::v``) plus a small JSON header under ``__meta__``.
"""

from __future__ import annotations

import io
import json
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import StoreError
from repro.telemetry.store import TimeSeriesStore

__all__ = ["save_store", "load_store"]

_META_KEY = "__meta__"
_FORMAT_VERSION = 1


def save_store(
    store: TimeSeriesStore, path: str, names: Optional[Sequence[str]] = None
) -> int:
    """Write the store (or a subset of series) to ``path``.

    Returns the number of series written.
    """
    selected = list(names) if names is not None else store.names()
    payload = {}
    for name in selected:
        series = store.series(name)
        payload[f"{name}::t"] = series.times.copy()
        payload[f"{name}::v"] = series.values.copy()
    meta = {
        "version": _FORMAT_VERSION,
        "series": selected,
        "retention": store.retention,
        "samples": int(store.samples_ingested),
    }
    payload[_META_KEY] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(path, **payload)
    return len(selected)


def load_store(path: str) -> TimeSeriesStore:
    """Load a store previously written by :func:`save_store`."""
    with np.load(path) as archive:
        if _META_KEY not in archive:
            raise StoreError(f"{path}: not a repro store archive (missing header)")
        meta = json.loads(bytes(archive[_META_KEY]).decode("utf-8"))
        if meta.get("version") != _FORMAT_VERSION:
            raise StoreError(
                f"{path}: unsupported archive version {meta.get('version')}"
            )
        store = TimeSeriesStore(retention=meta.get("retention"))
        for name in meta["series"]:
            times = archive[f"{name}::t"]
            values = archive[f"{name}::v"]
            store.append_many(name, times, values)
    return store
