"""Threshold alerting — the automated-alert half of descriptive ODA.

Per the paper (Section III-B), descriptive analytics "may even include
features for automated alerts upon exceeding human-defined thresholds of
monitored sensors".  The :class:`AlertEngine` subscribes to the message bus
and evaluates simple threshold rules with hysteresis and duration filtering,
raising and clearing :class:`Alert` records.

Two failure modes of real monitoring stacks are handled explicitly:

* **NaN samples** are treated as missing data — they never breach, never
  clear, and never reset an in-progress breach timer, so a sensor that
  starts emitting garbage cannot silently cancel an active alert.
* **Silence** is alertable: a :class:`StaleDataRule` raises when a metric
  stops reporting (or reports only NaN) for longer than ``max_age``, which
  is how a dead sampler becomes visible instead of just... quiet.
"""

from __future__ import annotations

import fnmatch
import math
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import ConfigurationError
from repro.telemetry.sample import SampleBatch

__all__ = ["AlertSeverity", "AlertRule", "StaleDataRule", "Alert", "AlertEngine"]


class AlertSeverity(Enum):
    INFO = 1
    WARNING = 2
    CRITICAL = 3


@dataclass(frozen=True)
class AlertRule:
    """A human-defined threshold rule.

    The rule fires when the metric is beyond ``threshold`` in direction
    ``above`` for at least ``for_seconds`` continuously, and clears with a
    hysteresis band of ``clear_margin`` to avoid flapping.
    """

    name: str
    metric_pattern: str
    threshold: float
    above: bool = True
    for_seconds: float = 0.0
    clear_margin: float = 0.0
    severity: AlertSeverity = AlertSeverity.WARNING

    def __post_init__(self) -> None:
        if self.for_seconds < 0 or self.clear_margin < 0:
            raise ConfigurationError(
                f"rule {self.name}: for_seconds and clear_margin must be >= 0"
            )

    def breaches(self, value: float) -> bool:
        return value > self.threshold if self.above else value < self.threshold

    def clears(self, value: float) -> bool:
        if self.above:
            return value <= self.threshold - self.clear_margin
        return value >= self.threshold + self.clear_margin


@dataclass(frozen=True)
class StaleDataRule:
    """Alert when a metric goes silent (no-data / NaN-only) for too long.

    A metric is tracked from its first observation; once the gap since its
    last *real* (non-NaN, when ``nan_is_missing``) sample exceeds
    ``max_age``, an alert is raised.  It clears as soon as real data flows
    again.  Staleness is evaluated against batch timestamps on every
    :meth:`AlertEngine.observe` and on explicit
    :meth:`AlertEngine.check_staleness` calls (the health monitor drives the
    latter, so a totally dead pipeline still alerts).
    """

    name: str
    metric_pattern: str
    max_age: float
    severity: AlertSeverity = AlertSeverity.WARNING
    nan_is_missing: bool = True

    def __post_init__(self) -> None:
        if self.max_age <= 0:
            raise ConfigurationError(
                f"rule {self.name}: max_age must be > 0, got {self.max_age}"
            )


#: Either rule flavour; :attr:`Alert.rule` holds whichever raised it.
Rule = Union[AlertRule, StaleDataRule]


@dataclass
class Alert:
    """A raised (and possibly later cleared) alert instance."""

    rule: Rule
    metric: str
    raised_at: float
    value: float
    cleared_at: Optional[float] = None

    @property
    def active(self) -> bool:
        return self.cleared_at is None

    @property
    def duration(self) -> Optional[float]:
        if self.cleared_at is None:
            return None
        return self.cleared_at - self.raised_at


@dataclass
class _PendingState:
    """Per (rule, metric) evaluation state."""

    breach_started: Optional[float] = None
    alert: Optional[Alert] = None


class AlertEngine:
    """Evaluates alert rules against live sample batches.

    Subscribe it to a bus with ``bus.subscribe("#", engine.observe)``, or
    feed batches manually.  All raised alerts are retained in ``history``.
    """

    def __init__(self) -> None:
        self._rules: List[AlertRule] = []
        self._stale_rules: List[StaleDataRule] = []
        self._state: Dict[tuple, _PendingState] = {}
        self._last_seen: Dict[Tuple[str, str], float] = {}
        self._stale_alerts: Dict[Tuple[str, str], Alert] = {}
        self.history: List[Alert] = []

    def add_rule(self, rule: AlertRule) -> AlertRule:
        self._rules.append(rule)
        return rule

    def add_stale_rule(self, rule: StaleDataRule) -> StaleDataRule:
        self._stale_rules.append(rule)
        return rule

    @property
    def rules(self) -> List[AlertRule]:
        return list(self._rules)

    @property
    def stale_rules(self) -> List[StaleDataRule]:
        return list(self._stale_rules)

    def active_alerts(self) -> List[Alert]:
        """Alerts currently raised and not yet cleared."""
        return [a for a in self.history if a.active]

    def observe(self, topic: str, batch: SampleBatch) -> List[Alert]:
        """Bus-compatible sink; returns alerts newly raised by this batch."""
        raised: List[Alert] = []
        for name, value in batch:
            self._track_freshness(name, batch.time, value)
            if math.isnan(value):
                # Missing data: never breaches, never clears, never resets
                # an in-progress breach timer.
                continue
            for rule in self._rules:
                if not fnmatch.fnmatchcase(name, rule.metric_pattern):
                    continue
                key = (rule.name, name)
                state = self._state.setdefault(key, _PendingState())
                raised.extend(self._evaluate(rule, name, batch.time, value, state))
        if self._stale_rules:
            raised.extend(self.check_staleness(batch.time))
        return raised

    # ------------------------------------------------------------------
    # Stale / no-data rules
    # ------------------------------------------------------------------
    def _track_freshness(self, metric: str, now: float, value: float) -> None:
        for rule in self._stale_rules:
            if not fnmatch.fnmatchcase(metric, rule.metric_pattern):
                continue
            key = (rule.name, metric)
            if math.isnan(value) and rule.nan_is_missing:
                # First sighting starts the staleness clock even if it is
                # NaN, so a sensor that only ever emits NaN still alerts.
                self._last_seen.setdefault(key, now)
                continue
            self._last_seen[key] = now
            alert = self._stale_alerts.pop(key, None)
            if alert is not None:
                alert.cleared_at = now

    def check_staleness(self, now: float) -> List[Alert]:
        """Raise stale-data alerts for tracked metrics silent past max_age.

        Called automatically on every observed batch; call it explicitly (the
        health monitor does, each period) to detect staleness even when no
        traffic reaches this engine at all.
        """
        raised: List[Alert] = []
        for rule in self._stale_rules:
            for (rule_name, metric), last in self._last_seen.items():
                if rule_name != rule.name:
                    continue
                key = (rule_name, metric)
                if key in self._stale_alerts:
                    continue
                if now - last > rule.max_age:
                    alert = Alert(
                        rule=rule, metric=metric, raised_at=now, value=float("nan")
                    )
                    self._stale_alerts[key] = alert
                    self.history.append(alert)
                    raised.append(alert)
        return raised

    # ------------------------------------------------------------------
    # Threshold rules
    # ------------------------------------------------------------------
    def _evaluate(
        self,
        rule: AlertRule,
        metric: str,
        now: float,
        value: float,
        state: _PendingState,
    ) -> List[Alert]:
        raised: List[Alert] = []
        if state.alert is not None:
            if rule.clears(value):
                state.alert.cleared_at = now
                state.alert = None
                state.breach_started = None
            return raised
        if rule.breaches(value):
            if state.breach_started is None:
                state.breach_started = now
            if now - state.breach_started >= rule.for_seconds:
                alert = Alert(rule=rule, metric=metric, raised_at=now, value=value)
                state.alert = alert
                self.history.append(alert)
                raised.append(alert)
        else:
            state.breach_started = None
        return raised
