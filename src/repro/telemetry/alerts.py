"""Threshold alerting — the automated-alert half of descriptive ODA.

Per the paper (Section III-B), descriptive analytics "may even include
features for automated alerts upon exceeding human-defined thresholds of
monitored sensors".  The :class:`AlertEngine` subscribes to the message bus
and evaluates simple threshold rules with hysteresis and duration filtering,
raising and clearing :class:`Alert` records.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional

from repro.errors import ConfigurationError
from repro.telemetry.sample import SampleBatch

__all__ = ["AlertSeverity", "AlertRule", "Alert", "AlertEngine"]


class AlertSeverity(Enum):
    INFO = 1
    WARNING = 2
    CRITICAL = 3


@dataclass(frozen=True)
class AlertRule:
    """A human-defined threshold rule.

    The rule fires when the metric is beyond ``threshold`` in direction
    ``above`` for at least ``for_seconds`` continuously, and clears with a
    hysteresis band of ``clear_margin`` to avoid flapping.
    """

    name: str
    metric_pattern: str
    threshold: float
    above: bool = True
    for_seconds: float = 0.0
    clear_margin: float = 0.0
    severity: AlertSeverity = AlertSeverity.WARNING

    def __post_init__(self) -> None:
        if self.for_seconds < 0 or self.clear_margin < 0:
            raise ConfigurationError(
                f"rule {self.name}: for_seconds and clear_margin must be >= 0"
            )

    def breaches(self, value: float) -> bool:
        return value > self.threshold if self.above else value < self.threshold

    def clears(self, value: float) -> bool:
        if self.above:
            return value <= self.threshold - self.clear_margin
        return value >= self.threshold + self.clear_margin


@dataclass
class Alert:
    """A raised (and possibly later cleared) alert instance."""

    rule: AlertRule
    metric: str
    raised_at: float
    value: float
    cleared_at: Optional[float] = None

    @property
    def active(self) -> bool:
        return self.cleared_at is None

    @property
    def duration(self) -> Optional[float]:
        if self.cleared_at is None:
            return None
        return self.cleared_at - self.raised_at


@dataclass
class _PendingState:
    """Per (rule, metric) evaluation state."""

    breach_started: Optional[float] = None
    alert: Optional[Alert] = None


class AlertEngine:
    """Evaluates alert rules against live sample batches.

    Subscribe it to a bus with ``bus.subscribe("#", engine.observe)``, or
    feed batches manually.  All raised alerts are retained in ``history``.
    """

    def __init__(self) -> None:
        self._rules: List[AlertRule] = []
        self._state: Dict[tuple, _PendingState] = {}
        self.history: List[Alert] = []

    def add_rule(self, rule: AlertRule) -> AlertRule:
        self._rules.append(rule)
        return rule

    @property
    def rules(self) -> List[AlertRule]:
        return list(self._rules)

    def active_alerts(self) -> List[Alert]:
        """Alerts currently raised and not yet cleared."""
        return [a for a in self.history if a.active]

    def observe(self, topic: str, batch: SampleBatch) -> List[Alert]:
        """Bus-compatible sink; returns alerts newly raised by this batch."""
        raised: List[Alert] = []
        for name, value in batch:
            for rule in self._rules:
                if not fnmatch.fnmatchcase(name, rule.metric_pattern):
                    continue
                key = (rule.name, name)
                state = self._state.setdefault(key, _PendingState())
                raised.extend(self._evaluate(rule, name, batch.time, value, state))
        return raised

    def _evaluate(
        self,
        rule: AlertRule,
        metric: str,
        now: float,
        value: float,
        state: _PendingState,
    ) -> List[Alert]:
        raised: List[Alert] = []
        if state.alert is not None:
            if rule.clears(value):
                state.alert.cleared_at = now
                state.alert = None
                state.breach_started = None
            return raised
        if rule.breaches(value):
            if state.breach_started is None:
                state.breach_started = now
            if now - state.breach_started >= rule.for_seconds:
                alert = Alert(rule=rule, metric=metric, raised_at=now, value=value)
                state.alert = alert
                self.history.append(alert)
                raised.append(alert)
        else:
            state.breach_started = None
        return raised
