"""Series-to-shard partitioning.

Hash-distributed storage backends (DCDB's per-node Cassandra instances,
LDMS+DSOS containers) assign each metric series to exactly one backend by
hashing its name.  The partitioner here is the pluggable version of that
mapping: any callable ``partitioner(series_name) -> shard_id`` works, and
the default :class:`HashPartitioner` uses CRC-32 so the assignment is

* **consistent** — the same name always maps to the same shard, within a
  run and across processes (``zlib.crc32`` is a fixed function, unlike
  Python's salted ``hash``), so re-queries and reloaded archives hit the
  same shard the data was written to, and
* **balanced** — CRC-32 spreads realistic metric-name populations close to
  uniformly across shards (the sharding benchmark asserts the balance).
"""

from __future__ import annotations

import zlib
from typing import Callable

from repro.errors import ConfigurationError

__all__ = ["Partitioner", "HashPartitioner"]

#: Anything mapping a series name to a shard id in ``[0, shards)``.
Partitioner = Callable[[str], int]


class HashPartitioner:
    """Deterministic CRC-32 partitioner: ``crc32(name) % shards``."""

    name = "crc32"

    def __init__(self, shards: int):
        if shards < 1:
            raise ConfigurationError(f"shards must be >= 1, got {shards}")
        self.shards = shards

    def __call__(self, series_name: str) -> int:
        return zlib.crc32(series_name.encode("utf-8")) % self.shards

    def __repr__(self) -> str:
        return f"HashPartitioner(shards={self.shards})"
