"""Hash-partitioned sharded store: the distributed archive tier.

A :class:`ShardedStore` spreads series across N independent
:class:`~repro.telemetry.store.TimeSeriesStore` shards by hashing the
series name (pluggable partitioner, CRC-32 by default so assignment is
consistent across runs and archives).  Each shard slot is a
:class:`~repro.telemetry.distributed.replica.ReplicaSet` — primary plus R
replicas with transparent read failover — and cross-shard reads go through
the :class:`~repro.telemetry.distributed.federation.FederatedQueryEngine`.

The public surface is API-compatible with ``TimeSeriesStore`` (``ingest``,
``query``, ``resample``, ``align``, ``select``, ``names``, ``flush``,
``health_metrics``, …), so everything downstream — bus subscription,
streaming stages, alert evaluation, analytics, persistence — works
unchanged on a sharded deployment::

    store = ShardedStore(shards=8, replication=1, retention=86_400.0)
    bus.subscribe("#", store.ingest)
    grid, X = store.align(store.select("cluster.*"), 0.0, now, 60.0)

Ingest splits each bus batch into per-shard sub-batches with a cached
split plan: scrapes re-publish the same metric-name tuple every period, so
after the first batch the partitioner is never consulted again on the hot
path — one dict hit yields the (shard, names, index-array) plan and the
values are fancy-indexed straight into per-shard batches.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.telemetry.distributed.federation import FederatedQueryEngine
from repro.telemetry.distributed.partition import HashPartitioner, Partitioner
from repro.telemetry.distributed.replica import ReplicaSet
from repro.telemetry.sample import SampleBatch
from repro.telemetry.store import SeriesBuffer, TimeSeriesStore

__all__ = ["ShardedStore"]

#: Bound on the cached batch split plans (keyed by the batch's name tuple).
_SPLIT_CACHE_CAP = 1024

#: One split-plan entry: (shard_id, names sub-tuple, value index array).
_SplitPlan = List[Tuple[int, Tuple[str, ...], np.ndarray]]


class ShardedStore:
    """N hash-partitioned, optionally replicated, time-series shards.

    Parameters
    ----------
    shards:
        Number of shard slots (>= 1).
    replication:
        Extra copies per shard: every write lands on the primary plus this
        many replicas, and reads fail over when the primary is down.
    partitioner:
        ``name -> shard_id`` callable; defaults to CRC-32 hashing
        (:class:`~repro.telemetry.distributed.partition.HashPartitioner`).
    retention / retention_slack / flush_threshold:
        Per-shard store configuration, identical in meaning to
        :class:`~repro.telemetry.store.TimeSeriesStore`.
    store_factory:
        Override how member stores are built (e.g. to pass a custom store
        subclass); when given, the three config knobs above are only
        recorded for introspection, not applied.
    """

    def __init__(
        self,
        shards: int = 4,
        replication: int = 0,
        partitioner: Optional[Partitioner] = None,
        retention: Optional[float] = None,
        retention_slack: float = 0.25,
        flush_threshold: int = 256,
        store_factory: Optional[Callable[[], TimeSeriesStore]] = None,
    ):
        if shards < 1:
            raise ConfigurationError(f"shards must be >= 1, got {shards}")
        if replication < 0:
            raise ConfigurationError(
                f"replication must be >= 0, got {replication}"
            )
        self.shards = shards
        self.replication = replication
        self.retention = retention
        self.retention_slack = retention_slack
        self.flush_threshold = flush_threshold
        if store_factory is None:
            store_factory = lambda: TimeSeriesStore(  # noqa: E731
                retention=retention,
                retention_slack=retention_slack,
                flush_threshold=flush_threshold,
            )
        self.partitioner: Partitioner = (
            partitioner if partitioner is not None else HashPartitioner(shards)
        )
        self.replica_sets: List[ReplicaSet] = [
            ReplicaSet(i, replication, store_factory) for i in range(shards)
        ]
        self.federation = FederatedQueryEngine(self)
        self.batches_ingested = 0
        self._route: Dict[str, int] = {}
        self._split_cache: Dict[Tuple[str, ...], _SplitPlan] = {}

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def shard_of(self, name: str) -> int:
        """Shard id owning ``name`` (cached, consistent for the run)."""
        shard = self._route.get(name)
        if shard is None:
            shard = self._route[name] = int(self.partitioner(name)) % self.shards
            if not 0 <= shard < self.shards:  # custom partitioner misbehaving
                raise ConfigurationError(
                    f"partitioner returned shard {shard} for {name!r} "
                    f"(valid: 0..{self.shards - 1})"
                )
        return shard

    def store_for(self, name: str) -> TimeSeriesStore:
        """The store currently serving reads for ``name``'s shard."""
        return self.replica_sets[self.shard_of(name)].read_store()

    def _split_plan(self, names: Tuple[str, ...]) -> _SplitPlan:
        plan = self._split_cache.get(names)
        if plan is None:
            by_shard: Dict[int, List[int]] = {}
            for i, name in enumerate(names):
                by_shard.setdefault(self.shard_of(name), []).append(i)
            plan = [
                (
                    shard,
                    tuple(names[i] for i in idx),
                    np.asarray(idx, dtype=np.intp),
                )
                for shard, idx in sorted(by_shard.items())
            ]
            if len(self._split_cache) >= _SPLIT_CACHE_CAP:
                self._split_cache.clear()
            self._split_cache[names] = plan
        return plan

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def ingest(self, topic: str, batch: SampleBatch) -> None:
        """Bus-compatible sink: split the batch and write each sub-batch to
        its shard's replica set (primary + replicas)."""
        self.batches_ingested += 1
        plan = self._split_plan(batch.names)
        if len(plan) == 1:
            # Whole batch lands on one shard: forward it as-is, no copies.
            self.replica_sets[plan[0][0]].ingest(topic, batch)
            return
        time = batch.time
        values = batch.values
        for shard, names, idx in plan:
            self.replica_sets[shard].ingest(
                topic, SampleBatch(time, names, values[idx])
            )

    def append(self, name: str, time: float, value: float) -> None:
        self.replica_sets[self.shard_of(name)].append(name, time, value)

    def append_many(
        self, name: str, times: np.ndarray, values: np.ndarray
    ) -> None:
        self.replica_sets[self.shard_of(name)].append_many(name, times, values)

    def flush(self, name: Optional[str] = None) -> int:
        """Flush staged samples on every shard member; returns samples
        flushed on the primaries-and-replicas of the touched shard(s)."""
        if name is not None:
            rs = self.replica_sets[self.shard_of(name)]
            return sum(
                store.flush(name)
                for i, store in enumerate(rs.members)
                if not rs.is_down(i)
            )
        return sum(rs.flush() for rs in self.replica_sets)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def names(self) -> List[str]:
        return self.federation.names()

    def select(self, pattern: str) -> List[str]:
        return self.federation.select(pattern)

    def __contains__(self, name: str) -> bool:
        return name in self.store_for(name)

    def __len__(self) -> int:
        return sum(len(rs.read_store()) for rs in self.replica_sets)

    def series(self, name: str) -> SeriesBuffer:
        """Read accessor on the owning shard (flushes + enforces retention)."""
        return self.store_for(name).series(name)

    @property
    def latest_time(self) -> float:
        """Largest timestamp across all serving members (-inf when empty)."""
        return max(
            (rs.read_store().latest_time for rs in self.replica_sets),
            default=float("-inf"),
        )

    @property
    def samples_ingested(self) -> int:
        """Logical samples stored (per-shard, counted once per sample —
        replica copies are not double-counted)."""
        return sum(rs.read_store().samples_ingested for rs in self.replica_sets)

    @property
    def staged_samples(self) -> int:
        return sum(rs.read_store().staged_samples for rs in self.replica_sets)

    def health_metrics(self) -> Dict[str, float]:
        """Self-metrics on the ``telemetry.shard.*`` subtree.

        Published by the :class:`~repro.telemetry.health.HealthMonitor`
        like any store's, so shard failures are visible — and alertable —
        through the ordinary pipeline.
        """
        out: Dict[str, float] = {
            "telemetry.shard.count": float(self.shards),
            "telemetry.shard.replication": float(self.replication),
            "telemetry.shard.batches": float(self.batches_ingested),
            "telemetry.shard.fanouts": float(self.federation.fanouts),
        }
        down = 0
        failovers = 0
        lost = 0
        for rs in self.replica_sets:
            out.update(rs.health_metrics(f"telemetry.shard.{rs.shard_id}"))
            down += rs.down_members
            failovers += rs.failover_reads
            lost += rs.lost_samples
        out["telemetry.shard.down_members"] = float(down)
        out["telemetry.shard.failover_reads"] = float(failovers)
        out["telemetry.shard.lost_samples"] = float(lost)
        return out

    # ------------------------------------------------------------------
    # Queries (single-series routed, cross-series federated)
    # ------------------------------------------------------------------
    def query(
        self, name: str, since: float = float("-inf"), until: float = float("inf")
    ) -> Tuple[np.ndarray, np.ndarray]:
        return self.federation.query(name, since, until)

    def latest(self, name: str) -> Tuple[float, float]:
        return self.store_for(name).latest(name)

    def value_at(self, name: str, time: float) -> float:
        return self.store_for(name).value_at(name, time)

    def resample(
        self,
        name: str,
        since: float,
        until: float,
        step: float,
        agg: str = "mean",
        engine: str = "auto",
    ) -> Tuple[np.ndarray, np.ndarray]:
        return self.federation.resample(
            name, since, until, step, agg=agg, engine=engine
        )

    def align(
        self,
        names: Sequence[str],
        since: float,
        until: float,
        step: float,
        agg: str = "mean",
        fill: str = "ffill",
        engine: str = "auto",
    ) -> Tuple[np.ndarray, np.ndarray]:
        return self.federation.align(
            names, since, until, step, agg=agg, fill=fill, engine=engine
        )
